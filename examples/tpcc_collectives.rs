//! Watching cache collectives self-assemble on TPC-C.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example tpcc_collectives
//! ```
//!
//! This drives the engine with migration-event recording enabled and
//! reconstructs the paper's mental model: which cores ended up serving
//! which code segments, how far threads spread (§5.4 reports TPC-C
//! transactions spreading across up to 14 cores), and what the migration
//! timeline looked like for one sample thread.

use slicc_common::CoreId;
use slicc_sim::{Engine, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};
use std::collections::HashMap;

fn main() {
    let spec = Workload::TpcC1.spec(TraceScale::small());
    let cfg = SimConfig::paper_baseline().with_mode(SchedulerMode::SliccSw);
    let mut engine = Engine::new(&spec, &cfg);
    engine.record_events();
    engine.execute();

    // Which segment dominates each core's final L1-I contents?
    println!("final L1-I contents by code segment (collective structure):");
    for core in CoreId::all(cfg.cores) {
        let l1i = engine.system().l1i(core);
        let mut per_segment: HashMap<u32, usize> = HashMap::new();
        for block in l1i.blocks() {
            if let Some(seg) = spec.pool.segment_of_block(block) {
                *per_segment.entry(seg).or_default() += 1;
            }
        }
        let mut top: Vec<_> = per_segment.into_iter().collect();
        top.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let summary: Vec<String> =
            top.iter().take(3).map(|(seg, n)| format!("seg{seg:02}x{n}")).collect();
        println!("  {core}: {} blocks [{}]", l1i.occupancy(), summary.join(" "));
    }

    // Migration timeline of the most-travelled thread.
    let events = engine.events().to_vec();
    let mut per_thread: HashMap<u32, usize> = HashMap::new();
    for ev in &events {
        *per_thread.entry(ev.thread.raw()).or_default() += 1;
    }
    if let Some((&traveller, &hops)) = per_thread.iter().max_by_key(|&(_, &n)| n) {
        println!("\nmost-travelled thread: T{traveller} with {hops} migrations:");
        for ev in events.iter().filter(|e| e.thread.raw() == traveller).take(12) {
            println!(
                "  @instr {:>7}: {} -> {} ({})",
                ev.thread_instructions,
                ev.from,
                ev.to,
                if ev.matched { "segment match" } else { "idle core" }
            );
        }
    }

    let metrics = engine.into_metrics();
    println!(
        "\n{} threads, {} migrations ({:.2} per kilo-instruction), mean spread {:.1} cores/thread",
        metrics.completed_threads,
        metrics.migrations,
        metrics.migrations_per_kilo_instruction(),
        metrics.mean_cores_per_thread
    );
    println!("I-MPKI {:.2}, D-MPKI {:.2}, BPKI {:.3}", metrics.i_mpki(), metrics.d_mpki(), metrics.bpki());
}
