//! Migration anatomy: where do the cycles go?
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example migration_anatomy [workload]
//! ```
//!
//! For each execution mode this prints the full cycle composition (base
//! execution, instruction-miss stalls, front-end latency, data-miss
//! stalls, migration overhead, idle time) plus the migration-rate and
//! broadcast-rate statistics of §5.8 — the raw material behind the
//! paper's §3.3 claim that the instruction-miss savings outweigh the
//! data-miss and migration costs.

use slicc_sim::{RunMetrics, RunRequest, Runner, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};

fn pick_workload() -> Workload {
    match std::env::args().nth(1).as_deref() {
        Some("tpcc10") => Workload::TpcC10,
        Some("tpce") => Workload::TpcE,
        Some("mapreduce") => Workload::MapReduce,
        _ => Workload::TpcC1,
    }
}

fn row(m: &RunMetrics, base: &RunMetrics) {
    let s = &m.core_stats;
    let total = s.total_cycles();
    let pct = |x: u64| 100.0 * x as f64 / total.max(1) as f64;
    println!(
        "{:<10} {:>7.2} {:>7.2} | {:>5.1} {:>6.1} {:>6.1} {:>5.1} {:>5.1} {:>5.1} | {:>6.2} {:>6.3} {:>7.2}x",
        m.mode,
        m.i_mpki(),
        m.d_mpki(),
        pct(s.base_cycles),
        pct(s.ifetch_stall_cycles),
        pct(s.data_stall_cycles),
        pct(s.fetch_latency_cycles),
        pct(s.migration_cycles),
        pct(s.idle_cycles),
        m.migrations_per_kilo_instruction(),
        m.bpki(),
        m.speedup_over(base),
    );
}

fn main() {
    let workload = pick_workload();
    let spec = workload.spec(TraceScale::small());
    println!("workload: {}", spec.name);
    println!(
        "{:<10} {:>7} {:>7} | {:>5} {:>6} {:>6} {:>5} {:>5} {:>5} | {:>6} {:>6} {:>8}",
        "mode", "I-MPKI", "D-MPKI", "base%", "istal%", "dstal%", "flat%", "mig%", "idle%", "mig/KI", "BPKI", "speedup"
    );
    // Four independent points, fanned across host cores.
    let point = RunRequest::new(workload, TraceScale::small(), SimConfig::paper_baseline());
    let reqs: Vec<RunRequest> = SchedulerMode::ALL.iter().map(|&m| point.clone().with_mode(m)).collect();
    let results = Runner::with_default_parallelism().run_metrics(&reqs);
    for m in &results {
        row(m, &results[0]);
    }
}
