fn main() {
    let req = slicc_sim::RunRequest::new(
        slicc_trace::Workload::TpcC1,
        slicc_trace::TraceScale::small(),
        slicc_sim::SimConfig::paper_baseline().with_classification(),
    );
    let m = req.execute().metrics;
    println!("I-MPKI {:.2} D-MPKI {:.2}", m.i_mpki(), m.d_mpki());
    println!("I breakdown: {:?}", m.i_breakdown);
    println!("D breakdown: {:?}", m.d_breakdown);
    println!("L2: {:?}", m.l2);
    println!("instr {} d_accesses {}", m.instructions, m.d_accesses);
}
