//! Quickstart: simulate TPC-C under the baseline and every SLICC variant.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This reproduces, at small scale, the headline result of the paper:
//! SLICC trades a small data-miss increase for a large instruction-miss
//! reduction, improving overall performance.

use slicc_sim::{run, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};

fn main() {
    let scale = TraceScale::small();
    let spec = Workload::TpcC1.spec(scale);
    println!("workload: {} ({} transactions)", spec.name, spec.num_tasks);
    println!();
    println!("{:<10} {:>8} {:>8} {:>10} {:>10} {:>9}", "mode", "I-MPKI", "D-MPKI", "cycles", "migrations", "speedup");

    let base = run(&spec, &SimConfig::paper_baseline());
    for mode in SchedulerMode::ALL {
        let cfg = SimConfig::paper_baseline().with_mode(mode);
        let m = if mode == SchedulerMode::Baseline { base.clone() } else { run(&spec, &cfg) };
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>10} {:>10} {:>8.2}x",
            m.mode,
            m.i_mpki(),
            m.d_mpki(),
            m.cycles,
            m.migrations,
            m.speedup_over(&base),
        );
    }
}
