//! Quickstart: simulate TPC-C under the baseline and every SLICC variant.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This reproduces, at small scale, the headline result of the paper:
//! SLICC trades a small data-miss increase for a large instruction-miss
//! reduction, improving overall performance. The four modes are
//! independent simulation points, so they fan out across host cores via
//! the [`Runner`].

use slicc_sim::{RunRequest, Runner, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};

fn main() {
    let base = RunRequest::new(Workload::TpcC1, TraceScale::small(), SimConfig::paper_baseline());
    let spec = base.spec();
    println!("workload: {} ({} transactions)", spec.name, spec.num_tasks);
    println!();
    println!("{:<10} {:>8} {:>8} {:>10} {:>10} {:>9}", "mode", "I-MPKI", "D-MPKI", "cycles", "migrations", "speedup");

    // SchedulerMode::ALL starts with Baseline, so results[0] is the
    // reference point for the speedup column.
    let reqs: Vec<RunRequest> =
        SchedulerMode::ALL.iter().map(|&mode| base.clone().with_mode(mode)).collect();
    let results = Runner::with_default_parallelism().run_metrics(&reqs);
    for m in &results {
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>10} {:>10} {:>8.2}x",
            m.mode,
            m.i_mpki(),
            m.d_mpki(),
            m.cycles,
            m.migrations,
            m.speedup_over(&results[0]),
        );
    }
}
