//! Space-domain vs time-domain instruction reuse: SLICC vs STEPS.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example steps_vs_slicc [tpcc1|tpcc10|tpce]
//! ```
//!
//! §6 of the paper contrasts SLICC with STEPS (Harizopoulos & Ailamaki):
//! both exploit the code commonality of same-type transactions, but
//! STEPS context-switches teammates on ONE core so they reuse each
//! chunk in the *time* domain, while SLICC migrates threads over many
//! cores so the footprint lives in the *space* domain. This example runs
//! both (STEPS re-created with SLICC's own chunk-boundary detector as
//! the switch trigger) and shows why the paper argues for space: STEPS
//! matches or beats SLICC on instruction misses but pays with data-cache
//! pile-up and serialized execution.

use slicc_sim::{RunMetrics, RunRequest, Runner, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};

fn pick_workload() -> Workload {
    match std::env::args().nth(1).as_deref() {
        Some("tpcc10") => Workload::TpcC10,
        Some("tpce") => Workload::TpcE,
        _ => Workload::TpcC1,
    }
}

fn row(m: &RunMetrics, base: &RunMetrics) {
    println!(
        "{:<9} {:>7.1} {:>7.1} {:>11} {:>9.2}x",
        m.mode,
        m.i_mpki(),
        m.d_mpki(),
        m.migrations + m.context_switches,
        m.speedup_over(base),
    );
}

fn main() {
    let point = RunRequest::new(pick_workload(), TraceScale::small(), SimConfig::paper_baseline());
    println!("workload: {}\n", point.spec().name);
    println!("{:<9} {:>7} {:>7} {:>11} {:>10}", "mode", "I-MPKI", "D-MPKI", "moves", "speedup");

    // Three independent points, fanned across host cores.
    let results = Runner::with_default_parallelism().run_metrics(&[
        point.clone(),
        point.clone().with_mode(SchedulerMode::Steps),
        point.clone().with_mode(SchedulerMode::SliccSw),
    ]);
    let [base, steps, slicc] = &results[..] else {
        unreachable!("three requests produce three results");
    };
    row(base, base);
    row(steps, base);
    row(slicc, base);

    println!();
    println!(
        "STEPS reuses chunks in time ({} context switches on one core per team);",
        steps.context_switches
    );
    println!(
        "SLICC reuses them in space ({} migrations over {:.1} cores/thread).",
        slicc.migrations, slicc.mean_cores_per_thread
    );
    println!(
        "Instruction misses: STEPS {:.1} vs SLICC {:.1} MPKI; end-to-end: {:.2}x vs {:.2}x.",
        steps.i_mpki(),
        slicc.i_mpki(),
        steps.speedup_over(base),
        slicc.speedup_over(base),
    );
}
