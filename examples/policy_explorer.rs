//! Policy explorer: replacement policies vs thread migration.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example policy_explorer [tpcc1|tpcc10|tpce|mapreduce]
//! ```
//!
//! §2.1.2 of the paper shows that smarter replacement/insertion policies
//! (LIP/BIP/DIP and the RRIP family) recover only a fraction of the
//! instruction misses that a larger cache — or SLICC — eliminates. This
//! example reproduces that comparison on one workload: every policy on
//! the baseline machine, then SLICC-SW on plain LRU, which beats them
//! all.

use slicc_cache::PolicyKind;
use slicc_sim::{RunRequest, Runner, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};

fn pick_workload() -> Workload {
    match std::env::args().nth(1).as_deref() {
        Some("tpcc10") => Workload::TpcC10,
        Some("tpce") => Workload::TpcE,
        Some("mapreduce") => Workload::MapReduce,
        _ => Workload::TpcC1,
    }
}

fn main() {
    let point =
        RunRequest::new(pick_workload(), TraceScale::small(), SimConfig::paper_baseline());
    println!("workload: {}\n", point.spec().name);
    println!("{:<22} {:>8} {:>10} {:>9}", "configuration", "I-MPKI", "cycles", "speedup");

    // Every policy plus the SLICC-SW point: nine independent simulations,
    // fanned across host cores. The LRU point doubles as the baseline.
    let mut reqs = vec![point.clone()];
    reqs.extend(PolicyKind::ALL.map(|policy| {
        RunRequest::new(point.workload, TraceScale::small(), SimConfig::paper_baseline().with_policy(policy))
    }));
    reqs.push(point.clone().with_mode(SchedulerMode::SliccSw));
    let results = Runner::with_default_parallelism().run_metrics(&reqs);
    let base = &results[0];
    for (policy, m) in PolicyKind::ALL.iter().zip(&results[1..]) {
        println!(
            "{:<22} {:>8.2} {:>10} {:>8.2}x",
            format!("baseline + {policy}"),
            m.i_mpki(),
            m.cycles,
            m.speedup_over(base)
        );
    }
    let slicc = results.last().expect("SLICC-SW result");
    println!(
        "{:<22} {:>8.2} {:>10} {:>8.2}x",
        "SLICC-SW (LRU)",
        slicc.i_mpki(),
        slicc.cycles,
        slicc.speedup_over(base)
    );
    println!(
        "\nReplacement policies recover a few percent; migration recovers {:.0}% of instruction misses.",
        100.0 * (1.0 - slicc.i_mpki() / base.i_mpki())
    );
}
