#!/usr/bin/env bash
# The full CI gate: release build, test suite, and lint-clean clippy.
# Run from anywhere; operates on the workspace that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Bench smoke: one sample per point keeps it cheap while proving the
# harness still runs end to end, and the tracked baseline must parse.
cargo bench --bench baseline -- --quick
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_sim.json"))
assert doc["schema"] == 1, "unknown BENCH_sim.json schema"
assert doc["sim_ips_speedup"] > 0, "tracked baseline lacks a speedup figure"
print(f"BENCH_sim.json ok (tracked speedup {doc['sim_ips_speedup']}x)")
EOF
