#!/usr/bin/env bash
# The full CI gate: release build, test suite, and lint-clean clippy.
# Run from anywhere; operates on the workspace that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Obs-off lane: with event capture compiled out the golden digests must
# still be byte-identical — observability is zero-cost AND zero-effect.
cargo test -p slicc-sim --no-default-features --test golden -q

# Obs smoke: an observed tiny run must emit valid Chrome trace JSON and
# an interval series whose CSV/JSON agree on the epoch count.
obs_prefix="$(mktemp -u /tmp/slicc-ci-obs.XXXXXX)"
trap 'rm -f "$obs_prefix".*' EXIT
./target/release/slicc --scale tiny --mode slicc --progress quiet \
    --obs-out "$obs_prefix" > /dev/null
python3 - "$obs_prefix" <<'EOF'
import csv, json, sys
prefix = sys.argv[1]
trace = json.load(open(prefix + ".trace.json"))
assert trace["traceEvents"], "trace must contain events"
intervals = json.load(open(prefix + ".intervals.json"))
rows = list(csv.DictReader(open(prefix + ".intervals.csv")))
assert len(rows) == len(intervals["epochs"]) > 0, "CSV/JSON epoch mismatch"
print(f"obs artifacts ok ({len(trace['traceEvents'])} trace events, "
      f"{len(rows)} epochs)")
EOF

# Bench smoke: one sample per point keeps it cheap while proving the
# harness still runs end to end, and the tracked baseline must parse.
cargo bench --bench baseline -- --quick
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_sim.json"))
assert doc["schema"] == 1, "unknown BENCH_sim.json schema"
assert doc["sim_ips_speedup"] > 0, "tracked baseline lacks a speedup figure"
print(f"BENCH_sim.json ok (tracked speedup {doc['sim_ips_speedup']}x)")
EOF
