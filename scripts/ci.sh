#!/usr/bin/env bash
# The full CI gate: release build, test suite, and lint-clean clippy.
# Run from anywhere; operates on the workspace that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# API-freeze lane: the PR-6 engine shims are gone — the removed entry
# points may not exist anywhere in-tree, by any name, even as a
# definition. Migrate to RunSession (or the Runner/SimService above it).
if grep -rnE '\b(try_run_observed|try_run_controlled|try_new_observed|set_control)\b' \
    --include='*.rs' crates tests examples; then
    echo "removed engine entry points resurfaced in-tree: use RunSession" >&2
    exit 1
fi
# The PR-8 rename: `threads_per_point` survives only as the deprecated
# config-builder alias and its CLI flag — one release, two files.
if grep -rn 'threads_per_point' --include='*.rs' crates tests examples \
    | grep -vE '^crates/sim/src/(config|bin/slicc)\.rs:'; then
    echo "threads_per_point leaked outside its deprecation shims: use decode_threads" >&2
    exit 1
fi
echo "API-freeze lane ok (removed entry points stay removed)"

# Obs-off lane: with event capture compiled out the golden digests must
# still be byte-identical — observability is zero-cost AND zero-effect.
cargo test -p slicc-sim --no-default-features --test golden -q

# Obs smoke: an observed tiny run must emit valid Chrome trace JSON and
# an interval series whose CSV/JSON agree on the epoch count.
obs_prefix="$(mktemp -u /tmp/slicc-ci-obs.XXXXXX)"
trap 'rm -f "$obs_prefix".*' EXIT
./target/release/slicc --scale tiny --mode slicc --progress quiet \
    --obs-out "$obs_prefix" > /dev/null
python3 - "$obs_prefix" <<'EOF'
import csv, json, sys
prefix = sys.argv[1]
trace = json.load(open(prefix + ".trace.json"))
assert trace["traceEvents"], "trace must contain events"
intervals = json.load(open(prefix + ".intervals.json"))
rows = list(csv.DictReader(open(prefix + ".intervals.csv")))
assert len(rows) == len(intervals["epochs"]) > 0, "CSV/JSON epoch mismatch"
print(f"obs artifacts ok ({len(trace['traceEvents'])} trace events, "
      f"{len(rows)} epochs)")
EOF

# Chaos lane: the fault matrix (injected panics, stalls, I/O failures,
# torn checkpoint tails), deadline aborts, and cancellation drills.
cargo test -p slicc-sim --test chaos -q

# Service-chaos lane: the resource-governance drills by name — cache
# thrash under a tiny byte budget, stampede storms coalescing to one
# flight, overload shedding with recovery, and eviction racing coalesced
# waiters (DESIGN.md §12). Named explicitly so the governance drills
# run (and fail) as their own lane.
cargo test -p slicc-sim --test chaos -q -- \
    cache_thrash stampede_storm overload_shedding eviction_racing cli_zero_queue_limit

# Pressure smoke: a JSON-progress run must emit at least one pressure
# snapshot carrying the full governance surface.
pressure_log="$(mktemp /tmp/slicc-ci-pressure.XXXXXX)"
./target/release/slicc --scale tiny --progress json --cache-bytes 4096 \
    > /dev/null 2> "$pressure_log"
python3 - "$pressure_log" <<'EOF'
import json, sys
snapshots = [json.loads(line) for line in open(sys.argv[1])
             if '"pressure"' in line]
assert snapshots, "no pressure snapshot in --progress json output"
for field in ("queue_depth", "inflight", "cache_bytes", "cache_budget",
              "cache_entries", "shed"):
    assert field in snapshots[-1], f"pressure snapshot lacks {field}"
assert snapshots[-1]["cache_budget"] == 4096, "--cache-bytes must reach the snapshot"
print(f"pressure smoke ok ({len(snapshots)} snapshot(s))")
EOF
rm -f "$pressure_log"

# SIGINT-resume smoke: interrupt a checkpointed sweep after its first
# point lands, expect a graceful 130 (or a photo-finish 0), then resume
# and require the banked point to be served without re-simulation.
ckpt="$(mktemp -u /tmp/slicc-ci-sigint.XXXXXX.ckpt)"
./target/release/slicc --scale small --baseline-compare --progress quiet \
    --checkpoint "$ckpt" > /dev/null &
sweep_pid=$!
for _ in $(seq 1 600); do
    size=$(stat -c %s "$ckpt" 2>/dev/null || echo 0)
    if [ "$size" -gt 12 ]; then break; fi
    sleep 0.2
done
kill -INT "$sweep_pid" 2>/dev/null || true
set +e
wait "$sweep_pid"
sweep_status=$?
set -e
if [ "$sweep_status" -ne 130 ] && [ "$sweep_status" -ne 0 ]; then
    echo "SIGINT smoke: expected exit 130 (or 0 if the sweep won the race), got $sweep_status" >&2
    exit 1
fi
resume_log="$(mktemp /tmp/slicc-ci-resume.XXXXXX)"
./target/release/slicc --scale small --baseline-compare --progress plain \
    --checkpoint "$ckpt" > /dev/null 2> "$resume_log"
grep -q "point(s) loaded" "$resume_log" || {
    echo "SIGINT smoke: resume did not load the banked point(s)" >&2
    cat "$resume_log" >&2
    exit 1
}
echo "SIGINT-resume smoke ok (interrupt exit $sweep_status)"
rm -f "$ckpt" "$resume_log"

# Scaling smoke: the parallel point must be report-identical to the
# sequential one end to end — same CLI, same stdout, only the wall
# clock (the one "sim throughput" line, dropped below) may differ. Any
# other diff means the lanes changed simulated results, which the whole
# DESIGN.md §13 contract forbids.
p1_out="$(mktemp /tmp/slicc-ci-p1.XXXXXX)"
p4_out="$(mktemp /tmp/slicc-ci-p4.XXXXXX)"
./target/release/slicc --scale tiny --progress quiet --point-threads 1 \
    | grep -v 'sim throughput' > "$p1_out"
./target/release/slicc --scale tiny --progress quiet --point-threads 4 \
    | grep -v 'sim throughput' > "$p4_out"
diff -u "$p1_out" "$p4_out" || {
    echo "scaling smoke: --point-threads 4 changed the simulated report" >&2
    exit 1
}
echo "scaling smoke ok (point-threads 1 and 4 reports identical)"
rm -f "$p1_out" "$p4_out"

# Bench smoke + rolling-baseline gate: one sample per point keeps the
# fresh measurement cheap while proving the harness runs end to end.
# The checked-in BENCH_history.json is append-only — one row per
# commit — so the baseline is the median aggregate sim-ips of the most
# recent rows (up to 5), which rides out single-row noise without any
# hand-curated before/after nesting. Three rules:
#   1. fresh aggregate sim-ips >= 90% of the rolling median,
#   2. the hot-path row — cache/access/LRU — at or under its
#      35 ns/iter budget (the pre-resilience level),
#   3. the recorded scaling row must show speedup-p4 >= 1.5x, but only
#      when it was recorded on a host with >= 4 CPUs — on starved CI
#      runners (this gate prints the waiver) parallel lanes have no
#      cores to run on and the recorded number is an honest <= 1x.
bench_now="$(mktemp /tmp/slicc-ci-bench.XXXXXX.json)"
cargo bench --bench baseline -- --quick --out "$bench_now"
python3 - "$bench_now" <<'EOF'
import json, statistics, sys
history = json.load(open("BENCH_history.json"))
assert isinstance(history, list) and history, "BENCH_history.json must be a non-empty array"
for row in history:
    for field in ("commit", "date", "host_cpus", "benches"):
        assert field in row, f"history row lacks {field}"
    for bench in row["benches"]:
        assert set(bench) == {"name", "value", "unit"}, f"malformed bench row {bench}"

def value(row, name):
    for bench in row["benches"]:
        if bench["name"] == name:
            return bench["value"]
    return None

now = json.load(open(sys.argv[1]))
failures = []

tail = [value(r, "aggregate_sim_ips") for r in history[-5:]]
tail = [v for v in tail if v is not None]
baseline = statistics.median(tail)
fresh = now["aggregate_sim_ips"]
if fresh < baseline * 0.90:
    failures.append(
        f"aggregate sim-ips {fresh / 1e6:.2f}M < 90% of rolling median "
        f"{baseline / 1e6:.2f}M (last {len(tail)} row(s))")

lru = now["micro_ns_per_iter"].get("cache/access/LRU")
if lru is None:
    failures.append("fresh measurement lacks the cache/access/LRU row")
elif lru > 35.0:
    failures.append(f"cache/access/LRU {lru} ns/iter over its 35 ns budget")

last = history[-1]
speedup = value(last, "scaling/speedup-p4")
if speedup is None:
    failures.append("latest history row lacks scaling/speedup-p4")
elif last["host_cpus"] >= 4:
    if speedup < 1.5:
        failures.append(
            f"scaling/speedup-p4 {speedup}x < 1.5x on a {last['host_cpus']}-CPU host")
else:
    print(f"scaling gate waived: recorded on a {last['host_cpus']}-CPU host "
          f"(speedup-p4 {speedup}x is an oversubscription number)")

if failures:
    print("bench gate failed:", file=sys.stderr)
    for f in failures:
        print(f"  - {f}", file=sys.stderr)
    sys.exit(1)
print(f"bench gate ok (aggregate {fresh / 1e6:.2f}M sim-ips vs median "
      f"{baseline / 1e6:.2f}M, LRU {lru} ns/iter)")
EOF
rm -f "$bench_now"
