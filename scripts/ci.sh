#!/usr/bin/env bash
# The full CI gate: release build, test suite, and lint-clean clippy.
# Run from anywhere; operates on the workspace that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
