#!/usr/bin/env bash
# The full CI gate: release build, test suite, and lint-clean clippy.
# Run from anywhere; operates on the workspace that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# API-freeze lane: the PR-6 engine shims are gone — the removed entry
# points may not exist anywhere in-tree, by any name, even as a
# definition. Migrate to RunSession (or the Runner/SimService above it).
if grep -rnE '\b(try_run_observed|try_run_controlled|try_new_observed|set_control)\b' \
    --include='*.rs' crates tests examples; then
    echo "removed engine entry points resurfaced in-tree: use RunSession" >&2
    exit 1
fi
echo "API-freeze lane ok (removed entry points stay removed)"

# Obs-off lane: with event capture compiled out the golden digests must
# still be byte-identical — observability is zero-cost AND zero-effect.
cargo test -p slicc-sim --no-default-features --test golden -q

# Obs smoke: an observed tiny run must emit valid Chrome trace JSON and
# an interval series whose CSV/JSON agree on the epoch count.
obs_prefix="$(mktemp -u /tmp/slicc-ci-obs.XXXXXX)"
trap 'rm -f "$obs_prefix".*' EXIT
./target/release/slicc --scale tiny --mode slicc --progress quiet \
    --obs-out "$obs_prefix" > /dev/null
python3 - "$obs_prefix" <<'EOF'
import csv, json, sys
prefix = sys.argv[1]
trace = json.load(open(prefix + ".trace.json"))
assert trace["traceEvents"], "trace must contain events"
intervals = json.load(open(prefix + ".intervals.json"))
rows = list(csv.DictReader(open(prefix + ".intervals.csv")))
assert len(rows) == len(intervals["epochs"]) > 0, "CSV/JSON epoch mismatch"
print(f"obs artifacts ok ({len(trace['traceEvents'])} trace events, "
      f"{len(rows)} epochs)")
EOF

# Chaos lane: the fault matrix (injected panics, stalls, I/O failures,
# torn checkpoint tails), deadline aborts, and cancellation drills.
cargo test -p slicc-sim --test chaos -q

# Service-chaos lane: the resource-governance drills by name — cache
# thrash under a tiny byte budget, stampede storms coalescing to one
# flight, overload shedding with recovery, and eviction racing coalesced
# waiters (DESIGN.md §12). Named explicitly so the governance drills
# run (and fail) as their own lane.
cargo test -p slicc-sim --test chaos -q -- \
    cache_thrash stampede_storm overload_shedding eviction_racing cli_zero_queue_limit

# Pressure smoke: a JSON-progress run must emit at least one pressure
# snapshot carrying the full governance surface.
pressure_log="$(mktemp /tmp/slicc-ci-pressure.XXXXXX)"
./target/release/slicc --scale tiny --progress json --cache-bytes 4096 \
    > /dev/null 2> "$pressure_log"
python3 - "$pressure_log" <<'EOF'
import json, sys
snapshots = [json.loads(line) for line in open(sys.argv[1])
             if '"pressure"' in line]
assert snapshots, "no pressure snapshot in --progress json output"
for field in ("queue_depth", "inflight", "cache_bytes", "cache_budget",
              "cache_entries", "shed"):
    assert field in snapshots[-1], f"pressure snapshot lacks {field}"
assert snapshots[-1]["cache_budget"] == 4096, "--cache-bytes must reach the snapshot"
print(f"pressure smoke ok ({len(snapshots)} snapshot(s))")
EOF
rm -f "$pressure_log"

# SIGINT-resume smoke: interrupt a checkpointed sweep after its first
# point lands, expect a graceful 130 (or a photo-finish 0), then resume
# and require the banked point to be served without re-simulation.
ckpt="$(mktemp -u /tmp/slicc-ci-sigint.XXXXXX.ckpt)"
./target/release/slicc --scale small --baseline-compare --progress quiet \
    --checkpoint "$ckpt" > /dev/null &
sweep_pid=$!
for _ in $(seq 1 600); do
    size=$(stat -c %s "$ckpt" 2>/dev/null || echo 0)
    if [ "$size" -gt 12 ]; then break; fi
    sleep 0.2
done
kill -INT "$sweep_pid" 2>/dev/null || true
set +e
wait "$sweep_pid"
sweep_status=$?
set -e
if [ "$sweep_status" -ne 130 ] && [ "$sweep_status" -ne 0 ]; then
    echo "SIGINT smoke: expected exit 130 (or 0 if the sweep won the race), got $sweep_status" >&2
    exit 1
fi
resume_log="$(mktemp /tmp/slicc-ci-resume.XXXXXX)"
./target/release/slicc --scale small --baseline-compare --progress plain \
    --checkpoint "$ckpt" > /dev/null 2> "$resume_log"
grep -q "point(s) loaded" "$resume_log" || {
    echo "SIGINT smoke: resume did not load the banked point(s)" >&2
    cat "$resume_log" >&2
    exit 1
}
echo "SIGINT-resume smoke ok (interrupt exit $sweep_status)"
rm -f "$ckpt" "$resume_log"

# Bench smoke: one sample per point keeps it cheap while proving the
# harness still runs end to end, and the tracked baseline must parse.
cargo bench --bench baseline -- --quick
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_sim.json"))
assert doc["schema"] == 1, "unknown BENCH_sim.json schema"
assert doc["sim_ips_speedup"] > 0, "tracked baseline lacks a speedup figure"
print(f"BENCH_sim.json ok (tracked speedup {doc['sim_ips_speedup']}x)")
EOF

# Bench-regression gate: the tracked BENCH_sim.json is a before/after
# document; the recorded "after" may not regress against its recorded
# "before" beyond noise. Three rules: aggregate sim-ips speedup >= 0.97,
# no *micro* row more than 10% slower than its before counterpart, and
# the dedicated hot-path row — cache/access/LRU — at or under its
# 35 ns/iter budget (the pre-resilience level).
#
# The 10% per-row rule applies only to sub-microsecond rows (the
# steady structure benches: cache and L2 access). The engine/tiny rows
# are single ~20 ms whole-engine wall-clock runs — far too noisy for a
# 10% gate (a flaky gate gets ignored, which is how the last
# regression slipped through) — and what they proxy is exactly what
# the aggregate-speedup rule already measures over 5-sample medians.
python3 - <<'EOF'
import json, sys
doc = json.load(open("BENCH_sim.json"))
after = doc["after"]
before = doc["before"]
# A re-benched file nests the previous before/after document whole;
# compare against its "after" side (the previous generation's result).
if "after" in before:
    before = before["after"]

failures = []
speedup = doc["sim_ips_speedup"]
if speedup < 0.97:
    failures.append(f"aggregate sim-ips speedup {speedup} < 0.97")

b_micro = before.get("micro_ns_per_iter", {})
a_micro = after.get("micro_ns_per_iter", {})
MICRO_NS_CEILING = 1_000.0  # see the lane comment: sub-us rows only
for name, a_ns in sorted(a_micro.items()):
    b_ns = b_micro.get(name)
    if b_ns and a_ns <= MICRO_NS_CEILING and a_ns > b_ns * 1.10:
        failures.append(f"micro {name}: {a_ns} ns/iter > 1.10x before ({b_ns})")

lru = a_micro.get("cache/access/LRU")
if lru is None:
    failures.append("micro cache/access/LRU row missing from BENCH_sim.json")
elif lru > 35.0:
    failures.append(f"cache/access/LRU {lru} ns/iter over its 35 ns budget")

if failures:
    print("bench-regression gate failed:", file=sys.stderr)
    for f in failures:
        print(f"  - {f}", file=sys.stderr)
    sys.exit(1)
print(f"bench-regression gate ok (speedup {speedup}x, LRU {lru} ns/iter)")
EOF
