//! On-chip interconnect model for the SLICC simulator.
//!
//! Table 2 of the paper specifies a **4×4 2D torus with 1-cycle hop
//! latency** connecting 16 cores and the 16 banks of the shared NUCA L2.
//! This crate provides:
//!
//! - [`Torus`]: the topology — coordinates, wrap-around hop distances, and
//!   transfer latencies;
//! - [`NocStats`]: message counters, including the broadcast counter
//!   behind the paper's BPKI metric (§5.8).
//!
//! # Example
//!
//! ```
//! use slicc_noc::Torus;
//! use slicc_common::CoreId;
//!
//! let noc = Torus::new(4, 4);
//! // Opposite corners of a 4x4 torus are 2+2 wrap-around hops apart.
//! assert_eq!(noc.hops(CoreId::new(0), CoreId::new(15)), 2);
//! ```

pub mod stats;
pub mod torus;

pub use stats::NocStats;
pub use torus::Torus;
