//! Interconnect message accounting.
//!
//! §5.8 reports SLICC's remote-cache search traffic as **BPKI** —
//! broadcasts per kilo-instruction — and finds it very low (0.28–2.2
//! depending on variant and workload). These counters feed that metric.

/// Message counters for one simulated interconnect.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Point-to-point messages (L1 miss requests/responses, write-backs,
    /// invalidations, context transfers).
    pub unicasts: u64,
    /// Broadcast messages (SLICC remote segment searches and idle-core
    /// queries).
    pub broadcasts: u64,
    /// Total hop-traversals by unicast messages (for utilization
    /// estimates).
    pub unicast_hops: u64,
}

impl NocStats {
    /// Records one point-to-point message covering `hops` links.
    pub fn record_unicast(&mut self, hops: u32) {
        self.unicasts += 1;
        self.unicast_hops += hops as u64;
    }

    /// Records one broadcast.
    pub fn record_broadcast(&mut self) {
        self.broadcasts += 1;
    }

    /// Broadcasts per kilo-instruction given the run's instruction count;
    /// zero when no instructions were executed.
    pub fn bpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            1000.0 * self.broadcasts as f64 / instructions as f64
        }
    }

    /// Mean hops per unicast; zero when no unicasts were recorded.
    pub fn mean_unicast_hops(&self) -> f64 {
        if self.unicasts == 0 {
            0.0
        } else {
            self.unicast_hops as f64 / self.unicasts as f64
        }
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        *self = NocStats::default();
    }
}

// Aggregation across routers/cores goes through the workspace-wide `Merge`
// trait (formerly an inherent `merge` method).
slicc_common::impl_merge_counters!(NocStats { unicasts, broadcasts, unicast_hops });

#[cfg(test)]
mod tests {
    use super::*;
    use slicc_common::Merge;

    #[test]
    fn bpki_matches_definition() {
        let mut s = NocStats::default();
        for _ in 0..28 {
            s.record_broadcast();
        }
        // 28 broadcasts over 100K instructions = 0.28 BPKI (the paper's
        // SLICC-SW TPC-C figure).
        assert!((s.bpki(100_000) - 0.28).abs() < 1e-12);
    }

    #[test]
    fn bpki_zero_instructions() {
        let s = NocStats { broadcasts: 5, ..Default::default() };
        assert_eq!(s.bpki(0), 0.0);
    }

    #[test]
    fn unicast_hop_accounting() {
        let mut s = NocStats::default();
        s.record_unicast(2);
        s.record_unicast(4);
        assert_eq!(s.unicasts, 2);
        assert_eq!(s.unicast_hops, 6);
        assert!((s.mean_unicast_hops() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = NocStats::default();
        a.record_unicast(1);
        let mut b = NocStats::default();
        b.record_broadcast();
        b.record_unicast(3);
        a.merge(&b);
        assert_eq!(a.unicasts, 2);
        assert_eq!(a.broadcasts, 1);
        assert_eq!(a.unicast_hops, 4);
        a.reset();
        assert_eq!(a, NocStats::default());
    }

    #[test]
    fn mean_hops_zero_when_empty() {
        assert_eq!(NocStats::default().mean_unicast_hops(), 0.0);
    }
}
