//! The 2D torus topology.

use slicc_common::{Cycle, CoreId};

/// A `cols x rows` 2D torus of nodes, numbered row-major: node `i` sits at
/// `(i % cols, i / cols)`. Links wrap around in both dimensions.
///
/// Every core is co-located with one L2 bank at the same node (Table 2's
/// 16-bank NUCA L2 on the 4×4 torus), so core-to-bank latency uses the
/// same hop metric as core-to-core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    cols: u32,
    rows: u32,
    hop_latency: Cycle,
    router_latency: Cycle,
}

impl Torus {
    /// Creates a torus with the paper's 1-cycle hop latency and no extra
    /// per-message router overhead.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u32, rows: u32) -> Self {
        Torus::with_latencies(cols, rows, 1, 0)
    }

    /// Creates a torus with explicit per-hop and per-message router
    /// latencies (for NoC sensitivity ablations).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_latencies(cols: u32, rows: u32, hop_latency: Cycle, router_latency: Cycle) -> Self {
        assert!(cols > 0 && rows > 0, "torus dimensions must be positive");
        Torus { cols, rows, hop_latency, router_latency }
    }

    /// The paper's 16-core configuration: a 4×4 torus (Table 2).
    pub fn paper_4x4() -> Self {
        Torus::new(4, 4)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        (self.cols * self.rows) as usize
    }

    /// Grid width.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Grid height.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The `(x, y)` coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: CoreId) -> (u32, u32) {
        let i = node.index() as u32;
        assert!(i < self.cols * self.rows, "node {node} out of range for {}x{} torus", self.cols, self.rows);
        (i % self.cols, i / self.cols)
    }

    /// The node at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn node_at(&self, x: u32, y: u32) -> CoreId {
        assert!(x < self.cols && y < self.rows, "({x},{y}) out of range");
        CoreId::new((y * self.cols + x) as u16)
    }

    /// Minimal wrap-around distance along one dimension.
    fn dim_distance(delta: u32, size: u32) -> u32 {
        delta.min(size - delta)
    }

    /// Minimal hop count between two nodes.
    pub fn hops(&self, a: CoreId, b: CoreId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        Torus::dim_distance(ax.abs_diff(bx), self.cols) + Torus::dim_distance(ay.abs_diff(by), self.rows)
    }

    /// One-way transfer latency between two nodes.
    pub fn latency(&self, a: CoreId, b: CoreId) -> Cycle {
        self.router_latency + self.hops(a, b) as Cycle * self.hop_latency
    }

    /// Round-trip latency between two nodes (request + response).
    pub fn round_trip(&self, a: CoreId, b: CoreId) -> Cycle {
        2 * self.latency(a, b)
    }

    /// Latency for a broadcast from `src` to every other node: the time
    /// until the farthest node has received it.
    pub fn broadcast_latency(&self, src: CoreId) -> Cycle {
        (0..self.num_nodes() as u16)
            .map(|i| self.latency(src, CoreId::new(i)))
            .max()
            .unwrap_or(0)
    }

    /// The maximum hop count between any two nodes (network diameter).
    pub fn diameter(&self) -> u32 {
        self.cols / 2 + self.rows / 2
    }

    /// The node whose co-located L2 bank serves `bank_index`
    /// (identity mapping: bank *i* lives at node *i*).
    pub fn bank_home(&self, bank_index: usize) -> CoreId {
        assert!(bank_index < self.num_nodes(), "bank {bank_index} out of range");
        CoreId::new(bank_index as u16)
    }

    /// The deadlock-free dimension-ordered (XY) route from `a` to `b`,
    /// taking the shorter wrap-around direction in each dimension. The
    /// returned path includes both endpoints; its length is
    /// `hops(a, b) + 1`.
    pub fn route(&self, a: CoreId, b: CoreId) -> Vec<CoreId> {
        let (mut x, mut y) = self.coords(a);
        let (bx, by) = self.coords(b);
        let mut path = vec![a];
        let step = |cur: u32, dst: u32, size: u32| -> u32 {
            // +1 or -1 (mod size), whichever is the shorter way round.
            let fwd = (dst + size - cur) % size;
            let bwd = (cur + size - dst) % size;
            if fwd <= bwd {
                (cur + 1) % size
            } else {
                (cur + size - 1) % size
            }
        };
        while x != bx {
            x = step(x, bx, self.cols);
            path.push(self.node_at(x, y));
        }
        while y != by {
            y = step(y, by, self.rows);
            path.push(self.node_at(x, y));
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Torus {
        Torus::paper_4x4()
    }

    #[test]
    fn coords_roundtrip() {
        let noc = t();
        for i in 0..16u16 {
            let c = CoreId::new(i);
            let (x, y) = noc.coords(c);
            assert_eq!(noc.node_at(x, y), c);
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let noc = t();
        for i in 0..16u16 {
            assert_eq!(noc.hops(CoreId::new(i), CoreId::new(i)), 0);
        }
    }

    #[test]
    fn neighbours_are_one_hop() {
        let noc = t();
        assert_eq!(noc.hops(CoreId::new(0), CoreId::new(1)), 1);
        assert_eq!(noc.hops(CoreId::new(0), CoreId::new(4)), 1);
        // Wrap-around neighbours.
        assert_eq!(noc.hops(CoreId::new(0), CoreId::new(3)), 1);
        assert_eq!(noc.hops(CoreId::new(0), CoreId::new(12)), 1);
    }

    #[test]
    fn distance_is_symmetric() {
        let noc = t();
        for a in 0..16u16 {
            for b in 0..16u16 {
                assert_eq!(noc.hops(CoreId::new(a), CoreId::new(b)), noc.hops(CoreId::new(b), CoreId::new(a)));
            }
        }
    }

    #[test]
    fn triangle_inequality() {
        let noc = t();
        for a in 0..16u16 {
            for b in 0..16u16 {
                for c in 0..16u16 {
                    let (a, b, c) = (CoreId::new(a), CoreId::new(b), CoreId::new(c));
                    assert!(noc.hops(a, c) <= noc.hops(a, b) + noc.hops(b, c));
                }
            }
        }
    }

    #[test]
    fn diameter_of_4x4_is_4() {
        let noc = t();
        assert_eq!(noc.diameter(), 4);
        let max = (0..16u16)
            .flat_map(|a| (0..16u16).map(move |b| (a, b)))
            .map(|(a, b)| noc.hops(CoreId::new(a), CoreId::new(b)))
            .max()
            .unwrap();
        assert_eq!(max, 4);
    }

    #[test]
    fn latency_scales_with_hops_and_router_overhead() {
        let noc = Torus::with_latencies(4, 4, 2, 5);
        let (a, b) = (CoreId::new(0), CoreId::new(5)); // 2 hops
        assert_eq!(noc.hops(a, b), 2);
        assert_eq!(noc.latency(a, b), 5 + 2 * 2);
        assert_eq!(noc.round_trip(a, b), 18);
    }

    #[test]
    fn broadcast_reaches_farthest_node() {
        let noc = t();
        assert_eq!(noc.broadcast_latency(CoreId::new(0)), 4);
    }

    #[test]
    fn bank_home_is_identity() {
        let noc = t();
        assert_eq!(noc.bank_home(7), CoreId::new(7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        t().coords(CoreId::new(16));
    }

    #[test]
    fn route_is_minimal_and_connected() {
        let noc = t();
        for a in 0..16u16 {
            for b in 0..16u16 {
                let (a, b) = (CoreId::new(a), CoreId::new(b));
                let path = noc.route(a, b);
                assert_eq!(path.len() as u32, noc.hops(a, b) + 1, "{a}->{b}");
                assert_eq!(path[0], a);
                assert_eq!(*path.last().unwrap(), b);
                for w in path.windows(2) {
                    assert_eq!(noc.hops(w[0], w[1]), 1, "route must use links: {w:?}");
                }
            }
        }
    }

    #[test]
    fn route_prefers_wraparound_when_shorter() {
        let noc = t();
        // (0,0) -> (3,0): one wrap-around hop, not three forward hops.
        let path = noc.route(CoreId::new(0), CoreId::new(3));
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn non_square_torus() {
        let noc = Torus::new(8, 2);
        assert_eq!(noc.num_nodes(), 16);
        assert_eq!(noc.hops(CoreId::new(0), CoreId::new(7)), 1); // wrap in x
        assert_eq!(noc.hops(CoreId::new(0), CoreId::new(12)), 1 + 4);
    }
}
