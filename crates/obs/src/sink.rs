//! The event sink: per-core rings behind one recording façade.
//!
//! Zero-cost discipline, two layers deep:
//!
//! - **Compile time** — with the `capture` feature off,
//!   [`EventSink::is_enabled`] is a constant `false` and every record
//!   method compiles to nothing, so the simulator's instrumentation
//!   branches (`if sink.is_enabled() { ... }`) fold away entirely and
//!   the obs-off build is byte-identical in behaviour to a build that
//!   never heard of observability.
//! - **Run time** — with the feature on but the sink constructed
//!   [`EventSink::disabled`], `is_enabled` is one load+test, which is
//!   all a non-observed run ever pays.
//!
//! High-frequency events (cache misses) additionally pass through a
//! deterministic 1-in-N sampler ([`EventSink::record_sampled`]): the
//! counter is per core and advances on every *eligible* event, so the
//! same simulation records the same sample set on every host.

use crate::event::{EventKind, TraceEvent};
use crate::ring::EventRing;
use slicc_common::{CoreId, Cycle};

/// Records typed sim-time events into per-core overwrite-oldest rings.
#[derive(Clone, Debug)]
pub struct EventSink {
    rings: Vec<EventRing>,
    sample_every: u64,
    /// Per-core count of sample-eligible events seen so far.
    sample_seen: Vec<u64>,
    enabled: bool,
}

impl EventSink {
    /// A sink that records nothing (the default for every simulation that
    /// did not ask for tracing).
    pub fn disabled() -> Self {
        EventSink { rings: Vec::new(), sample_every: 1, sample_seen: Vec::new(), enabled: false }
    }

    /// A recording sink: one ring of `capacity` events per core, keeping
    /// every 1-in-`sample_every` high-frequency event (clamped ≥ 1).
    pub fn new(cores: usize, capacity: usize, sample_every: u64) -> Self {
        EventSink {
            rings: (0..cores).map(|_| EventRing::new(capacity)).collect(),
            sample_every: sample_every.max(1),
            sample_seen: vec![0; cores],
            enabled: true,
        }
    }

    /// Whether recording is on. A constant `false` when the crate is
    /// built without the `capture` feature, so callers' instrumentation
    /// branches disappear at compile time.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        cfg!(feature = "capture") && self.enabled
    }

    /// Records one event unconditionally (migrations, thread lifecycle,
    /// watchdog — the rare, individually meaningful ones).
    #[inline]
    pub fn record(&mut self, core: CoreId, cycle: Cycle, kind: EventKind) {
        #[cfg(feature = "capture")]
        if self.enabled {
            self.rings[core.index()].push(TraceEvent { core, cycle, kind });
        }
        #[cfg(not(feature = "capture"))]
        let _ = (core, cycle, kind);
    }

    /// Records one high-frequency event through the deterministic 1-in-N
    /// sampler: the first eligible event on each core is kept, then every
    /// `sample_every`-th after it. Returns whether this event was kept,
    /// so companion events (a miss's stall) can ride the same decision.
    #[inline]
    pub fn record_sampled(&mut self, core: CoreId, cycle: Cycle, kind: EventKind) -> bool {
        #[cfg(feature = "capture")]
        if self.enabled {
            let seen = &mut self.sample_seen[core.index()];
            let keep = (*seen).is_multiple_of(self.sample_every);
            *seen += 1;
            if keep {
                self.rings[core.index()].push(TraceEvent { core, cycle, kind });
            }
            return keep;
        }
        #[cfg(not(feature = "capture"))]
        let _ = (core, cycle, kind);
        false
    }

    /// The configured 1-in-N sampling period.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Events overwritten across all rings (ring capacity exceeded).
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(EventRing::dropped).sum()
    }

    /// Events recorded across all rings, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.rings.iter().map(EventRing::total_recorded).sum()
    }

    /// All held events, merged across cores into one deterministic
    /// timeline: ascending cycle, ties broken by core id then per-core
    /// record order.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        let events = self.snapshot();
        self.rings = Vec::new();
        self.sample_seen = Vec::new();
        self.enabled = false;
        events
    }

    /// A non-consuming copy of [`EventSink::drain`]'s timeline.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut keyed: Vec<(Cycle, usize, usize, TraceEvent)> = Vec::new();
        for (c, ring) in self.rings.iter().enumerate() {
            for (pos, ev) in ring.iter().enumerate() {
                keyed.push((ev.cycle, c, pos, *ev));
            }
        }
        keyed.sort_by_key(|&(cycle, core, pos, _)| (cycle, core, pos));
        keyed.into_iter().map(|(_, _, _, ev)| ev).collect()
    }

    /// The most recent `k` events of the merged timeline (for diagnostic
    /// snapshots: "what was the machine doing when it hung?").
    pub fn recent(&self, k: usize) -> Vec<TraceEvent> {
        let all = self.snapshot();
        let skip = all.len().saturating_sub(k);
        all[skip..].to_vec()
    }

    /// Lends one core's ring out as a [`CoreSink`], leaving an empty
    /// placeholder behind. The engine checks a core's ring out for the
    /// duration of one speculated private segment so a shard lane can
    /// record events without touching the shared sink; [`EventSink::put_core`]
    /// restores it. While a ring is lent, [`EventSink::drain`]/
    /// [`EventSink::snapshot`] see only the placeholder for that core —
    /// callers put every ring back before draining.
    pub fn take_core(&mut self, core: CoreId) -> CoreSink {
        if !self.is_enabled() {
            return CoreSink::disabled();
        }
        CoreSink {
            ring: std::mem::replace(&mut self.rings[core.index()], EventRing::new(0)),
            enabled: true,
        }
    }

    /// Restores a ring lent by [`EventSink::take_core`]. A disabled lent
    /// sink (from a disabled parent) restores nothing.
    pub fn put_core(&mut self, core: CoreId, lent: CoreSink) {
        if self.is_enabled() && lent.enabled {
            self.rings[core.index()] = lent.ring;
        }
    }
}

/// One core's event ring, checked out of an [`EventSink`] for the
/// duration of a speculated private segment. Only unconditional records
/// pass through here (segment boundaries); the sampled high-frequency
/// events all originate from misses, which by construction never occur
/// inside a private segment.
#[derive(Debug)]
pub struct CoreSink {
    ring: EventRing,
    enabled: bool,
}

impl CoreSink {
    /// A sink that records nothing.
    pub fn disabled() -> Self {
        CoreSink { ring: EventRing::new(0), enabled: false }
    }

    /// Whether recording is on; a constant `false` without the `capture`
    /// feature, exactly like [`EventSink::is_enabled`].
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        cfg!(feature = "capture") && self.enabled
    }

    /// Records one event unconditionally into the lent ring.
    #[inline]
    pub fn record(&mut self, core: CoreId, cycle: Cycle, kind: EventKind) {
        #[cfg(feature = "capture")]
        if self.enabled {
            self.ring.push(TraceEvent { core, cycle, kind });
        }
        #[cfg(not(feature = "capture"))]
        let _ = (core, cycle, kind);
    }
}

#[cfg(all(test, feature = "capture"))]
mod tests {
    use super::*;
    use crate::event::{MissKind, MissLevel};

    fn miss() -> EventKind {
        EventKind::Miss { level: MissLevel::L1I, kind: MissKind::Fetch, class: None }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = EventSink::disabled();
        assert!(!s.is_enabled());
        s.record(CoreId::new(0), 1, miss());
        assert!(!s.record_sampled(CoreId::new(0), 2, miss()));
        assert!(s.drain().is_empty());
    }

    #[test]
    fn sampling_keeps_first_then_every_nth_deterministically() {
        let run = || {
            let mut s = EventSink::new(1, 64, 4);
            for cycle in 0..10 {
                s.record_sampled(CoreId::new(0), cycle, miss());
            }
            s.drain()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "sampling must be deterministic");
        let cycles: Vec<u64> = a.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 4, 8], "first eligible event, then every 4th");
    }

    #[test]
    fn merged_timeline_is_cycle_ordered_with_core_tiebreak() {
        let mut s = EventSink::new(2, 8, 1);
        s.record(CoreId::new(1), 5, miss());
        s.record(CoreId::new(0), 5, miss());
        s.record(CoreId::new(0), 2, miss());
        let timeline = s.snapshot();
        let keys: Vec<(u64, u16)> = timeline.iter().map(|e| (e.cycle, e.core.raw())).collect();
        assert_eq!(keys, vec![(2, 0), (5, 0), (5, 1)]);
        assert_eq!(s.recent(2).len(), 2);
        assert_eq!(s.recent(2)[1], timeline[2]);
    }
}
