//! The typed sim-time event vocabulary.
//!
//! Events are small `Copy` values — a core id, a cycle stamp, and a
//! fixed-size payload — so recording one is a couple of stores into a
//! preallocated ring ([`crate::EventRing`]), never an allocation.

use slicc_common::{CoreId, Cycle};

/// Why a migration chose its target core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationReason {
    /// The remote segment search found a core already holding the code.
    Matched,
    /// No match; an idle core was taken instead.
    Idle,
}

impl MigrationReason {
    /// Short label for exporters.
    pub fn name(self) -> &'static str {
        match self {
            MigrationReason::Matched => "matched",
            MigrationReason::Idle => "idle",
        }
    }
}

/// Which cache missed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissLevel {
    /// Instruction-side L1.
    L1I,
    /// Data-side L1.
    L1D,
}

impl MissLevel {
    /// Short label for exporters.
    pub fn name(self) -> &'static str {
        match self {
            MissLevel::L1I => "L1I",
            MissLevel::L1D => "L1D",
        }
    }
}

/// What kind of access missed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissKind {
    /// Instruction fetch.
    Fetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl MissKind {
    /// Short label for exporters.
    pub fn name(self) -> &'static str {
        match self {
            MissKind::Fetch => "fetch",
            MissKind::Load => "load",
            MissKind::Store => "store",
        }
    }
}

/// Hill & Smith's 3C miss taxonomy, mirrored here so the event model does
/// not depend on the cache crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreeC {
    /// First-ever reference to the block.
    Compulsory,
    /// Lost to limited associativity.
    Conflict,
    /// The working set exceeds the capacity.
    Capacity,
}

impl ThreeC {
    /// Short label for exporters.
    pub fn name(self) -> &'static str {
        match self {
            ThreeC::Compulsory => "compulsory",
            ThreeC::Conflict => "conflict",
            ThreeC::Capacity => "capacity",
        }
    }
}

/// The event payload: what happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A thread started (or resumed after migration) on the core.
    ThreadStart {
        /// Raw thread id.
        thread: u32,
    },
    /// A thread ran its trace to completion on the core.
    ThreadComplete {
        /// Raw thread id.
        thread: u32,
    },
    /// The Figure-5 migration loop moved the running thread away.
    Migration {
        /// Raw thread id.
        thread: u32,
        /// Source core (also the event's core).
        from: CoreId,
        /// Destination core.
        to: CoreId,
        /// Matched remote segment vs. idle-core fallback.
        reason: MigrationReason,
    },
    /// A STEPS-style context switch rotated the running thread to the
    /// back of its own core's queue.
    ContextSwitch {
        /// Raw thread id.
        thread: u32,
    },
    /// A cache miss (sampled: see [`crate::EventSink::record_sampled`]).
    Miss {
        /// Which cache.
        level: MissLevel,
        /// Which access kind.
        kind: MissKind,
        /// 3C class, when classification is enabled in the simulator.
        class: Option<ThreeC>,
    },
    /// The miss-path stall the core just paid, in cycles.
    Stall {
        /// Stall length in cycles.
        cycles: u32,
    },
    /// The running thread's fetch stream crossed into a different code
    /// segment.
    SegmentBoundary {
        /// Raw thread id.
        thread: u32,
        /// The segment entered.
        segment: u32,
    },
    /// An idle core stole a queued thread from a congested victim.
    Steal {
        /// The core stolen from.
        victim: CoreId,
        /// The victim's queue depth before the steal.
        victim_queue: u32,
    },
    /// The forward-progress watchdog fired; the run is being aborted.
    WatchdogFired {
        /// Event-loop heap steps executed.
        heap_steps: u64,
    },
}

impl EventKind {
    /// Short label for exporters and summaries.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ThreadStart { .. } => "thread-start",
            EventKind::ThreadComplete { .. } => "thread-complete",
            EventKind::Migration { .. } => "migration",
            EventKind::ContextSwitch { .. } => "context-switch",
            EventKind::Miss { .. } => "miss",
            EventKind::Stall { .. } => "stall",
            EventKind::SegmentBoundary { .. } => "segment-boundary",
            EventKind::Steal { .. } => "steal",
            EventKind::WatchdogFired { .. } => "watchdog",
        }
    }
}

/// One recorded event: where, when, what.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The core the event happened on.
    pub core: CoreId,
    /// The core's local cycle at the event.
    pub cycle: Cycle,
    /// The payload.
    pub kind: EventKind,
}
