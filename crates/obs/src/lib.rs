//! Observability layer for the SLICC simulator (`slicc-obs`).
//!
//! Three concerns, one crate, zero cost when unused:
//!
//! - **Sim-time event tracing** — typed [`TraceEvent`]s (migrations,
//!   misses with 3C class, segment boundaries, thread lifecycle, stalls,
//!   steals, watchdog aborts) recorded into per-core overwrite-oldest
//!   rings by an [`EventSink`]. The sink is compile-time gated by the
//!   `capture` feature (off → every record path compiles to nothing and
//!   [`EventSink::is_enabled`] is a constant `false`) and runtime gated
//!   by construction (a [`EventSink::disabled`] sink costs one
//!   load+test per instrumentation site). High-frequency events pass a
//!   deterministic 1-in-N sampler.
//! - **Interval time-series** — an [`IntervalSampler`] snapshots
//!   cumulative counters ([`ObsCounters`]) every N simulated cycles into
//!   an [`IntervalSeries`] of per-epoch deltas (MPKI, IPC, migrations
//!   per epoch) whose sums reconcile exactly with end-of-run totals.
//! - **Exporters & telemetry** — Chrome `trace_event` JSON
//!   ([`chrome_trace_json`], loadable in Perfetto), CSV/JSON series
//!   rendering, and the [`Reporter`] trait with quiet / warnings-only /
//!   plain / JSON-lines implementations for runner progress.
//!
//! The crate depends only on `slicc-common`, so every layer of the
//! simulator can emit into it without dependency cycles.

pub mod chrome;
pub mod event;
pub mod progress;
pub mod ring;
pub mod series;
pub mod sink;

pub use chrome::{chrome_trace_json, TraceMeta};
pub use event::{EventKind, MigrationReason, MissKind, MissLevel, ThreeC, TraceEvent};
pub use progress::{
    JsonLinesReporter, PlainReporter, ProgressEvent, ProgressKind, QuietReporter, Reporter,
    WarningsOnlyReporter,
};
pub use ring::EventRing;
pub use series::{Epoch, IntervalSampler, IntervalSeries, ObsCounters};
pub use sink::{CoreSink, EventSink};

use slicc_common::Cycle;

/// What a simulation should observe. The disabled default is free; see
/// the crate docs for the cost ladder.
///
/// Deliberately **not** part of the run-cache key: observation never
/// changes simulated results, so an observed run and its unobserved twin
/// share a cache slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record the event trace.
    pub events: bool,
    /// Per-core event-ring capacity.
    pub event_capacity: usize,
    /// Keep 1 in N high-frequency (miss) events.
    pub sample_every: u64,
    /// Sample the interval series every this many simulated cycles
    /// (`None`: no series).
    pub epoch_cycles: Option<Cycle>,
}

impl ObsConfig {
    /// Default per-core ring capacity.
    pub const DEFAULT_EVENT_CAPACITY: usize = 16 * 1024;
    /// Default miss-sampling period.
    pub const DEFAULT_SAMPLE_EVERY: u64 = 64;
    /// Default epoch length when a series is requested without one.
    pub const DEFAULT_EPOCH_CYCLES: Cycle = 10_000;

    /// Observe nothing (the default).
    pub const fn disabled() -> Self {
        ObsConfig {
            events: false,
            event_capacity: Self::DEFAULT_EVENT_CAPACITY,
            sample_every: Self::DEFAULT_SAMPLE_EVERY,
            epoch_cycles: None,
        }
    }

    /// Whether any observation is requested.
    pub fn enabled(&self) -> bool {
        self.events || self.epoch_cycles.is_some()
    }

    /// Returns a copy with event tracing on.
    pub fn with_events(mut self) -> Self {
        self.events = true;
        self
    }

    /// Returns a copy with the per-core ring capacity set.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.events = true;
        self.event_capacity = capacity.max(1);
        self
    }

    /// Returns a copy with the miss-sampling period set.
    pub fn with_sample_every(mut self, n: u64) -> Self {
        self.sample_every = n.max(1);
        self
    }

    /// Returns a copy with interval sampling on at `epoch_cycles`.
    pub fn with_epochs(mut self, epoch_cycles: Cycle) -> Self {
        self.epoch_cycles = Some(epoch_cycles.max(1));
        self
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::disabled()
    }
}

/// What a simulation observed: the artifacts attached to a run result
/// when its [`ObsConfig`] asked for any.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Observation {
    /// The merged event timeline (cycle-ordered; empty unless
    /// [`ObsConfig::events`]).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrite (the trace kept the most recent
    /// window when this is non-zero).
    pub dropped_events: u64,
    /// The interval series, when [`ObsConfig::epoch_cycles`] was set.
    pub series: Option<IntervalSeries>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_default_and_inert() {
        let cfg = ObsConfig::default();
        assert_eq!(cfg, ObsConfig::disabled());
        assert!(!cfg.enabled());
    }

    #[test]
    fn builders_enable_and_clamp() {
        let cfg = ObsConfig::disabled().with_event_capacity(0).with_sample_every(0).with_epochs(0);
        assert!(cfg.enabled());
        assert!(cfg.events);
        assert_eq!(cfg.event_capacity, 1);
        assert_eq!(cfg.sample_every, 1);
        assert_eq!(cfg.epoch_cycles, Some(1));
    }
}
