//! Structured runner telemetry: progress events behind a [`Reporter`].
//!
//! The experiment runner used to narrate progress with ad-hoc
//! `eprintln!`; this module replaces that with typed [`ProgressEvent`]s
//! dispatched to a [`Reporter`] implementation chosen by the user
//! (`--progress quiet|plain|json` on the binaries):
//!
//! - [`QuietReporter`] — drops everything; stderr stays byte-clean.
//! - [`WarningsOnlyReporter`] — the library default: warnings still
//!   reach stderr (a silently disabled checkpoint would be worse), all
//!   narration is dropped.
//! - [`PlainReporter`] — human progress lines with per-point timing and
//!   an ETA extrapolated from completed points.
//! - [`JsonLinesReporter`] — one JSON object per line, for driving a
//!   sweep from another program.
//!
//! Reporters are `Send + Sync` and internally locked: worker threads
//! report concurrently, lines never interleave.

use slicc_common::{json_f64, push_json_str};
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// One telemetry event from the experiment runner.
#[derive(Clone, Debug, PartialEq)]
pub enum ProgressEvent {
    /// A batch of points was submitted.
    BatchStarted {
        /// Requests in the batch (including duplicates/cached).
        points: usize,
        /// Distinct points that will simulate fresh.
        fresh: usize,
    },
    /// A fresh point began simulating.
    PointStarted {
        /// 1-based index among the batch's fresh points.
        index: usize,
        /// Fresh points in the batch.
        total: usize,
        /// Human point label (workload/mode/tasks/seed).
        label: String,
    },
    /// A fresh point completed.
    PointFinished {
        /// 1-based index among the batch's fresh points.
        index: usize,
        /// Fresh points in the batch.
        total: usize,
        /// Human point label.
        label: String,
        /// Wall-clock nanoseconds the simulation took.
        wall_ns: u64,
        /// Simulated instructions per wall-clock second.
        sim_ips: f64,
    },
    /// A fresh point failed.
    PointFailed {
        /// 1-based index among the batch's fresh points.
        index: usize,
        /// Fresh points in the batch.
        total: usize,
        /// Human point label.
        label: String,
        /// The rendered error.
        error: String,
    },
    /// A fresh point failed transiently and is being re-attempted under
    /// the runner's retry policy.
    PointRetried {
        /// Human point label.
        label: String,
        /// The attempt about to run (2 = first retry).
        attempt: u32,
        /// The rendered error that triggered the retry.
        error: String,
    },
    /// A fresh point was abandoned by cooperative cancellation (Ctrl-C
    /// or [`ProgressEvent::PointFailed`]'s graceful sibling: no error,
    /// the caller asked the run to stop).
    PointCancelled {
        /// 1-based index among the batch's fresh points.
        index: usize,
        /// Fresh points in the batch.
        total: usize,
        /// Human point label.
        label: String,
    },
    /// A request was served from the run cache.
    PointCached {
        /// Human point label.
        label: String,
    },
    /// The batch finished.
    BatchFinished {
        /// Points simulated fresh.
        fresh: usize,
        /// Requests served from the cache.
        cached: usize,
        /// Points that failed.
        failed: usize,
    },
    /// A resource-pressure snapshot from the runner's governance layer
    /// (bounded run cache, admission control): emitted at batch end and
    /// whenever a submission is shed, so operators and `--progress json`
    /// consumers can watch queue depth, cache residency, and shed counts
    /// without polling.
    Pressure {
        /// Submissions waiting for an execution slot.
        queue_depth: usize,
        /// Fresh simulations currently executing.
        inflight: usize,
        /// Bytes resident in the bounded run cache.
        cache_bytes: u64,
        /// The run cache's byte budget.
        cache_budget: u64,
        /// Entries resident in the run cache.
        cache_entries: usize,
        /// Submissions shed by admission control so far (process total).
        shed: u64,
    },
    /// Informational narration (checkpoint loaded, file written, ...).
    Note {
        /// The message.
        message: String,
    },
    /// Something degraded but the run continues (checkpoint write
    /// failure, missing obs data, ...).
    Warning {
        /// The message.
        message: String,
    },
}

/// Receives [`ProgressEvent`]s; implementations decide presentation.
pub trait Reporter: Send + Sync {
    /// Handles one event.
    fn report(&self, event: ProgressEvent);
}

/// Drops every event. `--progress quiet`: stderr stays byte-clean.
pub struct QuietReporter;

impl Reporter for QuietReporter {
    fn report(&self, _event: ProgressEvent) {}
}

/// Forwards only [`ProgressEvent::Warning`] to its writer; drops all
/// narration. The library default: embedding code keeps a quiet stderr
/// without losing degradation warnings.
pub struct WarningsOnlyReporter {
    out: Mutex<Box<dyn Write + Send>>,
}

impl WarningsOnlyReporter {
    /// Warnings to stderr.
    pub fn stderr() -> Self {
        WarningsOnlyReporter { out: Mutex::new(Box::new(std::io::stderr())) }
    }

    /// Warnings to an arbitrary writer (tests).
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        WarningsOnlyReporter { out: Mutex::new(w) }
    }
}

impl Reporter for WarningsOnlyReporter {
    fn report(&self, event: ProgressEvent) {
        if let ProgressEvent::Warning { message } = event {
            if let Ok(mut out) = self.out.lock() {
                let _ = writeln!(out, "warning: {message}");
            }
        }
    }
}

struct PlainState {
    out: Box<dyn Write + Send>,
    started: Option<Instant>,
    total: usize,
    done: usize,
}

/// Human progress lines with per-point timing and a running ETA.
pub struct PlainReporter {
    state: Mutex<PlainState>,
}

impl PlainReporter {
    /// Progress to stderr (the conventional progress channel; stdout
    /// stays machine-parseable).
    pub fn stderr() -> Self {
        PlainReporter::to_writer(Box::new(std::io::stderr()))
    }

    /// Progress to an arbitrary writer (tests).
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        PlainReporter { state: Mutex::new(PlainState { out, started: None, total: 0, done: 0 }) }
    }
}

impl Reporter for PlainReporter {
    fn report(&self, event: ProgressEvent) {
        let Ok(mut s) = self.state.lock() else { return };
        match event {
            ProgressEvent::BatchStarted { points, fresh } => {
                s.started = Some(Instant::now());
                s.total = fresh;
                s.done = 0;
                if fresh > 1 {
                    let cached = points - fresh.min(points);
                    let _ = writeln!(
                        s.out,
                        "simulating {fresh} point(s) ({cached} served from cache)"
                    );
                }
            }
            ProgressEvent::PointStarted { .. } | ProgressEvent::PointCached { .. } => {}
            ProgressEvent::PointFinished { total, label, wall_ns, sim_ips, .. } => {
                s.done += 1;
                let eta = match (s.started, s.total > s.done) {
                    (Some(t0), true) => {
                        let per = t0.elapsed().as_secs_f64() / s.done as f64;
                        format!("  eta {:.0}s", per * (s.total - s.done) as f64)
                    }
                    _ => String::new(),
                };
                let done = s.done;
                let _ = writeln!(
                    s.out,
                    "[{done}/{total}] {label}: {:.2}s ({:.1} M sim-ips){eta}",
                    wall_ns as f64 / 1e9,
                    sim_ips / 1e6,
                );
            }
            ProgressEvent::PointFailed { total, label, error, .. } => {
                s.done += 1;
                let done = s.done;
                let _ = writeln!(s.out, "[{done}/{total}] {label}: FAILED: {error}");
            }
            ProgressEvent::PointRetried { label, attempt, error } => {
                let _ = writeln!(s.out, "{label}: retrying (attempt {attempt}): {error}");
            }
            ProgressEvent::PointCancelled { total, label, .. } => {
                s.done += 1;
                let done = s.done;
                let _ = writeln!(s.out, "[{done}/{total}] {label}: cancelled");
            }
            ProgressEvent::BatchFinished { fresh, cached, failed } => {
                if fresh > 1 || failed > 0 {
                    let secs = s.started.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0);
                    let _ = writeln!(
                        s.out,
                        "batch done: {fresh} simulated, {cached} cached, {failed} failed in {secs:.1}s"
                    );
                }
            }
            ProgressEvent::Pressure { queue_depth, inflight, cache_bytes, cache_budget, cache_entries, shed } => {
                // Routine snapshots stay quiet on the human reporter;
                // sheds are worth a line.
                if shed > 0 {
                    let _ = writeln!(
                        s.out,
                        "pressure: {shed} shed, {inflight} in flight, {queue_depth} queued, \
                         cache {cache_bytes}/{cache_budget} B ({cache_entries} entries)"
                    );
                }
            }
            ProgressEvent::Note { message } => {
                let _ = writeln!(s.out, "{message}");
            }
            ProgressEvent::Warning { message } => {
                let _ = writeln!(s.out, "warning: {message}");
            }
        }
    }
}

/// One JSON object per event per line (machine consumption).
pub struct JsonLinesReporter {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesReporter {
    /// JSON lines to stderr (stdout stays the report channel).
    pub fn stderr() -> Self {
        JsonLinesReporter::to_writer(Box::new(std::io::stderr()))
    }

    /// JSON lines to an arbitrary writer (tests).
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        JsonLinesReporter { out: Mutex::new(w) }
    }
}

impl Reporter for JsonLinesReporter {
    fn report(&self, event: ProgressEvent) {
        let mut line = String::from("{\"event\": ");
        match &event {
            ProgressEvent::BatchStarted { points, fresh } => {
                line.push_str(&format!("\"batch_started\", \"points\": {points}, \"fresh\": {fresh}"));
            }
            ProgressEvent::PointStarted { index, total, label } => {
                line.push_str(&format!("\"point_started\", \"index\": {index}, \"total\": {total}, \"label\": "));
                push_json_str(&mut line, label);
            }
            ProgressEvent::PointFinished { index, total, label, wall_ns, sim_ips } => {
                line.push_str(&format!("\"point_finished\", \"index\": {index}, \"total\": {total}, \"label\": "));
                push_json_str(&mut line, label);
                line.push_str(&format!(", \"wall_ns\": {wall_ns}, \"sim_ips\": {}", json_f64(*sim_ips)));
            }
            ProgressEvent::PointFailed { index, total, label, error } => {
                line.push_str(&format!("\"point_failed\", \"index\": {index}, \"total\": {total}, \"label\": "));
                push_json_str(&mut line, label);
                line.push_str(", \"error\": ");
                push_json_str(&mut line, error);
            }
            ProgressEvent::PointRetried { label, attempt, error } => {
                line.push_str("\"point_retried\", \"attempt\": ");
                line.push_str(&attempt.to_string());
                line.push_str(", \"label\": ");
                push_json_str(&mut line, label);
                line.push_str(", \"error\": ");
                push_json_str(&mut line, error);
            }
            ProgressEvent::PointCancelled { index, total, label } => {
                line.push_str(&format!(
                    "\"point_cancelled\", \"index\": {index}, \"total\": {total}, \"label\": "
                ));
                push_json_str(&mut line, label);
            }
            ProgressEvent::PointCached { label } => {
                line.push_str("\"point_cached\", \"label\": ");
                push_json_str(&mut line, label);
            }
            ProgressEvent::BatchFinished { fresh, cached, failed } => {
                line.push_str(&format!(
                    "\"batch_finished\", \"fresh\": {fresh}, \"cached\": {cached}, \"failed\": {failed}"
                ));
            }
            ProgressEvent::Pressure { queue_depth, inflight, cache_bytes, cache_budget, cache_entries, shed } => {
                line.push_str(&format!(
                    "\"pressure\", \"queue_depth\": {queue_depth}, \"inflight\": {inflight}, \
                     \"cache_bytes\": {cache_bytes}, \"cache_budget\": {cache_budget}, \
                     \"cache_entries\": {cache_entries}, \"shed\": {shed}"
                ));
            }
            ProgressEvent::Note { message } => {
                line.push_str("\"note\", \"message\": ");
                push_json_str(&mut line, message);
            }
            ProgressEvent::Warning { message } => {
                line.push_str("\"warning\", \"message\": ");
                push_json_str(&mut line, message);
            }
        }
        line.push('}');
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{line}");
        }
    }
}

/// The `--progress` choice on the binaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgressKind {
    /// No output at all.
    Quiet,
    /// Human progress lines (default).
    Plain,
    /// One JSON object per line.
    Json,
}

impl ProgressKind {
    /// Parses a `--progress` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quiet" => Some(ProgressKind::Quiet),
            "plain" => Some(ProgressKind::Plain),
            "json" => Some(ProgressKind::Json),
            _ => None,
        }
    }

    /// The canonical spelling.
    pub fn name(self) -> &'static str {
        match self {
            ProgressKind::Quiet => "quiet",
            ProgressKind::Plain => "plain",
            ProgressKind::Json => "json",
        }
    }

    /// Builds the stderr-backed reporter for this kind.
    pub fn reporter(self) -> std::sync::Arc<dyn Reporter> {
        match self {
            ProgressKind::Quiet => std::sync::Arc::new(QuietReporter),
            ProgressKind::Plain => std::sync::Arc::new(PlainReporter::stderr()),
            ProgressKind::Json => std::sync::Arc::new(JsonLinesReporter::stderr()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A writer that appends into a shared buffer.
    #[derive(Clone)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn capture() -> (Shared, Arc<StdMutex<Vec<u8>>>) {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        (Shared(Arc::clone(&buf)), buf)
    }

    fn finished(index: usize) -> ProgressEvent {
        ProgressEvent::PointFinished {
            index,
            total: 2,
            label: format!("p{index}"),
            wall_ns: 1_000_000_000,
            sim_ips: 2_000_000.0,
        }
    }

    #[test]
    fn quiet_reporter_emits_nothing() {
        // QuietReporter has no writer at all; this is a compile/behavior
        // smoke so the variant stays wired.
        QuietReporter.report(finished(1));
    }

    #[test]
    fn warnings_only_forwards_warnings_and_drops_narration() {
        let (w, buf) = capture();
        let r = WarningsOnlyReporter::to_writer(Box::new(w));
        r.report(ProgressEvent::Note { message: "chatty".into() });
        r.report(finished(1));
        r.report(ProgressEvent::Warning { message: "disk full".into() });
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(out, "warning: disk full\n");
    }

    #[test]
    fn plain_reporter_reports_progress_counts_and_timing() {
        let (w, buf) = capture();
        let r = PlainReporter::to_writer(Box::new(w));
        r.report(ProgressEvent::BatchStarted { points: 3, fresh: 2 });
        r.report(finished(1));
        r.report(ProgressEvent::PointFailed {
            index: 2,
            total: 2,
            label: "p2".into(),
            error: "boom".into(),
        });
        r.report(ProgressEvent::BatchFinished { fresh: 2, cached: 1, failed: 1 });
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(out.contains("simulating 2 point(s) (1 served from cache)"), "got: {out}");
        assert!(out.contains("[1/2] p1: 1.00s"), "got: {out}");
        assert!(out.contains("eta"), "first of two points must extrapolate an ETA, got: {out}");
        assert!(out.contains("[2/2] p2: FAILED: boom"), "got: {out}");
        assert!(out.contains("1 failed"), "got: {out}");
    }

    #[test]
    fn json_lines_are_one_object_per_event() {
        let (w, buf) = capture();
        let r = JsonLinesReporter::to_writer(Box::new(w));
        r.report(ProgressEvent::BatchStarted { points: 1, fresh: 1 });
        r.report(ProgressEvent::PointCached { label: "a \"quoted\" label".into() });
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\": \"batch_started\""));
        assert!(lines[1].contains("\\\"quoted\\\""), "labels must be escaped, got: {out}");
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn retry_and_cancel_events_render_on_both_verbose_reporters() {
        let (w, buf) = capture();
        let r = PlainReporter::to_writer(Box::new(w));
        r.report(ProgressEvent::PointRetried { label: "p1".into(), attempt: 2, error: "livelock".into() });
        r.report(ProgressEvent::PointCancelled { index: 1, total: 2, label: "p1".into() });
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(out.contains("p1: retrying (attempt 2): livelock"), "got: {out}");
        assert!(out.contains("[1/2] p1: cancelled"), "got: {out}");

        let (w, buf) = capture();
        let r = JsonLinesReporter::to_writer(Box::new(w));
        r.report(ProgressEvent::PointRetried { label: "p1".into(), attempt: 2, error: "livelock".into() });
        r.report(ProgressEvent::PointCancelled { index: 1, total: 2, label: "p1".into() });
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("{\"event\": \"point_retried\", \"attempt\": 2"), "got: {out}");
        assert!(lines[1].starts_with("{\"event\": \"point_cancelled\", \"index\": 1"), "got: {out}");
    }

    #[test]
    fn pressure_snapshots_render_on_json_and_only_sheds_on_plain() {
        let snapshot = ProgressEvent::Pressure {
            queue_depth: 3,
            inflight: 2,
            cache_bytes: 4096,
            cache_budget: 8192,
            cache_entries: 7,
            shed: 0,
        };
        let (w, buf) = capture();
        let r = JsonLinesReporter::to_writer(Box::new(w));
        r.report(snapshot.clone());
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(out.starts_with("{\"event\": \"pressure\""), "got: {out}");
        for field in ["\"queue_depth\": 3", "\"inflight\": 2", "\"cache_bytes\": 4096", "\"cache_budget\": 8192", "\"cache_entries\": 7", "\"shed\": 0"] {
            assert!(out.contains(field), "missing {field} in: {out}");
        }

        // The human reporter stays quiet for routine snapshots and
        // narrates once submissions are actually being shed.
        let (w, buf) = capture();
        let r = PlainReporter::to_writer(Box::new(w));
        r.report(snapshot);
        assert!(buf.lock().unwrap().is_empty(), "a routine snapshot must not narrate");
        r.report(ProgressEvent::Pressure {
            queue_depth: 3,
            inflight: 2,
            cache_bytes: 4096,
            cache_budget: 8192,
            cache_entries: 7,
            shed: 5,
        });
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(out.contains("pressure: 5 shed"), "got: {out}");
    }

    #[test]
    fn progress_kind_parses_its_names() {
        for kind in [ProgressKind::Quiet, ProgressKind::Plain, ProgressKind::Json] {
            assert_eq!(ProgressKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ProgressKind::parse("loud"), None);
    }
}
