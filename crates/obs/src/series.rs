//! Interval time-series: epoch-resolved counter deltas.
//!
//! The sampler snapshots a small set of cumulative simulation counters
//! ([`ObsCounters`]) roughly every `epoch_cycles` of simulated time and
//! stores the *delta* since the previous snapshot as one [`Epoch`].
//! Because epochs are telescoping differences of one cumulative stream,
//! their per-counter sums reconcile **exactly** with the end-of-run
//! totals — the final partial epoch is always flushed at
//! [`IntervalSampler::finish`] — which is what makes the series
//! trustworthy as a decomposition of `RunMetrics` rather than a second,
//! slightly-different accounting.
//!
//! Epoch boundaries are sampled opportunistically from the engine's
//! min-heap loop: under the min-heap discipline the popped core's local
//! clock is the global progress floor, so each epoch closes at the first
//! heap step whose floor passed the boundary. End cycles are therefore
//! honest sample times (≥ the nominal boundary), not rounded-down
//! labels.

use slicc_common::{json_f64, Cycle};
use std::fmt::Write as _;

/// The cumulative counters the sampler tracks. A tiny, `Copy` subset of
/// the full metrics: enough for MPKI / IPC / migration-rate curves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// Instructions retired.
    pub instructions: u64,
    /// L1-I misses.
    pub i_misses: u64,
    /// L1-D misses.
    pub d_misses: u64,
    /// Thread migrations.
    pub migrations: u64,
}

/// One sampled interval: counter deltas over `[start_cycle, end_cycle)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Epoch {
    /// Cycle the interval opened at.
    pub start_cycle: Cycle,
    /// Cycle the interval closed at (the sample time).
    pub end_cycle: Cycle,
    /// Instructions retired in the interval.
    pub instructions: u64,
    /// L1-I misses in the interval.
    pub i_misses: u64,
    /// L1-D misses in the interval.
    pub d_misses: u64,
    /// Migrations in the interval.
    pub migrations: u64,
}

impl Epoch {
    /// L1-I misses per kilo-instruction in this interval.
    pub fn i_mpki(&self) -> f64 {
        if self.instructions == 0 { 0.0 } else { self.i_misses as f64 * 1000.0 / self.instructions as f64 }
    }

    /// L1-D misses per kilo-instruction in this interval.
    pub fn d_mpki(&self) -> f64 {
        if self.instructions == 0 { 0.0 } else { self.d_misses as f64 * 1000.0 / self.instructions as f64 }
    }

    /// Machine-wide instructions per cycle in this interval.
    pub fn ipc(&self) -> f64 {
        let cycles = self.end_cycle.saturating_sub(self.start_cycle);
        if cycles == 0 { 0.0 } else { self.instructions as f64 / cycles as f64 }
    }
}

/// The full epoch series of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IntervalSeries {
    /// The nominal epoch length the sampler was configured with.
    pub epoch_cycles: Cycle,
    /// The sampled epochs, in time order.
    pub epochs: Vec<Epoch>,
}

impl IntervalSeries {
    /// Sums the epoch deltas. Equals the run's cumulative totals exactly
    /// (the reconciliation invariant the integration tests pin down).
    pub fn totals(&self) -> ObsCounters {
        let mut t = ObsCounters::default();
        for e in &self.epochs {
            t.instructions += e.instructions;
            t.i_misses += e.i_misses;
            t.d_misses += e.d_misses;
            t.migrations += e.migrations;
        }
        t
    }

    /// The last `k` epochs (diagnostic snapshots).
    pub fn tail(&self, k: usize) -> &[Epoch] {
        &self.epochs[self.epochs.len().saturating_sub(k)..]
    }

    /// Renders the series as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "epoch,start_cycle,end_cycle,instructions,i_misses,d_misses,migrations,i_mpki,d_mpki,ipc\n",
        );
        for (i, e) in self.epochs.iter().enumerate() {
            let _ = writeln!(
                s,
                "{i},{},{},{},{},{},{},{:.4},{:.4},{:.4}",
                e.start_cycle,
                e.end_cycle,
                e.instructions,
                e.i_misses,
                e.d_misses,
                e.migrations,
                e.i_mpki(),
                e.d_mpki(),
                e.ipc()
            );
        }
        s
    }

    /// Renders the series as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"epoch_cycles\": {},", self.epoch_cycles);
        s.push_str("  \"epochs\": [\n");
        for (i, e) in self.epochs.iter().enumerate() {
            let comma = if i + 1 < self.epochs.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"start_cycle\": {}, \"end_cycle\": {}, \"instructions\": {}, \
                 \"i_misses\": {}, \"d_misses\": {}, \"migrations\": {}, \
                 \"i_mpki\": {}, \"d_mpki\": {}, \"ipc\": {}}}{comma}",
                e.start_cycle,
                e.end_cycle,
                e.instructions,
                e.i_misses,
                e.d_misses,
                e.migrations,
                json_f64(e.i_mpki()),
                json_f64(e.d_mpki()),
                json_f64(e.ipc())
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Closes epochs as the simulation's progress floor crosses nominal
/// boundaries; see the module docs for the exactness argument.
#[derive(Clone, Debug)]
pub struct IntervalSampler {
    epoch_cycles: Cycle,
    next_boundary: Cycle,
    last_cycle: Cycle,
    last: ObsCounters,
    series: IntervalSeries,
}

impl IntervalSampler {
    /// A sampler with nominal epoch length `epoch_cycles` (clamped ≥ 1).
    pub fn new(epoch_cycles: Cycle) -> Self {
        let epoch_cycles = epoch_cycles.max(1);
        IntervalSampler {
            epoch_cycles,
            next_boundary: epoch_cycles,
            last_cycle: 0,
            last: ObsCounters::default(),
            series: IntervalSeries { epoch_cycles, epochs: Vec::new() },
        }
    }

    /// Whether the progress floor `now` has crossed the next boundary.
    /// One compare — cheap enough for the engine's per-step loop.
    #[inline(always)]
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_boundary
    }

    /// Closes the current epoch at `now` given the cumulative counters
    /// `cum`, and arms the next boundary past `now`.
    pub fn sample(&mut self, now: Cycle, cum: ObsCounters) {
        self.push_epoch(now, cum);
        // Skip boundaries the floor already passed: one long heap step
        // yields one (longer) epoch, not a burst of empty ones.
        self.next_boundary = (now / self.epoch_cycles + 1) * self.epoch_cycles;
    }

    /// The series accumulated so far (diagnostic snapshots of a run that
    /// has not finished).
    pub fn series(&self) -> &IntervalSeries {
        &self.series
    }

    /// Flushes the final partial epoch at `makespan` and returns the
    /// completed series. The flush is what guarantees
    /// `series.totals() == cum` exactly.
    pub fn finish(mut self, makespan: Cycle, cum: ObsCounters) -> IntervalSeries {
        if cum != self.last || makespan > self.last_cycle || self.series.epochs.is_empty() {
            self.push_epoch(makespan.max(self.last_cycle), cum);
        }
        self.series
    }

    fn push_epoch(&mut self, end: Cycle, cum: ObsCounters) {
        self.series.epochs.push(Epoch {
            start_cycle: self.last_cycle,
            end_cycle: end,
            instructions: cum.instructions - self.last.instructions,
            i_misses: cum.i_misses - self.last.i_misses,
            d_misses: cum.d_misses - self.last.d_misses,
            migrations: cum.migrations - self.last.migrations,
        });
        self.last_cycle = end;
        self.last = cum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cum(instructions: u64, i_misses: u64) -> ObsCounters {
        ObsCounters { instructions, i_misses, d_misses: i_misses / 2, migrations: i_misses / 4 }
    }

    #[test]
    fn epoch_sums_reconcile_with_cumulative_totals() {
        let mut s = IntervalSampler::new(100);
        assert!(!s.due(99));
        assert!(s.due(100));
        s.sample(105, cum(1000, 40));
        s.sample(230, cum(2500, 90));
        let series = s.finish(260, cum(3000, 100));
        assert_eq!(series.epochs.len(), 3);
        assert_eq!(series.totals(), cum(3000, 100));
        assert_eq!(series.epochs[0].start_cycle, 0);
        assert_eq!(series.epochs[0].end_cycle, 105);
        assert_eq!(series.epochs[1].start_cycle, 105);
        assert_eq!(series.epochs[2].end_cycle, 260);
    }

    #[test]
    fn boundaries_skip_past_long_steps_without_empty_epochs() {
        let mut s = IntervalSampler::new(100);
        s.sample(950, cum(10, 1)); // floor jumped over 9 boundaries at once
        assert!(!s.due(999));
        assert!(s.due(1000));
        let series = s.finish(1000, cum(20, 2));
        assert_eq!(series.epochs.len(), 2);
    }

    #[test]
    fn an_empty_run_still_yields_one_covering_epoch() {
        let series = IntervalSampler::new(50).finish(0, ObsCounters::default());
        assert_eq!(series.epochs.len(), 1);
        assert_eq!(series.totals(), ObsCounters::default());
    }

    #[test]
    fn csv_and_json_render_every_epoch() {
        let mut s = IntervalSampler::new(10);
        s.sample(10, cum(100, 10));
        let series = s.finish(15, cum(150, 12));
        let csv = series.to_csv();
        assert_eq!(csv.lines().count(), 1 + series.epochs.len());
        assert!(csv.starts_with("epoch,start_cycle"));
        let json = series.to_json();
        assert!(json.contains("\"epoch_cycles\": 10"));
        assert_eq!(json.matches("start_cycle").count(), series.epochs.len());
    }
}
