//! A fixed-capacity, overwrite-oldest event ring.
//!
//! Each simulated core owns one ring ([`crate::EventSink`]), so the
//! simulator's single-threaded hot path records events with no locking
//! and no allocation after construction: a push into a full ring
//! overwrites the oldest entry and bumps a drop counter. The bounded
//! memory is what makes "trace everything on every run" safe — a
//! billion-instruction point cannot OOM the host, it just keeps the most
//! recent window.

use crate::event::TraceEvent;

/// Fixed-capacity ring of [`TraceEvent`]s, oldest-overwriting.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    /// Index of the oldest entry once the ring has wrapped.
    start: usize,
    capacity: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
    /// Events ever pushed (recorded + dropped').
    total: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing { buf: Vec::with_capacity(capacity), start: 0, capacity, dropped: 0, total: 0 }
    }

    /// Records `event`, overwriting the oldest entry when full.
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.start] = event;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events ever pushed, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// The held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.start..].iter().chain(self.buf[..self.start].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use slicc_common::CoreId;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent { core: CoreId::new(0), cycle, kind: EventKind::Stall { cycles: cycle as u32 } }
    }

    #[test]
    fn fills_in_order_below_capacity() {
        let mut r = EventRing::new(4);
        for c in 0..3 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
    }

    #[test]
    fn wrap_overwrites_oldest_and_counts_drops() {
        let mut r = EventRing::new(4);
        for c in 0..10 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.total_recorded(), 10);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest-first iteration across the wrap point");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().map(|e| e.cycle), Some(2));
    }
}
