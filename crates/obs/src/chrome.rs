//! Chrome `trace_event` JSON export.
//!
//! Renders a recorded event timeline as the JSON Object Format that
//! `chrome://tracing` and Perfetto load directly: one track (`tid`) per
//! simulated core, the running thread as a duration slice (`B`/`E`),
//! migrations / steals / segment boundaries / misses as instant events,
//! and miss-path stalls as `X` complete events. Timestamps map one
//! simulated cycle to one microsecond — the `ts` axis *is* the cycle
//! axis.
//!
//! The exporter pairs slices defensively: a `ThreadStart` with a slice
//! already open closes it first, and any slice still open at the end of
//! the timeline (a ring overwrote its start, or the run was aborted) is
//! closed at the last seen cycle. The emitted document therefore always
//! has balanced `B`/`E` pairs, whatever window of the run the rings
//! kept.

use crate::event::{EventKind, TraceEvent};
use slicc_common::{push_json_str, Cycle};
use std::fmt::Write as _;

/// Run identity stamped into the trace's metadata events.
#[derive(Clone, Debug)]
pub struct TraceMeta {
    /// Workload name.
    pub workload: String,
    /// Scheduler-mode label.
    pub mode: String,
    /// Core count (tracks are emitted for all of them).
    pub cores: usize,
}

struct TraceWriter {
    out: String,
    first: bool,
}

impl TraceWriter {
    fn new() -> Self {
        TraceWriter { out: String::from("{\n\"traceEvents\": [\n"), first: true }
    }

    /// Appends one event object; `fields` is the pre-rendered interior.
    fn push(&mut self, fields: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(fields);
        self.out.push('}');
    }

    fn finish(mut self, meta: &TraceMeta) -> String {
        self.out.push_str("\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"workload\": ");
        push_json_str(&mut self.out, &meta.workload);
        self.out.push_str(", \"mode\": ");
        push_json_str(&mut self.out, &meta.mode);
        let _ = write!(
            self.out,
            ", \"cores\": {}, \"clock\": \"1 cycle = 1 us\"}}\n}}\n",
            meta.cores
        );
        self.out
    }
}

fn slice_begin(w: &mut TraceWriter, tid: usize, ts: Cycle, name: &str) {
    let mut f = String::new();
    f.push_str("\"name\": ");
    push_json_str(&mut f, name);
    let _ = write!(f, ", \"ph\": \"B\", \"pid\": 0, \"tid\": {tid}, \"ts\": {ts}");
    w.push(&f);
}

fn slice_end(w: &mut TraceWriter, tid: usize, ts: Cycle) {
    w.push(&format!("\"ph\": \"E\", \"pid\": 0, \"tid\": {tid}, \"ts\": {ts}"));
}

fn instant(w: &mut TraceWriter, tid: usize, ts: Cycle, name: &str, cat: &str, args: &str) {
    let mut f = String::new();
    f.push_str("\"name\": ");
    push_json_str(&mut f, name);
    f.push_str(", \"cat\": ");
    push_json_str(&mut f, cat);
    let _ = write!(f, ", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": {tid}, \"ts\": {ts}");
    if !args.is_empty() {
        let _ = write!(f, ", \"args\": {{{args}}}");
    }
    w.push(&f);
}

/// Renders `events` (a cycle-ordered timeline, e.g. from
/// `EventSink::drain`) as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(events: &[TraceEvent], meta: &TraceMeta) -> String {
    let mut w = TraceWriter::new();

    // Track naming metadata: the process is the run, each tid is a core.
    {
        let mut f = String::new();
        f.push_str("\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"args\": {\"name\": ");
        push_json_str(&mut f, &format!("slicc {} [{}]", meta.workload, meta.mode));
        f.push('}');
        w.push(&f);
    }
    for c in 0..meta.cores {
        let mut f = String::new();
        let _ = write!(f, "\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {c}, \"args\": {{\"name\": ");
        push_json_str(&mut f, &format!("core {c}"));
        f.push('}');
        w.push(&f);
    }

    // Per-core open running-slice state for defensive B/E pairing. Sized
    // to the events actually present, so a `meta.cores` that undercounts
    // the machine degrades to unnamed tracks rather than a panic.
    let tracks = events
        .iter()
        .map(|e| e.core.index() + 1)
        .max()
        .unwrap_or(0)
        .max(meta.cores);
    let mut open: Vec<bool> = vec![false; tracks];
    let mut last_cycle: Cycle = 0;
    for ev in events {
        let tid = ev.core.index();
        let ts = ev.cycle;
        last_cycle = last_cycle.max(ts);
        match ev.kind {
            EventKind::ThreadStart { thread } => {
                if open[tid] {
                    slice_end(&mut w, tid, ts);
                }
                slice_begin(&mut w, tid, ts, &format!("T{thread}"));
                open[tid] = true;
            }
            EventKind::ThreadComplete { thread } => {
                if open[tid] {
                    slice_end(&mut w, tid, ts);
                    open[tid] = false;
                }
                instant(&mut w, tid, ts, &format!("T{thread} done"), "thread", "");
            }
            EventKind::Migration { thread, from: _, to, reason } => {
                if open[tid] {
                    slice_end(&mut w, tid, ts);
                    open[tid] = false;
                }
                instant(
                    &mut w,
                    tid,
                    ts,
                    &format!("migrate T{thread} -> core {}", to.index()),
                    "migration",
                    &format!("\"to\": {}, \"reason\": \"{}\"", to.index(), reason.name()),
                );
            }
            EventKind::ContextSwitch { thread } => {
                if open[tid] {
                    slice_end(&mut w, tid, ts);
                    open[tid] = false;
                }
                instant(&mut w, tid, ts, &format!("switch T{thread}"), "context-switch", "");
            }
            EventKind::Miss { level, kind, class } => {
                let args = match class {
                    Some(c) => format!(
                        "\"level\": \"{}\", \"kind\": \"{}\", \"class\": \"{}\"",
                        level.name(),
                        kind.name(),
                        c.name()
                    ),
                    None => format!("\"level\": \"{}\", \"kind\": \"{}\"", level.name(), kind.name()),
                };
                instant(&mut w, tid, ts, &format!("{} miss", level.name()), "miss", &args);
            }
            EventKind::Stall { cycles } => {
                // The stall ended at the stamp; render it as a complete
                // slice covering the cycles it occupied.
                let dur = Cycle::from(cycles);
                let start = ts.saturating_sub(dur);
                w.push(&format!(
                    "\"name\": \"stall\", \"cat\": \"stall\", \"ph\": \"X\", \"pid\": 0, \
                     \"tid\": {tid}, \"ts\": {start}, \"dur\": {dur}"
                ));
            }
            EventKind::SegmentBoundary { thread, segment } => {
                instant(
                    &mut w,
                    tid,
                    ts,
                    &format!("seg {segment}"),
                    "segment",
                    &format!("\"thread\": {thread}, \"segment\": {segment}"),
                );
            }
            EventKind::Steal { victim, victim_queue } => {
                instant(
                    &mut w,
                    tid,
                    ts,
                    &format!("steal from core {}", victim.index()),
                    "steal",
                    &format!("\"victim\": {}, \"victim_queue\": {victim_queue}", victim.index()),
                );
            }
            EventKind::WatchdogFired { heap_steps } => {
                instant(
                    &mut w,
                    tid,
                    ts,
                    "watchdog fired",
                    "watchdog",
                    &format!("\"heap_steps\": {heap_steps}"),
                );
            }
        }
    }
    // Close slices orphaned by ring overwrite or an aborted run.
    for (tid, is_open) in open.iter().enumerate() {
        if *is_open {
            slice_end(&mut w, tid, last_cycle);
        }
    }

    w.finish(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MigrationReason, MissKind, MissLevel};
    use slicc_common::CoreId;

    fn meta() -> TraceMeta {
        TraceMeta { workload: "TPC-C-1".to_string(), mode: "SLICC".to_string(), cores: 2 }
    }

    fn ev(core: u16, cycle: Cycle, kind: EventKind) -> TraceEvent {
        TraceEvent { core: CoreId::new(core), cycle, kind }
    }

    #[test]
    fn emits_balanced_slices_and_named_tracks() {
        let events = vec![
            ev(0, 10, EventKind::ThreadStart { thread: 7 }),
            ev(
                0,
                50,
                EventKind::Migration {
                    thread: 7,
                    from: CoreId::new(0),
                    to: CoreId::new(1),
                    reason: MigrationReason::Matched,
                },
            ),
            ev(1, 60, EventKind::ThreadStart { thread: 7 }),
            ev(1, 90, EventKind::ThreadComplete { thread: 7 }),
        ];
        let json = chrome_trace_json(&events, &meta());
        assert_eq!(
            json.matches("\"ph\": \"B\"").count(),
            json.matches("\"ph\": \"E\"").count(),
            "B/E must balance:\n{json}"
        );
        assert!(json.contains("\"name\": \"core 0\""));
        assert!(json.contains("migrate T7 -> core 1"));
        assert!(json.contains("\"reason\": \"matched\""));
        assert!(json.contains("\"traceEvents\""));
        // Every string the writer emits is brace-free, so well-formedness
        // reduces to brace/bracket balance over the whole document.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn orphaned_open_slices_are_closed_at_the_end() {
        // Start with no matching end: the aborted-run shape.
        let events = vec![ev(0, 5, EventKind::ThreadStart { thread: 1 })];
        let json = chrome_trace_json(&events, &meta());
        assert_eq!(json.matches("\"ph\": \"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\": \"E\"").count(), 1);
    }

    #[test]
    fn stalls_render_as_complete_events_with_duration() {
        let events = vec![
            ev(0, 100, EventKind::Stall { cycles: 40 }),
            ev(
                1,
                110,
                EventKind::Miss { level: MissLevel::L1I, kind: MissKind::Fetch, class: None },
            ),
        ];
        let json = chrome_trace_json(&events, &meta());
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ts\": 60, \"dur\": 40"));
        assert!(json.contains("L1I miss"));
    }
}
