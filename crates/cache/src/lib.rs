//! Cache substrate for the SLICC chip-multiprocessor simulator.
//!
//! This crate implements every cache-side mechanism the paper relies on:
//!
//! - [`Cache`]: a set-associative cache with pluggable replacement policy
//!   and allocate-on-miss semantics — see [`cache`];
//! - [`PolicyKind`]: the seven replacement/insertion policies compared in
//!   §2.1.2 / Figure 2 (LRU, LIP, BIP, DIP, SRRIP, BRRIP, DRRIP) — see
//!   [`policy`];
//! - [`ThreeCClassifier`]: the compulsory/conflict/capacity miss taxonomy
//!   of Hill & Smith used in §2.1.1 / Figure 1 — see [`classify`];
//! - [`BloomSignature`]: the partial-address bloom filter with eviction
//!   support (Peir et al.) that answers SLICC's remote-cache segment
//!   searches (§4.2.3 / Figure 9) — see [`bloom`];
//! - [`NextLinePrefetcher`]: the next-line instruction prefetcher baseline
//!   of §5.6 — see [`prefetch`];
//! - [`MshrFile`]: miss-status holding registers bounding outstanding
//!   misses (Table 2: 32 per L1) — see [`mshr`].
//!
//! # Example
//!
//! ```
//! use slicc_cache::{Cache, PolicyKind, AccessKind, LookupResult};
//! use slicc_common::{BlockAddr, CacheGeometry};
//!
//! let geom = CacheGeometry::new(32 * 1024, 8, 64);
//! let mut l1i = Cache::new(geom, PolicyKind::Lru, 1);
//!
//! let block = BlockAddr::new(0x40);
//! assert!(matches!(l1i.access(block, AccessKind::Read), LookupResult::Miss { .. }));
//! assert!(matches!(l1i.access(block, AccessKind::Read), LookupResult::Hit));
//! ```

pub mod bloom;
pub mod cache;
pub mod classify;
pub mod lru_list;
pub mod mshr;
pub mod pif;
pub mod policy;
pub mod prefetch;
// Gated like slicc-common's property tests: re-add the `proptest` dev-dep
// and enable the `proptest` feature to run (DESIGN.md §5).
#[cfg(all(test, feature = "proptest"))]
mod proptests;
pub mod stats;

pub use bloom::{BloomSignature, SignatureAccuracy};
pub use cache::{AccessKind, Cache, EvictedBlock, LookupResult};
pub use classify::{MissBreakdown, MissClass, ThreeCClassifier};
pub use lru_list::LruList;
pub use mshr::MshrFile;
pub use pif::{Pif, PifConfig};
pub use policy::PolicyKind;
pub use prefetch::NextLinePrefetcher;
pub use stats::CacheStats;
