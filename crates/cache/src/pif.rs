//! Proactive Instruction Fetch (PIF) — the paper's state-of-the-art
//! prefetcher comparator, implemented rather than only upper-bounded.
//!
//! The SLICC paper models PIF [5] (Ferdman, Kaynak & Falsafi, MICRO 2011)
//! as a 512 KiB cache at 32 KiB latency and charges it ~40 KiB of storage
//! per core. This module implements the actual mechanism so the
//! comparison can also be run against a real prefetcher:
//!
//! - the retire-order fetch stream is compacted into **spatial
//!   footprints** — a trigger block plus a bit vector of the neighbouring
//!   blocks touched while execution stayed in its region;
//! - footprints are logged in a circular **history buffer** (the temporal
//!   stream), and an **index table** maps trigger blocks to their most
//!   recent history position;
//! - a miss whose block matches an indexed trigger starts a **stream
//!   read-out**: the next footprints in the history are prefetched ahead
//!   of execution, and the stream advances as its footprints are
//!   consumed.

use crate::cache::{Cache, EvictedBlock};
use slicc_common::{BlockAddr, FastHashMap};

/// One spatial footprint: a trigger block and the offsets (within
/// [`Pif::region_blocks`] of it) that were touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Footprint {
    trigger: u64,
    bits: u32,
}

impl Footprint {
    fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        (0..32u32).filter(|i| self.bits & (1 << i) != 0).map(|i| BlockAddr::new(self.trigger + i as u64))
    }
}

/// Configuration of the PIF engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PifConfig {
    /// Blocks per spatial region (footprint width, ≤ 32).
    pub region_blocks: u32,
    /// History buffer entries. At ~42 bits per entry (trigger + bitmap),
    /// the default 8192 entries cost ~43 KiB — the paper's "∼40 KB per
    /// core".
    pub history_entries: usize,
    /// Footprints kept prefetched ahead of the consumed one.
    pub lookahead: usize,
}

impl Default for PifConfig {
    fn default() -> Self {
        PifConfig { region_blocks: 8, history_entries: 8192, lookahead: 4 }
    }
}

impl slicc_common::StableHash for PifConfig {
    fn stable_hash(&self, h: &mut slicc_common::StableHasher) {
        self.region_blocks.stable_hash(h);
        self.history_entries.stable_hash(h);
        self.lookahead.stable_hash(h);
    }
}

/// The per-core PIF engine.
///
/// Drive it with every fetched block (block-transition granularity) via
/// [`Pif::on_fetch`]; it trains continuously and issues prefetch fills
/// into the cache it is given.
#[derive(Clone, Debug)]
pub struct Pif {
    config: PifConfig,
    history: Vec<Footprint>,
    head: usize,
    index: FastHashMap<u64, usize>,
    /// Forming footprint.
    current: Option<Footprint>,
    /// Active stream read-out position in the history, if any.
    stream: Option<usize>,
    prefetches: u64,
    stream_starts: u64,
}

impl Pif {
    /// Creates an empty engine.
    ///
    /// # Panics
    ///
    /// Panics if the region width is 0 or > 32, the history is empty, or
    /// the lookahead is 0.
    pub fn new(config: PifConfig) -> Self {
        assert!((1..=32).contains(&config.region_blocks), "region must be 1..=32 blocks");
        assert!(config.history_entries > 0, "history must be non-empty");
        assert!(config.lookahead > 0, "lookahead must be positive");
        Pif {
            config,
            history: Vec::with_capacity(config.history_entries),
            head: 0,
            index: FastHashMap::default(),
            current: None,
            stream: None,
            prefetches: 0,
            stream_starts: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PifConfig {
        &self.config
    }

    /// Storage cost of the modelled hardware in bits (history + index is
    /// derived from the history in hardware PIF; we charge the log).
    pub fn storage_bits(&self) -> u64 {
        // Trigger (34-bit partial address) + region bitmap.
        self.config.history_entries as u64 * (34 + self.config.region_blocks as u64)
    }

    /// Prefetch fills issued so far.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    /// Stream read-outs started so far.
    pub fn stream_starts(&self) -> u64 {
        self.stream_starts
    }

    fn region_trigger(&self, block: BlockAddr) -> u64 {
        block.raw() / self.config.region_blocks as u64 * self.config.region_blocks as u64
    }

    /// Observes one fetched block (`hit` is the L1-I outcome) and issues
    /// prefetches into `l1i`. Returns the blocks its fills displaced.
    /// Convenience wrapper over [`Self::on_fetch_into`].
    pub fn on_fetch(&mut self, l1i: &mut Cache, block: BlockAddr, hit: bool) -> Vec<EvictedBlock> {
        let mut evicted = Vec::new();
        self.on_fetch_into(l1i, block, hit, &mut evicted);
        evicted
    }

    /// [`Self::on_fetch`] appending displaced blocks to a caller-owned
    /// buffer, so the steady-state fetch path allocates nothing.
    pub fn on_fetch_into(
        &mut self,
        l1i: &mut Cache,
        block: BlockAddr,
        hit: bool,
        evicted: &mut Vec<EvictedBlock>,
    ) {
        // --- Training: retire-order footprint formation.
        let trigger = self.region_trigger(block);
        let offset = (block.raw() - trigger) as u32;
        match &mut self.current {
            Some(fp) if fp.trigger == trigger => {
                fp.bits |= 1 << offset;
            }
            _ => {
                if let Some(done) = self.current.take() {
                    self.commit(done);
                }
                self.current = Some(Footprint { trigger, bits: 1 << offset });
            }
        }

        // --- Prediction: follow or (re)start a stream on a miss.
        if let Some(pos) = self.stream {
            // The stream is consumed when execution reaches the region of
            // the footprint at the read pointer.
            if self.history.get(pos).is_some_and(|fp| fp.trigger == trigger) {
                let next = (pos + 1) % self.history.len().max(1);
                self.stream = Some(next);
                // Keep the lookahead window full.
                let ahead = (pos + self.config.lookahead) % self.history.len().max(1);
                self.prefetch_entry(l1i, ahead, evicted);
            }
        }
        if !hit {
            if let Some(&pos) = self.index.get(&trigger) {
                // Restart the stream from this trigger's last occurrence.
                self.stream_starts += 1;
                let len = self.history.len().max(1);
                self.stream = Some((pos + 1) % len);
                for k in 1..=self.config.lookahead {
                    self.prefetch_entry(l1i, (pos + k) % len, evicted);
                }
            } else {
                self.stream = None;
            }
        }
    }

    fn prefetch_entry(&mut self, l1i: &mut Cache, pos: usize, evicted: &mut Vec<EvictedBlock>) {
        let Some(fp) = self.history.get(pos).copied() else {
            return;
        };
        for b in fp.blocks() {
            if !l1i.contains(b) {
                self.prefetches += 1;
                if let Some(ev) = l1i.fill(b) {
                    evicted.push(ev);
                }
            }
        }
    }

    fn commit(&mut self, fp: Footprint) {
        if self.history.len() < self.config.history_entries {
            self.index.insert(fp.trigger, self.history.len());
            self.history.push(fp);
        } else {
            let old = self.history[self.head];
            // Drop the index entry if it still points at the overwritten
            // slot (a newer occurrence may have re-indexed the trigger).
            if self.index.get(&old.trigger) == Some(&self.head) {
                self.index.remove(&old.trigger);
            }
            self.index.insert(fp.trigger, self.head);
            self.history[self.head] = fp;
            self.head = (self.head + 1) % self.config.history_entries;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use slicc_common::CacheGeometry;

    fn l1() -> Cache {
        Cache::new(CacheGeometry::new(32 * 1024, 8, 64), PolicyKind::Lru, 1)
    }

    fn small_pif() -> Pif {
        Pif::new(PifConfig { region_blocks: 8, history_entries: 64, lookahead: 2 })
    }

    /// Replays `blocks` through cache+PIF, returning demand misses.
    fn replay(pif: &mut Pif, l1i: &mut Cache, blocks: &[u64]) -> u64 {
        let mut misses = 0;
        let mut last = None;
        for &raw in blocks {
            let b = BlockAddr::new(raw);
            if last == Some(b) {
                continue;
            }
            last = Some(b);
            let hit = l1i.access(b, crate::AccessKind::Read).is_hit();
            if !hit {
                misses += 1;
            }
            pif.on_fetch(l1i, b, hit);
        }
        misses
    }

    #[test]
    fn second_iteration_of_a_loop_is_covered() {
        // A footprint sequence larger than the cache, repeated: the
        // second pass should be mostly prefetched. The cache must hold a
        // few regions more than the lookahead window or the prefetches
        // evict each other (8 sets x 8 ways here vs a 3-4 block/set
        // working window).
        let mut pif = small_pif();
        let mut l1i = Cache::new(CacheGeometry::new(4096, 8, 64), PolicyKind::Lru, 1); // 64 blocks
        let pattern: Vec<u64> = (0..96).chain(0..96).chain(0..96).collect();
        let misses = replay(&mut pif, &mut l1i, &pattern);
        // First pass: 96 cold misses. Later passes: the stream restarts
        // on the first miss and runs ahead; only each pass's first region
        // (the restart trigger's own) demand-misses.
        assert!(misses < 96 + 40, "PIF should cover most repeat misses, got {misses}");
        assert!(pif.prefetches() > 50);
        assert!(pif.stream_starts() >= 1);
    }

    #[test]
    fn random_stream_trains_but_does_not_cover() {
        use slicc_common::SplitMix64;
        let mut pif = small_pif();
        let mut l1i = l1();
        let mut rng = SplitMix64::new(9);
        let blocks: Vec<u64> = (0..500).map(|_| rng.next_below(1 << 20)).collect();
        let misses = replay(&mut pif, &mut l1i, &blocks);
        assert!(misses > 450, "no temporal repetition, no coverage: {misses}");
    }

    #[test]
    fn footprints_compact_spatially_adjacent_fetches() {
        let mut pif = small_pif();
        let mut l1i = l1();
        // Blocks 0..8 are one region: a walk over them plus a jump
        // produces exactly two committed footprints after the second
        // region closes.
        let pattern: Vec<u64> = (0..8).chain(100..108).chain(200..201).collect();
        replay(&mut pif, &mut l1i, &pattern);
        assert!(pif.history.len() >= 2);
        let fp = pif.history[0];
        assert_eq!(fp.trigger, 0);
        assert_eq!(fp.bits, 0xff, "all eight offsets touched");
    }

    #[test]
    fn history_is_circular_and_index_consistent() {
        let mut pif = Pif::new(PifConfig { region_blocks: 8, history_entries: 4, lookahead: 1 });
        let mut l1i = l1();
        // 10 distinct regions: history wraps.
        let pattern: Vec<u64> = (0..10).map(|r| r * 8).collect();
        replay(&mut pif, &mut l1i, &pattern);
        assert_eq!(pif.history.len(), 4);
        for (&trigger, &pos) in pif.index.iter() {
            assert_eq!(pif.history[pos].trigger, trigger, "index points at its trigger");
        }
        assert!(pif.index.len() <= 4);
    }

    #[test]
    fn storage_matches_papers_40kb_claim() {
        let pif = Pif::new(PifConfig::default());
        let kb = pif.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((38.0..46.0).contains(&kb), "default PIF storage {kb:.1} KiB should be ~40 KiB");
    }

    #[test]
    #[should_panic(expected = "region must be")]
    fn oversized_region_panics() {
        let _ = Pif::new(PifConfig { region_blocks: 33, history_entries: 8, lookahead: 1 });
    }
}
