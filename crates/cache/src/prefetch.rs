//! The next-line instruction prefetcher baseline.
//!
//! §5.6 compares SLICC against "a next-line instruction prefetcher": on a
//! fetch to block *B*, the prefetcher brings *B+1 .. B+degree* into the
//! L1-I so that the common fall-through path hits. This module wraps a
//! [`Cache`] access with that behaviour and tracks how many demand misses
//! the prefetches covered.

use crate::cache::{Cache, EvictedBlock, LookupResult};
use crate::AccessKind;
use slicc_common::BlockAddr;

/// A simple sequential (next-line) prefetcher of configurable degree.
///
/// # Example
///
/// ```
/// use slicc_cache::{Cache, NextLinePrefetcher, PolicyKind};
/// use slicc_common::{BlockAddr, CacheGeometry};
///
/// let mut cache = Cache::new(CacheGeometry::new(4096, 4, 64), PolicyKind::Lru, 0);
/// let mut pf = NextLinePrefetcher::new(1);
/// // Fetch block 10: its miss also schedules block 11.
/// pf.access(&mut cache, BlockAddr::new(10));
/// // The sequential successor now hits.
/// assert!(pf.access(&mut cache, BlockAddr::new(11)).0.is_hit());
/// ```
#[derive(Clone, Debug)]
pub struct NextLinePrefetcher {
    degree: u64,
    issued: u64,
    useful: u64,
    last_fetched: Option<BlockAddr>,
}

impl NextLinePrefetcher {
    /// Creates a prefetcher that fetches `degree` sequential successors on
    /// each demand access to a new block.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero (use no prefetcher instead).
    pub fn new(degree: u64) -> Self {
        assert!(degree > 0, "prefetch degree must be positive");
        NextLinePrefetcher { degree, issued: 0, useful: 0, last_fetched: None }
    }

    /// Performs a demand instruction fetch through the prefetcher.
    ///
    /// Returns the demand access result plus any blocks evicted by the
    /// prefetch fills (the caller must propagate those to bloom signatures
    /// and the like). Convenience wrapper over [`Self::access_into`].
    pub fn access(&mut self, cache: &mut Cache, block: BlockAddr) -> (LookupResult, Vec<EvictedBlock>) {
        let mut evicted = Vec::new();
        let result = self.access_into(cache, block, &mut evicted);
        (result, evicted)
    }

    /// [`Self::access`] appending prefetch-fill evictions to a
    /// caller-owned buffer, so the steady-state fetch path allocates
    /// nothing (the simulator reuses one scratch buffer per fetch).
    pub fn access_into(
        &mut self,
        cache: &mut Cache,
        block: BlockAddr,
        evicted: &mut Vec<EvictedBlock>,
    ) -> LookupResult {
        let result = cache.access(block, AccessKind::Read);
        // Only issue prefetches when the fetch stream moves to a new
        // block; repeated fetches within a block issue nothing new.
        if self.last_fetched != Some(block) {
            self.last_fetched = Some(block);
            for d in 1..=self.degree {
                let target = block.offset(d);
                if !cache.contains(target) {
                    self.issued += 1;
                    if let Some(ev) = cache.fill(target) {
                        evicted.push(ev);
                    }
                }
            }
        }
        if result.is_hit() {
            self.useful += 1;
        }
        result
    }

    /// Prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Demand hits observed (includes hits the prefetcher created).
    pub fn useful(&self) -> u64 {
        self.useful
    }

    /// The configured degree.
    pub fn degree(&self) -> u64 {
        self.degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use slicc_common::CacheGeometry;

    fn cache() -> Cache {
        Cache::new(CacheGeometry::new(4096, 4, 64), PolicyKind::Lru, 0)
    }

    #[test]
    fn sequential_stream_hits_after_first_miss() {
        let mut c = cache();
        let mut pf = NextLinePrefetcher::new(1);
        let mut misses = 0;
        for raw in 0..32u64 {
            if pf.access(&mut c, BlockAddr::new(raw)).0.is_miss() {
                misses += 1;
            }
        }
        // Only the first block misses; every successor was prefetched.
        assert_eq!(misses, 1);
    }

    #[test]
    fn higher_degree_prefetches_further() {
        let mut c = cache();
        let mut pf = NextLinePrefetcher::new(4);
        pf.access(&mut c, BlockAddr::new(0));
        for raw in 1..=4u64 {
            assert!(c.contains(BlockAddr::new(raw)), "block {raw} not prefetched");
        }
        assert!(!c.contains(BlockAddr::new(5)));
        assert_eq!(pf.issued(), 4);
    }

    #[test]
    fn repeated_fetch_same_block_is_single_prefetch() {
        let mut c = cache();
        let mut pf = NextLinePrefetcher::new(1);
        for _ in 0..10 {
            pf.access(&mut c, BlockAddr::new(7));
        }
        assert_eq!(pf.issued(), 1);
    }

    #[test]
    fn random_stream_gains_little() {
        use slicc_common::SplitMix64;
        let mut c = cache();
        let mut pf = NextLinePrefetcher::new(1);
        let mut rng = SplitMix64::new(3);
        let mut misses = 0;
        for _ in 0..1000 {
            // Strided-random stream: successor never touched next.
            let b = BlockAddr::new(rng.next_below(1 << 20) * 2);
            if pf.access(&mut c, b).0.is_miss() {
                misses += 1;
            }
        }
        assert!(misses > 900, "misses = {misses}");
    }

    #[test]
    fn eviction_reporting_from_prefetch_fills() {
        // Tiny cache: prefetch fills must displace and report blocks.
        let geom = CacheGeometry::new(256, 2, 64); // 2 sets x 2 ways
        let mut c = Cache::new(geom, PolicyKind::Lru, 0);
        let mut pf = NextLinePrefetcher::new(2);
        pf.access(&mut c, BlockAddr::new(0)); // fills 0,1,2
        let (_, evicted) = pf.access(&mut c, BlockAddr::new(4)); // fills 4,5,6
        assert!(!evicted.is_empty());
    }

    #[test]
    #[should_panic(expected = "degree must be positive")]
    fn zero_degree_panics() {
        let _ = NextLinePrefetcher::new(0);
    }
}
