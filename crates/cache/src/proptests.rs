//! Property-based tests over the cache structures.

use crate::bloom::BloomSignature;
use crate::cache::{AccessKind, Cache};
use crate::classify::ThreeCClassifier;
use crate::policy::PolicyKind;
use proptest::prelude::*;
use slicc_common::{BlockAddr, CacheGeometry};

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

fn arb_geometry() -> impl Strategy<Value = CacheGeometry> {
    (0u32..4, 0u32..3).prop_map(|(sets_pow, assoc_pow)| {
        let sets = 1u64 << (sets_pow + 1); // 2..16 sets
        let assoc = 1u32 << assoc_pow; // 1..4 ways
        CacheGeometry::new(sets * assoc as u64 * 64, assoc, 64)
    })
}

proptest! {
    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        geom in arb_geometry(),
        policy in arb_policy(),
        blocks in prop::collection::vec(0u64..512, 1..400),
    ) {
        let mut cache = Cache::new(geom, policy, 42);
        for &b in &blocks {
            cache.access(BlockAddr::new(b), AccessKind::Read);
            prop_assert!(cache.occupancy() as u64 <= geom.num_blocks());
        }
        // Per-set bound too.
        for set in 0..geom.num_sets() as usize {
            prop_assert!(cache.blocks_in_set(set).count() <= geom.associativity() as usize);
        }
    }

    #[test]
    fn access_after_miss_always_hits(
        geom in arb_geometry(),
        policy in arb_policy(),
        block in 0u64..1_000_000,
    ) {
        let mut cache = Cache::new(geom, policy, 1);
        cache.access(BlockAddr::new(block), AccessKind::Read);
        prop_assert!(cache.access(BlockAddr::new(block), AccessKind::Read).is_hit());
    }

    #[test]
    fn stats_balance(
        geom in arb_geometry(),
        policy in arb_policy(),
        blocks in prop::collection::vec((0u64..256, any::<bool>()), 1..300),
    ) {
        let mut cache = Cache::new(geom, policy, 7);
        for &(b, w) in &blocks {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            cache.access(BlockAddr::new(b), kind);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(s.write_misses <= s.misses);
        prop_assert!(s.dirty_evictions <= s.evictions);
        // Everything resident arrived through a miss.
        prop_assert!(cache.occupancy() as u64 <= s.misses);
    }

    #[test]
    fn blocks_live_in_their_set(
        geom in arb_geometry(),
        blocks in prop::collection::vec(0u64..4096, 1..200),
    ) {
        let mut cache = Cache::new(geom, PolicyKind::Lru, 3);
        for &b in &blocks {
            cache.access(BlockAddr::new(b), AccessKind::Read);
        }
        for set in 0..geom.num_sets() as usize {
            for b in cache.blocks_in_set(set) {
                prop_assert_eq!(geom.set_index(b), set);
            }
        }
    }

    #[test]
    fn bloom_has_no_false_negatives(
        blocks in prop::collection::vec(0u64..2048, 1..400),
    ) {
        let geom = CacheGeometry::new(4096, 4, 64);
        let mut cache = Cache::new(geom, PolicyKind::Lru, 1);
        let mut sig = BloomSignature::new(256, geom);
        for &raw in &blocks {
            let b = BlockAddr::new(raw);
            let res = cache.access(b, AccessKind::Read);
            if let Some(ev) = res.evicted() {
                sig.remove(ev.block, cache.blocks_in_set(geom.set_index(ev.block)));
            }
            if res.is_miss() {
                sig.insert(b);
            }
        }
        for cached in cache.blocks() {
            prop_assert!(sig.maybe_contains(cached), "false negative for {:?}", cached);
        }
    }

    #[test]
    fn classifier_counts_partition_misses(
        blocks in prop::collection::vec(0u64..128, 1..500),
        capacity in 1usize..64,
    ) {
        let mut cls = ThreeCClassifier::new(capacity);
        for &b in &blocks {
            cls.observe_miss(BlockAddr::new(b));
        }
        let bd = cls.breakdown();
        prop_assert_eq!(bd.total(), blocks.len() as u64);
        // Compulsory count equals the number of distinct blocks.
        let distinct: std::collections::HashSet<_> = blocks.iter().collect();
        prop_assert_eq!(bd.compulsory as usize, distinct.len());
    }

    #[test]
    fn fully_associative_lru_never_has_conflict_misses(
        blocks in prop::collection::vec(0u64..96, 1..500),
    ) {
        // A fully-associative LRU cache the same size as the shadow sees
        // identical evictions, so nothing can be classified conflict.
        let geom = CacheGeometry::new(32 * 64, 32, 64); // 1 set x 32 ways
        let mut cache = Cache::new(geom, PolicyKind::Lru, 1);
        let mut cls = ThreeCClassifier::new(32);
        for &raw in &blocks {
            let b = BlockAddr::new(raw);
            let res = cache.access(b, AccessKind::Read);
            if res.is_miss() {
                cls.observe_miss(b);
            } else {
                cls.observe(b);
            }
        }
        prop_assert_eq!(cls.breakdown().conflict, 0);
    }
}
