//! Partial-address bloom-filter cache signatures.
//!
//! SLICC's remote-cache segment search (§4.2.3) must answer "does core C's
//! L1-I hold block B?" without stealing tag-array bandwidth from C. The
//! paper adopts Peir et al.'s *partial-address bloom filter with eviction
//! support* [23]: one bit per filter entry, indexed by the low bits of the
//! block address. Because the filter index embeds the cache's set index
//! (the filter is larger than the number of sets), two blocks can only
//! collide in the filter if they live in the same set — so on an eviction
//! the signature checks just that one set for surviving colliders and can
//! clear the bit when none remain.
//!
//! The filter is a *superset* of the cache contents: it never produces
//! false negatives, only false positives. Figure 9 measures its accuracy
//! against filter size; §5.3 settles on 2K bits for a 32 KiB cache (99.3%
//! accuracy).

use slicc_common::{BlockAddr, CacheGeometry};

/// A partial-address bloom filter summarizing one cache's contents.
///
/// # Example
///
/// ```
/// use slicc_cache::BloomSignature;
/// use slicc_common::{BlockAddr, CacheGeometry};
///
/// let geom = CacheGeometry::new(32 * 1024, 8, 64);
/// let mut sig = BloomSignature::new(2048, geom);
/// let b = BlockAddr::new(0x40);
/// sig.insert(b);
/// assert!(sig.maybe_contains(b)); // never a false negative
/// ```
#[derive(Clone, Debug)]
pub struct BloomSignature {
    bits: Vec<bool>,
    /// Mask over the hashed tag part of the index.
    upper_mask: u64,
    geom: CacheGeometry,
}

impl BloomSignature {
    /// Creates an empty signature of `size_bits` entries for a cache of
    /// shape `geom`.
    ///
    /// # Panics
    ///
    /// Panics if `size_bits` is not a power of two, or is smaller than the
    /// cache's set count: the eviction-support property ("collisions occur
    /// only within sets") requires the filter index to be at least as wide
    /// as the set index. Figure 9 sweeps 512 bits — 8 K bits for the
    /// baseline cache; §5.3 settles on 2 K bits.
    pub fn new(size_bits: u64, geom: CacheGeometry) -> Self {
        assert!(size_bits.is_power_of_two(), "filter size must be a power of two");
        assert!(
            size_bits >= geom.num_sets(),
            "filter index ({size_bits} entries) must cover the set index ({} sets)",
            geom.num_sets()
        );
        BloomSignature {
            bits: vec![false; size_bits as usize],
            upper_mask: size_bits / geom.num_sets() - 1,
            geom,
        }
    }

    /// Number of filter entries (bits).
    pub fn size_bits(&self) -> u64 {
        self.bits.len() as u64
    }

    /// The filter index for `block`: the raw set-index bits (so
    /// collisions stay within one set — the eviction-support property)
    /// concatenated with a *hashed* partial tag. Hashing the tag keeps
    /// queries for consecutive blocks uncorrelated: without it, two code
    /// segments laid out a filter-period apart alias run-for-run and the
    /// MTQ's ANDed multi-block query false-positives wholesale.
    fn index(&self, block: BlockAddr) -> usize {
        let set = self.geom.set_index(block) as u64;
        let tag = self.geom.tag(block);
        // One SplitMix64-style mixing round.
        let mut h = tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
        ((h & self.upper_mask) << self.geom.set_index_bits() | set) as usize
    }

    /// Records that `block` is now cached.
    pub fn insert(&mut self, block: BlockAddr) {
        let idx = self.index(block);
        self.bits[idx] = true;
    }

    /// Records that `block` was evicted. `survivors` must iterate the
    /// blocks *still resident* in the evicted block's set (after the
    /// eviction); the bit is cleared only if no survivor collides with it.
    pub fn remove(&mut self, block: BlockAddr, survivors: impl Iterator<Item = BlockAddr>) {
        let idx = self.index(block);
        let collision = survivors
            .filter(|&s| s != block)
            .any(|s| self.index(s) == idx);
        if !collision {
            self.bits[idx] = false;
        }
    }

    /// Whether `block` *may* be cached. `false` is definitive; `true` may
    /// be a false positive.
    pub fn maybe_contains(&self, block: BlockAddr) -> bool {
        self.bits[self.index(block)]
    }

    /// Clears the filter (used when its cache is flushed).
    pub fn clear(&mut self) {
        self.bits.fill(false);
    }

    /// Number of set bits (diagnostics).
    pub fn popcount(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// The geometry of the cache this signature summarizes.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }
}

/// Tracks how often a signature and its cache agree, for Figure 9.
///
/// §5.3: "Accuracy is measured for all cache accesses and an access is
/// accurate if the bloom filter and the cache agree on whether this is a
/// hit or a miss."
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SignatureAccuracy {
    /// Accesses where filter and cache agreed.
    pub agreements: u64,
    /// Accesses where they disagreed (false positives, by construction).
    pub disagreements: u64,
}

impl SignatureAccuracy {
    /// Records one access: `filter_hit` is the signature's answer,
    /// `cache_hit` the ground truth.
    pub fn record(&mut self, filter_hit: bool, cache_hit: bool) {
        if filter_hit == cache_hit {
            self.agreements += 1;
        } else {
            self.disagreements += 1;
        }
    }

    /// Accuracy in `[0, 1]`; 1.0 when nothing has been recorded.
    pub fn accuracy(&self) -> f64 {
        let total = self.agreements + self.disagreements;
        if total == 0 {
            1.0
        } else {
            self.agreements as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessKind, Cache};
    use crate::policy::PolicyKind;
    use slicc_common::SplitMix64;

    fn baseline_geom() -> CacheGeometry {
        CacheGeometry::new(32 * 1024, 8, 64)
    }

    #[test]
    fn insert_then_query() {
        let mut sig = BloomSignature::new(2048, baseline_geom());
        let b = BlockAddr::new(0x123);
        assert!(!sig.maybe_contains(b));
        sig.insert(b);
        assert!(sig.maybe_contains(b));
    }

    #[test]
    fn remove_without_collision_clears_bit() {
        let mut sig = BloomSignature::new(2048, baseline_geom());
        let b = BlockAddr::new(0x123);
        sig.insert(b);
        sig.remove(b, std::iter::empty());
        assert!(!sig.maybe_contains(b));
    }

    /// Finds a block colliding with `b1` in the filter (same index).
    fn colliding_block(sig: &BloomSignature, b1: BlockAddr) -> BlockAddr {
        let sets = sig.geometry().num_sets();
        (1..100_000u64)
            .map(|k| BlockAddr::new(b1.raw() + k * sets))
            .find(|&b2| sig.index(b2) == sig.index(b1))
            .expect("a collision exists within the search range")
    }

    #[test]
    fn remove_with_collision_keeps_bit() {
        let geom = baseline_geom();
        let mut sig = BloomSignature::new(2048, geom);
        let b1 = BlockAddr::new(0x123);
        let b2 = colliding_block(&sig, b1);
        // Collisions are confined to one set (eviction-support property).
        assert_eq!(geom.set_index(b1), geom.set_index(b2));
        sig.insert(b1);
        sig.insert(b2);
        sig.remove(b1, std::iter::once(b2));
        // b2 still resident and colliding: bit must survive.
        assert!(sig.maybe_contains(b2));
        assert!(sig.maybe_contains(b1)); // false positive, by design
        sig.remove(b2, std::iter::empty());
        assert!(!sig.maybe_contains(b2));
    }

    #[test]
    fn consecutive_block_queries_are_decorrelated() {
        // The property the hashed tag buys: two same-length runs of
        // consecutive blocks one filter-period apart must not alias
        // run-for-run (that would make the MTQ's 4-block AND query
        // false-positive wholesale).
        let geom = baseline_geom();
        let sig = BloomSignature::new(2048, geom);
        let mut aliased_runs = 0;
        for stride in 1..64u64 {
            let base = BlockAddr::new(0x4000);
            let other = BlockAddr::new(0x4000 + stride * geom.num_sets());
            let run_aliases = (0..4).all(|i| sig.index(BlockAddr::new(base.raw() + i * geom.num_sets()))
                == sig.index(BlockAddr::new(other.raw() + i * geom.num_sets())));
            if run_aliases {
                aliased_runs += 1;
            }
        }
        assert_eq!(aliased_runs, 0, "whole runs must not alias");
    }

    #[test]
    fn colliding_blocks_share_a_set() {
        // The eviction-support property: filter index covers set index, so
        // filter collisions imply same set.
        let geom = baseline_geom();
        let sig = BloomSignature::new(2048, geom);
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let a = BlockAddr::new(rng.next_below(1 << 30));
            let b = BlockAddr::new(rng.next_below(1 << 30));
            if sig.index(a) == sig.index(b) {
                assert_eq!(geom.set_index(a), geom.set_index(b));
            }
        }
    }

    #[test]
    fn superset_invariant_under_random_traffic() {
        let geom = CacheGeometry::new(4096, 4, 64);
        let mut cache = Cache::new(geom, PolicyKind::Lru, 1);
        let mut sig = BloomSignature::new(512, geom);
        let mut rng = SplitMix64::new(5);
        for _ in 0..20_000 {
            let b = BlockAddr::new(rng.next_below(1024));
            let res = cache.access(b, AccessKind::Read);
            if let Some(ev) = res.evicted() {
                let set = geom.set_index(ev.block);
                sig.remove(ev.block, cache.blocks_in_set(set));
            }
            if res.is_miss() {
                sig.insert(b);
            }
            // Invariant: every cached block is claimed by the filter.
            if rng.next_below(100) == 0 {
                for cached in cache.blocks() {
                    assert!(sig.maybe_contains(cached), "false negative for {cached:?}");
                }
            }
        }
    }

    #[test]
    fn bigger_filters_are_more_accurate() {
        let geom = CacheGeometry::new(4096, 4, 64);
        let mut accuracies = Vec::new();
        for bits in [16u64, 64, 512, 4096] {
            let mut cache = Cache::new(geom, PolicyKind::Lru, 1);
            let mut sig = BloomSignature::new(bits, geom);
            let mut acc = SignatureAccuracy::default();
            let mut rng = SplitMix64::new(5);
            for _ in 0..20_000 {
                let b = BlockAddr::new(rng.next_below(1024));
                acc.record(sig.maybe_contains(b), cache.contains(b));
                let res = cache.access(b, AccessKind::Read);
                if let Some(ev) = res.evicted() {
                    sig.remove(ev.block, cache.blocks_in_set(geom.set_index(ev.block)));
                }
                if res.is_miss() {
                    sig.insert(b);
                }
            }
            accuracies.push(acc.accuracy());
        }
        for w in accuracies.windows(2) {
            assert!(w[0] <= w[1], "{accuracies:?}");
        }
        assert!(accuracies[2] > 0.9, "{accuracies:?}");
        // A filter with 4x the address-space's entries is nearly exact
        // (hashed-tag indexing leaves rare residual collisions).
        assert!(accuracies[3] > 0.99, "{accuracies:?}");
    }

    #[test]
    fn accuracy_tracker_arithmetic() {
        let mut a = SignatureAccuracy::default();
        assert_eq!(a.accuracy(), 1.0);
        a.record(true, true);
        a.record(false, false);
        a.record(true, false);
        assert!((a.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_size_panics() {
        let _ = BloomSignature::new(1000, baseline_geom());
    }

    #[test]
    #[should_panic(expected = "cover the set index")]
    fn undersized_filter_panics() {
        let _ = BloomSignature::new(32, baseline_geom()); // 64 sets
    }

    #[test]
    fn clear_and_popcount() {
        let mut sig = BloomSignature::new(2048, baseline_geom());
        sig.insert(BlockAddr::new(1));
        sig.insert(BlockAddr::new(2));
        assert_eq!(sig.popcount(), 2);
        sig.clear();
        assert_eq!(sig.popcount(), 0);
    }
}
