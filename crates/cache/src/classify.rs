//! The 3C miss taxonomy: compulsory / capacity / conflict.
//!
//! Figure 1 of the paper breaks L1 misses into Hill & Smith's three
//! categories [10] to show that OLTP *instruction* misses are dominated by
//! capacity (the footprint has reuse but doesn't fit) while *data* misses
//! are dominated by compulsory (first touch). The classifier runs beside a
//! real cache:
//!
//! - **compulsory** — the first access ever to the block;
//! - **conflict** — the block would have hit in a fully-associative LRU
//!   cache of the same capacity (so only the limited associativity lost it);
//! - **capacity** — it would have missed even fully-associatively.

use crate::lru_list::LruList;
use slicc_common::BlockAddr;
use std::collections::HashMap;
use std::fmt;

/// One of Hill & Smith's three miss categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First-ever reference to the block.
    Compulsory,
    /// Would have hit fully-associatively: lost to limited associativity.
    Conflict,
    /// Would have missed even fully-associatively: the working set simply
    /// exceeds the capacity.
    Capacity,
}

impl MissClass {
    /// All classes, in Figure 1's legend order.
    pub const ALL: [MissClass; 3] = [MissClass::Conflict, MissClass::Capacity, MissClass::Compulsory];

    /// Display label matching the paper's figure legend.
    pub const fn name(self) -> &'static str {
        match self {
            MissClass::Compulsory => "Compulsory",
            MissClass::Conflict => "Conflict",
            MissClass::Capacity => "Capacity",
        }
    }
}

impl fmt::Display for MissClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counts of misses per class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MissBreakdown {
    /// Compulsory misses observed.
    pub compulsory: u64,
    /// Conflict misses observed.
    pub conflict: u64,
    /// Capacity misses observed.
    pub capacity: u64,
}

impl MissBreakdown {
    /// Total classified misses.
    pub fn total(&self) -> u64 {
        self.compulsory + self.conflict + self.capacity
    }

    /// The count for one class.
    pub fn count(&self, class: MissClass) -> u64 {
        match class {
            MissClass::Compulsory => self.compulsory,
            MissClass::Conflict => self.conflict,
            MissClass::Capacity => self.capacity,
        }
    }

    /// Adds one miss of the given class.
    pub fn record(&mut self, class: MissClass) {
        match class {
            MissClass::Compulsory => self.compulsory += 1,
            MissClass::Conflict => self.conflict += 1,
            MissClass::Capacity => self.capacity += 1,
        }
    }
}

// Per-core breakdowns fold into the run-level one via the workspace-wide
// `Merge` trait.
slicc_common::impl_merge_counters!(MissBreakdown { compulsory, conflict, capacity });

/// Classifies the misses of one cache into the 3C taxonomy.
///
/// Drive it with *every* access of the monitored cache (hits included —
/// the fully-associative shadow must see the full reference stream), and
/// read the class back for accesses the real cache missed.
///
/// # Example
///
/// ```
/// use slicc_cache::{MissClass, ThreeCClassifier};
/// use slicc_common::BlockAddr;
///
/// let mut c = ThreeCClassifier::new(2); // shadow capacity: 2 blocks
/// assert_eq!(c.observe(BlockAddr::new(1)), MissClass::Compulsory);
/// assert_eq!(c.observe(BlockAddr::new(2)), MissClass::Compulsory);
/// assert_eq!(c.observe(BlockAddr::new(3)), MissClass::Compulsory);
/// // Block 1 was pushed out of the 2-block shadow by 2 and 3.
/// assert_eq!(c.observe(BlockAddr::new(1)), MissClass::Capacity);
/// ```
#[derive(Clone, Debug)]
pub struct ThreeCClassifier {
    /// Blocks ever seen (for compulsory detection). Value: arena slot in
    /// the shadow, or `usize::MAX` when currently not shadow-resident.
    seen: HashMap<BlockAddr, usize>,
    /// Fully-associative LRU shadow cache (block -> arena slot handles).
    shadow_lru: LruList,
    /// Arena slot -> block, for evicting.
    slot_block: Vec<BlockAddr>,
    /// Free arena slots.
    free_slots: Vec<usize>,
    capacity_blocks: usize,
    breakdown: MissBreakdown,
}

const NOT_RESIDENT: usize = usize::MAX;

impl ThreeCClassifier {
    /// Creates a classifier whose fully-associative shadow holds
    /// `capacity_blocks` blocks (use the monitored cache's block count).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_blocks` is zero.
    pub fn new(capacity_blocks: usize) -> Self {
        assert!(capacity_blocks > 0, "shadow capacity must be positive");
        ThreeCClassifier {
            seen: HashMap::new(),
            shadow_lru: LruList::new(capacity_blocks),
            slot_block: vec![BlockAddr::new(0); capacity_blocks],
            free_slots: (0..capacity_blocks).rev().collect(),
            capacity_blocks,
            breakdown: MissBreakdown::default(),
        }
    }

    /// Observes one access and returns the class the access *would* have
    /// if the real cache missed it. The caller records it into the
    /// breakdown via [`ThreeCClassifier::observe_miss`] only when the real
    /// cache actually missed; hits still update the shadow through this
    /// method.
    pub fn observe(&mut self, block: BlockAddr) -> MissClass {
        match self.seen.get(&block).copied() {
            None => {
                // First-ever touch.
                let slot = self.shadow_insert(block);
                self.seen.insert(block, slot);
                MissClass::Compulsory
            }
            Some(NOT_RESIDENT) => {
                // Seen before but fell out of the fully-associative
                // shadow: a true capacity re-miss.
                let slot = self.shadow_insert(block);
                self.seen.insert(block, slot);
                MissClass::Capacity
            }
            Some(slot) => {
                // Fully-associative LRU would have hit: if the real cache
                // missed, blame associativity.
                self.shadow_lru.touch(slot);
                MissClass::Conflict
            }
        }
    }

    /// Observes an access the real cache missed: classifies it *and*
    /// accumulates the breakdown.
    pub fn observe_miss(&mut self, block: BlockAddr) -> MissClass {
        let class = self.observe(block);
        self.breakdown.record(class);
        class
    }

    fn shadow_insert(&mut self, block: BlockAddr) -> usize {
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let victim = self.shadow_lru.pop_lru().expect("shadow is full, so non-empty");
                let victim_block = self.slot_block[victim];
                self.seen.insert(victim_block, NOT_RESIDENT);
                victim
            }
        };
        self.slot_block[slot] = block;
        self.shadow_lru.push_mru(slot);
        slot
    }

    /// The accumulated per-class miss counts.
    pub fn breakdown(&self) -> MissBreakdown {
        self.breakdown
    }

    /// Number of distinct blocks ever observed (the trace's block
    /// footprint).
    pub fn unique_blocks(&self) -> usize {
        self.seen.len()
    }

    /// The shadow capacity in blocks.
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_compulsory() {
        let mut c = ThreeCClassifier::new(8);
        assert_eq!(c.observe(BlockAddr::new(1)), MissClass::Compulsory);
        assert_eq!(c.unique_blocks(), 1);
    }

    #[test]
    fn rereference_within_capacity_is_conflict() {
        let mut c = ThreeCClassifier::new(8);
        c.observe(BlockAddr::new(1));
        // Still shadow-resident: a real-cache miss here is conflict.
        assert_eq!(c.observe(BlockAddr::new(1)), MissClass::Conflict);
    }

    #[test]
    fn rereference_beyond_capacity_is_capacity() {
        let mut c = ThreeCClassifier::new(2);
        c.observe(BlockAddr::new(1));
        c.observe(BlockAddr::new(2));
        c.observe(BlockAddr::new(3)); // evicts 1
        assert_eq!(c.observe(BlockAddr::new(1)), MissClass::Capacity);
    }

    #[test]
    fn lru_order_respected_by_shadow() {
        let mut c = ThreeCClassifier::new(2);
        c.observe(BlockAddr::new(1));
        c.observe(BlockAddr::new(2));
        c.observe(BlockAddr::new(1)); // touch 1: now 2 is LRU
        c.observe(BlockAddr::new(3)); // evicts 2
        assert_eq!(c.observe(BlockAddr::new(1)), MissClass::Conflict);
        assert_eq!(c.observe(BlockAddr::new(2)), MissClass::Capacity);
    }

    #[test]
    fn cyclic_thrash_is_all_capacity_after_first_pass() {
        let mut c = ThreeCClassifier::new(4);
        let blocks: Vec<_> = (0..8u64).map(BlockAddr::new).collect();
        for &b in &blocks {
            assert_eq!(c.observe_miss(b), MissClass::Compulsory);
        }
        for _ in 0..3 {
            for &b in &blocks {
                assert_eq!(c.observe_miss(b), MissClass::Capacity);
            }
        }
        let bd = c.breakdown();
        assert_eq!(bd.compulsory, 8);
        assert_eq!(bd.capacity, 24);
        assert_eq!(bd.conflict, 0);
        assert_eq!(bd.total(), 32);
    }

    #[test]
    fn breakdown_counts_only_observed_misses() {
        let mut c = ThreeCClassifier::new(4);
        c.observe(BlockAddr::new(1)); // hit path: not recorded
        assert_eq!(c.breakdown().total(), 0);
        c.observe_miss(BlockAddr::new(2));
        assert_eq!(c.breakdown().compulsory, 1);
    }

    #[test]
    fn classes_partition_every_miss() {
        use slicc_common::SplitMix64;
        let mut c = ThreeCClassifier::new(16);
        let mut rng = SplitMix64::new(11);
        let mut total = 0u64;
        for _ in 0..5000 {
            c.observe_miss(BlockAddr::new(rng.next_below(64)));
            total += 1;
        }
        assert_eq!(c.breakdown().total(), total);
    }

    #[test]
    fn count_accessor_matches_fields() {
        let mut bd = MissBreakdown::default();
        bd.record(MissClass::Conflict);
        bd.record(MissClass::Conflict);
        bd.record(MissClass::Capacity);
        assert_eq!(bd.count(MissClass::Conflict), 2);
        assert_eq!(bd.count(MissClass::Capacity), 1);
        assert_eq!(bd.count(MissClass::Compulsory), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(MissClass::Capacity.to_string(), "Capacity");
        assert_eq!(MissClass::ALL.len(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = ThreeCClassifier::new(0);
    }
}
