//! Miss-status holding registers (MSHRs).
//!
//! Table 2 gives each L1 32 MSHRs and the L2 64. The timing model uses
//! them to bound memory-level parallelism: a miss can only overlap with
//! other work if an MSHR is free, and misses to a block already in flight
//! merge into the existing entry instead of issuing again.

use slicc_common::{BlockAddr, Cycle};

/// Outcome of registering a miss with the MSHR file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the miss goes out to the next level.
    Allocated,
    /// The block is already in flight; this miss merges and completes at
    /// the given time.
    Merged(Cycle),
    /// No entry free: the pipeline must stall until one frees up at the
    /// given time (the earliest completion among current entries).
    Full(Cycle),
}

/// A fixed-size file of in-flight misses.
///
/// # Example
///
/// ```
/// use slicc_cache::{MshrFile, mshr::MshrOutcome};
/// use slicc_common::BlockAddr;
///
/// let mut mshrs = MshrFile::new(2);
/// assert_eq!(mshrs.register(BlockAddr::new(1), 100), MshrOutcome::Allocated);
/// assert_eq!(mshrs.register(BlockAddr::new(1), 100), MshrOutcome::Merged(100));
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<(BlockAddr, Cycle)>,
    capacity: usize,
}

impl MshrFile {
    /// Creates an empty file of `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Registers a miss to `block` that will complete at `ready_at`.
    /// Expired entries (ready before `ready_at`'s issue implied by the
    /// caller calling [`MshrFile::retire_before`]) are not implicitly
    /// removed — callers should retire first.
    pub fn register(&mut self, block: BlockAddr, ready_at: Cycle) -> MshrOutcome {
        if let Some(&(_, ready)) = self.entries.iter().find(|(b, _)| *b == block) {
            return MshrOutcome::Merged(ready);
        }
        if self.entries.len() == self.capacity {
            let earliest = self
                .entries
                .iter()
                .map(|&(_, r)| r)
                .min()
                .expect("full file is non-empty");
            return MshrOutcome::Full(earliest);
        }
        self.entries.push((block, ready_at));
        MshrOutcome::Allocated
    }

    /// Releases every entry whose fill completes at or before `now`.
    pub fn retire_before(&mut self, now: Cycle) {
        self.entries.retain(|&(_, ready)| ready > now);
    }

    /// Number of in-flight entries.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// Whether a miss to a *new* block can allocate right now.
    pub fn has_free(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// The configured number of registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears all entries (e.g. across a measurement boundary).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_full_lifecycle() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.register(BlockAddr::new(1), 50), MshrOutcome::Allocated);
        assert_eq!(m.register(BlockAddr::new(2), 80), MshrOutcome::Allocated);
        assert_eq!(m.register(BlockAddr::new(1), 999), MshrOutcome::Merged(50));
        assert_eq!(m.register(BlockAddr::new(3), 90), MshrOutcome::Full(50));
        assert_eq!(m.in_flight(), 2);
    }

    #[test]
    fn retire_frees_completed_entries() {
        let mut m = MshrFile::new(2);
        m.register(BlockAddr::new(1), 50);
        m.register(BlockAddr::new(2), 80);
        m.retire_before(50);
        assert_eq!(m.in_flight(), 1);
        assert!(m.has_free());
        assert_eq!(m.register(BlockAddr::new(3), 120), MshrOutcome::Allocated);
    }

    #[test]
    fn retire_before_keeps_future_entries() {
        let mut m = MshrFile::new(4);
        m.register(BlockAddr::new(1), 100);
        m.retire_before(99);
        assert_eq!(m.in_flight(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut m = MshrFile::new(2);
        m.register(BlockAddr::new(1), 5);
        m.clear();
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
