//! Per-cache access statistics.

/// Counters accumulated by a [`crate::Cache`].
///
/// All counters are monotonically increasing; [`CacheStats::reset`] zeroes
/// them (used between an experiment's warm-up and measured phases).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups (reads + writes), excluding prefetch fills.
    pub accesses: u64,
    /// Demand lookups that hit.
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
    /// Misses caused by write accesses.
    pub write_misses: u64,
    /// Valid blocks displaced by fills.
    pub evictions: u64,
    /// Dirty blocks displaced by fills (write-backs).
    pub dirty_evictions: u64,
    /// Blocks removed by external invalidation (coherence).
    pub invalidations: u64,
    /// Blocks installed by prefetch rather than demand miss.
    pub prefetch_fills: u64,
    /// Demand misses that found the block already being prefetched or
    /// pre-installed (counted by the prefetcher wrapper, not the cache).
    pub prefetch_hits: u64,
}

impl CacheStats {
    /// Fraction of demand accesses that missed, in `[0, 1]`; zero when no
    /// accesses have been recorded.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per kilo-*access*. (The simulator computes misses per
    /// kilo-instruction at the system level, where the instruction count
    /// lives.)
    pub fn mpka(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1000.0 * self.misses as f64 / self.accesses as f64
        }
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

// Aggregation across caches (e.g. the 16 per-core L1s) goes through the
// workspace-wide `Merge` trait; see `slicc_common::merge`.
slicc_common::impl_merge_counters!(CacheStats {
    accesses,
    hits,
    misses,
    write_misses,
    evictions,
    dirty_evictions,
    invalidations,
    prefetch_fills,
    prefetch_hits,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero_accesses() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
        assert_eq!(CacheStats::default().mpka(), 0.0);
    }

    #[test]
    fn miss_rate_and_mpka() {
        let s = CacheStats { accesses: 200, hits: 150, misses: 50, ..Default::default() };
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.mpka() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = CacheStats { accesses: 5, ..Default::default() };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }

    #[test]
    fn merge_sums_counters() {
        use slicc_common::Merge;
        let mut a = CacheStats { accesses: 10, hits: 7, misses: 3, ..Default::default() };
        a.merge(&CacheStats { accesses: 5, hits: 1, misses: 4, evictions: 2, ..Default::default() });
        assert_eq!(a.accesses, 15);
        assert_eq!(a.hits, 8);
        assert_eq!(a.misses, 7);
        assert_eq!(a.evictions, 2);
    }
}
