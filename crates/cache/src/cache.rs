//! The set-associative cache model.
//!
//! One [`Cache`] instance models one physical cache (an L1-I, an L1-D, or
//! one bank's worth of L2). It is a *functional* model — it answers
//! hit/miss and tracks contents; all timing lives in the simulator crates.
//! Fills happen on miss (allocate-on-miss), matching the paper's baseline.

use crate::policy::{Policy, PolicyKind};
use crate::stats::CacheStats;
use slicc_common::{BlockAddr, CacheGeometry};

/// Whether an access reads or writes the block (writes mark it dirty and,
/// at the coherence layer, demand exclusivity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch or data load.
    Read,
    /// Data store.
    Write,
}

impl AccessKind {
    /// Whether this access is a store.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// A valid block displaced by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedBlock {
    /// The displaced block's address.
    pub block: BlockAddr,
    /// Whether it held modified data (requires a write-back).
    pub dirty: bool,
}

/// Result of a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupResult {
    /// The block was present.
    Hit,
    /// The block was absent; it has been installed, possibly displacing
    /// `evicted`.
    Miss {
        /// The valid block displaced by this fill, if any.
        evicted: Option<EvictedBlock>,
    },
}

impl LookupResult {
    /// Whether this access hit.
    pub const fn is_hit(self) -> bool {
        matches!(self, LookupResult::Hit)
    }

    /// Whether this access missed.
    pub const fn is_miss(self) -> bool {
        !self.is_hit()
    }

    /// The displaced block, if this was a miss that evicted one.
    pub fn evicted(self) -> Option<EvictedBlock> {
        match self {
            LookupResult::Hit => None,
            LookupResult::Miss { evicted } => evicted,
        }
    }
}

/// A set-associative cache with a pluggable replacement policy.
///
/// # Example
///
/// ```
/// use slicc_cache::{AccessKind, Cache, PolicyKind};
/// use slicc_common::{BlockAddr, CacheGeometry};
///
/// let mut c = Cache::new(CacheGeometry::new(4096, 2, 64), PolicyKind::Lru, 0);
/// let b = BlockAddr::new(7);
/// assert!(c.access(b, AccessKind::Read).is_miss());
/// assert!(c.access(b, AccessKind::Read).is_hit());
/// assert!(c.contains(b));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    geom: CacheGeometry,
    /// Flattened `num_sets * assoc` tag array.
    tags: Vec<u64>,
    /// Per-set bitmask of valid ways (bit `w` = way `w` holds a block).
    valid: Vec<u64>,
    /// Per-set bitmask of dirty ways.
    dirty: Vec<u64>,
    /// Mask with one bit per way (`assoc` low bits set).
    all_ways: u64,
    policy: Policy,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache. `seed` drives the stochastic insertion
    /// policies (BIP/BRRIP and their dueling parents); caches with the
    /// same seed behave identically.
    ///
    /// # Panics
    ///
    /// Panics if the associativity exceeds 64 (one mask word per set).
    pub fn new(geom: CacheGeometry, policy: PolicyKind, seed: u64) -> Self {
        let sets = geom.num_sets() as usize;
        let assoc = geom.associativity() as usize;
        assert!(assoc <= 64, "way masks hold at most 64 ways, got {assoc}");
        Cache {
            geom,
            tags: vec![0; sets * assoc],
            valid: vec![0; sets],
            dirty: vec![0; sets],
            all_ways: if assoc == 64 { u64::MAX } else { (1u64 << assoc) - 1 },
            policy: Policy::new(policy, sets, assoc, seed),
            stats: CacheStats::default(),
        }
    }

    /// The cache's shape.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The replacement policy in use.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes the statistics (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn assoc(&self) -> usize {
        self.geom.associativity() as usize
    }

    /// Finds the way holding `block` in `set`, if present and valid.
    /// Scans only the valid ways, walking the set's mask bit by bit.
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.assoc();
        let mut live = self.valid[set];
        while live != 0 {
            let w = live.trailing_zeros() as usize;
            if self.tags[base + w] == tag {
                return Some(w);
            }
            live &= live - 1;
        }
        None
    }

    /// Performs a demand access: returns hit/miss and installs the block
    /// on miss (allocate-on-miss, for reads and writes alike).
    pub fn access(&mut self, block: BlockAddr, kind: AccessKind) -> LookupResult {
        let set = self.geom.set_index(block);
        let tag = self.geom.tag(block);
        self.stats.accesses += 1;
        if let Some(way) = self.find_way(set, tag) {
            self.stats.hits += 1;
            self.policy.on_hit(set, way);
            if kind.is_write() {
                self.dirty[set] |= 1 << way;
            }
            return LookupResult::Hit;
        }
        self.stats.misses += 1;
        if kind.is_write() {
            self.stats.write_misses += 1;
        }
        self.policy.on_miss(set);
        let evicted = self.install(set, tag, kind.is_write());
        LookupResult::Miss { evicted }
    }

    /// Installs a block without a demand access (prefetch fill). Returns
    /// the displaced block, if any; a no-op returning `None` when the
    /// block is already present.
    pub fn fill(&mut self, block: BlockAddr) -> Option<EvictedBlock> {
        let set = self.geom.set_index(block);
        let tag = self.geom.tag(block);
        if self.find_way(set, tag).is_some() {
            return None;
        }
        self.stats.prefetch_fills += 1;
        self.install(set, tag, false)
    }

    /// Picks a way (invalid first, else policy victim) and installs
    /// `(set, tag)` there.
    fn install(&mut self, set: usize, tag: u64, write: bool) -> Option<EvictedBlock> {
        let base = set * self.assoc();
        let vacant = !self.valid[set] & self.all_ways;
        let (way, evicted) = if vacant != 0 {
            (vacant.trailing_zeros() as usize, None)
        } else {
            let way = self.policy.choose_victim(set);
            let old = EvictedBlock {
                block: self.geom.block_from_parts(set, self.tags[base + way]),
                dirty: self.dirty[set] >> way & 1 != 0,
            };
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.dirty_evictions += 1;
            }
            (way, Some(old))
        };
        self.tags[base + way] = tag;
        self.valid[set] |= 1 << way;
        if write {
            self.dirty[set] |= 1 << way;
        } else {
            self.dirty[set] &= !(1 << way);
        }
        self.policy.on_insert(set, way);
        evicted
    }

    /// Whether `block` is currently cached. No state change.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.find_way(self.geom.set_index(block), self.geom.tag(block)).is_some()
    }

    /// Whether `block` is cached dirty. No state change.
    pub fn contains_dirty(&self, block: BlockAddr) -> bool {
        let set = self.geom.set_index(block);
        match self.find_way(set, self.geom.tag(block)) {
            Some(way) => self.dirty[set] >> way & 1 != 0,
            None => false,
        }
    }

    /// Removes `block` (coherence invalidation). Returns the block's state
    /// if it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<EvictedBlock> {
        let set = self.geom.set_index(block);
        let way = self.find_way(set, self.geom.tag(block))?;
        let out = EvictedBlock { block, dirty: self.dirty[set] >> way & 1 != 0 };
        self.valid[set] &= !(1 << way);
        self.dirty[set] &= !(1 << way);
        self.stats.invalidations += 1;
        self.policy.on_invalidate(set, way);
        Some(out)
    }

    /// Marks `block` dirty if present (an inclusive outer cache absorbing
    /// a write-back from an inner cache). Returns whether it was present.
    pub fn mark_dirty(&mut self, block: BlockAddr) -> bool {
        let set = self.geom.set_index(block);
        if let Some(way) = self.find_way(set, self.geom.tag(block)) {
            self.dirty[set] |= 1 << way;
            true
        } else {
            false
        }
    }

    /// Downgrades `block` to clean (coherence: another core wants to read
    /// a dirty copy). Returns whether the block was present and dirty.
    pub fn clean(&mut self, block: BlockAddr) -> bool {
        let set = self.geom.set_index(block);
        if let Some(way) = self.find_way(set, self.geom.tag(block)) {
            let was_dirty = self.dirty[set] >> way & 1 != 0;
            self.dirty[set] &= !(1 << way);
            was_dirty
        } else {
            false
        }
    }

    /// Iterates the valid blocks of one set (used by the bloom signature's
    /// eviction-collision check).
    pub fn blocks_in_set(&self, set: usize) -> impl Iterator<Item = BlockAddr> + '_ {
        let base = set * self.assoc();
        let live = self.valid[set];
        (0..self.assoc())
            .filter(move |w| live >> w & 1 != 0)
            .map(move |w| self.geom.block_from_parts(set, self.tags[base + w]))
    }

    /// Iterates every valid block in the cache. O(num_blocks).
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        (0..self.geom.num_sets() as usize).flat_map(move |s| self.blocks_in_set(s))
    }

    /// Number of valid blocks currently resident.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }

    /// Invalidates everything (does not count as coherence invalidations).
    pub fn flush(&mut self) {
        for set in 0..self.valid.len() {
            let mut live = self.valid[set];
            while live != 0 {
                let way = live.trailing_zeros() as usize;
                self.policy.on_invalidate(set, way);
                live &= live - 1;
            }
            self.valid[set] = 0;
            self.dirty[set] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(policy: PolicyKind) -> Cache {
        // 2 sets x 2 ways of 64 B blocks.
        Cache::new(CacheGeometry::new(256, 2, 64), policy, 1)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(PolicyKind::Lru);
        let b = BlockAddr::new(4);
        assert!(c.access(b, AccessKind::Read).is_miss());
        assert!(c.access(b, AccessKind::Read).is_hit());
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn eviction_reports_displaced_block() {
        let mut c = small_cache(PolicyKind::Lru);
        // Blocks 0, 2, 4 all map to set 0 (even block numbers, 2 sets).
        let (b0, b2, b4) = (BlockAddr::new(0), BlockAddr::new(2), BlockAddr::new(4));
        c.access(b0, AccessKind::Read);
        c.access(b2, AccessKind::Read);
        let res = c.access(b4, AccessKind::Read);
        assert_eq!(res.evicted(), Some(EvictedBlock { block: b0, dirty: false }));
        assert!(!c.contains(b0));
        assert!(c.contains(b2) && c.contains(b4));
    }

    #[test]
    fn lru_keeps_recently_used_block() {
        let mut c = small_cache(PolicyKind::Lru);
        let (b0, b2, b4) = (BlockAddr::new(0), BlockAddr::new(2), BlockAddr::new(4));
        c.access(b0, AccessKind::Read);
        c.access(b2, AccessKind::Read);
        c.access(b0, AccessKind::Read); // promote b0
        let res = c.access(b4, AccessKind::Read);
        assert_eq!(res.evicted().unwrap().block, b2);
    }

    #[test]
    fn writes_mark_dirty_and_evictions_report_it() {
        let mut c = small_cache(PolicyKind::Lru);
        let (b0, b2, b4) = (BlockAddr::new(0), BlockAddr::new(2), BlockAddr::new(4));
        c.access(b0, AccessKind::Write);
        assert!(c.contains_dirty(b0));
        c.access(b2, AccessKind::Read);
        let res = c.access(b4, AccessKind::Read);
        assert_eq!(res.evicted(), Some(EvictedBlock { block: b0, dirty: true }));
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(c.stats().write_misses, 1);
    }

    #[test]
    fn write_hit_dirties_clean_block() {
        let mut c = small_cache(PolicyKind::Lru);
        let b = BlockAddr::new(0);
        c.access(b, AccessKind::Read);
        assert!(!c.contains_dirty(b));
        c.access(b, AccessKind::Write);
        assert!(c.contains_dirty(b));
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = small_cache(PolicyKind::Lru);
        let b = BlockAddr::new(0);
        c.access(b, AccessKind::Write);
        let out = c.invalidate(b);
        assert_eq!(out, Some(EvictedBlock { block: b, dirty: true }));
        assert!(!c.contains(b));
        assert_eq!(c.invalidate(b), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn clean_downgrades_dirty_block() {
        let mut c = small_cache(PolicyKind::Lru);
        let b = BlockAddr::new(0);
        c.access(b, AccessKind::Write);
        assert!(c.clean(b));
        assert!(c.contains(b));
        assert!(!c.contains_dirty(b));
        assert!(!c.clean(b)); // already clean
        assert!(!c.clean(BlockAddr::new(99))); // absent
    }

    #[test]
    fn fill_installs_without_demand_stats() {
        let mut c = small_cache(PolicyKind::Lru);
        let b = BlockAddr::new(0);
        assert!(c.fill(b).is_none());
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert!(c.access(b, AccessKind::Read).is_hit());
        // Filling a resident block is a no-op.
        assert!(c.fill(b).is_none());
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn occupancy_and_blocks_iteration() {
        let mut c = small_cache(PolicyKind::Lru);
        for raw in [0u64, 1, 2, 3] {
            c.access(BlockAddr::new(raw), AccessKind::Read);
        }
        assert_eq!(c.occupancy(), 4);
        let mut all: Vec<_> = c.blocks().map(|b| b.raw()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        let set0: Vec<_> = c.blocks_in_set(0).map(|b| b.raw()).collect();
        assert_eq!(set0.len(), 2);
        assert!(set0.iter().all(|r| r % 2 == 0));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small_cache(PolicyKind::Lru);
        c.access(BlockAddr::new(0), AccessKind::Write);
        c.access(BlockAddr::new(1), AccessKind::Read);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(BlockAddr::new(0)));
        // Flush is not a coherence invalidation.
        assert_eq!(c.stats().invalidations, 0);
    }

    #[test]
    fn never_exceeds_associativity_per_set() {
        let mut c = small_cache(PolicyKind::Srrip);
        for raw in 0..100u64 {
            c.access(BlockAddr::new(raw), AccessKind::Read);
        }
        assert_eq!(c.occupancy(), 4); // 2 sets x 2 ways
        for set in 0..2 {
            assert!(c.blocks_in_set(set).count() <= 2);
        }
    }

    #[test]
    fn blocks_land_in_their_indexed_set() {
        let mut c = Cache::new(CacheGeometry::new(32 * 1024, 8, 64), PolicyKind::Lru, 0);
        let b = BlockAddr::new(0x1234);
        c.access(b, AccessKind::Read);
        let set = c.geometry().set_index(b);
        assert!(c.blocks_in_set(set).any(|x| x == b));
    }

    #[test]
    fn all_policies_function_under_thrash() {
        for kind in PolicyKind::ALL {
            let mut c = Cache::new(CacheGeometry::new(4096, 4, 64), kind, 3);
            // Working set of 3x capacity, cycled 10 times.
            let blocks: Vec<_> = (0..192u64).map(BlockAddr::new).collect();
            for _ in 0..10 {
                for &b in &blocks {
                    c.access(b, AccessKind::Read);
                }
            }
            let s = c.stats();
            assert_eq!(s.accesses, 1920, "{kind}");
            assert_eq!(s.hits + s.misses, s.accesses, "{kind}");
            assert!(c.occupancy() <= 64, "{kind}");
            // Thrash-resistant policies (BIP/BRRIP families) must beat or
            // match plain LRU's zero hits on a cyclic over-capacity sweep.
            if matches!(kind, PolicyKind::Lru) {
                assert_eq!(s.hits, 0, "LRU gets no hits on cyclic thrash");
            }
            if matches!(kind, PolicyKind::Bip | PolicyKind::Brrip | PolicyKind::Dip | PolicyKind::Drrip) {
                assert!(s.hits > 0, "{kind} should retain part of the working set");
            }
        }
    }
}
