//! An arena-backed doubly-linked LRU list.
//!
//! Used by the fully-associative shadow cache of the 3C classifier
//! ([`crate::classify`]), where capacity can reach thousands of blocks and
//! per-access cost must stay O(1). Slots are indexed by `usize` handles into
//! a fixed arena; the caller maps keys to handles (e.g. with a `HashMap`).

/// Sentinel meaning "no slot".
const NIL: u32 = u32::MAX;

/// A fixed-capacity doubly-linked list ordering slots from most- to
/// least-recently used.
///
/// All operations are O(1). The list tracks *handles* (slot indices); the
/// caller owns the association between handles and data.
///
/// # Example
///
/// ```
/// use slicc_cache::LruList;
///
/// let mut lru = LruList::new(3);
/// lru.push_mru(0);
/// lru.push_mru(1);
/// lru.push_mru(2);
/// assert_eq!(lru.lru(), Some(0));
/// lru.touch(0); // promote to MRU
/// assert_eq!(lru.lru(), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct LruList {
    prev: Vec<u32>,
    next: Vec<u32>,
    /// Whether a slot is currently linked.
    linked: Vec<bool>,
    head: u32,
    tail: u32,
    len: usize,
}

impl LruList {
    /// Creates a list able to hold `capacity` slots, all initially
    /// unlinked.
    pub fn new(capacity: usize) -> Self {
        LruList {
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            linked: vec![false; capacity],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of linked slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slots are linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.prev.len()
    }

    /// Whether `slot` is currently linked.
    pub fn contains(&self, slot: usize) -> bool {
        self.linked[slot]
    }

    /// The most-recently-used slot.
    pub fn mru(&self) -> Option<usize> {
        (self.head != NIL).then_some(self.head as usize)
    }

    /// The least-recently-used slot.
    pub fn lru(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail as usize)
    }

    /// Links `slot` at the MRU position.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is already linked or out of range.
    pub fn push_mru(&mut self, slot: usize) {
        assert!(!self.linked[slot], "slot {slot} is already linked");
        let s = slot as u32;
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = s;
        } else {
            self.tail = s;
        }
        self.head = s;
        self.linked[slot] = true;
        self.len += 1;
    }

    /// Links `slot` at the LRU position (LIP-style insertion).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is already linked or out of range.
    pub fn push_lru(&mut self, slot: usize) {
        assert!(!self.linked[slot], "slot {slot} is already linked");
        let s = slot as u32;
        self.next[slot] = NIL;
        self.prev[slot] = self.tail;
        if self.tail != NIL {
            self.next[self.tail as usize] = s;
        } else {
            self.head = s;
        }
        self.tail = s;
        self.linked[slot] = true;
        self.len += 1;
    }

    /// Unlinks `slot`. Returns `false` if it was not linked.
    pub fn remove(&mut self, slot: usize) -> bool {
        if !self.linked[slot] {
            return false;
        }
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.linked[slot] = false;
        self.len -= 1;
        true
    }

    /// Promotes `slot` to the MRU position.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not linked.
    pub fn touch(&mut self, slot: usize) {
        assert!(self.linked[slot], "slot {slot} is not linked");
        if self.head == slot as u32 {
            return;
        }
        self.remove(slot);
        self.push_mru(slot);
    }

    /// Unlinks and returns the LRU slot.
    pub fn pop_lru(&mut self) -> Option<usize> {
        let victim = self.lru()?;
        self.remove(victim);
        Some(victim)
    }

    /// Iterates slots from MRU to LRU. O(len); intended for tests and
    /// debugging, not hot paths.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        std::iter::successors((self.head != NIL).then_some(self.head as usize), move |&s| {
            let n = self.next[s];
            (n != NIL).then_some(n as usize)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_touch_pop_ordering() {
        let mut l = LruList::new(4);
        l.push_mru(0);
        l.push_mru(1);
        l.push_mru(2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![2, 1, 0]);
        l.touch(0);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 2, 1]);
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn push_lru_inserts_at_tail() {
        let mut l = LruList::new(3);
        l.push_mru(0);
        l.push_lru(1);
        assert_eq!(l.lru(), Some(1));
        assert_eq!(l.mru(), Some(0));
    }

    #[test]
    fn remove_middle_keeps_links() {
        let mut l = LruList::new(3);
        l.push_mru(0);
        l.push_mru(1);
        l.push_mru(2);
        assert!(l.remove(1));
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![2, 0]);
        assert!(!l.remove(1));
    }

    #[test]
    fn singleton_list_edges() {
        let mut l = LruList::new(2);
        l.push_mru(1);
        assert_eq!(l.mru(), l.lru());
        l.touch(1);
        assert_eq!(l.pop_lru(), Some(1));
        assert!(l.is_empty());
        assert_eq!(l.pop_lru(), None);
    }

    #[test]
    #[should_panic(expected = "already linked")]
    fn double_push_panics() {
        let mut l = LruList::new(2);
        l.push_mru(0);
        l.push_mru(0);
    }

    #[test]
    fn relink_after_remove() {
        let mut l = LruList::new(2);
        l.push_mru(0);
        l.remove(0);
        l.push_lru(0);
        assert!(l.contains(0));
        assert_eq!(l.len(), 1);
    }
}
