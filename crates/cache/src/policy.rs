//! Replacement and insertion policies.
//!
//! §2.1.2 of the paper compares seven policies on the baseline 32 KiB L1-I
//! (Figure 2): classic **LRU**; Qureshi et al.'s insertion-policy family
//! (**LIP** — insert at LRU, **BIP** — insert at MRU with low probability,
//! **DIP** — set-dueling between LRU and BIP); and Jaleel et al.'s
//! re-reference interval prediction family (**SRRIP**, **BRRIP**, and the
//! set-dueling **DRRIP**). The paper finds BRRIP/DRRIP best, reducing
//! misses by ~8% — far short of what larger caches (and SLICC) achieve.
//!
//! Policies are per-set state machines. The [`Policy`] object stores the
//! state for every set of one cache and is driven by [`crate::Cache`].

use slicc_common::SplitMix64;
use std::fmt;

/// Bimodal throttle: BIP inserts at MRU (and BRRIP at "long" instead of
/// "distant") with probability 1/32, per the original papers.
const BIMODAL_ONE_IN: u64 = 32;

/// Maximum re-reference prediction value for 2-bit RRIP.
const RRPV_MAX: u8 = 3;

/// The seven replacement/insertion policies of Figure 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently-used: insert at MRU, promote to MRU on hit.
    Lru,
    /// LRU-Insertion Policy: insert at LRU, promote to MRU on hit.
    Lip,
    /// Bimodal Insertion Policy: LIP, but insert at MRU 1/32 of the time.
    Bip,
    /// Dynamic Insertion Policy: set-dueling between LRU and BIP.
    Dip,
    /// Static RRIP: 2-bit re-reference intervals, insert "long".
    Srrip,
    /// Bimodal RRIP: insert "distant", 1/32 of the time "long".
    Brrip,
    /// Dynamic RRIP: set-dueling between SRRIP and BRRIP.
    Drrip,
}

impl PolicyKind {
    /// All policies, in Figure 2's presentation order.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Lru,
        PolicyKind::Lip,
        PolicyKind::Bip,
        PolicyKind::Dip,
        PolicyKind::Srrip,
        PolicyKind::Brrip,
        PolicyKind::Drrip,
    ];

    /// Short display name matching the paper's figure labels.
    pub const fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Lip => "LIP",
            PolicyKind::Bip => "BIP",
            PolicyKind::Dip => "DIP",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Brrip => "BRRIP",
            PolicyKind::Drrip => "DRRIP",
        }
    }

    /// Whether this policy uses set-dueling between two component
    /// policies.
    pub const fn is_dueling(self) -> bool {
        matches!(self, PolicyKind::Dip | PolicyKind::Drrip)
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl slicc_common::StableHash for PolicyKind {
    fn stable_hash(&self, h: &mut slicc_common::StableHasher) {
        // Variants hash by explicit ordinal so run-cache keys survive
        // reordering of the enum's declaration.
        let ordinal: u64 = match self {
            PolicyKind::Lru => 0,
            PolicyKind::Lip => 1,
            PolicyKind::Bip => 2,
            PolicyKind::Dip => 3,
            PolicyKind::Srrip => 4,
            PolicyKind::Brrip => 5,
            PolicyKind::Drrip => 6,
        };
        ordinal.stable_hash(h);
    }
}

/// Which component policy a set-dueling leader set is dedicated to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Leader {
    /// The "primary" component (LRU for DIP, SRRIP for DRRIP).
    Primary,
    /// The "bimodal" component (BIP for DIP, BRRIP for DRRIP).
    Bimodal,
}

/// Set-dueling monitor: a saturating PSEL counter updated on misses in
/// leader sets; follower sets adopt whichever component is missing less.
#[derive(Clone, Debug)]
struct DuelMonitor {
    psel: u32,
    psel_max: u32,
    /// Leader stride: set `i` leads Primary if `i % stride == 0`,
    /// Bimodal if `i % stride == stride / 2`.
    stride: usize,
}

impl DuelMonitor {
    fn new(num_sets: usize) -> Self {
        // With 64-set L1s a stride of 32 gives two leader sets per
        // component, mirroring the constrained budget of real set-dueling.
        let stride = num_sets.clamp(2, 32);
        DuelMonitor { psel: 512, psel_max: 1023, stride }
    }

    fn leader(&self, set: usize) -> Option<Leader> {
        if set.is_multiple_of(self.stride) {
            Some(Leader::Primary)
        } else if set % self.stride == self.stride / 2 {
            Some(Leader::Bimodal)
        } else {
            None
        }
    }

    /// Records a miss in `set`; misses in a leader set vote against its
    /// component.
    fn on_miss(&mut self, set: usize) {
        match self.leader(set) {
            Some(Leader::Primary) => self.psel = (self.psel + 1).min(self.psel_max),
            Some(Leader::Bimodal) => self.psel = self.psel.saturating_sub(1),
            None => {}
        }
    }

    /// The component follower sets should use right now.
    fn winner(&self) -> Leader {
        if self.psel > self.psel_max / 2 {
            Leader::Bimodal
        } else {
            Leader::Primary
        }
    }

    /// The component `set` must use: its own if it is a leader, the
    /// winner's otherwise.
    fn component_for(&self, set: usize) -> Leader {
        self.leader(set).unwrap_or_else(|| self.winner())
    }
}

/// Per-set replacement state for one cache.
#[derive(Clone, Debug)]
pub(crate) struct Policy {
    kind: PolicyKind,
    assoc: usize,
    engine: Engine,
    duel: Option<DuelMonitor>,
    rng: SplitMix64,
}

#[derive(Clone, Debug)]
enum Engine {
    /// Recency-stack policies (LRU/LIP/BIP/DIP): per set, way indices
    /// ordered MRU..LRU in a flattened `num_sets * assoc` array.
    Stack { order: Vec<u8> },
    /// RRIP policies: per way, a 2-bit re-reference prediction value in a
    /// flattened `num_sets * assoc` array.
    Rrip { rrpv: Vec<u8> },
}

impl Policy {
    pub(crate) fn new(kind: PolicyKind, num_sets: usize, assoc: usize, seed: u64) -> Self {
        assert!(assoc <= u8::MAX as usize, "associativity must fit in u8");
        let engine = match kind {
            PolicyKind::Lru | PolicyKind::Lip | PolicyKind::Bip | PolicyKind::Dip => Engine::Stack {
                order: (0..num_sets).flat_map(|_| 0..assoc as u8).collect(),
            },
            PolicyKind::Srrip | PolicyKind::Brrip | PolicyKind::Drrip => {
                Engine::Rrip { rrpv: vec![RRPV_MAX; num_sets * assoc] }
            }
        };
        let duel = kind.is_dueling().then(|| DuelMonitor::new(num_sets));
        Policy { kind, assoc, engine, duel, rng: SplitMix64::new(seed) }
    }

    pub(crate) fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// A block in `set`/`way` was re-referenced.
    pub(crate) fn on_hit(&mut self, set: usize, way: usize) {
        match &mut self.engine {
            Engine::Stack { order } => promote_to_mru(&mut order[set * self.assoc..(set + 1) * self.assoc], way as u8),
            // Hit promotion (HP) variant: re-referenced blocks are
            // predicted near-immediate.
            Engine::Rrip { rrpv } => rrpv[set * self.assoc + way] = 0,
        }
    }

    /// A miss occurred in `set` (before victim selection). Updates the
    /// set-dueling monitor for DIP/DRRIP.
    pub(crate) fn on_miss(&mut self, set: usize) {
        if let Some(duel) = &mut self.duel {
            duel.on_miss(set);
        }
    }

    /// Chooses the way to evict from `set`, assuming every way is valid.
    pub(crate) fn choose_victim(&mut self, set: usize) -> usize {
        match &mut self.engine {
            Engine::Stack { order } => order[set * self.assoc + self.assoc - 1] as usize,
            Engine::Rrip { rrpv } => {
                let slice = &mut rrpv[set * self.assoc..(set + 1) * self.assoc];
                loop {
                    if let Some(way) = slice.iter().position(|&v| v == RRPV_MAX) {
                        return way;
                    }
                    for v in slice.iter_mut() {
                        *v += 1;
                    }
                }
            }
        }
    }

    /// A new block was installed in `set`/`way`; position it according to
    /// the policy's insertion rule.
    pub(crate) fn on_insert(&mut self, set: usize, way: usize) {
        let component = self.duel.as_ref().map(|d| d.component_for(set));
        let take_mru_path = match self.kind {
            PolicyKind::Lru | PolicyKind::Srrip => true,
            PolicyKind::Lip => false,
            PolicyKind::Bip | PolicyKind::Brrip => self.rng.next_below(BIMODAL_ONE_IN) == 0,
            PolicyKind::Dip | PolicyKind::Drrip => match component.expect("dueling policy has a monitor") {
                Leader::Primary => true,
                Leader::Bimodal => self.rng.next_below(BIMODAL_ONE_IN) == 0,
            },
        };
        match &mut self.engine {
            Engine::Stack { order } => {
                let slice = &mut order[set * self.assoc..(set + 1) * self.assoc];
                if take_mru_path {
                    promote_to_mru(slice, way as u8);
                } else {
                    demote_to_lru(slice, way as u8);
                }
            }
            Engine::Rrip { rrpv } => {
                // SRRIP inserts "long" (RRPV_MAX - 1); BRRIP inserts
                // "distant" (RRPV_MAX) except on the bimodal 1/32 path.
                rrpv[set * self.assoc + way] = if take_mru_path { RRPV_MAX - 1 } else { RRPV_MAX };
            }
        }
    }

    /// A block in `set`/`way` was invalidated; make the way maximally
    /// eviction-eligible.
    pub(crate) fn on_invalidate(&mut self, set: usize, way: usize) {
        match &mut self.engine {
            Engine::Stack { order } => demote_to_lru(&mut order[set * self.assoc..(set + 1) * self.assoc], way as u8),
            Engine::Rrip { rrpv } => rrpv[set * self.assoc + way] = RRPV_MAX,
        }
    }

    /// For tests: the recency order of `set` (MRU first), if this is a
    /// stack policy.
    #[cfg(test)]
    fn stack_order(&self, set: usize) -> Option<Vec<u8>> {
        match &self.engine {
            Engine::Stack { order } => Some(order[set * self.assoc..(set + 1) * self.assoc].to_vec()),
            Engine::Rrip { .. } => None,
        }
    }

    /// For tests: the RRPV of `set`/`way`, if this is an RRIP policy.
    #[cfg(test)]
    fn rrpv_of(&self, set: usize, way: usize) -> Option<u8> {
        match &self.engine {
            Engine::Stack { .. } => None,
            Engine::Rrip { rrpv } => Some(rrpv[set * self.assoc + way]),
        }
    }
}

/// Moves `way` to the front (MRU) of a set's recency slice.
fn promote_to_mru(slice: &mut [u8], way: u8) {
    let pos = slice.iter().position(|&w| w == way).expect("way present in recency order");
    slice[..=pos].rotate_right(1);
}

/// Moves `way` to the back (LRU) of a set's recency slice.
fn demote_to_lru(slice: &mut [u8], way: u8) {
    let pos = slice.iter().position(|&w| w == way).expect("way present in recency order");
    slice[pos..].rotate_left(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack_policy(kind: PolicyKind) -> Policy {
        Policy::new(kind, 64, 4, 1)
    }

    #[test]
    fn names_and_all_are_consistent() {
        let names: Vec<_> = PolicyKind::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["LRU", "LIP", "BIP", "DIP", "SRRIP", "BRRIP", "DRRIP"]);
        assert_eq!(format!("{}", PolicyKind::Drrip), "DRRIP");
    }

    #[test]
    fn lru_promotes_on_hit_and_evicts_tail() {
        let mut p = stack_policy(PolicyKind::Lru);
        // initial order 0,1,2,3 (way 3 = LRU)
        assert_eq!(p.choose_victim(0), 3);
        p.on_hit(0, 3);
        assert_eq!(p.stack_order(0).unwrap(), vec![3, 0, 1, 2]);
        assert_eq!(p.choose_victim(0), 2);
    }

    #[test]
    fn lru_insert_goes_to_mru() {
        let mut p = stack_policy(PolicyKind::Lru);
        p.on_insert(0, 2);
        assert_eq!(p.stack_order(0).unwrap(), vec![2, 0, 1, 3]);
    }

    #[test]
    fn lip_insert_goes_to_lru() {
        let mut p = stack_policy(PolicyKind::Lip);
        p.on_insert(0, 0);
        assert_eq!(p.stack_order(0).unwrap(), vec![1, 2, 3, 0]);
        // A LIP-inserted block is the immediate next victim.
        assert_eq!(p.choose_victim(0), 0);
        // ...unless it is re-referenced, which promotes it.
        p.on_hit(0, 0);
        assert_eq!(p.choose_victim(0), 3);
    }

    #[test]
    fn bip_inserts_at_lru_most_of_the_time() {
        let mut p = stack_policy(PolicyKind::Bip);
        let mut mru_inserts = 0;
        for _ in 0..3200 {
            p.on_insert(0, 1);
            if p.stack_order(0).unwrap()[0] == 1 {
                mru_inserts += 1;
            }
        }
        // Expect ~1/32 = 100 of 3200; accept a generous band.
        assert!((30..300).contains(&mru_inserts), "mru_inserts = {mru_inserts}");
    }

    #[test]
    fn srrip_victim_is_distant_block() {
        let mut p = Policy::new(PolicyKind::Srrip, 4, 4, 1);
        // Fresh sets: all RRPV = 3 (distant); way 0 is the first found.
        assert_eq!(p.choose_victim(0), 0);
        p.on_insert(0, 0); // inserted long (RRPV 2)
        p.on_hit(0, 1); // near-immediate (RRPV 0)
        assert_eq!(p.choose_victim(0), 2); // still distant
    }

    #[test]
    fn srrip_ages_when_no_distant_block() {
        let mut p = Policy::new(PolicyKind::Srrip, 1, 2, 1);
        p.on_hit(0, 0);
        p.on_hit(0, 1);
        // All RRPV 0: victim search must age everyone up to 3 and pick way 0.
        assert_eq!(p.choose_victim(0), 0);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut p = Policy::new(PolicyKind::Brrip, 1, 4, 7);
        let mut distant = 0;
        let mut long = 0;
        for _ in 0..3200 {
            p.on_insert(0, 2);
            match p.rrpv_of(0, 2).unwrap() {
                3 => distant += 1,
                2 => long += 1,
                other => panic!("unexpected RRPV {other}"),
            }
        }
        // Expect ~31/32 distant, ~1/32 long.
        assert!(distant > 2800, "distant = {distant}");
        assert!((30..300).contains(&long), "long = {long}");
    }

    #[test]
    fn srrip_always_inserts_long() {
        let mut p = Policy::new(PolicyKind::Srrip, 1, 4, 7);
        for _ in 0..100 {
            p.on_insert(0, 1);
            assert_eq!(p.rrpv_of(0, 1), Some(2));
        }
    }

    #[test]
    fn dueling_monitor_converges_to_better_component() {
        let mut d = DuelMonitor::new(64);
        eprintln!("stride = {}", d.stride);
        assert_eq!(d.leader(0), Some(Leader::Primary));
        assert_eq!(d.leader(16), Some(Leader::Bimodal));
        assert_eq!(d.leader(5), None);
        // Hammer misses on the primary leader: bimodal should win.
        for _ in 0..600 {
            d.on_miss(0);
        }
        assert_eq!(d.winner(), Leader::Bimodal);
        assert_eq!(d.component_for(5), Leader::Bimodal);
        // Leaders always use their own component.
        assert_eq!(d.component_for(0), Leader::Primary);
        // Misses on the bimodal leader swing it back.
        for _ in 0..1200 {
            d.on_miss(16);
        }
        assert_eq!(d.winner(), Leader::Primary);
    }

    #[test]
    fn psel_saturates() {
        let mut d = DuelMonitor::new(64);
        for _ in 0..5000 {
            d.on_miss(0);
        }
        assert_eq!(d.psel, 1023);
        for _ in 0..5000 {
            d.on_miss(16);
        }
        assert_eq!(d.psel, 0);
    }

    #[test]
    fn invalidate_makes_way_next_victim() {
        for kind in [PolicyKind::Lru, PolicyKind::Srrip] {
            let mut p = Policy::new(kind, 4, 4, 1);
            for w in 0..4 {
                p.on_insert(0, w);
                p.on_hit(0, w);
            }
            p.on_invalidate(0, 1);
            assert_eq!(p.choose_victim(0), 1, "policy {kind}");
        }
    }

    #[test]
    fn promote_and_demote_helpers() {
        let mut s = vec![0u8, 1, 2, 3];
        promote_to_mru(&mut s, 2);
        assert_eq!(s, vec![2, 0, 1, 3]);
        demote_to_lru(&mut s, 0);
        assert_eq!(s, vec![2, 1, 3, 0]);
    }

    #[test]
    fn drrip_has_monitor_and_srrip_does_not() {
        assert!(Policy::new(PolicyKind::Drrip, 64, 4, 1).duel.is_some());
        assert!(Policy::new(PolicyKind::Srrip, 64, 4, 1).duel.is_none());
        assert!(PolicyKind::Dip.is_dueling());
        assert!(!PolicyKind::Bip.is_dueling());
    }
}
