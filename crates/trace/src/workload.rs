//! Workload specifications and the paper's four benchmark presets.
//!
//! A [`WorkloadSpec`] describes everything needed to regenerate a
//! workload's traces deterministically: the code pool and its division
//! into shared-infrastructure and type-specific segments, the transaction
//! type mix, instruction-stream parameters, and the data-access model.
//! The [`Workload`] enum provides the four presets of Table 1 (TPC-C with
//! 1 and 10 warehouses, TPC-E, MapReduce), parameterized by a
//! [`TraceScale`] so tests can run miniature instances.

use crate::segment::{CodePool, SegmentId};
use crate::thread_gen::ThreadTrace;
use slicc_common::{SplitMix64, ThreadId, TxnTypeId};
use std::fmt;

/// First block number of the per-type hot shared data regions.
pub const HOT_REGION_FIRST_BLOCK: u64 = 0x2000_0000;
/// First block number of the private database region.
pub const DB_REGION_FIRST_BLOCK: u64 = 0x4000_0000;

/// Size/length knobs decoupling experiment scale from workload shape.
///
/// The paper simulates 1K tasks (~1.1B instructions); the default here is
/// laptop-scale. Shapes (who wins, by what factor) are preserved because
/// every structural property is expressed *relative* to the L1 size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceScale {
    /// Number of transactions (worker threads) to run.
    pub tasks: u32,
    /// Blocks per code segment. The default 288 blocks = 18 KiB: one
    /// segment fits the 32 KiB L1-I, two do not (9 ways needed per set
    /// in the 8-way baseline cache).
    pub segment_blocks: u32,
    /// Master seed for all stochastic choices.
    pub seed: u64,
}

impl slicc_common::StableHash for TraceScale {
    fn stable_hash(&self, h: &mut slicc_common::StableHasher) {
        self.tasks.stable_hash(h);
        self.segment_blocks.stable_hash(h);
        self.seed.stable_hash(h);
    }
}

impl TraceScale {
    /// The default evaluation scale (~20–30M instructions per workload).
    pub fn paper_like() -> Self {
        TraceScale { tasks: 160, segment_blocks: 288, seed: 0x51cc }
    }

    /// A reduced scale for quick experiments (~3M instructions).
    pub fn small() -> Self {
        TraceScale { tasks: 48, segment_blocks: 160, seed: 0x51cc }
    }

    /// A miniature scale for unit tests. Pair it with proportionally
    /// smaller caches: a 48-block (3 KiB) segment fits a 4 KiB L1, two
    /// do not — the same §3.1 property as the full scale.
    pub fn tiny() -> Self {
        TraceScale { tasks: 8, segment_blocks: 48, seed: 0x51cc }
    }

    /// Returns a copy with a different task count.
    pub fn with_tasks(mut self, tasks: u32) -> Self {
        self.tasks = tasks;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for TraceScale {
    fn default() -> Self {
        TraceScale::paper_like()
    }
}

/// Instruction-stream shape parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CodeParams {
    /// Instructions fetched per block visit (≤ 16 for 4-byte instructions
    /// in 64-byte blocks).
    pub instrs_per_block: u32,
    /// Sequential passes over a segment per visit (intra-segment reuse).
    pub passes_per_visit: u32,
    /// Probability a block is skipped on a pass (control-flow divergence:
    /// "similar transactions do not follow the exact same control flow
    /// path", §2.1.3).
    pub skip_prob: f64,
    /// Mean length (blocks) of sequential runs within a segment. Control
    /// flow in DB code jumps between functions constantly, so a segment
    /// is walked in a fixed, segment-specific permutation of short
    /// sequential runs - the permutation is code structure, identical for
    /// every thread. Keeps next-line prefetching honest (it only covers
    /// fall-through fetches).
    pub sequential_run_blocks: u32,
}

impl Default for CodeParams {
    fn default() -> Self {
        CodeParams { instrs_per_block: 12, passes_per_visit: 2, skip_prob: 0.06, sequential_run_blocks: 2 }
    }
}

/// How a thread generates its data references.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DataPattern {
    /// The OLTP mix: hot shared structures + recently-touched private
    /// blocks + fresh private blocks (compulsory misses).
    ///
    /// Stores are region-dependent: the hot shared structures (index
    /// roots, catalog) are read-mostly, while private tuples and log
    /// buffers take nearly all the stores — the region store rates are
    /// chosen so stores remain ~45% of all data accesses (§5.5).
    OltpMix {
        /// Probability of touching the type's hot shared region.
        p_hot: f64,
        /// Probability of re-touching a recent private block.
        p_recent: f64,
        /// Store probability on hot-region accesses (read-mostly).
        hot_store_frac: f64,
    },
    /// MapReduce-style streaming: each thread scans its own partition
    /// sequentially.
    Streaming,
}

/// Data-access model parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataParams {
    /// Fraction of instructions that reference data.
    pub data_ratio: f64,
    /// Fraction of data references that are stores (§5.5: 45%).
    pub store_frac: f64,
    /// Reference pattern.
    pub pattern: DataPattern,
    /// Size of the private database region in blocks.
    pub db_blocks: u64,
    /// Size of each type's hot shared region in blocks.
    pub hot_blocks: u64,
}

/// One transaction type: its mix weight and its code structure.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeSpec {
    /// Human-readable name (e.g. "NewOrder").
    pub name: String,
    /// Relative frequency in the mix.
    pub weight: f64,
    /// The type's own segments; `specific[0]` is the prologue, which is
    /// unique per type (this is what SLICC-Pp's scout hashing detects).
    pub specific: Vec<SegmentId>,
    /// Minimum loop iterations per transaction instance (jittered
    /// upward per instance).
    pub loop_iters: u32,
}

/// A complete, self-contained description of one workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Workload name (Table 1 row).
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Number of transactions to run.
    pub num_tasks: u32,
    /// All code segments.
    pub pool: CodePool,
    /// Segments shared by every transaction type (DBMS infrastructure:
    /// B-tree, lock manager, logging, buffer pool, ...).
    pub shared: Vec<SegmentId>,
    /// The transaction types.
    pub types: Vec<TypeSpec>,
    /// Instruction-stream parameters.
    pub code: CodeParams,
    /// Data-access parameters.
    pub data: DataParams,
}

impl WorkloadSpec {
    /// The RNG stream for one thread, derived from the master seed.
    pub(crate) fn thread_rng(&self, thread: ThreadId) -> SplitMix64 {
        SplitMix64::new(self.seed).split(thread.raw() as u64)
    }

    /// The transaction type executed by `thread`. Deterministic, and
    /// identical to the type [`WorkloadSpec::thread_trace`] generates.
    pub fn thread_type(&self, thread: ThreadId) -> TxnTypeId {
        self.choose_type(&mut self.thread_rng(thread))
    }

    pub(crate) fn choose_type(&self, rng: &mut SplitMix64) -> TxnTypeId {
        let weights: Vec<f64> = self.types.iter().map(|t| t.weight).collect();
        TxnTypeId::new(rng.pick_weighted(&weights) as u16)
    }

    /// Expands one transaction instance's segment visit sequence.
    ///
    /// The plan interleaves shared infrastructure with the type's own
    /// segments and revisits both across loop iterations, producing the
    /// A-B-C-A recurrence of Figure 4.
    pub(crate) fn expand_plan(&self, txn_type: TxnTypeId, rng: &mut SplitMix64) -> Vec<SegmentId> {
        let t = &self.types[txn_type.index()];
        assert!(!t.specific.is_empty(), "type {} has no segments", t.name);
        let n_spec = t.specific.len();
        // `loop_iters` is a minimum: every instance covers the type's full
        // segment set (same-type commonality ~98%, §2.1.3); the upward
        // jitter varies path length across instances.
        let jitter_span = t.loop_iters / 3 + 1;
        let iters = t.loop_iters + rng.next_below(jitter_span as u64) as u32;

        let mut plan = vec![t.specific[0]];
        for i in 0..iters as usize {
            // Each iteration walks two shared-infrastructure segments
            // (index probe, lock/log work) around the type's own logic -
            // most executed code is common across types, matching the
            // ~80% cross-thread redundancy of Chakraborty [3] / Figure 3.
            if !self.shared.is_empty() {
                plan.push(self.shared[(2 * i) % self.shared.len()]);
            }
            if n_spec > 1 {
                plan.push(t.specific[1 + (2 * i) % (n_spec - 1)]);
            } else {
                plan.push(t.specific[0]);
            }
            if !self.shared.is_empty() {
                plan.push(self.shared[(2 * i + 1) % self.shared.len()]);
            }
            if n_spec > 1 {
                plan.push(t.specific[1 + (2 * i + 1) % (n_spec - 1)]);
            }
        }
        if let Some(&commit) = self.shared.last() {
            plan.push(commit);
        }
        plan
    }

    /// The deterministic access stream of one thread.
    pub fn thread_trace(&self, thread: ThreadId) -> ThreadTrace<'_> {
        ThreadTrace::new(self, thread)
    }

    /// First block of the hot shared region of `txn_type`.
    pub fn hot_region_base(&self, txn_type: TxnTypeId) -> u64 {
        HOT_REGION_FIRST_BLOCK + txn_type.index() as u64 * self.data.hot_blocks
    }

    /// Iterates all thread ids of the workload.
    pub fn threads(&self) -> impl Iterator<Item = ThreadId> {
        (0..self.num_tasks).map(ThreadId::new)
    }

    /// The per-type instruction footprint in bytes: its own segments plus
    /// the shared infrastructure it runs through.
    pub fn type_footprint_bytes(&self, txn_type: TxnTypeId) -> u64 {
        let t = &self.types[txn_type.index()];
        t.specific
            .iter()
            .chain(self.shared.iter())
            .map(|&s| self.pool.segment(s).size_bytes())
            .sum()
    }
}

/// The four benchmark workloads of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// TPC-C, 1 warehouse (84 MB database).
    TpcC1,
    /// TPC-C, 10 warehouses (1 GB database).
    TpcC10,
    /// TPC-E, 1000 customers (20 GB database).
    TpcE,
    /// Hadoop MapReduce over Wikipedia articles (12 GB input).
    MapReduce,
}

impl Workload {
    /// All workloads, in the paper's presentation order.
    pub const ALL: [Workload; 4] = [Workload::TpcC1, Workload::TpcC10, Workload::TpcE, Workload::MapReduce];

    /// Display name matching the paper's figure labels.
    pub const fn name(self) -> &'static str {
        match self {
            Workload::TpcC1 => "TPC-C-1",
            Workload::TpcC10 => "TPC-C-10",
            Workload::TpcE => "TPC-E",
            Workload::MapReduce => "MapReduce",
        }
    }

    /// Builds the workload's specification at the given scale.
    pub fn spec(self, scale: TraceScale) -> WorkloadSpec {
        match self {
            Workload::TpcC1 => tpcc_spec(scale, false),
            Workload::TpcC10 => tpcc_spec(scale, true),
            Workload::TpcE => tpce_spec(scale),
            Workload::MapReduce => mapreduce_spec(scale),
        }
    }
}

impl slicc_common::StableHash for Workload {
    fn stable_hash(&self, h: &mut slicc_common::StableHasher) {
        // Explicit ordinals so run-cache keys survive declaration reorder.
        let ordinal: u64 = match self {
            Workload::TpcC1 => 0,
            Workload::TpcC10 => 1,
            Workload::TpcE => 2,
            Workload::MapReduce => 3,
        };
        ordinal.stable_hash(h);
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Probability of a dead gap after each live code block: binaries
/// interleave hot code with cold paths, so sequential prefetch of "the
/// next block" often fetches dead code (keeps the §5.6 next-line
/// baseline honest).
const CODE_GAP_PROB: f64 = 0.45;

/// Shared-infrastructure segments for TPC-C (B-tree ops, lock manager,
/// logging, buffer pool, catalog, transaction management, ...).
const TPCC_SHARED_SEGMENTS: usize = 12;
/// Shared-infrastructure segments exercised by TPC-E's leaner paths.
const TPCE_SHARED_SEGMENTS: usize = 6;

fn build_types(
    pool: &mut CodePool,
    segment_blocks: u32,
    defs: &[(&str, f64, usize, u32)],
) -> Vec<TypeSpec> {
    defs.iter()
        .map(|&(name, weight, n_spec, loop_iters)| TypeSpec {
            name: name.to_owned(),
            weight,
            specific: (0..n_spec).map(|_| pool.add_segment(segment_blocks)).collect(),
            loop_iters,
        })
        .collect()
}

fn tpcc_spec(scale: TraceScale, ten_warehouses: bool) -> WorkloadSpec {
    let mut pool = CodePool::with_gap_prob(CODE_GAP_PROB);
    let shared: Vec<SegmentId> =
        (0..TPCC_SHARED_SEGMENTS).map(|_| pool.add_segment(scale.segment_blocks)).collect();
    // The canonical TPC-C mix. Most of a transaction's code is the shared
    // DBMS infrastructure (B-tree, locking, logging, buffer pool), so the
    // per-type specific code is small; total footprints of 13-16 L1-sized
    // segments match §5.4 ("TPC-C's transactions are spread across up to
    // 14 cores").
    let types = build_types(
        &mut pool,
        scale.segment_blocks,
        &[
            ("NewOrder", 0.45, 5, 7),
            ("Payment", 0.43, 4, 6),
            ("OrderStatus", 0.04, 2, 6),
            ("Delivery", 0.04, 6, 7),
            ("StockLevel", 0.04, 3, 6),
        ],
    );
    let (db_blocks, p_hot, p_recent) = if ten_warehouses {
        // 1 GB database: larger private region, less locality and sharing
        // (§5.5: "There is less locality and sharing in the larger data
        // set of TPC-C-10").
        (16_000_000, 0.18, 0.77)
    } else {
        // 84 MB database.
        (1_300_000, 0.30, 0.66)
    };
    WorkloadSpec {
        name: if ten_warehouses { "TPC-C-10" } else { "TPC-C-1" }.to_owned(),
        seed: scale.seed,
        num_tasks: scale.tasks,
        pool,
        shared,
        types,
        code: CodeParams::default(),
        data: DataParams {
            data_ratio: 0.34,
            store_frac: 0.45,
            pattern: DataPattern::OltpMix { p_hot, p_recent, hot_store_frac: 0.003 },
            db_blocks,
            hot_blocks: (scale.segment_blocks as u64 / 3).max(8),
        },
    }
}

fn tpce_spec(scale: TraceScale) -> WorkloadSpec {
    let mut pool = CodePool::with_gap_prob(CODE_GAP_PROB);
    let shared: Vec<SegmentId> =
        (0..TPCE_SHARED_SEGMENTS).map(|_| pool.add_segment(scale.segment_blocks)).collect();
    // The TPC-E mix (weights in percent, normalized by pick_weighted).
    // Footprints of 8-9 segments match §5.4 ("SLICC spreads the
    // transactions of TPC-E across 8-10 cores"); rare types (MarketFeed
    // 1%, TradeUpdate 2%) supply the ~3% stray threads the paper reports.
    let types = build_types(
        &mut pool,
        scale.segment_blocks,
        &[
            ("BrokerVolume", 4.9, 3, 4),
            ("CustomerPosition", 13.0, 2, 4),
            ("MarketFeed", 1.0, 2, 4),
            ("MarketWatch", 18.0, 3, 4),
            ("SecurityDetail", 14.0, 2, 4),
            ("TradeLookup", 8.0, 3, 5),
            ("TradeOrder", 10.1, 3, 5),
            ("TradeResult", 10.0, 3, 5),
            ("TradeStatus", 19.0, 1, 4),
            ("TradeUpdate", 2.0, 2, 5),
        ],
    );
    WorkloadSpec {
        name: "TPC-E".to_owned(),
        seed: scale.seed,
        num_tasks: scale.tasks,
        pool,
        shared,
        types,
        code: CodeParams::default(),
        data: DataParams {
            data_ratio: 0.34,
            store_frac: 0.45,
            pattern: DataPattern::OltpMix { p_hot: 0.30, p_recent: 0.66, hot_store_frac: 0.003 },
            // 20 GB database.
            db_blocks: 320_000_000,
            hot_blocks: (scale.segment_blocks as u64 / 3).max(8),
        },
    }
}

fn mapreduce_spec(scale: TraceScale) -> WorkloadSpec {
    let mut pool = CodePool::with_gap_prob(CODE_GAP_PROB / 2.0);
    // One map/reduce kernel whose whole footprint fits a single L1-I
    // (§2.1: "MapReduce is a cloud workload featuring a relatively
    // smaller instruction footprint").
    let kernel = pool.add_segment(scale.segment_blocks);
    let types = vec![TypeSpec {
        name: "MapTask".to_owned(),
        weight: 1.0,
        specific: vec![kernel],
        loop_iters: 18,
    }];
    WorkloadSpec {
        name: "MapReduce".to_owned(),
        seed: scale.seed,
        num_tasks: scale.tasks,
        pool,
        shared: Vec::new(),
        types,
        code: CodeParams { instrs_per_block: 12, passes_per_visit: 2, skip_prob: 0.02, sequential_run_blocks: 4 },
        data: DataParams {
            data_ratio: 0.30,
            store_frac: 0.10,
            pattern: DataPattern::Streaming,
            // 12 GB input, partitioned across tasks.
            db_blocks: 200_000_000,
            hot_blocks: 32,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build() {
        for w in Workload::ALL {
            let spec = w.spec(TraceScale::tiny());
            assert_eq!(spec.name, w.name());
            assert!(!spec.types.is_empty());
            assert!(spec.num_tasks > 0);
        }
    }

    #[test]
    fn thread_type_is_deterministic_and_matches_mix() {
        let spec = Workload::TpcC1.spec(TraceScale::paper_like().with_tasks(2000));
        let mut counts = vec![0u32; spec.types.len()];
        for t in spec.threads() {
            let ty = spec.thread_type(t);
            assert_eq!(ty, spec.thread_type(t));
            counts[ty.index()] += 1;
        }
        // NewOrder (45%) and Payment (43%) dominate.
        let total: u32 = counts.iter().sum();
        assert_eq!(total, 2000);
        assert!(counts[0] > 700, "NewOrder count {counts:?}");
        assert!(counts[1] > 700, "Payment count {counts:?}");
        assert!(counts[2] < 200 && counts[3] < 200 && counts[4] < 200, "{counts:?}");
    }

    #[test]
    fn tpcc_segments_fit_l1_but_two_do_not() {
        let spec = Workload::TpcC1.spec(TraceScale::paper_like());
        for (_, seg) in spec.pool.iter() {
            assert!(seg.size_bytes() <= 32 * 1024, "one segment must fit the 32 KiB L1-I");
            assert!(2 * seg.size_bytes() > 32 * 1024, "two segments must not fit together");
        }
    }

    #[test]
    fn type_footprints_exceed_l1_for_oltp() {
        let spec = Workload::TpcC1.spec(TraceScale::paper_like());
        for (i, t) in spec.types.iter().enumerate() {
            let fp = spec.type_footprint_bytes(TxnTypeId::new(i as u16));
            assert!(fp > 3 * 32 * 1024, "{} footprint {} too small", t.name, fp);
            assert!(fp <= 16 * 32 * 1024, "{} footprint {} exceeds 16-core aggregate", t.name, fp);
        }
    }

    #[test]
    fn mapreduce_footprint_fits_one_l1() {
        let spec = Workload::MapReduce.spec(TraceScale::paper_like());
        let fp = spec.type_footprint_bytes(TxnTypeId::new(0));
        assert!(fp <= 32 * 1024, "MapReduce footprint {fp} must fit one L1-I");
    }

    #[test]
    fn plans_revisit_segments() {
        let spec = Workload::TpcC1.spec(TraceScale::paper_like());
        let mut rng = SplitMix64::new(1);
        let plan = spec.expand_plan(TxnTypeId::new(0), &mut rng);
        assert!(plan.len() > 5);
        // The A-B-C-A property: some segment appears at least twice.
        let mut sorted = plan.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() < plan.len(), "plan {plan:?} has no recurrence");
        // The plan starts with the type's unique prologue.
        assert_eq!(plan[0], spec.types[0].specific[0]);
    }

    #[test]
    fn prologues_are_unique_per_type() {
        let spec = Workload::TpcE.spec(TraceScale::paper_like());
        let mut prologues: Vec<_> = spec.types.iter().map(|t| t.specific[0]).collect();
        prologues.sort_unstable();
        prologues.dedup();
        assert_eq!(prologues.len(), spec.types.len());
    }

    #[test]
    fn tpcc10_has_bigger_database_and_less_locality() {
        let c1 = Workload::TpcC1.spec(TraceScale::paper_like());
        let c10 = Workload::TpcC10.spec(TraceScale::paper_like());
        assert!(c10.data.db_blocks > 10 * c1.data.db_blocks / 2);
        match (c1.data.pattern, c10.data.pattern) {
            (DataPattern::OltpMix { p_hot: h1, .. }, DataPattern::OltpMix { p_hot: h10, .. }) => {
                assert!(h10 < h1);
            }
            _ => panic!("TPC-C uses the OLTP data mix"),
        }
    }

    #[test]
    fn hot_regions_are_disjoint_per_type() {
        let spec = Workload::TpcC1.spec(TraceScale::paper_like());
        let bases: Vec<_> = (0..spec.types.len()).map(|i| spec.hot_region_base(TxnTypeId::new(i as u16))).collect();
        for w in bases.windows(2) {
            assert!(w[1] - w[0] >= spec.data.hot_blocks);
        }
    }

    #[test]
    fn scale_helpers() {
        let s = TraceScale::paper_like().with_tasks(7).with_seed(99);
        assert_eq!(s.tasks, 7);
        assert_eq!(s.seed, 99);
        assert_eq!(TraceScale::default(), TraceScale::paper_like());
        assert_eq!(format!("{}", Workload::TpcE), "TPC-E");
    }
}
