//! Per-thread deterministic trace generation.
//!
//! A [`ThreadTrace`] is an iterator of [`Record`]s for one transaction
//! (one worker thread). Construction derives the thread's RNG stream from
//! the workload seed and the thread id, picks the transaction type from
//! the mix, and expands the segment-visit plan; iteration then walks the
//! plan emitting instruction fetches and data references. The same
//! `(spec, thread)` pair always regenerates the identical stream.

use crate::access::{DataAccess, Record};
use crate::workload::{DataPattern, WorkloadSpec, DB_REGION_FIRST_BLOCK};
use slicc_common::{Addr, SplitMix64, ThreadId, TxnTypeId};

/// Capacity of the recently-touched private data block window.
const RECENT_WINDOW: usize = 8;
/// Blocks per control-flow cluster: a visit walks the segment as a
/// sequence of small clusters (functions / loop bodies), each repeated
/// `passes_per_visit` times before moving on. Re-reference distance is a
/// few blocks — what lets insertion policies (LIP/BIP/RRIP) promote live
/// blocks, as on real instruction streams.
const CLUSTER_BLOCKS: u32 = 6;
/// Data accesses per streamed block (sequential scan of 4-byte words
/// would give 16; MapReduce-style record parsing revisits a little less).
const STREAM_ACCESSES_PER_BLOCK: u64 = 16;

/// The deterministic access stream of one thread.
///
/// Created by [`WorkloadSpec::thread_trace`].
///
/// # Example
///
/// ```
/// use slicc_trace::{TraceScale, Workload};
/// use slicc_common::ThreadId;
///
/// let spec = Workload::MapReduce.spec(TraceScale::tiny());
/// let mut trace = spec.thread_trace(ThreadId::new(3));
/// let first = trace.next().expect("traces are non-empty");
/// assert!(first.pc.raw() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct ThreadTrace<'a> {
    spec: &'a WorkloadSpec,
    thread: ThreadId,
    txn_type: TxnTypeId,
    plan: Vec<u32>,
    /// Per plan-entry: the segment's fixed block-visit permutation (the
    /// code's layout — identical for every thread executing the segment).
    orders: Vec<std::sync::Arc<Vec<u32>>>,
    rng: SplitMix64,

    // Cursor into the plan: within a visit, the segment is walked as
    // clusters of CLUSTER_BLOCKS consecutive order-positions, each
    // cluster repeated `passes_per_visit` times.
    visit: usize,
    cluster: u32,
    pass: u32,
    /// Position within the current cluster (0..CLUSTER_BLOCKS).
    block: u32,
    instr: u32,
    finished: bool,

    // Data-access state.
    recent: Vec<u64>,
    recent_next: usize,
    stream_pos: u64,
    emitted: u64,
}

impl<'a> ThreadTrace<'a> {
    /// Builds the trace generator for `thread`.
    pub(crate) fn new(spec: &'a WorkloadSpec, thread: ThreadId) -> Self {
        let mut rng = spec.thread_rng(thread);
        let txn_type = spec.choose_type(&mut rng);
        let plan = spec.expand_plan(txn_type, &mut rng);
        let mut order_cache: std::collections::HashMap<u32, std::sync::Arc<Vec<u32>>> =
            std::collections::HashMap::new();
        let orders = plan
            .iter()
            .map(|&seg| {
                order_cache
                    .entry(seg)
                    .or_insert_with(|| {
                        std::sync::Arc::new(segment_visit_order(
                            seg,
                            spec.pool.segment(seg).num_blocks(),
                            spec.code.sequential_run_blocks.max(1),
                        ))
                    })
                    .clone()
            })
            .collect();
        ThreadTrace {
            spec,
            thread,
            txn_type,
            plan,
            orders,
            rng,
            visit: 0,
            cluster: 0,
            pass: 0,
            block: 0,
            instr: 0,
            finished: false,
            recent: Vec::with_capacity(RECENT_WINDOW),
            recent_next: 0,
            stream_pos: 0,
            emitted: 0,
        }
    }

    /// The thread this trace belongs to.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The transaction type this thread executes.
    pub fn txn_type(&self) -> TxnTypeId {
        self.txn_type
    }

    /// The expanded segment-visit plan (diagnostics; segment ids).
    pub fn plan(&self) -> &[u32] {
        &self.plan
    }

    /// Instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Batch-decodes up to `n` records, appending them to `buf`; returns
    /// how many were produced (fewer than `n` only at end of trace).
    ///
    /// Exactly equivalent to calling [`Iterator::next`] `n` times — the
    /// point is locality, not semantics: consumers that interleave one
    /// `next()` per simulated instruction pay for the generator's branchy
    /// cursor state machine on every step, while refilling a reusable
    /// ring in batches keeps that state resident and amortizes the calls.
    pub fn fill(&mut self, buf: &mut Vec<Record>, n: usize) -> usize {
        buf.reserve(n);
        let before = buf.len();
        for _ in 0..n {
            match self.next() {
                Some(rec) => buf.push(rec),
                None => break,
            }
        }
        buf.len() - before
    }

    /// Remembers a private data block in the recent window.
    fn remember(&mut self, block: u64) {
        if self.recent.len() < RECENT_WINDOW {
            self.recent.push(block);
        } else {
            self.recent[self.recent_next] = block;
            self.recent_next = (self.recent_next + 1) % RECENT_WINDOW;
        }
    }

    /// Generates this instruction's data reference, if any.
    fn gen_data(&mut self) -> Option<DataAccess> {
        let data = &self.spec.data;
        if !self.rng.chance(data.data_ratio) {
            return None;
        }
        let (block, is_store) = match data.pattern {
            DataPattern::OltpMix { p_hot, p_recent, hot_store_frac } => {
                // Private regions absorb the stores the read-mostly hot
                // region does not, keeping the overall store fraction at
                // `store_frac` (§5.5: 45%).
                let private_store_frac =
                    ((data.store_frac - p_hot * hot_store_frac) / (1.0 - p_hot)).clamp(0.0, 1.0);
                let r = self.rng.next_f64();
                if r < p_hot {
                    let b = self.spec.hot_region_base(self.txn_type) + self.rng.next_below(data.hot_blocks);
                    (b, self.rng.chance(hot_store_frac))
                } else if r < p_hot + p_recent && !self.recent.is_empty() {
                    let idx = self.rng.next_below(self.recent.len() as u64) as usize;
                    (self.recent[idx], self.rng.chance(private_store_frac))
                } else {
                    let b = DB_REGION_FIRST_BLOCK + self.rng.next_below(data.db_blocks);
                    self.remember(b);
                    (b, self.rng.chance(private_store_frac))
                }
            }
            DataPattern::Streaming => {
                let partition = (data.db_blocks / self.spec.num_tasks.max(1) as u64).max(1);
                let base = DB_REGION_FIRST_BLOCK + self.thread.raw() as u64 * partition;
                // Scans start at a per-thread offset and wrap within the
                // partition: aligned starts would phase-lock every
                // thread's DRAM channel/bank sequence.
                let offset = SplitMix64::new(0x5ca0 ^ self.thread.raw() as u64).next_below(partition);
                let b = base + (offset + self.stream_pos / STREAM_ACCESSES_PER_BLOCK) % partition;
                self.stream_pos += 1;
                (b, self.rng.chance(data.store_frac))
            }
        };
        Some(DataAccess { addr: Addr::new(block * 64), is_store })
    }

    /// Number of blocks in the current cluster (the last cluster of a
    /// segment may be short).
    fn cluster_len(&self) -> u32 {
        let n = self.spec.pool.segment(self.plan[self.visit]).num_blocks();
        (n - self.cluster * CLUSTER_BLOCKS).min(CLUSTER_BLOCKS)
    }

    /// Moves the cursor to the next block / cluster pass / cluster /
    /// visit, sampling control-flow skips.
    fn advance_block(&mut self) {
        let len = self.cluster_len();
        loop {
            self.block += 1;
            // Conditional control flow occasionally skips a block.
            if self.block < len && self.rng.chance(self.spec.code.skip_prob) {
                continue;
            }
            break;
        }
        if self.block >= len {
            self.block = 0;
            self.pass += 1;
            if self.pass >= self.spec.code.passes_per_visit {
                self.pass = 0;
                self.cluster += 1;
                let n = self.spec.pool.segment(self.plan[self.visit]).num_blocks();
                if self.cluster * CLUSTER_BLOCKS >= n {
                    self.cluster = 0;
                    self.visit += 1;
                    if self.visit >= self.plan.len() {
                        self.finished = true;
                    }
                }
            }
        }
    }
}

/// The fixed block-visit permutation of one segment: short sequential
/// runs (basic blocks / small functions) in a shuffled order (the call
/// graph). Derived from the segment id only, so every thread walks the
/// same layout.
fn segment_visit_order(seg: u32, num_blocks: u32, run_len: u32) -> Vec<u32> {
    let mut rng = SplitMix64::new(0xc0de_1a11 ^ (seg as u64).wrapping_mul(0x9e37_79b9));
    // Cut 0..num_blocks into runs of 1..=2*run_len-1 blocks (mean run_len).
    let mut runs: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < num_blocks {
        let len = (1 + rng.next_below(run_len.max(1) as u64) as u32).min(num_blocks - i);
        runs.push((i, len));
        i += len;
    }
    // Fisher-Yates shuffle of the runs.
    for k in (1..runs.len()).rev() {
        let j = rng.next_below(k as u64 + 1) as usize;
        runs.swap(k, j);
    }
    runs.into_iter().flat_map(|(start, len)| start..start + len).collect()
}

impl Iterator for ThreadTrace<'_> {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        if self.finished {
            return None;
        }
        let seg = self.spec.pool.segment(self.plan[self.visit]);
        let pos = self.cluster * CLUSTER_BLOCKS + self.block;
        let block_index = self.orders[self.visit][pos as usize];
        let pc = seg.instr_addr(block_index, self.instr);
        let data = self.gen_data();
        self.emitted += 1;

        self.instr += 1;
        if self.instr >= self.spec.code.instrs_per_block {
            self.instr = 0;
            self.advance_block();
        }
        Some(Record { pc, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{TraceScale, Workload};
    use std::collections::HashSet;

    fn tiny_tpcc() -> crate::workload::WorkloadSpec {
        Workload::TpcC1.spec(TraceScale::tiny())
    }

    #[test]
    fn regeneration_is_identical() {
        let spec = tiny_tpcc();
        let a: Vec<_> = spec.thread_trace(ThreadId::new(2)).collect();
        let b: Vec<_> = spec.thread_trace(ThreadId::new(2)).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_threads_differ() {
        let spec = tiny_tpcc();
        let a: Vec<_> = spec.thread_trace(ThreadId::new(0)).collect();
        let b: Vec<_> = spec.thread_trace(ThreadId::new(1)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn trace_type_matches_spec_thread_type() {
        let spec = Workload::TpcE.spec(TraceScale::tiny());
        for t in spec.threads() {
            assert_eq!(spec.thread_trace(t).txn_type(), spec.thread_type(t));
        }
    }

    #[test]
    fn instruction_addresses_stay_inside_planned_segments() {
        let spec = tiny_tpcc();
        let trace = spec.thread_trace(ThreadId::new(0));
        let plan: HashSet<u32> = trace.plan().iter().copied().collect();
        for rec in spec.thread_trace(ThreadId::new(0)) {
            let seg = spec.pool.segment_of_block(rec.pc.block(64)).expect("pc must be in a code segment");
            assert!(plan.contains(&seg), "pc in unplanned segment {seg}");
        }
    }

    #[test]
    fn store_fraction_is_roughly_45_percent() {
        let spec = Workload::TpcC1.spec(TraceScale::small());
        let (mut stores, mut total) = (0u64, 0u64);
        for rec in spec.thread_trace(ThreadId::new(1)) {
            if let Some(d) = rec.data {
                total += 1;
                if d.is_store {
                    stores += 1;
                }
            }
        }
        let frac = stores as f64 / total as f64;
        assert!((0.40..0.50).contains(&frac), "store fraction {frac}");
    }

    #[test]
    fn data_ratio_is_roughly_as_configured() {
        let spec = Workload::TpcC1.spec(TraceScale::small());
        let (mut with_data, mut total) = (0u64, 0u64);
        for rec in spec.thread_trace(ThreadId::new(0)) {
            total += 1;
            if rec.data.is_some() {
                with_data += 1;
            }
        }
        let frac = with_data as f64 / total as f64;
        assert!((frac - spec.data.data_ratio).abs() < 0.03, "data ratio {frac}");
    }

    #[test]
    fn same_type_threads_share_most_instruction_blocks() {
        let spec = Workload::TpcC1.spec(TraceScale::small());
        // Find two threads of the same type.
        let mut by_type = std::collections::HashMap::new();
        let mut pair = None;
        for t in spec.threads() {
            let ty = spec.thread_type(t);
            if let Some(&prev) = by_type.get(&ty) {
                pair = Some((prev, t));
                break;
            }
            by_type.insert(ty, t);
        }
        let (a, b) = pair.expect("two same-type threads exist");
        let blocks_of = |t| -> HashSet<u64> { spec.thread_trace(t).map(|r| r.pc.block(64).raw()).collect() };
        let (ba, bb) = (blocks_of(a), blocks_of(b));
        let inter = ba.intersection(&bb).count();
        let union = ba.union(&bb).count();
        let overlap = inter as f64 / union as f64;
        assert!(overlap > 0.9, "same-type block overlap only {overlap}");
    }

    #[test]
    fn streaming_data_is_sequential_and_partitioned() {
        let spec = Workload::MapReduce.spec(TraceScale::tiny());
        let partition = spec.data.db_blocks / spec.num_tasks as u64;
        let mut last = None;
        for rec in spec.thread_trace(ThreadId::new(2)) {
            if let Some(d) = rec.data {
                let block = d.addr.block(64).raw();
                let off = block - DB_REGION_FIRST_BLOCK;
                assert!(
                    (2 * partition..3 * partition).contains(&off),
                    "thread 2 strayed out of its partition: {off}"
                );
                if let Some(prev) = last {
                    assert!(block == prev || block == prev + 1, "stream must advance sequentially");
                }
                last = Some(block);
            }
        }
    }

    #[test]
    fn oltp_data_blocks_live_in_data_regions() {
        let spec = tiny_tpcc();
        for t in spec.threads() {
            for rec in spec.thread_trace(t) {
                if let Some(d) = rec.data {
                    let b = d.addr.block(64).raw();
                    assert!(
                        b >= crate::workload::HOT_REGION_FIRST_BLOCK,
                        "data block {b:#x} collides with code region"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_fill_is_equivalent_to_repeated_next() {
        let spec = tiny_tpcc();
        let one_by_one: Vec<Record> = spec.thread_trace(ThreadId::new(0)).collect();
        // Refill in awkward batch sizes (including across the end of the
        // trace) and require the identical record stream.
        let mut batched = Vec::new();
        let mut tr = spec.thread_trace(ThreadId::new(0));
        for n in [1, 7, 100, 3].iter().cycle() {
            if tr.fill(&mut batched, *n) < *n {
                break;
            }
        }
        assert_eq!(batched, one_by_one);
        assert_eq!(tr.emitted(), one_by_one.len() as u64);
        // A drained trace fills nothing.
        assert_eq!(tr.fill(&mut batched, 8), 0);
    }

    #[test]
    fn emitted_counter_tracks_length() {
        let spec = tiny_tpcc();
        let mut tr = spec.thread_trace(ThreadId::new(0));
        let mut n = 0;
        while tr.next().is_some() {
            n += 1;
        }
        assert_eq!(tr.emitted(), n);
    }

    #[test]
    fn trace_lengths_are_plausible() {
        // At tiny scale each transaction is still thousands of
        // instructions (plan of several visits x 16 blocks x 2 passes x
        // 12 instrs).
        let spec = tiny_tpcc();
        for t in spec.threads() {
            let len = spec.thread_trace(t).count();
            assert!(len > 500, "trace too short: {len}");
            assert!(len < 1_000_000, "trace too long: {len}");
        }
    }
}
