//! Trace-level analyses: block-reuse breakdown (Figure 3) and footprints.
//!
//! Figure 3 classifies every instruction access by how many threads touch
//! the accessed block over the whole run: **single** (one thread), **few**
//! (at most 60% of the threads), and **most** (more than 60%). The paper
//! computes this globally and per transaction type, showing 98%
//! commonality among same-type threads.

use crate::workload::WorkloadSpec;
use slicc_common::TxnTypeId;
use std::collections::HashMap;

/// Fractions of instruction accesses by block-reuse class (sums to 1).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReuseBreakdown {
    /// Accesses to blocks touched by exactly one thread.
    pub single: f64,
    /// Accesses to blocks touched by more than one but at most 60% of
    /// threads.
    pub few: f64,
    /// Accesses to blocks touched by more than 60% of threads.
    pub most: f64,
}

impl ReuseBreakdown {
    /// Builds fractions from raw access counts.
    fn from_counts(single: u64, few: u64, most: u64) -> Self {
        let total = (single + few + most) as f64;
        if total == 0.0 {
            return ReuseBreakdown::default();
        }
        ReuseBreakdown { single: single as f64 / total, few: few as f64 / total, most: most as f64 / total }
    }
}

/// Per-block observation: which threads touched it and how often.
#[derive(Clone, Debug, Default)]
struct BlockUse {
    accesses: u64,
    threads: Vec<u32>, // sorted unique thread ids
}

impl BlockUse {
    fn touch(&mut self, thread: u32) {
        self.accesses += 1;
        if let Err(pos) = self.threads.binary_search(&thread) {
            self.threads.insert(pos, thread);
        }
    }
}

/// Computes Figure 3's access breakdown by instruction-block reuse.
///
/// With `per_type = false` the 60% threshold applies to all threads of
/// the workload ("Global"); with `per_type = true` each access is
/// classified against the threads *of its own transaction type* and the
/// result aggregates over types ("Per Transaction").
///
/// This walks every thread's full trace; cost is proportional to the
/// workload's total instruction count.
pub fn instruction_reuse(spec: &WorkloadSpec, per_type: bool) -> ReuseBreakdown {
    // First pass: per block, the set of threads touching it, split by the
    // classification domain (global or per-type).
    let mut domains: HashMap<Option<TxnTypeId>, (u32, HashMap<u64, BlockUse>)> = HashMap::new();
    for thread in spec.threads() {
        let domain = per_type.then(|| spec.thread_type(thread));
        let entry = domains.entry(domain).or_insert_with(|| (0, HashMap::new()));
        entry.0 += 1;
        for rec in spec.thread_trace(thread) {
            entry.1.entry(rec.pc.block(64).raw()).or_default().touch(thread.raw());
        }
    }

    let (mut single, mut few, mut most) = (0u64, 0u64, 0u64);
    for (_, (threads_in_domain, blocks)) in domains {
        let threshold = 0.6 * threads_in_domain as f64;
        for block_use in blocks.values() {
            let n = block_use.threads.len();
            if n == 1 {
                single += block_use.accesses;
            } else if (n as f64) <= threshold {
                few += block_use.accesses;
            } else {
                most += block_use.accesses;
            }
        }
    }
    ReuseBreakdown::from_counts(single, few, most)
}

/// Footprint measurements for one workload.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FootprintStats {
    /// Mean distinct instruction bytes touched per thread.
    pub mean_instruction_bytes: f64,
    /// Mean distinct data bytes touched per thread.
    pub mean_data_bytes: f64,
    /// Distinct instruction bytes across all threads.
    pub total_instruction_bytes: u64,
    /// Total instructions across all threads.
    pub total_instructions: u64,
}

impl FootprintStats {
    /// Measures footprints by walking every thread's trace.
    pub fn measure(spec: &WorkloadSpec) -> Self {
        let mut all_iblocks = std::collections::HashSet::new();
        let mut sum_i = 0u64;
        let mut sum_d = 0u64;
        let mut instructions = 0u64;
        let threads = spec.num_tasks.max(1) as u64;
        for thread in spec.threads() {
            let mut iblocks = std::collections::HashSet::new();
            let mut dblocks = std::collections::HashSet::new();
            for rec in spec.thread_trace(thread) {
                instructions += 1;
                iblocks.insert(rec.pc.block(64).raw());
                if let Some(d) = rec.data {
                    dblocks.insert(d.addr.block(64).raw());
                }
            }
            sum_i += iblocks.len() as u64;
            sum_d += dblocks.len() as u64;
            all_iblocks.extend(iblocks);
        }
        FootprintStats {
            mean_instruction_bytes: sum_i as f64 * 64.0 / threads as f64,
            mean_data_bytes: sum_d as f64 * 64.0 / threads as f64,
            total_instruction_bytes: all_iblocks.len() as u64 * 64,
            total_instructions: instructions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{TraceScale, Workload};

    #[test]
    fn fractions_sum_to_one() {
        let spec = Workload::TpcC1.spec(TraceScale::tiny());
        for per_type in [false, true] {
            let r = instruction_reuse(&spec, per_type);
            assert!((r.single + r.few + r.most - 1.0).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn per_type_commonality_exceeds_global() {
        // §2.1.3: "98% of the instruction cache blocks are common among
        // threads executing the same transaction type" — per-type `most`
        // must dominate and exceed the global one.
        let spec = Workload::TpcC1.spec(TraceScale::tiny().with_tasks(24));
        let global = instruction_reuse(&spec, false);
        let per_type = instruction_reuse(&spec, true);
        assert!(per_type.most >= global.most, "per-type {per_type:?} vs global {global:?}");
        assert!(per_type.most > 0.7, "{per_type:?}");
    }

    #[test]
    fn mapreduce_is_all_most() {
        // Every MapReduce thread runs the same kernel.
        let spec = Workload::MapReduce.spec(TraceScale::tiny());
        let r = instruction_reuse(&spec, false);
        assert!(r.most > 0.95, "{r:?}");
    }

    #[test]
    fn footprints_match_workload_structure() {
        let spec = Workload::TpcC1.spec(TraceScale::tiny().with_tasks(12));
        let fp = FootprintStats::measure(&spec);
        // Tiny scale: 16-block segments = 1 KiB each; OLTP types touch
        // several of them.
        assert!(fp.mean_instruction_bytes > 2.0 * 1024.0, "{fp:?}");
        assert!(fp.total_instructions > 10_000);
        assert!(fp.total_instruction_bytes >= fp.mean_instruction_bytes as u64);
    }

    #[test]
    fn mapreduce_instruction_footprint_is_small() {
        let spec = Workload::MapReduce.spec(TraceScale::tiny());
        let fp = FootprintStats::measure(&spec);
        let kernel_bytes = spec.pool.total_bytes();
        assert!(fp.mean_instruction_bytes <= kernel_bytes as f64);
        assert!(fp.total_instruction_bytes <= kernel_bytes);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        assert_eq!(ReuseBreakdown::from_counts(0, 0, 0), ReuseBreakdown::default());
    }
}
