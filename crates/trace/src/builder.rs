//! A fluent builder for custom [`WorkloadSpec`]s.
//!
//! The presets in [`crate::workload`] cover the paper's Table 1; this
//! builder is for experiments beyond it — custom segment structures,
//! transaction mixes, and data behaviours (the Figure 4 reconstruction in
//! `tests/figure4_scenario.rs` is the canonical use case).
//!
//! # Example
//!
//! ```
//! use slicc_trace::WorkloadBuilder;
//!
//! // Three same-type threads looping over segments A-B-C (Figure 4).
//! let spec = WorkloadBuilder::new("figure4")
//!     .tasks(3)
//!     .segment_blocks(48)
//!     .shared_segments(0)
//!     .txn_type("T", 1.0, 3, 4)
//!     .no_data()
//!     .build();
//! assert_eq!(spec.num_tasks, 3);
//! assert_eq!(spec.pool.len(), 3);
//! ```

use crate::segment::CodePool;
use crate::workload::{CodeParams, DataParams, DataPattern, TypeSpec, WorkloadSpec};

/// Builder for [`WorkloadSpec`]; see the module docs.
#[derive(Clone, Debug)]
pub struct WorkloadBuilder {
    name: String,
    seed: u64,
    tasks: u32,
    segment_blocks: u32,
    gap_prob: f64,
    shared_segments: usize,
    types: Vec<(String, f64, usize, u32)>,
    code: CodeParams,
    data: DataParams,
}

impl WorkloadBuilder {
    /// Starts a builder for a workload called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        WorkloadBuilder {
            name: name.into(),
            seed: 0x51cc,
            tasks: 16,
            segment_blocks: 48,
            gap_prob: 0.0,
            shared_segments: 0,
            types: Vec::new(),
            code: CodeParams { instrs_per_block: 12, passes_per_visit: 2, skip_prob: 0.0, sequential_run_blocks: 2 },
            data: DataParams {
                data_ratio: 0.0,
                store_frac: 0.45,
                pattern: DataPattern::OltpMix { p_hot: 0.3, p_recent: 0.6, hot_store_frac: 0.01 },
                db_blocks: 1_000_000,
                hot_blocks: 64,
            },
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of transactions.
    pub fn tasks(mut self, tasks: u32) -> Self {
        self.tasks = tasks;
        self
    }

    /// Sets the live blocks per code segment.
    pub fn segment_blocks(mut self, blocks: u32) -> Self {
        self.segment_blocks = blocks;
        self
    }

    /// Sets the dead-gap probability of the code layout (see
    /// [`CodePool::with_gap_prob`]).
    pub fn code_gap_prob(mut self, p: f64) -> Self {
        self.gap_prob = p;
        self
    }

    /// Sets how many shared-infrastructure segments all types walk.
    pub fn shared_segments(mut self, n: usize) -> Self {
        self.shared_segments = n;
        self
    }

    /// Adds a transaction type with `specific` own segments and a minimum
    /// of `loop_iters` loop iterations.
    pub fn txn_type(mut self, name: impl Into<String>, weight: f64, specific: usize, loop_iters: u32) -> Self {
        self.types.push((name.into(), weight, specific, loop_iters));
        self
    }

    /// Overrides the instruction-stream parameters.
    pub fn code_params(mut self, code: CodeParams) -> Self {
        self.code = code;
        self
    }

    /// Overrides the data-access parameters.
    pub fn data_params(mut self, data: DataParams) -> Self {
        self.data = data;
        self
    }

    /// Disables data accesses entirely (pure instruction behaviour).
    pub fn no_data(mut self) -> Self {
        self.data.data_ratio = 0.0;
        self
    }

    /// Builds the spec.
    ///
    /// # Panics
    ///
    /// Panics if no transaction type was added, or a type has zero
    /// specific segments.
    pub fn build(self) -> WorkloadSpec {
        assert!(!self.types.is_empty(), "a workload needs at least one transaction type");
        let mut pool = if self.gap_prob > 0.0 {
            CodePool::with_gap_prob(self.gap_prob)
        } else {
            CodePool::new()
        };
        let shared = (0..self.shared_segments).map(|_| pool.add_segment(self.segment_blocks)).collect();
        let types = self
            .types
            .into_iter()
            .map(|(name, weight, n_spec, loop_iters)| {
                assert!(n_spec > 0, "type {name} needs at least one segment");
                TypeSpec {
                    name,
                    weight,
                    specific: (0..n_spec).map(|_| pool.add_segment(self.segment_blocks)).collect(),
                    loop_iters,
                }
            })
            .collect();
        WorkloadSpec {
            name: self.name,
            seed: self.seed,
            num_tasks: self.tasks,
            pool,
            shared,
            types,
            code: self.code,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicc_common::ThreadId;

    #[test]
    fn builds_a_runnable_spec() {
        let spec = WorkloadBuilder::new("custom")
            .tasks(4)
            .segment_blocks(16)
            .shared_segments(2)
            .txn_type("A", 2.0, 3, 4)
            .txn_type("B", 1.0, 2, 4)
            .build();
        assert_eq!(spec.pool.len(), 2 + 3 + 2);
        assert_eq!(spec.types.len(), 2);
        let trace: Vec<_> = spec.thread_trace(ThreadId::new(0)).collect();
        assert!(!trace.is_empty());
    }

    #[test]
    fn no_data_produces_pure_instruction_traces() {
        let spec = WorkloadBuilder::new("nodata").tasks(2).txn_type("T", 1.0, 1, 3).no_data().build();
        for t in spec.threads() {
            assert!(spec.thread_trace(t).all(|r| r.data.is_none()));
        }
    }

    #[test]
    fn gap_prob_spreads_segments() {
        let dense = WorkloadBuilder::new("d").txn_type("T", 1.0, 1, 2).segment_blocks(64).build();
        let sparse = WorkloadBuilder::new("s")
            .txn_type("T", 1.0, 1, 2)
            .segment_blocks(64)
            .code_gap_prob(0.5)
            .build();
        assert!(sparse.pool.segment(0).span_blocks() > dense.pool.segment(0).span_blocks());
    }

    #[test]
    fn seed_changes_traces() {
        // Give the generator stochastic choices to express the seed
        // through (control-flow skips).
        let code = CodeParams {
            instrs_per_block: 12,
            passes_per_visit: 2,
            skip_prob: 0.2,
            sequential_run_blocks: 2,
        };
        let a = WorkloadBuilder::new("x").seed(1).txn_type("T", 1.0, 2, 3).code_params(code).build();
        let b = WorkloadBuilder::new("x").seed(2).txn_type("T", 1.0, 2, 3).code_params(code).build();
        let ta: Vec<_> = a.thread_trace(ThreadId::new(0)).collect();
        let tb: Vec<_> = b.thread_trace(ThreadId::new(0)).collect();
        assert_ne!(ta, tb);
    }

    #[test]
    #[should_panic(expected = "at least one transaction type")]
    fn empty_builder_panics() {
        let _ = WorkloadBuilder::new("empty").build();
    }
}
