//! Binary trace serialization.
//!
//! The paper's methodology replays PIN traces from disk (§5.1); this
//! module gives the synthetic traces the same property: a thread's
//! [`Record`] stream can be written to any `io::Write` and replayed from
//! any `io::Read`, so experiments can run against captured traces
//! (including externally produced ones in the same format) instead of
//! regenerating them.
//!
//! # Format
//!
//! Little-endian, stream-oriented:
//!
//! ```text
//! magic   "SLCCTRC1"                      8 bytes
//! thread  u32                             4 bytes
//! type    u16                             2 bytes
//! records repeated until the end marker:
//!   tag   u8      0 = compute, 1 = load, 2 = store, 0xFF = end
//!   pc    u64     fetch address
//!   data  u64     only for loads/stores
//! ```

use crate::access::{DataAccess, Record};
use crate::validate::{validate_records, RecordIssue};
use slicc_common::{Addr, ThreadId, TxnTypeId};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"SLCCTRC1";
const TAG_COMPUTE: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;
const TAG_END: u8 = 0xFF;

/// Default per-trace record cap for [`decode_trace`]: far above any
/// trace the generator emits (the paper-like scale peaks in the low
/// millions), but small enough that a corrupt or adversarial stream
/// cannot balloon the decoder's allocation unboundedly.
pub const MAX_TRACE_RECORDS: usize = 1 << 24;

/// Errors produced while decoding a trace.
#[derive(Debug)]
pub enum DecodeTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the trace magic.
    BadMagic,
    /// An unknown record tag was encountered.
    BadTag(u8),
    /// The stream ended without an end marker.
    Truncated,
    /// The stream holds more records than the decoder's limit.
    TooLong {
        /// The record limit that was exceeded.
        limit: usize,
    },
    /// The stream decoded cleanly but a record is structurally
    /// impossible (see [`validate_records`]).
    Invalid(RecordIssue),
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeTraceError::Io(e) => write!(f, "i/o error while decoding trace: {e}"),
            DecodeTraceError::BadMagic => write!(f, "stream is not a SLICC trace (bad magic)"),
            DecodeTraceError::BadTag(t) => write!(f, "unknown record tag {t:#x}"),
            DecodeTraceError::Truncated => write!(f, "trace ended without an end marker"),
            DecodeTraceError::TooLong { limit } => {
                write!(f, "trace exceeds the record limit of {limit}")
            }
            DecodeTraceError::Invalid(issue) => write!(f, "trace failed validation: {issue}"),
        }
    }
}

impl std::error::Error for DecodeTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeTraceError::Io(e) => Some(e),
            DecodeTraceError::Invalid(issue) => Some(issue),
            _ => None,
        }
    }
}

impl From<RecordIssue> for DecodeTraceError {
    fn from(issue: RecordIssue) -> Self {
        DecodeTraceError::Invalid(issue)
    }
}

impl From<io::Error> for DecodeTraceError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            DecodeTraceError::Truncated
        } else {
            DecodeTraceError::Io(e)
        }
    }
}

/// A decoded trace: its identity and records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedTrace {
    /// The thread the trace belongs to.
    pub thread: ThreadId,
    /// The thread's transaction type.
    pub txn_type: TxnTypeId,
    /// The access records, in execution order.
    pub records: Vec<Record>,
}

/// Writes one thread's trace. `records` is drained as it is written, so
/// arbitrarily long traces stream without buffering.
///
/// # Errors
///
/// Returns any error of the underlying writer.
///
/// # Example
///
/// ```
/// use slicc_trace::{codec, TraceScale, Workload};
/// use slicc_common::ThreadId;
///
/// # fn main() -> std::io::Result<()> {
/// let spec = Workload::TpcC1.spec(TraceScale::tiny());
/// let mut buf = Vec::new();
/// let trace = spec.thread_trace(ThreadId::new(0));
/// let ty = trace.txn_type();
/// codec::encode_trace(&mut buf, ThreadId::new(0), ty, trace)?;
/// let decoded = codec::decode_trace(&mut buf.as_slice()).expect("round-trip");
/// assert_eq!(decoded.thread, ThreadId::new(0));
/// # Ok(())
/// # }
/// ```
pub fn encode_trace<W: Write>(
    mut w: W,
    thread: ThreadId,
    txn_type: TxnTypeId,
    records: impl IntoIterator<Item = Record>,
) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&thread.raw().to_le_bytes())?;
    w.write_all(&txn_type.raw().to_le_bytes())?;
    for rec in records {
        match rec.data {
            None => {
                w.write_all(&[TAG_COMPUTE])?;
                w.write_all(&rec.pc.raw().to_le_bytes())?;
            }
            Some(DataAccess { addr, is_store }) => {
                w.write_all(&[if is_store { TAG_STORE } else { TAG_LOAD }])?;
                w.write_all(&rec.pc.raw().to_le_bytes())?;
                w.write_all(&addr.raw().to_le_bytes())?;
            }
        }
    }
    w.write_all(&[TAG_END])
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads one thread's trace written by [`encode_trace`].
///
/// Every decoded trace is validated: records are capped at
/// [`MAX_TRACE_RECORDS`] and checked with [`validate_records`], so a
/// corrupt or hand-forged stream is rejected here rather than producing
/// impossible accesses inside the simulator.
///
/// # Errors
///
/// Returns [`DecodeTraceError`] on malformed, truncated, oversized, or
/// structurally invalid input.
pub fn decode_trace<R: Read>(r: R) -> Result<DecodedTrace, DecodeTraceError> {
    decode_trace_with_limit(r, MAX_TRACE_RECORDS)
}

/// [`decode_trace`] with a caller-chosen record limit, for contexts that
/// know how large a legitimate trace can be (tiny-scale tests, embedded
/// replay) and want to fail faster on runaway input.
///
/// # Errors
///
/// Returns [`DecodeTraceError::TooLong`] as soon as the stream yields
/// more than `limit` records; otherwise as [`decode_trace`].
pub fn decode_trace_with_limit<R: Read>(
    mut r: R,
    limit: usize,
) -> Result<DecodedTrace, DecodeTraceError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(DecodeTraceError::BadMagic);
    }
    let mut id = [0u8; 4];
    r.read_exact(&mut id)?;
    let thread = ThreadId::new(u32::from_le_bytes(id));
    let mut ty = [0u8; 2];
    r.read_exact(&mut ty)?;
    let txn_type = TxnTypeId::new(u16::from_le_bytes(ty));

    let mut records = Vec::new();
    loop {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let rec = match tag[0] {
            TAG_END => break,
            TAG_COMPUTE => Record::compute(Addr::new(read_u64(&mut r)?)),
            TAG_LOAD => {
                let pc = Addr::new(read_u64(&mut r)?);
                Record::load(pc, Addr::new(read_u64(&mut r)?))
            }
            TAG_STORE => {
                let pc = Addr::new(read_u64(&mut r)?);
                Record::store(pc, Addr::new(read_u64(&mut r)?))
            }
            t => return Err(DecodeTraceError::BadTag(t)),
        };
        if records.len() >= limit {
            return Err(DecodeTraceError::TooLong { limit });
        }
        records.push(rec);
    }
    validate_records(&records)?;
    Ok(DecodedTrace { thread, txn_type, records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{TraceScale, Workload};

    #[test]
    fn roundtrip_synthetic_trace() {
        let spec = Workload::TpcE.spec(TraceScale::tiny());
        for t in spec.threads() {
            let expected: Vec<Record> = spec.thread_trace(t).collect();
            let ty = spec.thread_type(t);
            let mut buf = Vec::new();
            encode_trace(&mut buf, t, ty, expected.iter().copied()).unwrap();
            let decoded = decode_trace(&mut buf.as_slice()).unwrap();
            assert_eq!(decoded.thread, t);
            assert_eq!(decoded.txn_type, ty);
            assert_eq!(decoded.records, expected);
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        encode_trace(&mut buf, ThreadId::new(9), TxnTypeId::new(3), std::iter::empty()).unwrap();
        let decoded = decode_trace(&mut buf.as_slice()).unwrap();
        assert!(decoded.records.is_empty());
        assert_eq!(decoded.thread, ThreadId::new(9));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOTATRCE".to_vec();
        assert!(matches!(decode_trace(&mut buf.as_slice()), Err(DecodeTraceError::BadMagic)));
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        encode_trace(
            &mut buf,
            ThreadId::new(0),
            TxnTypeId::new(0),
            vec![Record::compute(Addr::new(4))],
        )
        .unwrap();
        buf.pop(); // drop the end marker
        buf.pop(); // and part of the last record
        assert!(matches!(decode_trace(&mut buf.as_slice()), Err(DecodeTraceError::Truncated)));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut buf = Vec::new();
        encode_trace(&mut buf, ThreadId::new(0), TxnTypeId::new(0), std::iter::empty()).unwrap();
        let end = buf.len() - 1;
        buf[end] = 0x77;
        assert!(matches!(decode_trace(&mut buf.as_slice()), Err(DecodeTraceError::BadTag(0x77))));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = DecodeTraceError::BadTag(0x42);
        assert!(e.to_string().contains("0x42"));
        assert!(DecodeTraceError::BadMagic.to_string().contains("magic"));
        assert!(DecodeTraceError::TooLong { limit: 64 }.to_string().contains("64"));
    }

    #[test]
    fn record_limit_is_enforced() {
        let records = vec![Record::compute(Addr::new(0x10_0000)); 5];
        let mut buf = Vec::new();
        encode_trace(&mut buf, ThreadId::new(0), TxnTypeId::new(0), records).unwrap();
        assert!(matches!(
            decode_trace_with_limit(&mut buf.as_slice(), 4),
            Err(DecodeTraceError::TooLong { limit: 4 })
        ));
        // At exactly the limit the trace decodes.
        let decoded = decode_trace_with_limit(&mut buf.as_slice(), 5).unwrap();
        assert_eq!(decoded.records.len(), 5);
    }

    #[test]
    fn structurally_invalid_records_are_rejected() {
        use crate::validate::RecordIssue;
        let mut buf = Vec::new();
        encode_trace(
            &mut buf,
            ThreadId::new(0),
            TxnTypeId::new(0),
            vec![
                Record::compute(Addr::new(0x10_0000)),
                Record::load(Addr::new(0x10_0040), Addr::new(0)),
            ],
        )
        .unwrap();
        assert!(matches!(
            decode_trace(&mut buf.as_slice()),
            Err(DecodeTraceError::Invalid(RecordIssue::ZeroDataAddr { index: 1 }))
        ));
    }
}
