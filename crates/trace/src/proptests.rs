//! Property-based tests over trace serialization and generation.

use crate::access::Record;
use crate::codec::{decode_trace, encode_trace};
use crate::builder::WorkloadBuilder;
use proptest::prelude::*;
use slicc_common::{Addr, ThreadId, TxnTypeId};

fn arb_record() -> impl Strategy<Value = Record> {
    (any::<u64>(), proptest::option::of((any::<u64>(), any::<bool>()))).prop_map(|(pc, data)| {
        match data {
            None => Record::compute(Addr::new(pc)),
            Some((addr, true)) => Record::store(Addr::new(pc), Addr::new(addr)),
            Some((addr, false)) => Record::load(Addr::new(pc), Addr::new(addr)),
        }
    })
}

proptest! {
    #[test]
    fn codec_roundtrips_arbitrary_records(
        thread in any::<u32>(),
        ty in any::<u16>(),
        records in prop::collection::vec(arb_record(), 0..200),
    ) {
        let mut buf = Vec::new();
        encode_trace(&mut buf, ThreadId::new(thread), TxnTypeId::new(ty), records.iter().copied())
            .expect("vec write cannot fail");
        let decoded = decode_trace(&mut buf.as_slice()).expect("roundtrip");
        prop_assert_eq!(decoded.thread, ThreadId::new(thread));
        prop_assert_eq!(decoded.txn_type, TxnTypeId::new(ty));
        prop_assert_eq!(decoded.records, records);
    }

    #[test]
    fn corrupting_any_byte_never_panics(
        records in prop::collection::vec(arb_record(), 0..20),
        corrupt_at in any::<prop::sample::Index>(),
        corrupt_with in any::<u8>(),
    ) {
        let mut buf = Vec::new();
        encode_trace(&mut buf, ThreadId::new(1), TxnTypeId::new(1), records).unwrap();
        let idx = corrupt_at.index(buf.len());
        buf[idx] = corrupt_with;
        // Must return Ok or Err, never panic or loop forever.
        let _ = decode_trace(&mut buf.as_slice());
    }

    #[test]
    fn builder_specs_generate_bounded_deterministic_traces(
        tasks in 1u32..5,
        n_spec in 1usize..4,
        iters in 1u32..6,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadBuilder::new("prop")
            .seed(seed)
            .tasks(tasks)
            .segment_blocks(8)
            .txn_type("T", 1.0, n_spec, iters)
            .no_data()
            .build();
        for t in spec.threads() {
            let a: Vec<_> = spec.thread_trace(t).collect();
            let b: Vec<_> = spec.thread_trace(t).collect();
            prop_assert_eq!(&a, &b);
            prop_assert!(!a.is_empty());
            // Upper bound: plan length x blocks x passes x instrs.
            let bound = (2 + 4 * (iters as usize + iters as usize / 3 + 1))
                * 8 * 2 * 12;
            prop_assert!(a.len() <= bound, "{} > {}", a.len(), bound);
        }
    }
}
