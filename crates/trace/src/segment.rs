//! Code segments and the global code pool.
//!
//! §3.1 models a transaction's instruction footprint as a sequence of
//! *code segments*, "where each segment fits in the L1-I cache of a single
//! core, but two segments would not fit together". The [`CodePool`] lays
//! segments out in a dedicated code region of the simulated address
//! space; transaction-type programs reference them by [`SegmentId`].
//!
//! Segments can be laid out **sparsely**: real binaries interleave hot
//! code with cold paths, padding and unreached functions, so the live
//! blocks of a segment are separated by dead gaps. This matters for
//! fidelity of the next-line prefetcher baseline (§5.6): in a dense
//! layout, prefetching "the next block" is always useful; with real
//! layouts it often fetches dead code.

use slicc_common::{Addr, BlockAddr, SplitMix64};

/// Index of a segment within a [`CodePool`].
pub type SegmentId = u32;

/// First block number of the code region (blocks below this are never
/// instruction blocks).
pub const CODE_REGION_FIRST_BLOCK: u64 = 0x10_0000;

/// A range of instruction cache blocks: `num_blocks` live blocks, laid
/// out (possibly sparsely) from `first_block`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodeSegment {
    first_block: u64,
    /// Offset (in blocks) of each live block from `first_block`;
    /// strictly ascending, `offsets[0] == 0`.
    offsets: Vec<u32>,
}

impl CodeSegment {
    /// Dead-gap length in blocks. A full set-stride of the largest cache
    /// modelled with set-indexed placement (the 1024-set 512 KiB PIF
    /// L1-I), and therefore a multiple of every smaller power-of-two set
    /// count, so a sparse segment populates cache sets in exactly the
    /// same sequence as a dense one — sparsity changes *address
    /// adjacency* (what a next-line prefetcher exploits) without
    /// perturbing set pressure.
    const GAP_BLOCKS: u32 = 1024;

    fn new(first_block: u64, num_blocks: u32, gap_prob: f64, seed: u64) -> Self {
        assert!(num_blocks > 0, "segments must be non-empty");
        let mut rng = SplitMix64::new(seed);
        let mut offsets = Vec::with_capacity(num_blocks as usize);
        let mut off = 0u32;
        for i in 0..num_blocks {
            offsets.push(off);
            off += 1;
            // Dead gap after a live block (never after the last).
            if i + 1 < num_blocks && gap_prob > 0.0 && rng.chance(gap_prob) {
                off += Self::GAP_BLOCKS;
            }
        }
        CodeSegment { first_block, offsets }
    }

    /// The segment's first (live) cache block.
    pub fn first_block(&self) -> BlockAddr {
        BlockAddr::new(self.first_block)
    }

    /// Number of live 64-byte blocks in the segment (its cache
    /// footprint).
    pub fn num_blocks(&self) -> u32 {
        self.offsets.len() as u32
    }

    /// The address span in blocks, including dead gaps.
    pub fn span_blocks(&self) -> u32 {
        self.offsets.last().copied().unwrap_or(0) + 1
    }

    /// Live size in bytes (the cache capacity the segment occupies).
    pub fn size_bytes(&self) -> u64 {
        self.num_blocks() as u64 * 64
    }

    /// The `i`-th live block of the segment.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn block(&self, i: u32) -> BlockAddr {
        BlockAddr::new(self.first_block + self.offsets[i as usize] as u64)
    }

    /// The byte address of instruction `instr` (4-byte instructions)
    /// within live block `i`.
    pub fn instr_addr(&self, i: u32, instr: u32) -> Addr {
        self.block(i).base_addr(64).offset(instr as u64 * 4)
    }

    /// Whether `block` is one of this segment's *live* blocks.
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        let Some(delta) = block.raw().checked_sub(self.first_block) else {
            return false;
        };
        if delta > u32::MAX as u64 {
            return false;
        }
        self.offsets.binary_search(&(delta as u32)).is_ok()
    }

    /// Whether `block` falls within the segment's address span (live or
    /// dead).
    pub fn spans_block(&self, block: BlockAddr) -> bool {
        (self.first_block..self.first_block + self.span_blocks() as u64).contains(&block.raw())
    }
}

/// The global pool of code segments for one workload.
///
/// Segments are laid out back-to-back (by span) starting at
/// [`CODE_REGION_FIRST_BLOCK`]; live blocks never overlap, so block-level
/// commonality between threads arises only from *programs sharing
/// segments*, exactly the structure SLICC exploits.
///
/// # Example
///
/// ```
/// use slicc_trace::CodePool;
///
/// let mut pool = CodePool::new();
/// let a = pool.add_segment(320); // 20 KiB of live code
/// let b = pool.add_segment(320);
/// assert_ne!(pool.segment(a).first_block(), pool.segment(b).first_block());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CodePool {
    segments: Vec<CodeSegment>,
    next_block: u64,
    gap_prob: f64,
}

impl CodePool {
    /// Creates an empty pool with a dense layout (no dead gaps).
    pub fn new() -> Self {
        CodePool { segments: Vec::new(), next_block: CODE_REGION_FIRST_BLOCK, gap_prob: 0.0 }
    }

    /// Creates an empty pool whose segments interleave live blocks with
    /// dead gaps at the given probability (realistic binary layout).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= gap_prob < 1`.
    pub fn with_gap_prob(gap_prob: f64) -> Self {
        assert!((0.0..1.0).contains(&gap_prob), "gap probability must be in [0, 1)");
        CodePool { segments: Vec::new(), next_block: CODE_REGION_FIRST_BLOCK, gap_prob }
    }

    /// Appends a segment of `num_blocks` live blocks and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` is zero.
    pub fn add_segment(&mut self, num_blocks: u32) -> SegmentId {
        let id = self.segments.len() as SegmentId;
        let seg = CodeSegment::new(self.next_block, num_blocks, self.gap_prob, 0x5e9 ^ (id as u64) << 20);
        self.next_block += seg.span_blocks() as u64;
        self.segments.push(seg);
        id
    }

    /// The segment with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn segment(&self, id: SegmentId) -> &CodeSegment {
        &self.segments[id as usize]
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the pool has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total live code bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.size_bytes()).sum()
    }

    /// Iterates all segments with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (SegmentId, &CodeSegment)> {
        self.segments.iter().enumerate().map(|(i, s)| (i as SegmentId, s))
    }

    /// Finds the segment whose *live* blocks contain `block`, if any
    /// (O(log n)).
    pub fn segment_of_block(&self, block: BlockAddr) -> Option<SegmentId> {
        let idx = self
            .segments
            .partition_point(|s| s.first_block + s.span_blocks() as u64 <= block.raw());
        let seg = self.segments.get(idx)?;
        seg.contains_block(block).then_some(idx as SegmentId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_disjoint_and_ordered() {
        let mut pool = CodePool::new();
        let ids: Vec<_> = (0..5).map(|_| pool.add_segment(100)).collect();
        for w in ids.windows(2) {
            let a = pool.segment(w[0]);
            let b = pool.segment(w[1]);
            assert_eq!(a.first_block().raw() + a.span_blocks() as u64, b.first_block().raw());
        }
        assert_eq!(pool.total_bytes(), 5 * 100 * 64);
    }

    #[test]
    fn dense_pool_has_no_gaps() {
        let mut pool = CodePool::new();
        let id = pool.add_segment(50);
        let seg = pool.segment(id);
        assert_eq!(seg.span_blocks(), 50);
        for i in 0..50 {
            assert_eq!(seg.block(i).raw(), seg.first_block().raw() + i as u64);
        }
    }

    #[test]
    fn sparse_pool_spreads_blocks() {
        let mut pool = CodePool::with_gap_prob(0.5);
        let id = pool.add_segment(200);
        let seg = pool.segment(id);
        assert_eq!(seg.num_blocks(), 200);
        assert!(seg.span_blocks() > 250, "span {} should include gaps", seg.span_blocks());
        // Live blocks are strictly ascending and unique.
        let blocks: Vec<_> = (0..200).map(|i| seg.block(i).raw()).collect();
        for w in blocks.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn sparse_layout_is_deterministic() {
        let mut a = CodePool::with_gap_prob(0.5);
        let mut b = CodePool::with_gap_prob(0.5);
        let ia = a.add_segment(64);
        let ib = b.add_segment(64);
        let sa: Vec<_> = (0..64).map(|i| a.segment(ia).block(i)).collect();
        let sb: Vec<_> = (0..64).map(|i| b.segment(ib).block(i)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn block_and_instr_addresses() {
        let mut pool = CodePool::new();
        let id = pool.add_segment(8);
        let seg = pool.segment(id);
        assert_eq!(seg.block(0), seg.first_block());
        assert_eq!(seg.block(3).raw(), seg.first_block().raw() + 3);
        let a = seg.instr_addr(1, 2);
        assert_eq!(a.raw(), (seg.first_block().raw() + 1) * 64 + 8);
        assert_eq!(a.block(64), seg.block(1));
    }

    #[test]
    fn contains_block_distinguishes_live_from_dead() {
        let mut pool = CodePool::with_gap_prob(0.9);
        let id = pool.add_segment(10);
        let seg = pool.segment(id);
        for i in 0..10 {
            assert!(seg.contains_block(seg.block(i)));
        }
        assert!(seg.span_blocks() > 10, "gap_prob 0.9 must create gaps");
        // Some spanned block is dead.
        let dead = (0..seg.span_blocks() as u64)
            .map(|d| BlockAddr::new(seg.first_block().raw() + d))
            .find(|&b| !seg.contains_block(b))
            .expect("a dead block exists");
        assert!(seg.spans_block(dead));
        assert!(!seg.contains_block(dead));
    }

    #[test]
    fn segment_of_block_lookup() {
        let mut pool = CodePool::new();
        let a = pool.add_segment(10);
        let b = pool.add_segment(20);
        let c = pool.add_segment(5);
        assert_eq!(pool.segment_of_block(pool.segment(a).block(9)), Some(a));
        assert_eq!(pool.segment_of_block(pool.segment(b).block(0)), Some(b));
        assert_eq!(pool.segment_of_block(pool.segment(c).block(4)), Some(c));
        assert_eq!(pool.segment_of_block(BlockAddr::new(0)), None);
        assert_eq!(pool.segment_of_block(BlockAddr::new(CODE_REGION_FIRST_BLOCK + 35)), None);
    }

    #[test]
    fn segment_of_block_skips_dead_blocks() {
        let mut pool = CodePool::with_gap_prob(0.9);
        let id = pool.add_segment(10);
        let seg = pool.segment(id).clone();
        let dead = (0..seg.span_blocks() as u64)
            .map(|d| BlockAddr::new(seg.first_block().raw() + d))
            .find(|&b| !seg.contains_block(b))
            .expect("a dead block exists");
        assert_eq!(pool.segment_of_block(dead), None);
        assert_eq!(pool.segment_of_block(seg.block(9)), Some(id));
    }

    #[test]
    fn code_region_starts_at_known_base() {
        let mut pool = CodePool::new();
        let id = pool.add_segment(1);
        assert_eq!(pool.segment(id).first_block().raw(), CODE_REGION_FIRST_BLOCK);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_segment_panics() {
        CodePool::new().add_segment(0);
    }

    #[test]
    #[should_panic(expected = "gap probability")]
    fn invalid_gap_prob_panics() {
        let _ = CodePool::with_gap_prob(1.5);
    }
}
