//! Structural validation of a workload against the paper's §2/§3
//! premises.
//!
//! SLICC's benefit rests on measurable trace properties; this module
//! checks them mechanically so that custom workloads (via
//! [`crate::WorkloadBuilder`]) can be verified before simulation, and so
//! the presets are pinned to the paper's characterization by tests.

use crate::access::Record;
use crate::workload::WorkloadSpec;
use slicc_common::{CacheGeometry, TxnTypeId};

/// A structurally impossible record found in a decoded trace.
///
/// Every address space in the generator starts well above zero (the code
/// region begins at `0x10_0000`, data regions higher still), so a zero
/// address in a trace always means corruption or a foreign producer's
/// bug — never a legitimate access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordIssue {
    /// A record fetches from address zero.
    ZeroPc {
        /// Index of the offending record in the trace.
        index: usize,
    },
    /// A load or store touches data address zero.
    ZeroDataAddr {
        /// Index of the offending record in the trace.
        index: usize,
    },
}

impl std::fmt::Display for RecordIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordIssue::ZeroPc { index } => {
                write!(f, "record {index} fetches from address zero")
            }
            RecordIssue::ZeroDataAddr { index } => {
                write!(f, "record {index} accesses data address zero")
            }
        }
    }
}

impl std::error::Error for RecordIssue {}

/// Checks every record of a trace for structural impossibilities,
/// reporting the first one found. [`crate::codec::decode_trace`] runs
/// this on every decoded trace, so corrupt or hand-forged streams are
/// rejected before they reach the simulator.
///
/// # Errors
///
/// Returns the first [`RecordIssue`] encountered, with the record index.
pub fn validate_records(records: &[Record]) -> Result<(), RecordIssue> {
    for (index, rec) in records.iter().enumerate() {
        if rec.pc.raw() == 0 {
            return Err(RecordIssue::ZeroPc { index });
        }
        if let Some(data) = rec.data {
            if data.addr.raw() == 0 {
                return Err(RecordIssue::ZeroDataAddr { index });
            }
        }
    }
    Ok(())
}

/// The result of checking one workload against the §2/§3 premises for a
/// given L1-I shape and core count.
#[derive(Clone, Debug, PartialEq)]
pub struct StructureReport {
    /// Every segment fits the L1-I (§3.1 "each segment fits in the L1-I
    /// cache of a single core").
    pub segments_fit_l1: bool,
    /// No two segments fit together (§3.1 "but two segments would not
    /// fit together").
    pub pairs_overflow_l1: bool,
    /// Every type's footprint exceeds one L1-I (the thrash premise).
    pub footprints_exceed_l1: bool,
    /// Every type's footprint fits the aggregate L1-I capacity (§2.1
    /// "would fit in the aggregate L1 instruction cache capacity").
    pub footprints_fit_aggregate: bool,
    /// Smallest and largest per-type footprint in bytes.
    pub footprint_range: (u64, u64),
    /// Total live code bytes across all types.
    pub aggregate_code_bytes: u64,
}

impl StructureReport {
    /// Whether every premise holds.
    pub fn all_hold(&self) -> bool {
        self.segments_fit_l1
            && self.pairs_overflow_l1
            && self.footprints_exceed_l1
            && self.footprints_fit_aggregate
    }
}

/// Checks `spec` against the paper's structural premises for a machine
/// of `cores` cores with `l1i`-shaped instruction caches.
///
/// # Example
///
/// ```
/// use slicc_common::CacheGeometry;
/// use slicc_trace::{validate_structure, TraceScale, Workload};
///
/// let spec = Workload::TpcC1.spec(TraceScale::paper_like());
/// let report = validate_structure(&spec, CacheGeometry::new(32 * 1024, 8, 64), 16);
/// assert!(report.all_hold());
/// ```
pub fn validate_structure(spec: &WorkloadSpec, l1i: CacheGeometry, cores: usize) -> StructureReport {
    let l1_bytes = l1i.size_bytes();
    let aggregate = l1_bytes * cores as u64;

    let mut segments_fit = true;
    let mut pairs_overflow = true;
    for (_, seg) in spec.pool.iter() {
        segments_fit &= seg.size_bytes() <= l1_bytes;
        pairs_overflow &= 2 * seg.size_bytes() > l1_bytes;
    }

    let mut lo = u64::MAX;
    let mut hi = 0;
    let mut exceed = true;
    let mut fit_aggregate = true;
    for i in 0..spec.types.len() {
        let fp = spec.type_footprint_bytes(TxnTypeId::new(i as u16));
        lo = lo.min(fp);
        hi = hi.max(fp);
        // MapReduce-style single-L1 footprints are exempt from the
        // "exceeds one L1" premise — SLICC's robustness case.
        if spec.types.len() > 1 {
            exceed &= fp > l1_bytes;
        }
        fit_aggregate &= fp <= aggregate;
    }

    StructureReport {
        segments_fit_l1: segments_fit,
        pairs_overflow_l1: pairs_overflow,
        footprints_exceed_l1: exceed,
        footprints_fit_aggregate: fit_aggregate,
        footprint_range: (lo, hi),
        aggregate_code_bytes: spec.pool.total_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{TraceScale, Workload};

    fn baseline_l1i() -> CacheGeometry {
        CacheGeometry::new(32 * 1024, 8, 64)
    }

    #[test]
    fn paper_scale_presets_satisfy_the_premises() {
        for w in [Workload::TpcC1, Workload::TpcC10, Workload::TpcE] {
            let spec = w.spec(TraceScale::paper_like());
            let r = validate_structure(&spec, baseline_l1i(), 16);
            assert!(r.all_hold(), "{w}: {r:?}");
            assert!(r.footprint_range.0 > 32 * 1024, "{w}");
        }
    }

    #[test]
    fn mapreduce_is_the_single_l1_exception() {
        let spec = Workload::MapReduce.spec(TraceScale::paper_like());
        let r = validate_structure(&spec, baseline_l1i(), 16);
        assert!(r.segments_fit_l1);
        assert!(r.footprint_range.1 <= 32 * 1024, "MapReduce fits one L1-I");
    }

    #[test]
    fn tiny_presets_satisfy_premises_against_the_tiny_machine() {
        let tiny_l1 = CacheGeometry::new(4 * 1024, 8, 64);
        for w in [Workload::TpcC1, Workload::TpcE] {
            let spec = w.spec(TraceScale::tiny());
            let r = validate_structure(&spec, tiny_l1, 16);
            assert!(r.segments_fit_l1 && r.pairs_overflow_l1, "{w}: {r:?}");
        }
    }

    #[test]
    fn oversized_segments_are_flagged() {
        let spec = crate::builder::WorkloadBuilder::new("big")
            .segment_blocks(2048) // 128 KiB > 32 KiB
            .txn_type("T", 1.0, 2, 3)
            .build();
        let r = validate_structure(&spec, baseline_l1i(), 16);
        assert!(!r.segments_fit_l1);
        assert!(!r.all_hold());
    }

    #[test]
    fn generated_traces_pass_record_validation() {
        let spec = Workload::TpcC1.spec(TraceScale::tiny());
        for t in spec.threads() {
            let records: Vec<_> = spec.thread_trace(t).collect();
            assert_eq!(validate_records(&records), Ok(()), "thread {t:?}");
        }
    }

    #[test]
    fn zero_addresses_are_flagged_with_their_index() {
        use crate::access::Record;
        use slicc_common::Addr;
        let good = Record::load(Addr::new(0x10_0000), Addr::new(0x4000_0000));
        assert_eq!(
            validate_records(&[good, Record::compute(Addr::new(0))]),
            Err(RecordIssue::ZeroPc { index: 1 })
        );
        assert_eq!(
            validate_records(&[good, Record::store(Addr::new(0x10_0040), Addr::new(0))]),
            Err(RecordIssue::ZeroDataAddr { index: 1 })
        );
        let msg = RecordIssue::ZeroDataAddr { index: 7 }.to_string();
        assert!(msg.contains('7'), "message must carry the index: {msg}");
    }

    #[test]
    fn small_segments_fail_the_pair_premise() {
        let spec = crate::builder::WorkloadBuilder::new("small")
            .segment_blocks(64) // 4 KiB: two fit easily in 32 KiB
            .txn_type("T", 1.0, 2, 3)
            .build();
        let r = validate_structure(&spec, baseline_l1i(), 16);
        assert!(r.segments_fit_l1);
        assert!(!r.pairs_overflow_l1);
    }
}
