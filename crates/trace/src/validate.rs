//! Structural validation of a workload against the paper's §2/§3
//! premises.
//!
//! SLICC's benefit rests on measurable trace properties; this module
//! checks them mechanically so that custom workloads (via
//! [`crate::WorkloadBuilder`]) can be verified before simulation, and so
//! the presets are pinned to the paper's characterization by tests.

use crate::workload::WorkloadSpec;
use slicc_common::{CacheGeometry, TxnTypeId};

/// The result of checking one workload against the §2/§3 premises for a
/// given L1-I shape and core count.
#[derive(Clone, Debug, PartialEq)]
pub struct StructureReport {
    /// Every segment fits the L1-I (§3.1 "each segment fits in the L1-I
    /// cache of a single core").
    pub segments_fit_l1: bool,
    /// No two segments fit together (§3.1 "but two segments would not
    /// fit together").
    pub pairs_overflow_l1: bool,
    /// Every type's footprint exceeds one L1-I (the thrash premise).
    pub footprints_exceed_l1: bool,
    /// Every type's footprint fits the aggregate L1-I capacity (§2.1
    /// "would fit in the aggregate L1 instruction cache capacity").
    pub footprints_fit_aggregate: bool,
    /// Smallest and largest per-type footprint in bytes.
    pub footprint_range: (u64, u64),
    /// Total live code bytes across all types.
    pub aggregate_code_bytes: u64,
}

impl StructureReport {
    /// Whether every premise holds.
    pub fn all_hold(&self) -> bool {
        self.segments_fit_l1
            && self.pairs_overflow_l1
            && self.footprints_exceed_l1
            && self.footprints_fit_aggregate
    }
}

/// Checks `spec` against the paper's structural premises for a machine
/// of `cores` cores with `l1i`-shaped instruction caches.
///
/// # Example
///
/// ```
/// use slicc_common::CacheGeometry;
/// use slicc_trace::{validate_structure, TraceScale, Workload};
///
/// let spec = Workload::TpcC1.spec(TraceScale::paper_like());
/// let report = validate_structure(&spec, CacheGeometry::new(32 * 1024, 8, 64), 16);
/// assert!(report.all_hold());
/// ```
pub fn validate_structure(spec: &WorkloadSpec, l1i: CacheGeometry, cores: usize) -> StructureReport {
    let l1_bytes = l1i.size_bytes();
    let aggregate = l1_bytes * cores as u64;

    let mut segments_fit = true;
    let mut pairs_overflow = true;
    for (_, seg) in spec.pool.iter() {
        segments_fit &= seg.size_bytes() <= l1_bytes;
        pairs_overflow &= 2 * seg.size_bytes() > l1_bytes;
    }

    let mut lo = u64::MAX;
    let mut hi = 0;
    let mut exceed = true;
    let mut fit_aggregate = true;
    for i in 0..spec.types.len() {
        let fp = spec.type_footprint_bytes(TxnTypeId::new(i as u16));
        lo = lo.min(fp);
        hi = hi.max(fp);
        // MapReduce-style single-L1 footprints are exempt from the
        // "exceeds one L1" premise — SLICC's robustness case.
        if spec.types.len() > 1 {
            exceed &= fp > l1_bytes;
        }
        fit_aggregate &= fp <= aggregate;
    }

    StructureReport {
        segments_fit_l1: segments_fit,
        pairs_overflow_l1: pairs_overflow,
        footprints_exceed_l1: exceed,
        footprints_fit_aggregate: fit_aggregate,
        footprint_range: (lo, hi),
        aggregate_code_bytes: spec.pool.total_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{TraceScale, Workload};

    fn baseline_l1i() -> CacheGeometry {
        CacheGeometry::new(32 * 1024, 8, 64)
    }

    #[test]
    fn paper_scale_presets_satisfy_the_premises() {
        for w in [Workload::TpcC1, Workload::TpcC10, Workload::TpcE] {
            let spec = w.spec(TraceScale::paper_like());
            let r = validate_structure(&spec, baseline_l1i(), 16);
            assert!(r.all_hold(), "{w}: {r:?}");
            assert!(r.footprint_range.0 > 32 * 1024, "{w}");
        }
    }

    #[test]
    fn mapreduce_is_the_single_l1_exception() {
        let spec = Workload::MapReduce.spec(TraceScale::paper_like());
        let r = validate_structure(&spec, baseline_l1i(), 16);
        assert!(r.segments_fit_l1);
        assert!(r.footprint_range.1 <= 32 * 1024, "MapReduce fits one L1-I");
    }

    #[test]
    fn tiny_presets_satisfy_premises_against_the_tiny_machine() {
        let tiny_l1 = CacheGeometry::new(4 * 1024, 8, 64);
        for w in [Workload::TpcC1, Workload::TpcE] {
            let spec = w.spec(TraceScale::tiny());
            let r = validate_structure(&spec, tiny_l1, 16);
            assert!(r.segments_fit_l1 && r.pairs_overflow_l1, "{w}: {r:?}");
        }
    }

    #[test]
    fn oversized_segments_are_flagged() {
        let spec = crate::builder::WorkloadBuilder::new("big")
            .segment_blocks(2048) // 128 KiB > 32 KiB
            .txn_type("T", 1.0, 2, 3)
            .build();
        let r = validate_structure(&spec, baseline_l1i(), 16);
        assert!(!r.segments_fit_l1);
        assert!(!r.all_hold());
    }

    #[test]
    fn small_segments_fail_the_pair_premise() {
        let spec = crate::builder::WorkloadBuilder::new("small")
            .segment_blocks(64) // 4 KiB: two fit easily in 32 KiB
            .txn_type("T", 1.0, 2, 3)
            .build();
        let r = validate_structure(&spec, baseline_l1i(), 16);
        assert!(r.segments_fit_l1);
        assert!(!r.pairs_overflow_l1);
    }
}
