//! Synthetic workload generators for the SLICC simulator.
//!
//! The paper replays PIN traces of TPC-C and TPC-E running on Shore-MT,
//! plus a Hadoop MapReduce job (Table 1). Neither the trace toolchain nor
//! the workloads are available here, so this crate *synthesizes* traces
//! with the statistical structure the paper measures and exploits:
//!
//! - transactions are sequences of **code segments**, each of which fits
//!   an L1-I but two of which do not (§3.1, Figure 4);
//! - a transaction's footprint is several times the L1-I and is re-visited
//!   in loops (capacity-dominated instruction misses, §2.1.1);
//! - threads of the same transaction type share ~98% of their instruction
//!   blocks, all threads share the common "DBMS infrastructure" segments
//!   (§2.1.3, Figure 3);
//! - data misses are compulsory-dominated, 45% of data accesses are
//!   stores (§5.5), with a small hot shared set and per-transaction
//!   private working sets;
//! - MapReduce's instruction footprint fits in one L1-I and its data
//!   streams (§2.1, Figure 1).
//!
//! Everything is deterministic: the same ([`WorkloadSpec`], thread id)
//! pair regenerates the identical access stream, which is what makes
//! MPKI comparisons between configurations meaningful.
//!
//! # Example
//!
//! ```
//! use slicc_trace::{TraceScale, Workload};
//!
//! let spec = Workload::TpcC1.spec(TraceScale::tiny());
//! let trace: Vec<_> = spec.thread_trace(slicc_common::ThreadId::new(0)).collect();
//! assert!(!trace.is_empty());
//! // Deterministic regeneration.
//! let again: Vec<_> = spec.thread_trace(slicc_common::ThreadId::new(0)).collect();
//! assert_eq!(trace.len(), again.len());
//! ```

pub mod access;
pub mod builder;
pub mod codec;
// Gated like slicc-common's property tests: re-add the `proptest` dev-dep
// and enable the `proptest` feature to run (DESIGN.md §5).
#[cfg(all(test, feature = "proptest"))]
mod proptests;
pub mod segment;
pub mod stats;
pub mod thread_gen;
pub mod validate;
pub mod workload;

pub use access::{DataAccess, Record};
pub use builder::WorkloadBuilder;
pub use codec::{
    decode_trace, decode_trace_with_limit, encode_trace, DecodeTraceError, DecodedTrace,
    MAX_TRACE_RECORDS,
};
pub use segment::{CodePool, CodeSegment, SegmentId};
pub use stats::{instruction_reuse, FootprintStats, ReuseBreakdown};
pub use thread_gen::ThreadTrace;
pub use validate::{validate_records, validate_structure, RecordIssue, StructureReport};
pub use workload::{CodeParams, DataParams, DataPattern, TraceScale, TypeSpec, Workload, WorkloadSpec};
