//! Trace records: one retired instruction and its optional data access.

use slicc_common::Addr;

/// A data reference made by an instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DataAccess {
    /// The byte address referenced.
    pub addr: Addr,
    /// Whether this is a store (45% of OLTP data accesses, §5.5).
    pub is_store: bool,
}

/// One retired instruction: its fetch address plus at most one data
/// reference.
///
/// The simulator charges one instruction per record, one L1-I access for
/// `pc`, and one L1-D access when `data` is present.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Record {
    /// Fetch (program counter) byte address.
    pub pc: Addr,
    /// The instruction's data reference, if it is a load or store.
    pub data: Option<DataAccess>,
}

impl Record {
    /// An instruction with no memory operand.
    pub const fn compute(pc: Addr) -> Self {
        Record { pc, data: None }
    }

    /// A load instruction.
    pub const fn load(pc: Addr, addr: Addr) -> Self {
        Record { pc, data: Some(DataAccess { addr, is_store: false }) }
    }

    /// A store instruction.
    pub const fn store(pc: Addr, addr: Addr) -> Self {
        Record { pc, data: Some(DataAccess { addr, is_store: true }) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let pc = Addr::new(0x1000);
        let d = Addr::new(0x2000);
        assert_eq!(Record::compute(pc).data, None);
        assert_eq!(Record::load(pc, d).data, Some(DataAccess { addr: d, is_store: false }));
        assert!(Record::store(pc, d).data.unwrap().is_store);
        assert_eq!(Record::store(pc, d).pc, pc);
    }
}
