//! Minimal JSON string emission helpers.
//!
//! The workspace builds with no external dependencies (DESIGN.md §5), so
//! every JSON document — the tracked bench baseline, the observability
//! exporters, the JSON-lines progress reporter — is rendered by hand.
//! What must not be re-invented per call site is *escaping*: an event
//! label or error message containing `"` or a control character must not
//! corrupt the document. This module centralizes exactly that.

use std::fmt::Write;

/// Appends `s` to `out` as a JSON string literal, including the
/// surrounding quotes, escaping `"`, `\`, and control characters.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders `s` as a standalone JSON string literal (quotes included).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_str(&mut out, s);
    out
}

/// Renders an `f64` the way JSON requires: `NaN` and infinities (which
/// JSON cannot represent) become `null`, everything else uses Rust's
/// shortest round-trippable form.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through_quoted() {
        assert_eq!(json_str("core 3"), "\"core 3\"");
    }

    #[test]
    fn quotes_backslashes_and_controls_are_escaped() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
