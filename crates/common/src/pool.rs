//! A process-global, lazily-built worker pool with a scoped fork-join API.
//!
//! The workspace has two distinct fan-out consumers — [`parallel_map`]'s
//! pre-decode of per-thread trace streams and the engine's intra-point
//! shard lanes — and before this module each spawned fresh OS threads per
//! call. The pool amortizes thread creation across the whole process:
//! threads are spawned on demand (counted in [`spinups`], surfaced through
//! `RunnerStats`), capped at the host's available parallelism, and parked
//! idle between bursts.
//!
//! # Scoped API
//!
//! [`scope`] is a miniature `std::thread::scope` built on pooled threads:
//! closures spawned inside the scope may borrow from the enclosing stack
//! frame, and `scope` does not return until every spawned closure has
//! finished. Two properties make it deadlock-free even when the pool is
//! saturated by *other* scopes:
//!
//! - **The joining caller participates.** While waiting, the scope's own
//!   still-queued closures are stolen back and run inline on the joining
//!   thread, so a scope always makes progress with zero free pool threads.
//! - **Jobs are tagged per scope**, so the steal never runs another
//!   scope's work on a stack it might outlive.
//!
//! Panics inside a spawned closure are caught at the task boundary and
//! re-raised from [`scope`] after every task has settled, mirroring the
//! `std::thread::scope` contract.
//!
//! [`parallel_map`]: crate::parallel_map

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use crate::sync::lock_unpoisoned;

/// A queued unit of work: the owning scope's tag plus the erased closure.
/// The closure is claimed-`'static` via [`Scope::spawn`]'s lifetime
/// erasure; the scope's join barrier is what actually upholds the claim.
type Job = (u64, Box<dyn FnOnce() + Send + 'static>);

struct PoolState {
    queue: VecDeque<Job>,
    /// Workers currently parked in `wait` with nothing to run.
    idle: usize,
    /// OS threads ever spawned and still alive (workers never exit).
    spawned: usize,
}

/// The process-global pool. Private: all access goes through [`scope`].
struct Pool {
    state: Mutex<PoolState>,
    work: Condvar,
    limit: usize,
    spinups: AtomicU64,
}

static POOL: OnceLock<Pool> = OnceLock::new();
static NEXT_TAG: AtomicU64 = AtomicU64::new(1);

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { queue: VecDeque::new(), idle: 0, spawned: 0 }),
        work: Condvar::new(),
        limit: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(1),
        spinups: AtomicU64::new(0),
    })
}

/// How many OS threads the global pool has ever spawned. Threads are
/// reused across calls, so a steady workload converges to a constant
/// spin-up count no matter how many scopes it opens; `RunnerStats`
/// reports this to make the reuse visible.
pub fn spinups() -> u64 {
    POOL.get().map(|p| p.spinups.load(Ordering::Relaxed)).unwrap_or(0)
}

impl Pool {
    fn submit(&'static self, tag: u64, job: Box<dyn FnOnce() + Send + 'static>) {
        let mut st = lock_unpoisoned(&self.state);
        st.queue.push_back((tag, job));
        // Spawn a worker only when nobody is parked to take the job and
        // the cap leaves headroom; otherwise an existing worker (or the
        // joining caller, via steal) will get to it.
        if st.idle == 0 && st.spawned < self.limit {
            st.spawned += 1;
            self.spinups.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name("slicc-pool".into())
                .spawn(move || self.worker_loop())
                .expect("spawning a pool worker");
        }
        drop(st);
        self.work.notify_one();
    }

    fn worker_loop(&'static self) {
        loop {
            let job = {
                let mut st = lock_unpoisoned(&self.state);
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                    st.idle += 1;
                    st = self.work.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
                    st.idle -= 1;
                }
            };
            // Task panics were already caught by the scope wrapper; a Job
            // never unwinds into the worker loop.
            (job.1)();
        }
    }

    /// Removes and returns one still-queued job belonging to `tag`, if any.
    fn steal_tagged(&'static self, tag: u64) -> Option<Box<dyn FnOnce() + Send + 'static>> {
        let mut st = lock_unpoisoned(&self.state);
        let pos = st.queue.iter().position(|(t, _)| *t == tag)?;
        st.queue.remove(pos).map(|(_, job)| job)
    }
}

#[derive(Default)]
struct ScopeStatus {
    outstanding: usize,
    panicked: bool,
}

#[derive(Default)]
struct ScopeSync {
    status: Mutex<ScopeStatus>,
    done: Condvar,
}

/// A handle for spawning borrowing closures onto the global pool; created
/// by [`scope`], joined before [`scope`] returns.
pub struct Scope<'env> {
    sync: Arc<ScopeSync>,
    tag: u64,
    // Invariant in 'env, like std::thread::scope: the compiler may not
    // shrink the lifetime the spawned closures were checked against.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Queues `f` on the global pool. `f` may borrow anything that lives
    /// for `'env`; the enclosing [`scope`] call joins every spawned
    /// closure before returning, which is what makes the borrow sound.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        lock_unpoisoned(&self.sync.status).outstanding += 1;
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the closure only runs before `scope` returns (the join
        // barrier in `scope` waits for `outstanding == 0` and steals
        // queued jobs back), so every `'env` borrow it captures is still
        // live whenever it executes. Lifetime erasure to 'static is how
        // the job crosses into the process-global queue.
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        let sync = Arc::clone(&self.sync);
        pool().submit(
            self.tag,
            Box::new(move || {
                if catch_unwind(AssertUnwindSafe(boxed)).is_err() {
                    lock_unpoisoned(&sync.status).panicked = true;
                }
                lock_unpoisoned(&sync.status).outstanding -= 1;
                sync.done.notify_all();
            }),
        );
    }

    /// Blocks until every closure spawned on this scope has finished,
    /// running the scope's own still-queued closures inline while waiting.
    fn join(&self) {
        loop {
            // Caller participation: drain our queued jobs on this thread
            // so the scope completes even when every pool worker is busy
            // with other scopes' work.
            while let Some(job) = pool().steal_tagged(self.tag) {
                job();
            }
            let status = lock_unpoisoned(&self.sync.status);
            if status.outstanding == 0 {
                return;
            }
            // A short timeout re-arms the steal loop: a job can land in
            // the queue after our drain but find no free worker, and no
            // completion signal would ever wake us for it.
            let (status, _) = self
                .sync
                .done
                .wait_timeout(status, Duration::from_millis(1))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            drop(status);
        }
    }
}

/// Runs `f` with a [`Scope`] whose spawned closures execute on the global
/// worker pool, then joins them all before returning. Panics from spawned
/// closures are re-raised here after the join; a panic from `f` itself
/// still joins every already-spawned closure before propagating.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope {
        sync: Arc::new(ScopeSync::default()),
        tag: NEXT_TAG.fetch_add(1, Ordering::Relaxed),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    scope.join();
    let panicked = lock_unpoisoned(&scope.sync.status).panicked;
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(value) => {
            if panicked {
                panic!("a closure spawned on a pool scope panicked");
            }
            value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_every_spawned_closure_and_joins() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64, "join must wait for all closures");
    }

    #[test]
    fn scoped_closures_may_borrow_the_stack() {
        let data = [1u64, 2, 3, 4];
        let sum = Mutex::new(0u64);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|| {
                    *lock_unpoisoned(&sum) += chunk.iter().sum::<u64>();
                });
            }
        });
        assert_eq!(*lock_unpoisoned(&sum), 10);
    }

    #[test]
    fn nested_scopes_complete_even_when_saturated() {
        // Open more concurrent scopes than the pool has threads; caller
        // participation must keep every scope finishing.
        let total = AtomicUsize::new(0);
        scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn panics_propagate_after_the_join() {
        let survivor = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("boom"));
                s.spawn(|| {
                    survivor.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err(), "the task panic must re-raise from scope()");
        assert_eq!(survivor.load(Ordering::Relaxed), 1, "sibling tasks still run to completion");
    }

    #[test]
    fn spinups_are_counted_and_bounded_by_the_host() {
        // 100 sequential one-task scopes would naively cost 100 thread
        // spawns; the pool must reuse workers, so the lifetime spin-up
        // count stays under the hard cap (available parallelism), which
        // is also shared with every other test in this binary.
        for _ in 0..100 {
            scope(|s| {
                s.spawn(|| {});
            });
        }
        let cap = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as u64;
        assert!(spinups() >= 1, "at least one worker must have spun up");
        assert!(
            spinups() <= cap,
            "spin-ups ({}) must never exceed the worker cap ({cap})",
            spinups()
        );
    }
}
