//! A tiny, fast, deterministic pseudo-random number generator.
//!
//! Workload generation and simulation must be bit-reproducible across runs
//! and configurations — the same seed must replay the same trace so that
//! MPKI comparisons between, say, LRU and DRRIP are apples-to-apples. The
//! [`SplitMix64`] generator (Steele, Lea & Flood 2014) is used for all
//! stochastic choices in the workspace: it is seedable, allocation-free,
//! and splittable (each thread's trace derives its own stream from the
//! workload seed and the thread id).

/// SplitMix64 PRNG.
///
/// # Example
///
/// ```
/// use slicc_common::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child stream, keyed by `salt`.
    ///
    /// Used to give every simulated thread its own reproducible stream:
    /// `workload_rng.split(thread_id)`.
    pub fn split(&self, salt: u64) -> SplitMix64 {
        // Mix the salt through one SplitMix64 round so nearby salts
        // (thread 0, 1, 2, ...) produce uncorrelated streams.
        let mut child = SplitMix64::new(self.state ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        child.next_u64();
        child
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift (Lemire); bias is negligible for simulator purposes
        // (bound << 2^64) and the method is branch-free.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(!weights.is_empty() && total > 0.0, "weights must be non-empty with positive sum");
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let root = SplitMix64::new(7);
        let mut c0 = root.split(0);
        let mut c0_again = root.split(0);
        let mut c1 = root.split(1);
        assert_eq!(c0.next_u64(), c0_again.next_u64());
        assert_ne!(c0.next_u64(), c1.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(4);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = SplitMix64::new(5);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[r.next_below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut r = SplitMix64::new(6);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.pick_weighted(&[1.0, 2.0, 1.0])] += 1;
        }
        assert!(counts[1] > counts[0] && counts[1] > counts[2], "{counts:?}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
