//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! The per-access maps — the TLB's page table, the L2 directory, the
//! PIF's temporal-stream index — are keyed by small integers and sit on
//! the per-instruction hot path, where std's DoS-resistant SipHash costs
//! more than the rest of the lookup combined. [`FxHasher`] is a
//! multiply-fold hash in the style of rustc's: one rotate, one xor and
//! one multiply per word. The odd multiplier makes `k * M` a bijection on
//! the low bits, so dense integer keys (page numbers, block addresses)
//! never collide in the buckets a `HashMap` derives from them.
//!
//! Unlike `RandomState`, hashing is the same in every process, which the
//! run cache and golden-determinism tests rely on. Never use these maps
//! for untrusted external input; simulated addresses are not adversarial.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-fx odd constant: truncated golden-ratio expansion.
const M: u64 = 0x517c_c1b7_2722_0a95;

/// One-word-at-a-time multiply-fold hasher (deterministic, not
/// DoS-resistant).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(M);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// Deterministic `BuildHasher` for [`FxHasher`].
pub type FastBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]; drop-in for hot integer-keyed maps.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(0xdead_beefu64), hash_of(0xdead_beefu64));
        assert_eq!(hash_of("slicc"), hash_of("slicc"));
    }

    #[test]
    fn dense_integer_keys_do_not_collide_in_low_bits() {
        // Sequential page numbers must land in distinct buckets: k * M is
        // a bijection modulo any power of two, so 1024 keys fill 1024
        // distinct low-10-bit slots.
        let mut buckets: Vec<u64> = (0..1024u64).map(|k| hash_of(k) & 0x3ff).collect();
        buckets.sort_unstable();
        buckets.dedup();
        assert_eq!(buckets.len(), 1024);
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FastHashMap<u64, u32> = FastHashMap::default();
        for k in 0..100 {
            m.insert(k, (k * 3) as u32);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&42), Some(&126));
        m.remove(&42);
        assert_eq!(m.get(&42), None);
    }

    #[test]
    fn byte_slices_hash_by_content() {
        let a = hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 9]);
        let b = hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 9]);
        let c = hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
