//! Small synchronization helpers shared across the workspace: poison
//! recovery, cooperative cancellation, SIGINT-to-cancel wiring, and a
//! deterministic scoped fork-join for index-addressed work.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if a previous holder panicked.
///
/// The shared state guarded this way in the workspace (the runner's
/// memoized run cache, its checkpoint writer, the worker-pool job queue)
/// consists of maps and counters whose individual updates are atomic with
/// respect to the lock: a panic mid-simulation cannot leave them
/// half-written in a way a later reader would misinterpret. Poisoning is
/// therefore pure downside — one crashed simulation point would wedge
/// every subsequent `cached_points()`/`stats()` call — so we strip it.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A cheap cooperative cancellation flag shared between a controller (a
/// SIGINT handler, a deadline sweep, a test harness) and the workers it
/// may need to stop.
///
/// Clones share one flag. Checking is a single relaxed atomic load, cheap
/// enough to sit on the engine's per-heap-step watchdog cadence without
/// perturbing throughput; cancellation is level-triggered and sticky —
/// once set it stays set for every clone.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation for every clone of this token.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// True once any clone has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// The raw flag pointer, for contexts (signal handlers) that must not
    /// touch the `Arc` refcount. The pointee stays valid for the lifetime
    /// of any clone; callers keep one alive.
    fn flag_ptr(&self) -> *mut AtomicBool {
        Arc::as_ptr(&self.cancelled) as *mut AtomicBool
    }
}

/// Runs `f(i)` for every index in `0..n` across up to `workers` threads
/// drawn from the process-global [`pool`](crate::pool) and returns the
/// results in index order.
///
/// Work is shared through an atomic next-index counter, so uneven items
/// load-balance naturally. The output is **deterministic by
/// construction**: each result is keyed by its index and reassembled in
/// order, so any worker count (including 1, which runs inline with no
/// threads at all) produces the identical `Vec` as long as `f` itself is
/// a pure function of `i`. The engine leans on this to pre-decode
/// per-thread trace streams in parallel without letting scheduling
/// nondeterminism anywhere near simulated results.
///
/// The calling thread always participates as one of the `workers`, so the
/// map completes (at reduced parallelism) even when the pool is saturated
/// by other work.
///
/// # Panics
///
/// Propagates a panic from `f` after the scope joins.
pub fn parallel_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let chunks: Mutex<Vec<Vec<(usize, T)>>> = Mutex::new(Vec::with_capacity(workers));
    let claim_loop = |produced: &mut Vec<(usize, T)>| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        produced.push((i, f(i)));
    };
    crate::pool::scope(|scope| {
        for _ in 0..workers - 1 {
            scope.spawn(|| {
                let mut produced = Vec::new();
                claim_loop(&mut produced);
                lock_unpoisoned(&chunks).push(produced);
            });
        }
        // Caller participation: this thread is the last worker.
        let mut produced = Vec::new();
        claim_loop(&mut produced);
        lock_unpoisoned(&chunks).push(produced);
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, value) in chunks.into_inner().unwrap_or_else(PoisonError::into_inner).into_iter().flatten()
    {
        slots[i] = Some(value);
    }
    slots.into_iter().map(|s| s.expect("every index 0..n is claimed exactly once")).collect()
}

/// Process-wide SIGINT state. The handler may only perform async-signal-
/// safe work, so everything it touches is a plain atomic: the flag pointer
/// of the registered [`CancelToken`] and a delivery counter.
static SIGINT_FLAG: AtomicPtr<AtomicBool> = AtomicPtr::new(std::ptr::null_mut());
static SIGINT_COUNT: AtomicU32 = AtomicU32::new(0);

/// How many SIGINTs the process has received since
/// [`install_sigint_cancel`] was called. Binaries use this to distinguish
/// "cancelled by Ctrl-C" (exit 130) from other cancellation sources.
pub fn sigint_count() -> u32 {
    SIGINT_COUNT.load(Ordering::SeqCst)
}

/// Routes SIGINT into `token`: the first Ctrl-C cancels the token so
/// in-flight work can wind down cooperatively (checkpoints keep only
/// completed points); the second hard-exits with status 130 for runs that
/// refuse to die. Returns false (and installs nothing) on non-Unix
/// targets.
///
/// Call once per process, from the binary's setup path, and keep the
/// token (or a clone) alive for the rest of the process: the handler
/// holds a raw pointer to its flag. A second install re-points the
/// handler at the new token and leaks the old flag — one `AtomicBool`
/// per install, only reachable from tests.
pub fn install_sigint_cancel(token: &CancelToken) -> bool {
    // Keep the flag alive for the process lifetime even if the caller
    // drops its token: leak one strong reference.
    std::mem::forget(token.clone());
    SIGINT_FLAG.store(token.flag_ptr(), Ordering::SeqCst);
    install_sigint_handler()
}

#[cfg(unix)]
fn install_sigint_handler() -> bool {
    // Hand-rolled FFI keeps the workspace dependency-free: `signal` and
    // `_exit` come from the C runtime the process links anyway.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;

    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe only: atomics and _exit.
        let flag = SIGINT_FLAG.load(Ordering::SeqCst);
        if !flag.is_null() {
            // SAFETY: install_sigint_cancel leaked a strong reference, so
            // the pointee outlives the process.
            unsafe { (*flag).store(true, Ordering::SeqCst) };
        }
        let delivered = SIGINT_COUNT.fetch_add(1, Ordering::SeqCst) + 1;
        if delivered >= 2 {
            extern "C" {
                fn _exit(status: i32) -> !;
            }
            // SAFETY: _exit is async-signal-safe and never returns.
            unsafe { _exit(130) };
        }
    }

    // SAFETY: installing a handler that only performs async-signal-safe
    // operations (see on_sigint).
    unsafe { signal(SIGINT, on_sigint as *const () as usize) };
    true
}

#[cfg(not(unix))]
fn install_sigint_handler() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Mutex::new(7u32);
        // Poison it: panic while holding the guard.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison");
        }));
        assert!(result.is_err());
        assert!(m.lock().is_err(), "mutex must actually be poisoned");
        assert_eq!(*lock_unpoisoned(&m), 7, "value survives the poison");
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }

    #[test]
    fn plain_lock_passes_through() {
        let m = Mutex::new(String::from("ok"));
        assert_eq!(&*lock_unpoisoned(&m), "ok");
    }

    #[test]
    fn cancel_token_is_sticky_and_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled(), "cancellation must reach every clone");
        clone.cancel();
        assert!(token.is_cancelled(), "cancellation is idempotent");
    }

    #[test]
    fn cancel_token_crosses_threads() {
        let token = CancelToken::new();
        let worker = token.clone();
        let handle = std::thread::spawn(move || {
            while !worker.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().unwrap());
    }

    #[test]
    fn parallel_map_is_deterministic_across_worker_counts() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i as u64;
        let sequential: Vec<u64> = (0..257).map(f).collect();
        for workers in [1, 2, 3, 8, 64, 1000] {
            assert_eq!(parallel_map(257, workers, f), sequential, "workers={workers}");
        }
        // Degenerate sizes must not hang or panic.
        assert!(parallel_map(0, 4, f).is_empty());
        assert_eq!(parallel_map(1, 4, f), vec![f(0)]);
    }

    // One SIGINT only: the handler hard-exits the process on the second
    // delivery, so this is the single place in the crate's test binary
    // that may raise.
    #[cfg(unix)]
    #[test]
    fn first_sigint_cancels_the_registered_token() {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        let token = CancelToken::new();
        assert!(install_sigint_cancel(&token));
        assert!(!token.is_cancelled());
        // SAFETY: raise(SIGINT) delivers to this thread; our handler is
        // installed and only performs async-signal-safe work.
        unsafe { raise(2) };
        assert!(token.is_cancelled(), "first Ctrl-C must cancel the token");
        assert_eq!(sigint_count(), 1);
    }
}
