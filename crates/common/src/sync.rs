//! Small synchronization helpers shared across the workspace.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if a previous holder panicked.
///
/// The shared state guarded this way in the workspace (the runner's
/// memoized run cache, its checkpoint writer, the worker-pool job queue)
/// consists of maps and counters whose individual updates are atomic with
/// respect to the lock: a panic mid-simulation cannot leave them
/// half-written in a way a later reader would misinterpret. Poisoning is
/// therefore pure downside — one crashed simulation point would wedge
/// every subsequent `cached_points()`/`stats()` call — so we strip it.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Mutex::new(7u32);
        // Poison it: panic while holding the guard.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison");
        }));
        assert!(result.is_err());
        assert!(m.lock().is_err(), "mutex must actually be poisoned");
        assert_eq!(*lock_unpoisoned(&m), 7, "value survives the poison");
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }

    #[test]
    fn plain_lock_passes_through() {
        let m = Mutex::new(String::from("ok"));
        assert_eq!(&*lock_unpoisoned(&m), "ok");
    }
}
