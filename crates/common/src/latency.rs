//! Cache access latencies as a function of capacity.
//!
//! The paper uses CACTI 6 [20] to model how load-to-use latency grows with
//! L1 capacity (§2.1.1); CACTI itself is unavailable here, so this module
//! substitutes a fixed table with the same qualitative behaviour: the
//! baseline 32 KiB L1 takes 3 cycles (Table 2) and latency grows roughly
//! logarithmically with capacity. Figure 1's "speedup saturates because
//! bigger caches are slower" effect only needs this monotone growth.

use crate::Cycle;

/// Load-to-use latency (cycles) for an L1 cache of `size_bytes` capacity.
///
/// Values are anchored at the paper's baseline (32 KiB -> 3 cycles,
/// Table 2) and grow with capacity the way CACTI-modelled SRAM does.
/// Sizes between table entries round up to the next entry.
///
/// # Example
///
/// ```
/// use slicc_common::l1_latency_for_size;
/// assert_eq!(l1_latency_for_size(32 * 1024), 3);
/// assert!(l1_latency_for_size(512 * 1024) > l1_latency_for_size(32 * 1024));
/// ```
pub fn l1_latency_for_size(size_bytes: u64) -> Cycle {
    LatencyTable::cacti_like().l1_latency(size_bytes)
}

/// A monotone capacity -> latency mapping for L1 caches.
///
/// The table is the CACTI-6 substitute described in `DESIGN.md`; custom
/// tables support ablation experiments ("what if big caches were free?",
/// which the paper itself speculates about in §2.1.1: a 512 KiB L1-I at
/// 32 KiB latency would yield 61% speedup on TPC-C).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyTable {
    /// `(capacity_bytes, cycles)`, sorted ascending by capacity.
    entries: Vec<(u64, Cycle)>,
}

impl LatencyTable {
    /// The default CACTI-like table used across the workspace.
    pub fn cacti_like() -> Self {
        LatencyTable {
            entries: vec![
                (16 * 1024, 2),
                (32 * 1024, 3),
                (64 * 1024, 4),
                (128 * 1024, 5),
                (256 * 1024, 7),
                (512 * 1024, 9),
            ],
        }
    }

    /// A table with constant latency, used by the PIF upper-bound model
    /// (§5.6: "a 512KB cache, with the delay of a 32KB cache") and the
    /// idealized large-cache ablation.
    pub fn constant(latency: Cycle) -> Self {
        LatencyTable { entries: vec![(u64::MAX, latency)] }
    }

    /// Builds a table from custom `(capacity, cycles)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or not strictly ascending in both
    /// capacity and latency (the table must be monotone).
    pub fn from_entries(entries: Vec<(u64, Cycle)>) -> Self {
        assert!(!entries.is_empty(), "latency table must have at least one entry");
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0, "capacities must be strictly ascending");
            assert!(w[0].1 <= w[1].1, "latency must be non-decreasing with capacity");
        }
        LatencyTable { entries }
    }

    /// Latency for a cache of `size_bytes`; sizes between entries round up
    /// to the next entry, sizes beyond the table clamp to the last entry.
    pub fn l1_latency(&self, size_bytes: u64) -> Cycle {
        for &(cap, lat) in &self.entries {
            if size_bytes <= cap {
                return lat;
            }
        }
        self.entries.last().expect("table is non-empty").1
    }
}

impl crate::StableHash for LatencyTable {
    fn stable_hash(&self, h: &mut crate::StableHasher) {
        self.entries.stable_hash(h);
    }
}

impl Default for LatencyTable {
    fn default() -> Self {
        LatencyTable::cacti_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_2() {
        assert_eq!(l1_latency_for_size(32 * 1024), 3);
    }

    #[test]
    fn latency_is_monotone_in_capacity() {
        let sizes = [16, 32, 64, 128, 256, 512].map(|k| k * 1024u64);
        let lats: Vec<_> = sizes.iter().map(|&s| l1_latency_for_size(s)).collect();
        for w in lats.windows(2) {
            assert!(w[0] <= w[1], "latency decreased with capacity: {lats:?}");
        }
    }

    #[test]
    fn intermediate_sizes_round_up() {
        assert_eq!(l1_latency_for_size(48 * 1024), l1_latency_for_size(64 * 1024));
    }

    #[test]
    fn oversize_clamps_to_last_entry() {
        assert_eq!(l1_latency_for_size(4 * 1024 * 1024), 9);
    }

    #[test]
    fn constant_table_ignores_size() {
        let t = LatencyTable::constant(3);
        assert_eq!(t.l1_latency(16 * 1024), 3);
        assert_eq!(t.l1_latency(512 * 1024), 3);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn from_entries_rejects_unsorted() {
        let _ = LatencyTable::from_entries(vec![(64, 2), (32, 3)]);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn from_entries_rejects_empty() {
        let _ = LatencyTable::from_entries(vec![]);
    }
}
