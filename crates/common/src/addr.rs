//! Byte addresses and cache-block addresses.
//!
//! The simulator traces accesses at byte granularity but the caches, bloom
//! filters, and coherence directory all operate on 64-byte blocks (Table 2).
//! [`Addr`] and [`BlockAddr`] keep those two spaces statically distinct.

use std::fmt;

/// Cache block size in bytes used throughout the workspace (Table 2: 64 B).
pub const BLOCK_SIZE: u64 = 64;

/// A byte address in the simulated physical address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache block containing this byte, for the given block
    /// size in bytes.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `block_size` is not a power of two.
    pub fn block(self, block_size: u64) -> BlockAddr {
        debug_assert!(block_size.is_power_of_two());
        BlockAddr(self.0 / block_size)
    }

    /// Returns the cache block containing this byte at the workspace-wide
    /// [`BLOCK_SIZE`].
    pub const fn block_default(self) -> BlockAddr {
        BlockAddr(self.0 / BLOCK_SIZE)
    }

    /// Returns the address advanced by `bytes`.
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cache-block address: a byte address divided by the block size.
///
/// Block addresses are what tags, bloom-filter signatures, the missed-tag
/// queue, and the coherence directory store. Two bytes in the same block
/// map to the same `BlockAddr`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    pub const fn new(raw: u64) -> Self {
        BlockAddr(raw)
    }

    /// Returns the raw block number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of this block, for the given block
    /// size in bytes.
    pub const fn base_addr(self, block_size: u64) -> Addr {
        Addr(self.0 * block_size)
    }

    /// Returns the block advanced by `n` blocks (the "next line" for a
    /// next-line prefetcher when `n == 1`).
    pub const fn offset(self, n: u64) -> BlockAddr {
        BlockAddr(self.0 + n)
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block({:#x})", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {:#x}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(v: u64) -> Self {
        BlockAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_in_same_block_share_block_addr() {
        let a = Addr::new(0x1000);
        let b = Addr::new(0x103f);
        let c = Addr::new(0x1040);
        assert_eq!(a.block(64), b.block(64));
        assert_ne!(a.block(64), c.block(64));
    }

    #[test]
    fn block_default_matches_explicit_block_size() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.block(BLOCK_SIZE), a.block_default());
    }

    #[test]
    fn block_base_addr_roundtrip() {
        let b = BlockAddr::new(42);
        assert_eq!(b.base_addr(64).block(64), b);
        assert_eq!(b.base_addr(64).raw(), 42 * 64);
    }

    #[test]
    fn offsets_advance() {
        assert_eq!(Addr::new(10).offset(6).raw(), 16);
        assert_eq!(BlockAddr::new(10).offset(1).raw(), 11);
    }

    #[test]
    fn formatting_is_hexadecimal() {
        assert_eq!(format!("{}", Addr::new(255)), "0xff");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
        assert_eq!(format!("{:?}", BlockAddr::new(16)), "Block(0x10)");
    }
}
