//! Aggregation of per-subsystem statistics blocks.
//!
//! Every simulated subsystem (cores, caches, interconnect, L2, DRAM) keeps
//! a plain counter struct. At the end of a run the per-core / per-bank
//! instances are folded into one `RunMetrics`; with the parallel runner the
//! same folding underlies multi-run aggregation. `Merge` is the single code
//! path for that: one trait, implemented by every stats type, instead of
//! ad-hoc field-by-field addition at each call site.

/// A statistics block that can absorb another instance of itself.
///
/// For counter structs this is element-wise addition; implementors with
/// derived quantities document their own combination rule.
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: &Self);

    /// Consuming convenience: returns `self` with `other` merged in.
    fn merged(mut self, other: &Self) -> Self
    where
        Self: Sized,
    {
        self.merge(other);
        self
    }
}

/// Implements [`Merge`] for a counter struct by summing the listed fields.
///
/// ```
/// use slicc_common::{impl_merge_counters, Merge};
///
/// #[derive(Default)]
/// struct Hits {
///     hits: u64,
///     misses: u64,
/// }
/// impl_merge_counters!(Hits { hits, misses });
///
/// let mut a = Hits { hits: 1, misses: 2 };
/// a.merge(&Hits { hits: 10, misses: 20 });
/// assert_eq!(a.hits, 11);
/// assert_eq!(a.misses, 22);
/// ```
#[macro_export]
macro_rules! impl_merge_counters {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Merge for $ty {
            fn merge(&mut self, other: &Self) {
                $( self.$field += other.$field; )+
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::Merge;

    #[derive(Default, Debug, PartialEq)]
    struct Counters {
        a: u64,
        b: u64,
    }
    crate::impl_merge_counters!(Counters { a, b });

    #[test]
    fn macro_sums_every_listed_field() {
        let mut x = Counters { a: 1, b: 10 };
        x.merge(&Counters { a: 2, b: 20 });
        assert_eq!(x, Counters { a: 3, b: 30 });
    }

    #[test]
    fn merged_is_merge_by_value() {
        let x = Counters { a: 1, b: 1 }.merged(&Counters { a: 1, b: 2 });
        assert_eq!(x, Counters { a: 2, b: 3 });
    }

    #[test]
    fn merge_with_default_is_identity() {
        let mut x = Counters { a: 5, b: 7 };
        x.merge(&Counters::default());
        assert_eq!(x, Counters { a: 5, b: 7 });
    }
}
