//! Cache shape arithmetic: sizes, sets, ways, and index/tag extraction.

use crate::addr::BlockAddr;

/// The shape of a set-associative cache: capacity, associativity, and block
/// size, with derived set/way arithmetic.
///
/// # Example
///
/// ```
/// use slicc_common::CacheGeometry;
///
/// // Baseline L1 (Table 2): 32 KiB, 8-way, 64 B blocks.
/// let g = CacheGeometry::new(32 * 1024, 8, 64);
/// assert_eq!(g.num_sets(), 64);
/// assert_eq!(g.num_blocks(), 512);
/// assert_eq!(g.set_index_bits(), 6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    associativity: u32,
    block_size: u64,
    num_sets: u64,
    set_mask: u64,
    set_bits: u32,
}

impl CacheGeometry {
    /// Creates a geometry from total capacity (bytes), associativity
    /// (ways), and block size (bytes).
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero, if the capacity is not an exact
    /// multiple of `associativity * block_size`, or if the resulting number
    /// of sets is not a power of two (real caches index with bit fields).
    pub fn new(size_bytes: u64, associativity: u32, block_size: u64) -> Self {
        assert!(size_bytes > 0 && associativity > 0 && block_size > 0, "cache geometry parameters must be non-zero");
        assert!(block_size.is_power_of_two(), "block size must be a power of two");
        let way_bytes = associativity as u64 * block_size;
        assert!(size_bytes.is_multiple_of(way_bytes), "capacity must be a multiple of associativity * block size");
        let num_sets = size_bytes / way_bytes;
        assert!(num_sets.is_power_of_two(), "number of sets must be a power of two (got {num_sets})");
        CacheGeometry {
            size_bytes,
            associativity,
            block_size,
            num_sets,
            set_mask: num_sets - 1,
            set_bits: num_sets.trailing_zeros(),
        }
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Associativity (number of ways per set).
    pub const fn associativity(self) -> u32 {
        self.associativity
    }

    /// Block size in bytes.
    pub const fn block_size(self) -> u64 {
        self.block_size
    }

    /// Number of sets.
    pub const fn num_sets(self) -> u64 {
        self.num_sets
    }

    /// Total number of blocks the cache can hold (`sets * ways`).
    pub const fn num_blocks(self) -> u64 {
        self.num_sets * self.associativity as u64
    }

    /// Number of bits in the set index.
    pub const fn set_index_bits(self) -> u32 {
        self.set_bits
    }

    /// Extracts the set index for a block address.
    pub const fn set_index(self, block: BlockAddr) -> usize {
        (block.raw() & self.set_mask) as usize
    }

    /// Extracts the tag (the block address bits above the set index).
    pub const fn tag(self, block: BlockAddr) -> u64 {
        block.raw() >> self.set_bits
    }

    /// Reconstructs a block address from a `(set, tag)` pair; the inverse
    /// of [`CacheGeometry::set_index`] + [`CacheGeometry::tag`].
    pub const fn block_from_parts(self, set: usize, tag: u64) -> BlockAddr {
        BlockAddr::new((tag << self.set_bits) | set as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_l1_geometry() {
        let g = CacheGeometry::new(32 * 1024, 8, 64);
        assert_eq!(g.num_sets(), 64);
        assert_eq!(g.num_blocks(), 512);
        assert_eq!(g.set_index_bits(), 6);
        assert_eq!(g.size_bytes(), 32 * 1024);
        assert_eq!(g.associativity(), 8);
        assert_eq!(g.block_size(), 64);
    }

    #[test]
    fn l2_geometry() {
        // 16 MiB shared L2, 16-way, 64 B blocks (Table 2: 1 MiB per core x 16).
        let g = CacheGeometry::new(16 * 1024 * 1024, 16, 64);
        assert_eq!(g.num_blocks(), 262_144);
        assert_eq!(g.num_sets(), 16_384);
    }

    #[test]
    fn set_and_tag_partition_the_block_address() {
        let g = CacheGeometry::new(32 * 1024, 8, 64);
        for raw in [0u64, 1, 63, 64, 65, 0xdead_beef, u64::MAX >> 8] {
            let b = BlockAddr::new(raw);
            let set = g.set_index(b);
            let tag = g.tag(b);
            assert!(set < g.num_sets() as usize);
            assert_eq!(g.block_from_parts(set, tag), b, "roundtrip failed for {raw:#x}");
        }
    }

    #[test]
    fn consecutive_blocks_hit_consecutive_sets() {
        let g = CacheGeometry::new(32 * 1024, 8, 64);
        let s0 = g.set_index(BlockAddr::new(100));
        let s1 = g.set_index(BlockAddr::new(101));
        assert_eq!((s0 + 1) % g.num_sets() as usize, s1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = CacheGeometry::new(3 * 1024, 8, 64);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_capacity() {
        let _ = CacheGeometry::new(0, 8, 64);
    }

    #[test]
    fn direct_mapped_and_fully_associative_extremes() {
        let dm = CacheGeometry::new(4096, 1, 64);
        assert_eq!(dm.num_sets(), 64);
        let fa = CacheGeometry::new(4096, 64, 64);
        assert_eq!(fa.num_sets(), 1);
        assert_eq!(fa.set_index(BlockAddr::new(12345)), 0);
    }
}
