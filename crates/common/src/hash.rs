//! Stable, portable hashing for experiment memoization keys.
//!
//! The parallel experiment runner (`slicc-sim::runner`) memoizes completed
//! simulation points in a run cache keyed by a hash of the full
//! `(workload, seed, scale, config)` descriptor. `std::hash::Hash` is not
//! suitable for that key: `DefaultHasher` is explicitly documented as
//! unstable across releases and processes, and `HashMap`'s per-process
//! random seed would make cache keys unreproducible. This module provides a
//! small, dependency-free alternative with a fixed algorithm (FNV-1a,
//! 64-bit) whose output is a pure function of the hashed bytes — the same
//! `RunRequest` hashes to the same key on every host, every run.
//!
//! # Example
//!
//! ```
//! use slicc_common::{stable_hash_of, StableHash, StableHasher};
//!
//! struct Point {
//!     x: u32,
//!     y: u32,
//! }
//!
//! impl StableHash for Point {
//!     fn stable_hash(&self, h: &mut StableHasher) {
//!         self.x.stable_hash(h);
//!         self.y.stable_hash(h);
//!     }
//! }
//!
//! let a = stable_hash_of(&Point { x: 1, y: 2 });
//! let b = stable_hash_of(&Point { x: 1, y: 2 });
//! let c = stable_hash_of(&Point { x: 2, y: 1 });
//! assert_eq!(a, b);
//! assert_ne!(a, c);
//! ```

/// A type whose value can be folded into a [`StableHasher`] with a stable,
/// platform-independent encoding.
///
/// Implementations must feed every field that distinguishes two values;
/// two values that compare unequal should (with overwhelming probability)
/// produce different hashes, and two equal values must produce identical
/// hashes on every platform and in every process.
pub trait StableHash {
    /// Folds `self` into the hasher.
    fn stable_hash(&self, h: &mut StableHasher);
}

/// 64-bit FNV-1a hasher with a fixed offset basis and prime.
///
/// FNV-1a is not cryptographic; it is chosen for being tiny, fast, and
/// fully specified, which is all a memoization key needs.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET_BASIS }
    }

    /// Folds raw bytes into the state, one byte per FNV round.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Returns the current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// Hashes one value from a fresh hasher — the common entry point for
/// building cache keys.
pub fn stable_hash_of<T: StableHash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.stable_hash(&mut h);
    h.finish()
}

macro_rules! impl_stable_hash_int {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl StableHash for $ty {
                fn stable_hash(&self, h: &mut StableHasher) {
                    // Widen to u64 so the encoding is independent of the
                    // integer's native width and the platform's usize.
                    h.write_u64(*self as u64);
                }
            }
        )+
    };
}

impl_stable_hash_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(*self));
    }
}

impl StableHash for f64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        // Bit pattern, not value: distinguishes -0.0 from 0.0 and keeps
        // NaN payloads stable. Config floats are compared bit-for-bit.
        h.write_u64(self.to_bits());
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        // Length prefix prevents ("ab","c") colliding with ("a","bc").
        h.write_u64(self.len() as u64);
        h.write_bytes(self.as_bytes());
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_str().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, h: &mut StableHasher) {
        (**self).stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash> StableHash for (A, B) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a 64 of the empty input is the offset basis; of "a" it is
        // the published test vector.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn deterministic_across_hashers() {
        let a = stable_hash_of(&42u64);
        let b = stable_hash_of(&42u64);
        assert_eq!(a, b);
        assert_ne!(a, stable_hash_of(&43u64));
    }

    #[test]
    fn width_independent_integers() {
        // The same numeric value hashes identically regardless of the
        // declared integer width (everything is widened to u64).
        assert_eq!(stable_hash_of(&7u8), stable_hash_of(&7u64));
        assert_eq!(stable_hash_of(&7u32), stable_hash_of(&7usize));
    }

    #[test]
    fn option_disambiguates_none_from_zero() {
        assert_ne!(stable_hash_of(&None::<u64>), stable_hash_of(&Some(0u64)));
    }

    #[test]
    fn strings_are_length_prefixed() {
        let ab_c = {
            let mut h = StableHasher::new();
            "ab".stable_hash(&mut h);
            "c".stable_hash(&mut h);
            h.finish()
        };
        let a_bc = {
            let mut h = StableHasher::new();
            "a".stable_hash(&mut h);
            "bc".stable_hash(&mut h);
            h.finish()
        };
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn slices_hash_like_vecs() {
        let v = vec![1u64, 2, 3];
        assert_eq!(stable_hash_of(&v), stable_hash_of(v.as_slice()));
    }
}
