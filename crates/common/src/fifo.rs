//! A fixed-capacity ring-buffer FIFO.
//!
//! SLICC's hardware structures are small fixed-size queues: the Missed Tag
//! Queue holds `matched_t` entries, the per-core thread queue holds 30
//! entries (Table 3). [`RingFifo`] models them with O(1) push/pop and no
//! allocation after construction.

use std::collections::VecDeque;

/// A first-in-first-out queue with a hard capacity bound.
///
/// # Example
///
/// ```
/// use slicc_common::RingFifo;
///
/// let mut q = RingFifo::new(2);
/// assert!(q.push(1).is_none());
/// assert!(q.push(2).is_none());
/// // Pushing into a full FIFO evicts and returns the oldest entry,
/// // exactly like a hardware shift queue.
/// assert_eq!(q.push(3), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingFifo<T> {
    buf: VecDeque<T>,
    capacity: usize,
}

impl<T> RingFifo<T> {
    /// Creates an empty FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        RingFifo { buf: VecDeque::with_capacity(capacity), capacity }
    }

    /// Appends `item`; if the FIFO is full the oldest entry is evicted and
    /// returned (hardware shift-queue semantics).
    pub fn push(&mut self, item: T) -> Option<T> {
        let evicted = if self.buf.len() == self.capacity { self.buf.pop_front() } else { None };
        self.buf.push_back(item);
        evicted
    }

    /// Removes and returns the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.buf.pop_front()
    }

    /// Removes and returns the newest entry (used by work stealing, which
    /// takes the least-committed waiter).
    pub fn pop_back(&mut self) -> Option<T> {
        self.buf.pop_back()
    }

    /// Returns the oldest entry without removing it.
    pub fn front(&self) -> Option<&T> {
        self.buf.front()
    }

    /// Returns the newest entry without removing it.
    pub fn back(&self) -> Option<&T> {
        self.buf.back()
    }

    /// Number of entries currently queued.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the FIFO holds no entries.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// The capacity bound set at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Iterates from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Removes and returns the first entry matching `pred`, preserving the
    /// order of the rest. Models a CAM-style removal (used when a queued
    /// thread is cancelled or re-routed).
    pub fn remove_first_where(&mut self, pred: impl FnMut(&T) -> bool) -> Option<T> {
        let idx = self.buf.iter().position(pred)?;
        self.buf.remove(idx)
    }

    /// Moves the front entry to the back (the §5.7 rule: a thread blocked
    /// on I/O "is moved to the end of the queue"). No-op on queues with
    /// fewer than two entries.
    pub fn rotate(&mut self) {
        if self.buf.len() >= 2 {
            let front = self.buf.pop_front().expect("len >= 2");
            self.buf.push_back(front);
        }
    }
}

impl<'a, T> IntoIterator for &'a RingFifo<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_fifo_order() {
        let mut q = RingFifo::new(4);
        for i in 0..4 {
            q.push(i);
        }
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn full_push_evicts_oldest() {
        let mut q = RingFifo::new(3);
        q.push('a');
        q.push('b');
        q.push('c');
        assert!(q.is_full());
        assert_eq!(q.push('d'), Some('a'));
        assert_eq!(q.iter().copied().collect::<String>(), "bcd");
    }

    #[test]
    fn front_back_peek() {
        let mut q = RingFifo::new(3);
        assert!(q.front().is_none());
        q.push(10);
        q.push(20);
        assert_eq!(q.front(), Some(&10));
        assert_eq!(q.back(), Some(&20));
    }

    #[test]
    fn rotate_moves_front_to_back() {
        let mut q = RingFifo::new(3);
        q.push(1);
        q.push(2);
        q.push(3);
        q.rotate();
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![2, 3, 1]);
    }

    #[test]
    fn rotate_on_small_queues_is_noop() {
        let mut q: RingFifo<i32> = RingFifo::new(3);
        q.rotate();
        assert!(q.is_empty());
        q.push(1);
        q.rotate();
        assert_eq!(q.front(), Some(&1));
    }

    #[test]
    fn remove_first_where_preserves_order() {
        let mut q = RingFifo::new(5);
        for i in 0..5 {
            q.push(i);
        }
        assert_eq!(q.remove_first_where(|&x| x == 2), Some(2));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![0, 1, 3, 4]);
        assert_eq!(q.remove_first_where(|&x| x == 99), None);
    }

    #[test]
    fn clear_empties() {
        let mut q = RingFifo::new(2);
        q.push(1);
        q.clear();
        assert!(q.is_empty());
        assert!(!q.is_full());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: RingFifo<u8> = RingFifo::new(0);
    }
}
