//! Shared vocabulary types for the SLICC chip-multiprocessor simulator.
//!
//! This crate defines the small, ubiquitous building blocks used by every
//! other crate in the workspace:
//!
//! - strongly-typed identifiers ([`CoreId`], [`ThreadId`], [`TxnTypeId`]) —
//!   see [`ids`];
//! - byte and cache-block addresses ([`Addr`], [`BlockAddr`]) — see [`addr`];
//! - cache shape arithmetic ([`CacheGeometry`]) — see [`geometry`];
//! - core sets as one machine word ([`CoreMask`]) — see [`mask`];
//! - the CACTI-substitute access-latency table — see [`latency`];
//! - a tiny, fast, deterministic RNG ([`SplitMix64`]) — see [`rng`];
//! - a fixed-capacity ring-buffer FIFO ([`RingFifo`]) — see [`fifo`];
//! - stable hashing for experiment memoization keys ([`StableHash`]) —
//!   see [`hash`];
//! - dependency-free JSON string/float rendering ([`json_str`]) — see
//!   [`json`];
//! - a fast deterministic hasher for hot maps ([`FastHashMap`]) — see
//!   [`fasthash`];
//! - poison-recovering mutex access ([`lock_unpoisoned`]), cooperative
//!   cancellation ([`CancelToken`]) and SIGINT wiring — see [`sync`];
//! - a process-global scoped worker pool ([`pool::scope`]) shared by
//!   [`parallel_map`] and the engine's shard lanes — see [`pool`];
//! - crash-safe artifact emission ([`atomic_write`]) and the injectable
//!   [`ArtifactIo`] layer for chaos testing — see [`io`];
//! - the [`Merge`] trait unifying statistics aggregation — see [`merge`].
//!
//! # Example
//!
//! ```
//! use slicc_common::{Addr, CacheGeometry};
//!
//! // The paper's baseline L1: 32 KiB, 8-way, 64 B blocks (Table 2).
//! let geom = CacheGeometry::new(32 * 1024, 8, 64);
//! assert_eq!(geom.num_sets(), 64);
//! assert_eq!(geom.num_blocks(), 512);
//!
//! let addr = Addr::new(0xdead_beef);
//! let block = addr.block(64);
//! assert_eq!(geom.set_index(block), geom.set_index(block));
//! ```

pub mod addr;
pub mod fasthash;
pub mod fifo;
pub mod geometry;
pub mod hash;
pub mod ids;
pub mod io;
pub mod json;
pub mod latency;
pub mod mask;
pub mod merge;
// Property tests reference the external `proptest` crate, which is kept out
// of the manifest so the workspace resolves offline (see DESIGN.md §5). To
// run them, re-add `proptest = "1"` under [dev-dependencies] and test with
// `--features proptest`.
#[cfg(all(test, feature = "proptest"))]
mod proptests;
pub mod pool;
pub mod rng;
pub mod sync;

pub use addr::{Addr, BlockAddr, BLOCK_SIZE};
pub use fasthash::{FastBuildHasher, FastHashMap, FastHashSet, FxHasher};
pub use fifo::RingFifo;
pub use geometry::CacheGeometry;
pub use hash::{stable_hash_of, StableHash, StableHasher};
pub use ids::{CoreId, ThreadId, TxnTypeId};
pub use io::{atomic_write, ArtifactIo, FaultyIo, IoFault, StdIo};
pub use json::{json_f64, json_str, push_json_str};
pub use latency::{l1_latency_for_size, LatencyTable};
pub use mask::CoreMask;
pub use merge::Merge;
pub use rng::SplitMix64;
pub use sync::{install_sigint_cancel, lock_unpoisoned, parallel_map, sigint_count, CancelToken};

/// Simulated clock cycles.
///
/// Kept as a plain `u64` alias rather than a newtype: cycle arithmetic
/// saturates every hot path of the timing model and the alias keeps that
/// code legible. All public APIs name the unit in the parameter.
pub type Cycle = u64;
