//! Core bitmasks: sets of cores as one machine word.
//!
//! Originally the remote-search answer vector of the SLICC agent (§4.2.3),
//! now shared vocabulary: the L2 directory's sharer sets and the engine's
//! idle/ready sets are `CoreMask`s too, so set operations on cores are
//! branch-free bit arithmetic everywhere on the hot path.

use crate::CoreId;
use std::fmt;
use std::ops::{BitAnd, BitOr};

/// A set of cores, as a 32-bit mask (the paper's 16-core CMP needs 16).
///
/// The remote cache segment search (§4.2.3) produces one `CoreMask` per
/// missed tag — "a logic-1 on bit index C for MTQ entry i indicates that
/// the i-th recently missed cache block was cached at core C".
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CoreMask(u32);

impl CoreMask {
    /// The empty set.
    pub const fn empty() -> Self {
        CoreMask(0)
    }

    /// The set containing every core in `0..count`.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn all(count: usize) -> Self {
        assert!(count <= 32, "CoreMask supports at most 32 cores");
        if count == 32 {
            CoreMask(u32::MAX)
        } else {
            CoreMask((1u32 << count) - 1)
        }
    }

    /// Builds a mask from raw bits.
    pub const fn from_bits(bits: u32) -> Self {
        CoreMask(bits)
    }

    /// The raw bits.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Adds `core` to the set.
    pub fn insert(&mut self, core: CoreId) {
        self.0 |= 1 << core.index();
    }

    /// Removes `core` from the set.
    pub fn remove(&mut self, core: CoreId) {
        self.0 &= !(1 << core.index());
    }

    /// Whether `core` is in the set.
    pub const fn contains(self, core: CoreId) -> bool {
        self.0 & (1 << core.index()) != 0
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of cores in the set.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Returns the set without `core`.
    pub fn without(self, core: CoreId) -> Self {
        CoreMask(self.0 & !(1 << core.index()))
    }

    /// Iterates the member cores in ascending index order.
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        (0..32u16).filter(move |&i| self.0 & (1 << i) != 0).map(CoreId::new)
    }
}

impl BitAnd for CoreMask {
    type Output = CoreMask;
    fn bitand(self, rhs: CoreMask) -> CoreMask {
        CoreMask(self.0 & rhs.0)
    }
}

impl BitOr for CoreMask {
    type Output = CoreMask;
    fn bitor(self, rhs: CoreMask) -> CoreMask {
        CoreMask(self.0 | rhs.0)
    }
}

impl FromIterator<CoreId> for CoreMask {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut m = CoreMask::empty();
        for c in iter {
            m.insert(c);
        }
        m
    }
}

impl fmt::Debug for CoreMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CoreMask({:#b})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut m = CoreMask::empty();
        assert!(m.is_empty());
        m.insert(CoreId::new(3));
        assert!(m.contains(CoreId::new(3)));
        assert!(!m.contains(CoreId::new(4)));
        assert_eq!(m.len(), 1);
        m.remove(CoreId::new(3));
        assert!(m.is_empty());
    }

    #[test]
    fn all_and_without() {
        let m = CoreMask::all(16);
        assert_eq!(m.len(), 16);
        let m2 = m.without(CoreId::new(0));
        assert_eq!(m2.len(), 15);
        assert!(!m2.contains(CoreId::new(0)));
        assert_eq!(CoreMask::all(32).len(), 32);
    }

    #[test]
    fn bitwise_ops() {
        let a: CoreMask = [CoreId::new(1), CoreId::new(2)].into_iter().collect();
        let b: CoreMask = [CoreId::new(2), CoreId::new(3)].into_iter().collect();
        assert_eq!((a & b).iter().collect::<Vec<_>>(), vec![CoreId::new(2)]);
        assert_eq!((a | b).len(), 3);
    }

    #[test]
    fn iter_ascending() {
        let m: CoreMask = [CoreId::new(5), CoreId::new(1), CoreId::new(9)].into_iter().collect();
        let ids: Vec<_> = m.iter().map(|c| c.index()).collect();
        assert_eq!(ids, vec![1, 5, 9]);
    }

    #[test]
    fn debug_is_binary() {
        let mut m = CoreMask::empty();
        m.insert(CoreId::new(1));
        assert_eq!(format!("{m:?}"), "CoreMask(0b10)");
    }

    #[test]
    #[should_panic(expected = "at most 32")]
    fn oversized_all_panics() {
        let _ = CoreMask::all(33);
    }
}
