//! Property-based tests over the shared vocabulary types.

use crate::{Addr, BlockAddr, CacheGeometry, LatencyTable, RingFifo, SplitMix64};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = CacheGeometry> {
    (0u32..6, 0u32..4).prop_map(|(sets_pow, assoc_pow)| {
        let sets = 1u64 << sets_pow;
        let assoc = 1u32 << assoc_pow;
        CacheGeometry::new(sets * assoc as u64 * 64, assoc, 64)
    })
}

proptest! {
    #[test]
    fn geometry_set_tag_roundtrip(geom in arb_geometry(), raw in any::<u64>()) {
        let b = BlockAddr::new(raw >> 8);
        let set = geom.set_index(b);
        let tag = geom.tag(b);
        prop_assert!(set < geom.num_sets() as usize);
        prop_assert_eq!(geom.block_from_parts(set, tag), b);
    }

    #[test]
    fn addr_block_consistency(raw in any::<u64>()) {
        let a = Addr::new(raw >> 1);
        prop_assert_eq!(a.block(64), a.block_default());
        prop_assert!(a.block(64).base_addr(64).raw() <= a.raw());
        prop_assert!(a.raw() - a.block(64).base_addr(64).raw() < 64);
    }

    #[test]
    fn splitmix_streams_are_reproducible(seed in any::<u64>(), salt in any::<u64>()) {
        let root = SplitMix64::new(seed);
        let mut a = root.split(salt);
        let mut b = root.split(salt);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_is_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn latency_tables_are_monotone(entries in prop::collection::vec((1u64..1_000_000, 1u64..100), 1..6)) {
        let mut sorted = entries;
        sorted.sort_unstable();
        sorted.dedup_by_key(|e| e.0);
        // Make latencies non-decreasing.
        let mut lat = 0;
        for e in &mut sorted {
            lat = lat.max(e.1);
            e.1 = lat;
        }
        let table = LatencyTable::from_entries(sorted.clone());
        let mut last = 0;
        for cap in [1u64, 10, 1000, 100_000, 10_000_000] {
            let l = table.l1_latency(cap);
            prop_assert!(l >= last, "latency decreased at {cap}");
            last = l;
        }
    }

    #[test]
    fn fifo_preserves_order_and_capacity(
        capacity in 1usize..16,
        items in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let mut fifo = RingFifo::new(capacity);
        let mut evicted = Vec::new();
        for &x in &items {
            if let Some(e) = fifo.push(x) {
                evicted.push(e);
            }
            prop_assert!(fifo.len() <= capacity);
        }
        let mut drained = Vec::new();
        while let Some(x) = fifo.pop() {
            drained.push(x);
        }
        // Evicted ++ drained must equal the input sequence.
        evicted.extend(drained);
        prop_assert_eq!(evicted, items);
    }
}
