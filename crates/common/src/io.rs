//! Crash-safe artifact I/O: atomic whole-file writes and an injectable
//! I/O layer for chaos testing.
//!
//! Everything the workspace emits — checkpoint records, observability
//! JSON/CSV, figure reports — goes through this module so two properties
//! hold everywhere:
//!
//! - **No torn artifacts.** [`atomic_write`] stages the bytes in a
//!   `path.tmp` sibling, syncs, then renames over the destination. A
//!   crash mid-write leaves either the old file or the new one, never a
//!   half-written hybrid.
//! - **Every failure path is drillable.** The [`ArtifactIo`] trait is the
//!   seam between writers and the filesystem. Production code uses
//!   [`StdIo`]; chaos tests swap in [`FaultyIo`] to fail the nth write or
//!   tear record tails deterministically, so recovery code is exercised
//!   end-to-end instead of trusted on faith.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The staging sibling [`atomic_write`] uses: `path` with `.tmp` appended
/// to the file name (not replacing the extension, so `a.json` stages as
/// `a.json.tmp`).
pub fn atomic_write_staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `bytes` to `path` atomically: stage in `path.tmp`, sync to
/// disk, rename over the destination. On any error the destination is
/// untouched (the stale staging file is removed best-effort).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let staging = atomic_write_staging_path(path);
    let write = (|| {
        let mut file = File::create(&staging)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        Ok(())
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&staging);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&staging, path) {
        let _ = std::fs::remove_file(&staging);
        return Err(e);
    }
    Ok(())
}

/// The seam between artifact writers and the filesystem. Production code
/// uses [`StdIo`]; chaos tests inject [`FaultyIo`] to exercise every
/// recovery path deterministically.
pub trait ArtifactIo: Send + Sync {
    /// Writes one logical chunk (a checkpoint record, a whole artifact)
    /// to an open file.
    fn write_chunk(&self, file: &mut File, bytes: &[u8]) -> io::Result<()>;

    /// Flushes file *data* to the device (durability for appends).
    fn sync_data(&self, file: &File) -> io::Result<()>;

    /// Flushes data and metadata to the device (durability for creates).
    fn sync_all(&self, file: &File) -> io::Result<()>;

    /// [`atomic_write`], routed through the layer so whole-file artifact
    /// emission is fault-injectable too.
    fn atomic_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
}

/// The production [`ArtifactIo`]: plain std::fs operations.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdIo;

impl ArtifactIo for StdIo {
    fn write_chunk(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        file.write_all(bytes)
    }

    fn sync_data(&self, file: &File) -> io::Result<()> {
        file.sync_data()
    }

    fn sync_all(&self, file: &File) -> io::Result<()> {
        file.sync_all()
    }

    fn atomic_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        atomic_write(path, bytes)
    }
}

/// What a [`FaultyIo`] does to the write stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// The nth write (1-based, counting chunks and atomic writes) fails
    /// with an injected [`io::Error`]; every other write succeeds.
    FailOnNth(u64),
    /// Every chunk lands with its final byte flipped, modelling a crash
    /// mid-append: integrity hashes over the payload no longer match, so
    /// readers must treat the data as a torn tail.
    CorruptTail,
}

/// A deterministic fault-injecting [`ArtifactIo`] for chaos tests.
#[derive(Debug)]
pub struct FaultyIo {
    fault: IoFault,
    writes: AtomicU64,
}

impl FaultyIo {
    /// An I/O layer exhibiting `fault`.
    pub fn new(fault: IoFault) -> Self {
        FaultyIo { fault, writes: AtomicU64::new(0) }
    }

    /// Writes attempted so far (failed ones included).
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Counts one write; true if this one must fail.
    fn next_write_fails(&self) -> bool {
        let nth = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        matches!(self.fault, IoFault::FailOnNth(n) if n == nth)
    }

    fn injected_error() -> io::Error {
        io::Error::other("injected I/O fault (FaultyIo)")
    }
}

impl ArtifactIo for FaultyIo {
    fn write_chunk(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        if self.next_write_fails() {
            return Err(FaultyIo::injected_error());
        }
        if self.fault == IoFault::CorruptTail && !bytes.is_empty() {
            let mut torn = bytes.to_vec();
            *torn.last_mut().expect("non-empty") ^= 0x01;
            return file.write_all(&torn);
        }
        file.write_all(bytes)
    }

    fn sync_data(&self, file: &File) -> io::Result<()> {
        file.sync_data()
    }

    fn sync_all(&self, file: &File) -> io::Result<()> {
        file.sync_all()
    }

    fn atomic_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.next_write_fails() {
            return Err(FaultyIo::injected_error());
        }
        atomic_write(path, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("slicc-io-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_staging_file() {
        let path = temp_path("atomic");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!atomic_write_staging_path(&path).exists(), "staging file must be renamed away");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_failure_keeps_the_old_contents() {
        let path = temp_path("atomic-fail");
        atomic_write(&path, b"keep me").unwrap();
        let io = FaultyIo::new(IoFault::FailOnNth(1));
        assert!(io.atomic_write(&path, b"torn").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"keep me", "a failed write must not tear");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn faulty_io_fails_exactly_the_nth_write() {
        let path = temp_path("nth");
        let io = FaultyIo::new(IoFault::FailOnNth(2));
        let mut file = File::create(&path).unwrap();
        io.write_chunk(&mut file, b"one").unwrap();
        assert!(io.write_chunk(&mut file, b"two").is_err(), "second write must fail");
        io.write_chunk(&mut file, b"three").unwrap();
        assert_eq!(io.writes(), 3);
        assert_eq!(std::fs::read(&path).unwrap(), b"onethree");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_tail_flips_the_final_byte_of_each_chunk() {
        let path = temp_path("tail");
        let io = FaultyIo::new(IoFault::CorruptTail);
        let mut file = File::create(&path).unwrap();
        io.write_chunk(&mut file, b"ab").unwrap();
        drop(file);
        assert_eq!(std::fs::read(&path).unwrap(), vec![b'a', b'b' ^ 0x01]);
        std::fs::remove_file(&path).unwrap();
    }
}
