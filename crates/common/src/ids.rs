//! Strongly-typed identifiers for cores, threads, and transaction types.
//!
//! Newtypes keep the simulator honest: a [`CoreId`] can never be confused
//! with a [`ThreadId`] even though both are small integers (C-NEWTYPE).

use std::fmt;

/// Identifies one core (and its private L1 caches) in the simulated CMP.
///
/// Cores are numbered `0..n` in row-major order over the on-chip torus,
/// so the same id indexes per-core state everywhere in the workspace.
///
/// # Example
///
/// ```
/// use slicc_common::CoreId;
/// let c = CoreId::new(5);
/// assert_eq!(c.index(), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core id from its index.
    pub const fn new(index: u16) -> Self {
        CoreId(index)
    }

    /// Returns the zero-based index, usable to index per-core arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw id value.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Iterates over all core ids `0..count`.
    pub fn all(count: usize) -> impl Iterator<Item = CoreId> {
        (0..count as u16).map(CoreId)
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(v: u16) -> Self {
        CoreId(v)
    }
}

/// Identifies one worker thread (one transaction instance).
///
/// In the paper's execution model every transaction is bound to a worker
/// thread for its lifetime (§2.1), so thread ids double as transaction
/// instance ids.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread id from its index.
    pub const fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the zero-based index, usable to index per-thread arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw id value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u32> for ThreadId {
    fn from(v: u32) -> Self {
        ThreadId(v)
    }
}

/// Identifies a transaction *type* (e.g. TPC-C `NewOrder`).
///
/// SLICC-SW receives this from the software layer; SLICC-Pp infers an
/// equivalent label by hashing the first instructions a thread executes
/// (§4.3.1). Both end up as a `TxnTypeId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnTypeId(u16);

impl TxnTypeId {
    /// Creates a transaction-type id from its index.
    pub const fn new(index: u16) -> Self {
        TxnTypeId(index)
    }

    /// Returns the zero-based index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw id value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for TxnTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type{}", self.0)
    }
}

impl fmt::Display for TxnTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type{}", self.0)
    }
}

impl From<u16> for TxnTypeId {
    fn from(v: u16) -> Self {
        TxnTypeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn core_id_roundtrip() {
        let c = CoreId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.raw(), 7);
        assert_eq!(CoreId::from(7u16), c);
    }

    #[test]
    fn core_id_all_enumerates_in_order() {
        let ids: Vec<_> = CoreId::all(4).collect();
        assert_eq!(ids, vec![CoreId::new(0), CoreId::new(1), CoreId::new(2), CoreId::new(3)]);
    }

    #[test]
    fn thread_id_ordering_follows_index() {
        assert!(ThreadId::new(3) < ThreadId::new(10));
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<_> = (0..100).map(ThreadId::new).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn debug_formats_are_nonempty_and_informative() {
        assert_eq!(format!("{:?}", CoreId::new(3)), "core3");
        assert_eq!(format!("{:?}", ThreadId::new(9)), "T9");
        assert_eq!(format!("{:?}", TxnTypeId::new(1)), "type1");
        assert_eq!(format!("{}", CoreId::new(3)), "core3");
    }

    #[test]
    fn default_ids_are_zero() {
        assert_eq!(CoreId::default().index(), 0);
        assert_eq!(ThreadId::default().index(), 0);
        assert_eq!(TxnTypeId::default().index(), 0);
    }
}
