//! Criterion micro-benchmarks of the hardware structures SLICC adds.
//!
//! These measure the *simulator's* cost per modelled-hardware operation —
//! the numbers that determine how fast the experiment harness runs. The
//! modelled hardware itself is costed in Table 3.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use slicc_cache::{AccessKind, BloomSignature, Cache, PolicyKind, ThreeCClassifier};
use slicc_common::{BlockAddr, CacheGeometry, CoreId, SplitMix64};
use slicc_core::{CoreMask, SliccAgent, SliccParams};
use slicc_cpu::Tlb;
use slicc_mem::{Dram, DramConfig};
use slicc_noc::Torus;
use slicc_trace::{decode_trace, encode_trace, TraceScale, Workload};

fn bench_cache(c: &mut Criterion) {
    let geom = CacheGeometry::new(32 * 1024, 8, 64);
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    for policy in [PolicyKind::Lru, PolicyKind::Drrip] {
        group.bench_function(format!("access/{policy}"), |b| {
            let mut cache = Cache::new(geom, policy, 1);
            let mut rng = SplitMix64::new(7);
            b.iter(|| {
                let block = BlockAddr::new(rng.next_below(4096));
                std::hint::black_box(cache.access(block, AccessKind::Read))
            });
        });
    }
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let geom = CacheGeometry::new(32 * 1024, 8, 64);
    let mut group = c.benchmark_group("bloom");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert+query", |b| {
        let mut sig = BloomSignature::new(2048, geom);
        let mut rng = SplitMix64::new(9);
        b.iter(|| {
            let block = BlockAddr::new(rng.next_below(1 << 20));
            sig.insert(block);
            std::hint::black_box(sig.maybe_contains(block))
        });
    });
    group.finish();
}

fn bench_agent(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent");
    group.throughput(Throughput::Elements(1));
    group.bench_function("on_fetch+advice", |b| {
        let mut agent = SliccAgent::new(CoreId::new(0), SliccParams::calibrated());
        let mut rng = SplitMix64::new(3);
        let mask = CoreMask::from_bits(0b1010);
        b.iter(|| {
            let hit = rng.chance(0.95);
            agent.on_fetch(hit, (!hit).then_some(mask));
            std::hint::black_box(agent.advice())
        });
    });
    group.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier");
    group.throughput(Throughput::Elements(1));
    group.bench_function("3c_observe", |b| {
        let mut cls = ThreeCClassifier::new(512);
        let mut rng = SplitMix64::new(5);
        b.iter(|| std::hint::black_box(cls.observe(BlockAddr::new(rng.next_below(2048)))));
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.throughput(Throughput::Elements(1));
    group.bench_function("access", |b| {
        let mut dram = Dram::new(DramConfig::paper_ddr3_1600());
        let mut rng = SplitMix64::new(11);
        let mut now = 0;
        b.iter(|| {
            let done = dram.access(BlockAddr::new(rng.next_below(1 << 24)), now, rng.chance(0.45));
            now = done;
            std::hint::black_box(done)
        });
    });
    group.finish();
}

fn bench_noc(c: &mut Criterion) {
    let noc = Torus::paper_4x4();
    let mut group = c.benchmark_group("noc");
    group.throughput(Throughput::Elements(1));
    group.bench_function("round_trip", |b| {
        let mut rng = SplitMix64::new(13);
        b.iter(|| {
            let a = CoreId::new(rng.next_below(16) as u16);
            let z = CoreId::new(rng.next_below(16) as u16);
            std::hint::black_box(noc.round_trip(a, z))
        });
    });
    group.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb");
    group.throughput(Throughput::Elements(1));
    group.bench_function("access", |b| {
        let mut tlb = Tlb::new(64);
        let mut rng = SplitMix64::new(15);
        b.iter(|| std::hint::black_box(tlb.access(slicc_common::Addr::new(rng.next_below(1 << 30)))));
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    use slicc_common::ThreadId;
    let spec = Workload::TpcC1.spec(TraceScale::tiny());
    let records: Vec<_> = spec.thread_trace(ThreadId::new(0)).collect();
    let ty = spec.thread_type(ThreadId::new(0));
    let mut encoded = Vec::new();
    encode_trace(&mut encoded, ThreadId::new(0), ty, records.iter().copied()).unwrap();
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            encode_trace(&mut buf, ThreadId::new(0), ty, records.iter().copied()).unwrap();
            std::hint::black_box(buf)
        });
    });
    group.bench_function("decode", |b| {
        b.iter(|| std::hint::black_box(decode_trace(&mut encoded.as_slice()).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_bloom,
    bench_agent,
    bench_classifier,
    bench_dram,
    bench_noc,
    bench_tlb,
    bench_codec
);
criterion_main!(benches);
