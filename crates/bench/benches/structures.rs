//! Micro-benchmarks of the hardware structures SLICC adds.
//!
//! These measure the *simulator's* cost per modelled-hardware operation —
//! the numbers that determine how fast the experiment harness runs. The
//! modelled hardware itself is costed in Table 3.
//!
//! Run with `cargo bench --bench structures [-- FILTER]`.

use slicc_bench::Harness;
use slicc_cache::{AccessKind, BloomSignature, Cache, PolicyKind, ThreeCClassifier};
use slicc_common::{BlockAddr, CacheGeometry, CoreId, SplitMix64};
use slicc_core::{CoreMask, SliccAgent, SliccParams};
use slicc_cpu::Tlb;
use slicc_mem::{Dram, DramConfig};
use slicc_noc::Torus;
use slicc_trace::{decode_trace, encode_trace, TraceScale, Workload};

fn bench_cache(h: &mut Harness) {
    let geom = CacheGeometry::new(32 * 1024, 8, 64);
    let mut group = h.group("cache");
    group.throughput(1);
    for policy in [PolicyKind::Lru, PolicyKind::Drrip] {
        let mut cache = Cache::new(geom, policy, 1);
        let mut rng = SplitMix64::new(7);
        group.bench(&format!("access/{policy}"), || {
            let block = BlockAddr::new(rng.next_below(4096));
            cache.access(block, AccessKind::Read)
        });
    }
}

fn bench_bloom(h: &mut Harness) {
    let geom = CacheGeometry::new(32 * 1024, 8, 64);
    let mut sig = BloomSignature::new(2048, geom);
    let mut rng = SplitMix64::new(9);
    h.group("bloom").throughput(1).bench("insert+query", || {
        let block = BlockAddr::new(rng.next_below(1 << 20));
        sig.insert(block);
        sig.maybe_contains(block)
    });
}

fn bench_agent(h: &mut Harness) {
    let mut agent = SliccAgent::new(CoreId::new(0), SliccParams::calibrated());
    let mut rng = SplitMix64::new(3);
    let mask = CoreMask::from_bits(0b1010);
    h.group("agent").throughput(1).bench("on_fetch+advice", || {
        let hit = rng.chance(0.95);
        agent.on_fetch(hit, (!hit).then_some(mask));
        agent.advice()
    });
}

fn bench_classifier(h: &mut Harness) {
    let mut cls = ThreeCClassifier::new(512);
    let mut rng = SplitMix64::new(5);
    h.group("classifier").throughput(1).bench("3c_observe", || {
        cls.observe(BlockAddr::new(rng.next_below(2048)))
    });
}

fn bench_dram(h: &mut Harness) {
    let mut dram = Dram::new(DramConfig::paper_ddr3_1600());
    let mut rng = SplitMix64::new(11);
    let mut now = 0;
    h.group("dram").throughput(1).bench("access", || {
        let done = dram.access(BlockAddr::new(rng.next_below(1 << 24)), now, rng.chance(0.45));
        now = done;
        done
    });
}

fn bench_noc(h: &mut Harness) {
    let noc = Torus::paper_4x4();
    let mut rng = SplitMix64::new(13);
    h.group("noc").throughput(1).bench("round_trip", || {
        let a = CoreId::new(rng.next_below(16) as u16);
        let z = CoreId::new(rng.next_below(16) as u16);
        noc.round_trip(a, z)
    });
}

fn bench_tlb(h: &mut Harness) {
    let mut tlb = Tlb::new(64);
    let mut rng = SplitMix64::new(15);
    h.group("tlb").throughput(1).bench("access", || {
        tlb.access(slicc_common::Addr::new(rng.next_below(1 << 30)))
    });
}

fn bench_codec(h: &mut Harness) {
    use slicc_common::ThreadId;
    let spec = Workload::TpcC1.spec(TraceScale::tiny());
    let records: Vec<_> = spec.thread_trace(ThreadId::new(0)).collect();
    let ty = spec.thread_type(ThreadId::new(0));
    let mut encoded = Vec::new();
    encode_trace(&mut encoded, ThreadId::new(0), ty, records.iter().copied()).unwrap();
    let mut group = h.group("codec");
    group.throughput(records.len() as u64);
    group.bench("encode", || {
        let mut buf = Vec::with_capacity(encoded.len());
        encode_trace(&mut buf, ThreadId::new(0), ty, records.iter().copied()).unwrap();
        buf
    });
    group.bench("decode", || decode_trace(&mut encoded.as_slice()).unwrap());
}

fn main() {
    let mut h = Harness::from_args();
    bench_cache(&mut h);
    bench_bloom(&mut h);
    bench_agent(&mut h);
    bench_classifier(&mut h);
    bench_dram(&mut h);
    bench_noc(&mut h);
    bench_tlb(&mut h);
    bench_codec(&mut h);
    h.finish();
}
