//! Benchmarks of whole-system simulation throughput: how many simulated
//! instructions per second the engine sustains per mode, on a miniature
//! workload. These are the numbers that size the figure harness's runtime.
//!
//! Run with `cargo bench --bench simulator [-- FILTER]`.

use slicc_bench::Harness;
use slicc_common::ThreadId;
use slicc_sim::{RunRequest, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};

fn bench_trace_generation(h: &mut Harness) {
    let spec = Workload::TpcC1.spec(TraceScale::tiny());
    let len = spec.thread_trace(ThreadId::new(0)).count() as u64;
    h.group("trace").throughput(len).bench("generate_thread", || {
        spec.thread_trace(ThreadId::new(0)).count()
    });
}

fn bench_engine(h: &mut Harness) {
    let spec = Workload::TpcC1.spec(TraceScale::tiny());
    let instructions: u64 = spec.threads().map(|t| spec.thread_trace(t).count() as u64).sum();
    let mut group = h.group("engine");
    group.throughput(instructions);
    for mode in SchedulerMode::ALL {
        let req =
            RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test().with_mode(mode));
        group.bench(&format!("run/{}", mode.name()), || req.execute().metrics);
    }
}

fn bench_engine_with_classification(h: &mut Harness) {
    let req = RunRequest::new(
        Workload::TpcC1,
        TraceScale::tiny(),
        SimConfig::tiny_test().with_classification(),
    );
    h.group("engine").throughput(1).bench("run/classified", || req.execute().metrics);
}

fn main() {
    let mut h = Harness::from_args();
    bench_trace_generation(&mut h);
    bench_engine(&mut h);
    bench_engine_with_classification(&mut h);
    h.finish();
}
