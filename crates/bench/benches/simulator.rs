//! Criterion benchmarks of whole-system simulation throughput: how many
//! simulated instructions per second the engine sustains per mode, on a
//! miniature workload. These are the numbers that size the figure
//! harness's runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slicc_sim::{run, SchedulerMode, SimConfig};
use slicc_common::ThreadId;
use slicc_trace::{TraceScale, Workload};

fn bench_trace_generation(c: &mut Criterion) {
    let spec = Workload::TpcC1.spec(TraceScale::tiny());
    let len = spec.thread_trace(ThreadId::new(0)).count() as u64;
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(len));
    group.bench_function("generate_thread", |b| {
        b.iter(|| std::hint::black_box(spec.thread_trace(ThreadId::new(0)).count()));
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let spec = Workload::TpcC1.spec(TraceScale::tiny());
    let instructions: u64 =
        spec.threads().map(|t| spec.thread_trace(t).count() as u64).sum();
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(instructions));
    for mode in SchedulerMode::ALL {
        group.bench_with_input(BenchmarkId::new("run", mode.name()), &mode, |b, &mode| {
            let cfg = SimConfig::tiny_test().with_mode(mode);
            b.iter(|| std::hint::black_box(run(&spec, &cfg)));
        });
    }
    group.finish();
}

fn bench_engine_with_classification(c: &mut Criterion) {
    let spec = Workload::TpcC1.spec(TraceScale::tiny());
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("run/classified", |b| {
        let cfg = SimConfig::tiny_test().with_classification();
        b.iter(|| std::hint::black_box(run(&spec, &cfg)));
    });
    group.finish();
}

criterion_group!(benches, bench_trace_generation, bench_engine, bench_engine_with_classification);
criterion_main!(benches);
