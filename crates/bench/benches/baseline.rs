//! The tracked performance baseline: times full small simulation points
//! per scheduler mode plus the hot-structure microbenches, and emits
//! machine-readable JSON so every PR has a perf trajectory to compare
//! against (`BENCH_sim.json` at the repo root is the checked-in record).
//!
//! ```text
//! cargo bench --bench baseline                      # table + JSON to stdout
//! cargo bench --bench baseline -- --quick           # 1 sample per point
//! cargo bench --bench baseline -- --out BENCH_sim.json
//! cargo bench --bench baseline -- --before old.json --out BENCH_sim.json
//! ```
//!
//! With `--before`, the previous JSON is embedded under `"before"` and the
//! emitted document reports `"sim_ips_speedup"` — current aggregate
//! simulated-instructions-per-second over the previous file's *best*
//! `aggregate_sim_ips` (nested before/after documents carry one per
//! generation; the maximum is the high-water mark to beat).

use slicc_bench::{time_ns_per_iter, time_ns_per_run};
use slicc_cache::{AccessKind, Cache, PolicyKind};
use slicc_common::{BlockAddr, CacheGeometry, CoreId, SplitMix64};
use slicc_mem::{L2AccessKind, L2Nuca};
use slicc_sim::{RunRequest, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};
use std::fmt::Write as _;
use std::time::Duration;

/// Samples per whole-point timing (median reported).
const POINT_SAMPLES: usize = 5;
/// Measurement budget per microbench.
const MICRO_TIME: Duration = Duration::from_millis(300);

struct Options {
    quick: bool,
    out: Option<String>,
    before: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options { quick: false, out: None, before: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => {}
            "--quick" => opts.quick = true,
            "--out" => opts.out = args.next(),
            "--before" => opts.before = args.next(),
            other => {
                eprintln!("usage: bench baseline [--quick] [--out PATH] [--before PATH]");
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    opts
}

struct PointRow {
    mode: &'static str,
    instructions: u64,
    cycles: u64,
    median_wall_ns: u64,
    sim_ips: f64,
}

/// Times every scheduler mode on the small TPC-C-1 point.
fn bench_points(samples: usize) -> Vec<PointRow> {
    SchedulerMode::WITH_STEPS
        .into_iter()
        .map(|mode| {
            let req = RunRequest::new(
                Workload::TpcC1,
                TraceScale::small(),
                SimConfig::paper_baseline().with_mode(mode),
            );
            let metrics = req.execute().metrics; // warm-up + metrics capture
            let ns = time_ns_per_run(samples, || req.execute());
            let sim_ips = metrics.instructions as f64 * 1e9 / ns;
            eprintln!(
                "point/{:<10} {:>10.2} ms/run {:>10.2} M sim-ips",
                mode.name(),
                ns / 1e6,
                sim_ips / 1e6
            );
            PointRow {
                mode: mode.name(),
                instructions: metrics.instructions,
                cycles: metrics.cycles,
                median_wall_ns: ns as u64,
                sim_ips,
            }
        })
        .collect()
}

/// The hot-structure microbenches: L1 lookup, the L2 directory/response
/// path, and a whole tiny engine run.
fn bench_micro(measure: Duration, samples: usize) -> Vec<(String, f64)> {
    let mut rows = Vec::new();

    let geom = CacheGeometry::new(32 * 1024, 8, 64);
    for policy in [PolicyKind::Lru, PolicyKind::Drrip] {
        let mut cache = Cache::new(geom, policy, 1);
        let mut rng = SplitMix64::new(7);
        let ns = time_ns_per_iter(measure, || {
            cache.access(BlockAddr::new(rng.next_below(4096)), AccessKind::Read)
        });
        rows.push((format!("cache/access/{policy}"), ns));
    }

    let mut l2 = L2Nuca::new(CacheGeometry::new(256 * 1024, 8, 64), 4, 16, 1);
    let mut rng = SplitMix64::new(21);
    let ns = time_ns_per_iter(measure, || {
        let core = CoreId::new(rng.next_below(8) as u16);
        let block = BlockAddr::new(rng.next_below(16_384));
        let kind = match rng.next_below(3) {
            0 => L2AccessKind::IFetch,
            1 => L2AccessKind::DataRead,
            _ => L2AccessKind::DataWrite,
        };
        l2.access(core, block, kind).hit
    });
    rows.push(("l2/access".to_string(), ns));

    let req = RunRequest::new(
        Workload::TpcC1,
        TraceScale::tiny(),
        SimConfig::tiny_test().with_mode(SchedulerMode::Slicc),
    );
    let ns = time_ns_per_run(samples.max(3), || req.execute());
    rows.push(("engine/tiny/SLICC".to_string(), ns));

    // The observability cost guard: the same point with full event
    // tracing + epoch sampling on. Compare against the row above to see
    // what `--obs-out` actually costs (the obs-off build pays nothing —
    // the no-default-features golden lane in ci.sh proves that side).
    let observed = req.clone().with_obs(
        slicc_sim::ObsConfig::disabled()
            .with_events()
            .with_epochs(slicc_sim::ObsConfig::DEFAULT_EPOCH_CYCLES),
    );
    let ns = time_ns_per_run(samples.max(3), || observed.execute());
    rows.push(("engine/tiny/SLICC+obs".to_string(), ns));

    for (name, ns) in &rows {
        eprintln!("micro/{name:<30} {ns:>12.1} ns/iter");
    }
    rows
}

/// Renders the measurement document (without any `before` nesting).
fn render_doc(samples: usize, points: &[PointRow], micro: &[(String, f64)]) -> String {
    let total_instr: u64 = points.iter().map(|p| p.instructions).sum();
    let total_ns: u64 = points.iter().map(|p| p.median_wall_ns).sum();
    let aggregate = total_instr as f64 * 1e9 / total_ns as f64;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": 1,");
    let _ = writeln!(s, "  \"workload\": \"TPC-C-1\",");
    let _ = writeln!(s, "  \"scale\": \"small\",");
    let _ = writeln!(s, "  \"samples\": {samples},");
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"mode\": \"{}\", \"instructions\": {}, \"cycles\": {}, \"median_wall_ns\": {}, \"sim_ips\": {:.1}}}{comma}",
            p.mode, p.instructions, p.cycles, p.median_wall_ns, p.sim_ips
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(s, "  \"aggregate_sim_ips\": {aggregate:.1},");
    s.push_str("  \"micro_ns_per_iter\": {\n");
    for (i, (name, ns)) in micro.iter().enumerate() {
        let comma = if i + 1 < micro.len() { "," } else { "" };
        let _ = writeln!(s, "    \"{name}\": {ns:.1}{comma}");
    }
    s.push_str("  }\n}");
    s
}

/// Pulls the best `"aggregate_sim_ips"` value out of a JSON document.
/// Nested before/after documents carry one aggregate per generation;
/// comparing against the *maximum* makes the reported speedup answer
/// "did we beat the best this file has ever recorded?" rather than
/// only the most recent (possibly already-regressed) generation.
fn last_aggregate(json: &str) -> Option<f64> {
    let needle = "\"aggregate_sim_ips\":";
    let mut best: Option<f64> = None;
    let mut rest = json;
    while let Some(at) = rest.find(needle) {
        let tail = &rest[at + needle.len()..];
        let num: String = tail
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E' || *c == '+')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            best = Some(best.map_or(v, |b: f64| b.max(v)));
        }
        rest = tail;
    }
    best
}

/// Indents every line of `block` by `indent` spaces (JSON nesting).
fn indent_block(block: &str, indent: usize) -> String {
    let pad = " ".repeat(indent);
    block
        .trim_end()
        .lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let opts = parse_args();
    let samples = if opts.quick { 1 } else { POINT_SAMPLES };
    let micro_time = if opts.quick { MICRO_TIME / 10 } else { MICRO_TIME };

    let points = bench_points(samples);
    let micro = bench_micro(micro_time, samples);
    let doc = render_doc(samples, &points, &micro);

    let rendered = match &opts.before {
        None => doc,
        Some(path) => {
            let before = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read --before {path}: {e}"));
            let speedup = match (last_aggregate(&before), last_aggregate(&doc)) {
                (Some(b), Some(a)) if b > 0.0 => format!("{:.3}", a / b),
                _ => "null".to_string(),
            };
            format!(
                "{{\n  \"schema\": 1,\n  \"sim_ips_speedup\": {speedup},\n  \"before\":\n{},\n  \"after\":\n{}\n}}",
                indent_block(&before, 2),
                indent_block(&doc, 2)
            )
        }
    };

    match &opts.out {
        Some(path) => {
            std::fs::write(path, format!("{rendered}\n"))
                .unwrap_or_else(|e| panic!("cannot write --out {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
}
