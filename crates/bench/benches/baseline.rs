//! The tracked performance baseline: times full small simulation points
//! per scheduler mode, the hot-structure microbenches, and the
//! `point_threads` scaling pair, and emits machine-readable JSON so
//! every PR has a perf trajectory to compare against
//! (`BENCH_history.json` at the repo root is the checked-in record —
//! one append-only row per commit).
//!
//! ```text
//! cargo bench --bench baseline                      # table + JSON to stdout
//! cargo bench --bench baseline -- --quick           # 1 sample per point
//! cargo bench --bench baseline -- --out now.json    # measurement document
//! cargo bench --bench baseline -- --history BENCH_history.json
//! ```
//!
//! With `--history`, one `{commit, date, host_cpus, benches[]}` row is
//! appended to the named JSON array (created if missing). Rows are never
//! rewritten: the rolling-baseline gate in `scripts/ci.sh` compares a
//! fresh measurement against the median of the checked-in tail, so the
//! file is a trend, not a ledger of one hand-nested before/after chain.

use slicc_bench::{time_ns_per_iter, time_ns_per_run};
use slicc_cache::{AccessKind, Cache, PolicyKind};
use slicc_common::{BlockAddr, CacheGeometry, CoreId, SplitMix64};
use slicc_mem::{L2AccessKind, L2Nuca};
use slicc_sim::{RunRequest, SchedulerMode, SimConfig, SimConfigBuilder};
use slicc_trace::{TraceScale, Workload};
use std::fmt::Write as _;
use std::time::Duration;

/// Samples per whole-point timing (median reported).
const POINT_SAMPLES: usize = 5;
/// Measurement budget per microbench.
const MICRO_TIME: Duration = Duration::from_millis(300);

struct Options {
    quick: bool,
    out: Option<String>,
    history: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options { quick: false, out: None, history: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => {}
            "--quick" => opts.quick = true,
            "--out" => opts.out = args.next(),
            "--history" => opts.history = args.next(),
            other => {
                eprintln!("usage: bench baseline [--quick] [--out PATH] [--history PATH]");
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    opts
}

struct PointRow {
    mode: &'static str,
    instructions: u64,
    cycles: u64,
    median_wall_ns: u64,
    sim_ips: f64,
}

/// Times every scheduler mode on the small TPC-C-1 point.
fn bench_points(samples: usize) -> Vec<PointRow> {
    SchedulerMode::WITH_STEPS
        .into_iter()
        .map(|mode| {
            let req = RunRequest::new(
                Workload::TpcC1,
                TraceScale::small(),
                SimConfig::paper_baseline().with_mode(mode),
            );
            let metrics = req.execute().metrics; // warm-up + metrics capture
            let ns = time_ns_per_run(samples, || req.execute());
            let sim_ips = metrics.instructions as f64 * 1e9 / ns;
            eprintln!(
                "point/{:<10} {:>10.2} ms/run {:>10.2} M sim-ips",
                mode.name(),
                ns / 1e6,
                sim_ips / 1e6
            );
            PointRow {
                mode: mode.name(),
                instructions: metrics.instructions,
                cycles: metrics.cycles,
                median_wall_ns: ns as u64,
                sim_ips,
            }
        })
        .collect()
}

/// The hot-structure microbenches: L1 lookup, the L2 directory/response
/// path, and a whole tiny engine run.
fn bench_micro(measure: Duration, samples: usize) -> Vec<(String, f64)> {
    let mut rows = Vec::new();

    let geom = CacheGeometry::new(32 * 1024, 8, 64);
    for policy in [PolicyKind::Lru, PolicyKind::Drrip] {
        let mut cache = Cache::new(geom, policy, 1);
        let mut rng = SplitMix64::new(7);
        let ns = time_ns_per_iter(measure, || {
            cache.access(BlockAddr::new(rng.next_below(4096)), AccessKind::Read)
        });
        rows.push((format!("cache/access/{policy}"), ns));
    }

    let mut l2 = L2Nuca::new(CacheGeometry::new(256 * 1024, 8, 64), 4, 16, 1);
    let mut rng = SplitMix64::new(21);
    let ns = time_ns_per_iter(measure, || {
        let core = CoreId::new(rng.next_below(8) as u16);
        let block = BlockAddr::new(rng.next_below(16_384));
        let kind = match rng.next_below(3) {
            0 => L2AccessKind::IFetch,
            1 => L2AccessKind::DataRead,
            _ => L2AccessKind::DataWrite,
        };
        l2.access(core, block, kind).hit
    });
    rows.push(("l2/access".to_string(), ns));

    let req = RunRequest::new(
        Workload::TpcC1,
        TraceScale::tiny(),
        SimConfig::tiny_test().with_mode(SchedulerMode::Slicc),
    );
    let ns = time_ns_per_run(samples.max(3), || req.execute());
    rows.push(("engine/tiny/SLICC".to_string(), ns));

    // The observability cost guard: the same point with full event
    // tracing + epoch sampling on. Compare against the row above to see
    // what `--obs-out` actually costs (the obs-off build pays nothing —
    // the no-default-features golden lane in ci.sh proves that side).
    let observed = req.clone().with_obs(
        slicc_sim::ObsConfig::disabled()
            .with_events()
            .with_epochs(slicc_sim::ObsConfig::DEFAULT_EPOCH_CYCLES),
    );
    let ns = time_ns_per_run(samples.max(3), || observed.execute());
    rows.push(("engine/tiny/SLICC+obs".to_string(), ns));

    for (name, ns) in &rows {
        eprintln!("micro/{name:<30} {ns:>12.1} ns/iter");
    }
    rows
}

/// The intra-point scaling pair: a 32-core TPC-C point at
/// `point_threads` 1 and 4, plus the digest cross-check that the lanes
/// changed nothing. Reported sim-ips feed the `scaling/*` history rows;
/// the speedup is only meaningful on hosts with CPUs to spare (the row
/// records `host_cpus` so the CI gate can tell).
fn bench_scaling(samples: usize) -> Vec<(String, f64)> {
    let point = |threads: usize| {
        let cfg = SimConfigBuilder::paper_baseline()
            .cores(32, 8, 4)
            .point_threads(threads)
            .build()
            .expect("32-core scaling machine is valid");
        RunRequest::new(Workload::TpcC1, TraceScale::small(), cfg).with_tasks(256)
    };
    let mut rows = Vec::new();
    let mut ips = Vec::new();
    let mut digests = Vec::new();
    for threads in [1usize, 4] {
        let req = point(threads);
        let metrics = req.execute().metrics; // warm-up + digest capture
        digests.push(metrics.digest());
        let ns = time_ns_per_run(samples, || req.execute());
        let sim_ips = metrics.instructions as f64 * 1e9 / ns;
        eprintln!(
            "scaling/point-threads-{threads} {:>7.2} ms/run {:>10.2} M sim-ips",
            ns / 1e6,
            sim_ips / 1e6
        );
        rows.push((format!("scaling/point-threads-{threads}/sim_ips"), sim_ips));
        ips.push(sim_ips);
    }
    assert_eq!(digests[0], digests[1], "point_threads changed the scaling point's digest");
    let speedup = ips[1] / ips[0];
    eprintln!("scaling/speedup-p4            {speedup:>12.3} x");
    rows.push(("scaling/speedup-p4".to_string(), speedup));
    rows
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Renders the standalone measurement document.
fn render_doc(
    samples: usize,
    points: &[PointRow],
    micro: &[(String, f64)],
    scaling: &[(String, f64)],
) -> String {
    let total_instr: u64 = points.iter().map(|p| p.instructions).sum();
    let total_ns: u64 = points.iter().map(|p| p.median_wall_ns).sum();
    let aggregate = total_instr as f64 * 1e9 / total_ns as f64;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": 2,");
    let _ = writeln!(s, "  \"workload\": \"TPC-C-1\",");
    let _ = writeln!(s, "  \"scale\": \"small\",");
    let _ = writeln!(s, "  \"samples\": {samples},");
    let _ = writeln!(s, "  \"host_cpus\": {},", host_cpus());
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"mode\": \"{}\", \"instructions\": {}, \"cycles\": {}, \"median_wall_ns\": {}, \"sim_ips\": {:.1}}}{comma}",
            p.mode, p.instructions, p.cycles, p.median_wall_ns, p.sim_ips
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(s, "  \"aggregate_sim_ips\": {aggregate:.1},");
    s.push_str("  \"micro_ns_per_iter\": {\n");
    for (i, (name, ns)) in micro.iter().enumerate() {
        let comma = if i + 1 < micro.len() { "," } else { "" };
        let _ = writeln!(s, "    \"{name}\": {ns:.1}{comma}");
    }
    s.push_str("  },\n");
    s.push_str("  \"scaling\": {\n");
    for (i, (name, v)) in scaling.iter().enumerate() {
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        let _ = writeln!(s, "    \"{name}\": {v:.3}{comma}");
    }
    s.push_str("  }\n}");
    s
}

/// The current commit, `-dirty` suffixed when the tree has
/// uncommitted changes, or `"unknown"` outside a git checkout.
fn commit_label() -> String {
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string());
    let Some(rev) = rev else { return "unknown".to_string() };
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty());
    if dirty { format!("{rev}-dirty") } else { rev }
}

fn today() -> String {
    std::process::Command::new("date")
        .arg("+%F")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders one benchmark-action-style history row: flat named values so
/// trend tooling never needs this file's schema beyond `benches[]`.
fn render_history_row(
    points: &[PointRow],
    micro: &[(String, f64)],
    scaling: &[(String, f64)],
) -> String {
    let total_instr: u64 = points.iter().map(|p| p.instructions).sum();
    let total_ns: u64 = points.iter().map(|p| p.median_wall_ns).sum();
    let aggregate = total_instr as f64 * 1e9 / total_ns as f64;
    let mut benches: Vec<(String, f64, &str)> = Vec::new();
    for p in points {
        benches.push((format!("point/{}/sim_ips", p.mode), p.sim_ips, "sim-ips"));
    }
    benches.push(("aggregate_sim_ips".to_string(), aggregate, "sim-ips"));
    for (name, ns) in micro {
        benches.push((format!("micro/{name}"), *ns, "ns/iter"));
    }
    for (name, v) in scaling {
        let unit = if name.ends_with("sim_ips") { "sim-ips" } else { "x" };
        benches.push((name.clone(), *v, unit));
    }

    let mut s = String::new();
    s.push_str("  {\n");
    let _ = writeln!(s, "    \"commit\": \"{}\",", commit_label());
    let _ = writeln!(s, "    \"date\": \"{}\",", today());
    let _ = writeln!(s, "    \"host_cpus\": {},", host_cpus());
    s.push_str("    \"benches\": [\n");
    for (i, (name, value, unit)) in benches.iter().enumerate() {
        let comma = if i + 1 < benches.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{name}\", \"value\": {value:.3}, \"unit\": \"{unit}\"}}{comma}"
        );
    }
    s.push_str("    ]\n  }");
    s
}

/// Appends `row` to the JSON array at `path`, creating the file when
/// missing. Existing rows are never touched: the append splices before
/// the closing bracket.
fn append_history(path: &str, row: &str) {
    let rendered = match std::fs::read_to_string(path) {
        Err(_) => format!("[\n{row}\n]\n"),
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let body = trimmed
                .strip_suffix(']')
                .unwrap_or_else(|| panic!("{path} is not a JSON array"))
                .trim_end();
            if body == "[" {
                format!("[\n{row}\n]\n")
            } else {
                format!("{},\n{row}\n]\n", body.strip_suffix(',').unwrap_or(body))
            }
        }
    };
    std::fs::write(path, rendered)
        .unwrap_or_else(|e| panic!("cannot write --history {path}: {e}"));
    eprintln!("appended history row to {path}");
}

fn main() {
    let opts = parse_args();
    let samples = if opts.quick { 1 } else { POINT_SAMPLES };
    let micro_time = if opts.quick { MICRO_TIME / 10 } else { MICRO_TIME };

    let points = bench_points(samples);
    let micro = bench_micro(micro_time, samples);
    let scaling = bench_scaling(samples);
    let doc = render_doc(samples, &points, &micro, &scaling);

    if let Some(path) = &opts.history {
        let row = render_history_row(&points, &micro, &scaling);
        append_history(path, &row);
    }

    match &opts.out {
        Some(path) => {
            std::fs::write(path, format!("{doc}\n"))
                .unwrap_or_else(|e| panic!("cannot write --out {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{doc}"),
    }
}
