//! Markdown table rendering for experiment output.

/// A simple right-aligned markdown table builder.
///
/// # Example
///
/// ```
/// use slicc_bench::Table;
///
/// let mut t = Table::new(vec!["workload", "I-MPKI"]);
/// t.row(vec!["TPC-C".into(), "43.5".into()]);
/// let md = t.render();
/// assert!(md.contains("TPC-C |"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table { headers: headers.into_iter().map(str::to_owned).collect(), rows: Vec::new() }
    }

    /// Appends one row; missing cells render empty, extras are dropped.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders github-flavoured markdown with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, &width) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:>width$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}:|", "-".repeat(w + 1)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Renders a horizontal ASCII bar chart (one bar per label), scaled so
/// the largest value spans `width` characters.
///
/// # Example
///
/// ```
/// use slicc_bench::format::bar_chart;
/// let s = bar_chart(&[("a", 1.0), ("bb", 2.0)], 10);
/// assert!(s.contains("bb"));
/// assert!(s.lines().count() == 2);
/// ```
pub fn bar_chart(items: &[(&str, f64)], width: usize) -> String {
    let max = items.iter().map(|&(_, v)| v).fold(0.0f64, f64::max).max(f64::MIN_POSITIVE);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let n = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!("{label:>label_w$} | {} {value:.2}\n", "#".repeat(n)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let md = t.render();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with("|-"));
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn missing_cells_render_empty() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x".into()]);
        assert!(t.render().lines().count() == 3);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(pct(0.583), "58.3%");
    }
}
