//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [EXPERIMENT ...] [--scale small|paper] [--jobs N] [--checkpoint PATH]
//!         [--progress quiet|plain|json] [--deadline-ms N] [--retries N]
//!         [--cache-bytes N] [--queue-limit N] [--out PATH]
//!
//! EXPERIMENT: fig1 fig2 fig3 fig7 fig8 fig9 fig10 fig11
//!             table1 table2 table3 bpki ablations extensions scaling all
//! ```
//!
//! With no arguments, prints the experiment list. `all` runs everything
//! in paper order; output is markdown, suitable for EXPERIMENTS.md.
//! Markdown goes to stdout (or, with `--out PATH`, is committed to PATH
//! in one atomic rename so an interrupted run never leaves a torn
//! report); progress telemetry goes to stderr in the format selected by
//! `--progress` (default `plain`; `json` emits one JSON object per line,
//! `quiet` suppresses everything but warnings).
//!
//! Simulation points fan out across `--jobs` worker threads (default: all
//! host cores). One [`Runner`] is shared across the selected experiments,
//! so points repeated between figures — every figure's baselines — are
//! simulated once and served from the run cache afterwards.
//!
//! `--checkpoint PATH` persists every completed point to PATH as it
//! finishes; rerunning with the same path after an interruption
//! re-simulates only the points that are not in the file yet. Ctrl-C
//! interrupts cooperatively: in-flight points are cancelled at their
//! next engine step, completed ones stay checkpointed, and the process
//! exits 130 with a resume hint. `--deadline-ms` bounds each point's
//! wall-clock time; `--retries` re-attempts transient failures with an
//! escalating fuel budget. `--cache-bytes` bounds the shared run cache
//! (LRU eviction by serialized size; results never change) and
//! `--queue-limit` sheds submissions beyond the worker pool's backlog
//! with a typed overload error — see DESIGN.md §12.

use slicc_bench::{Experiment, ExperimentScale};
use slicc_common::{atomic_write, install_sigint_cancel, sigint_count};
use slicc_sim::{ProgressEvent, ProgressKind, RetryPolicy, Runner};
use std::fmt::Write as _;
use std::panic::{self, AssertUnwindSafe};

fn usage() -> ! {
    eprintln!(
        "usage: figures [EXPERIMENT ...] [--scale small|paper] [--jobs N] [--checkpoint PATH] \
         [--progress quiet|plain|json] [--deadline-ms N] [--retries N] \
         [--cache-bytes N] [--queue-limit N] [--out PATH]"
    );
    eprintln!("experiments:");
    for e in Experiment::ALL {
        eprintln!("  {}", e.name());
    }
    eprintln!("  all");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::Paper;
    let mut jobs = Runner::default_parallelism();
    let mut checkpoint: Option<std::path::PathBuf> = None;
    let mut progress = ProgressKind::Plain;
    let mut deadline_ms: Option<u64> = None;
    let mut retries: u32 = 0;
    let mut cache_bytes: Option<u64> = None;
    let mut queue_limit: Option<usize> = None;
    let mut out: Option<std::path::PathBuf> = None;
    let mut selected: Vec<Experiment> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("small") => ExperimentScale::Small,
                    Some("paper") => ExperimentScale::Paper,
                    _ => usage(),
                };
            }
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage(),
                };
            }
            "--checkpoint" => {
                i += 1;
                checkpoint = match args.get(i) {
                    Some(p) if !p.is_empty() => Some(std::path::PathBuf::from(p)),
                    _ => usage(),
                };
            }
            "--progress" => {
                i += 1;
                progress = match args.get(i).and_then(|v| ProgressKind::parse(v)) {
                    Some(kind) => kind,
                    None => usage(),
                };
            }
            "--deadline-ms" => {
                i += 1;
                deadline_ms = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(ms) => Some(ms),
                    None => usage(),
                };
            }
            "--retries" => {
                i += 1;
                retries = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => usage(),
                };
            }
            "--cache-bytes" => {
                i += 1;
                cache_bytes = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => usage(),
                };
            }
            "--queue-limit" => {
                i += 1;
                queue_limit = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => Some(n),
                    None => usage(),
                };
            }
            "--out" => {
                i += 1;
                out = match args.get(i) {
                    Some(p) if !p.is_empty() => Some(std::path::PathBuf::from(p)),
                    _ => usage(),
                };
            }
            "all" => selected.extend(Experiment::ALL),
            name => match Experiment::parse(name) {
                Some(e) => selected.push(e),
                None => usage(),
            },
        }
        i += 1;
    }
    if selected.is_empty() {
        usage();
    }

    let runner = Runner::new(jobs);
    let reporter = progress.reporter();
    runner.set_reporter(std::sync::Arc::clone(&reporter));
    if let Some(ms) = deadline_ms {
        runner.set_default_deadline(Some(std::time::Duration::from_millis(ms)));
    }
    if retries > 0 {
        runner.set_retry_policy(RetryPolicy {
            max_attempts: retries.saturating_add(1),
            ..RetryPolicy::standard()
        });
    }
    if let Some(bytes) = cache_bytes {
        runner.set_cache_bytes(bytes);
    }
    if let Some(limit) = queue_limit {
        runner.set_queue_limit(Some(limit));
    }
    install_sigint_cancel(&runner.cancel_token());
    if let Some(path) = &checkpoint {
        match runner.attach_checkpoint(path) {
            Ok(load) => {
                if load.quarantined {
                    reporter.report(ProgressEvent::Warning {
                        message: format!(
                            "checkpoint {} was not a readable checkpoint; quarantined to \
                             {}.corrupt and starting fresh",
                            path.display(),
                            path.display(),
                        ),
                    });
                }
                reporter.report(ProgressEvent::Note {
                    message: format!(
                        "checkpoint {}: {} completed point(s) loaded{}",
                        path.display(),
                        load.loaded,
                        if load.truncated() {
                            format!(" ({} corrupt tail byte(s) dropped)", load.dropped_bytes)
                        } else {
                            String::new()
                        },
                    ),
                });
            }
            Err(e) => {
                eprintln!("error: cannot use checkpoint {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    let mut report = String::new();
    let _ = writeln!(report, "# SLICC reproduction — experiment output");
    let _ = writeln!(report);
    let _ = writeln!(report, "scale: {scale:?}");
    let _ = writeln!(report);
    let mut interrupted = false;
    for e in selected {
        let start = std::time::Instant::now();
        // Experiments panic on a failed point (a figure with a hole is
        // not a figure). A Ctrl-C surfaces as exactly such a failure —
        // catch it here so the interrupt exits 130 with a hint instead
        // of a panic trace; genuine failures keep unwinding.
        match panic::catch_unwind(AssertUnwindSafe(|| e.run(scale, &runner))) {
            Ok(section) => {
                let _ = writeln!(report, "{section}");
                reporter.report(ProgressEvent::Note {
                    message: format!("[{}] done in {:.1}s", e.name(), start.elapsed().as_secs_f64()),
                });
            }
            Err(payload) => {
                if sigint_count() > 0 {
                    interrupted = true;
                    break;
                }
                panic::resume_unwind(payload);
            }
        }
    }
    if !interrupted {
        match &out {
            Some(path) => {
                if let Err(e) = atomic_write(path, report.as_bytes()) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
                reporter.report(ProgressEvent::Note {
                    message: format!("wrote {}", path.display()),
                });
            }
            None => print!("{report}"),
        }
    }
    let stats = runner.stats();
    let served = stats.cache_hits + stats.coalesced_hits;
    if served + stats.cache_misses > 0 {
        let mut suffix = String::new();
        if stats.cache_evictions > 0 {
            let _ = write!(suffix, ", {} evicted", stats.cache_evictions);
        }
        if stats.shed_points > 0 {
            let _ = write!(suffix, ", {} shed", stats.shed_points);
        }
        reporter.report(ProgressEvent::Note {
            message: format!(
                "{} simulation points ({} memoized + {} coalesced{suffix}), {} jobs, {:.0} instructions/s",
                served + stats.cache_misses,
                stats.cache_hits,
                stats.coalesced_hits,
                jobs,
                stats.sim_ips(),
            ),
        });
    }
    if interrupted {
        match &checkpoint {
            Some(path) => eprintln!(
                "interrupted: completed points are saved; resume with --checkpoint {}",
                path.display()
            ),
            None => eprintln!(
                "interrupted: nothing persisted; re-run with --checkpoint PATH for resumable sweeps"
            ),
        }
        std::process::exit(130);
    }
}
