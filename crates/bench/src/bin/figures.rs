//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [EXPERIMENT ...] [--scale small|paper]
//!
//! EXPERIMENT: fig1 fig2 fig3 fig7 fig8 fig9 fig10 fig11
//!             table1 table2 table3 bpki ablations all
//! ```
//!
//! With no arguments, prints the experiment list. `all` runs everything
//! in paper order; output is markdown, suitable for EXPERIMENTS.md.

use slicc_bench::{Experiment, ExperimentScale};

fn usage() -> ! {
    eprintln!("usage: figures [EXPERIMENT ...] [--scale small|paper]");
    eprintln!("experiments:");
    for e in Experiment::ALL {
        eprintln!("  {}", e.name());
    }
    eprintln!("  all");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::Paper;
    let mut selected: Vec<Experiment> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("small") => ExperimentScale::Small,
                    Some("paper") => ExperimentScale::Paper,
                    _ => usage(),
                };
            }
            "all" => selected.extend(Experiment::ALL),
            name => match Experiment::parse(name) {
                Some(e) => selected.push(e),
                None => usage(),
            },
        }
        i += 1;
    }
    if selected.is_empty() {
        usage();
    }

    println!("# SLICC reproduction — experiment output");
    println!();
    println!("scale: {scale:?}");
    println!();
    for e in selected {
        let start = std::time::Instant::now();
        let section = e.run(scale);
        println!("{section}");
        eprintln!("[{}] done in {:.1}s", e.name(), start.elapsed().as_secs_f64());
    }
}
