//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [EXPERIMENT ...] [--scale small|paper] [--jobs N] [--checkpoint PATH]
//!         [--progress quiet|plain|json]
//!
//! EXPERIMENT: fig1 fig2 fig3 fig7 fig8 fig9 fig10 fig11
//!             table1 table2 table3 bpki ablations extensions scaling all
//! ```
//!
//! With no arguments, prints the experiment list. `all` runs everything
//! in paper order; output is markdown, suitable for EXPERIMENTS.md.
//! Markdown goes to stdout; progress telemetry goes to stderr in the
//! format selected by `--progress` (default `plain`; `json` emits one
//! JSON object per line, `quiet` suppresses everything but warnings).
//!
//! Simulation points fan out across `--jobs` worker threads (default: all
//! host cores). One [`Runner`] is shared across the selected experiments,
//! so points repeated between figures — every figure's baselines — are
//! simulated once and served from the run cache afterwards.
//!
//! `--checkpoint PATH` persists every completed point to PATH as it
//! finishes; rerunning with the same path after an interruption
//! re-simulates only the points that are not in the file yet.

use slicc_bench::{Experiment, ExperimentScale};
use slicc_sim::{ProgressEvent, ProgressKind, Runner};

fn usage() -> ! {
    eprintln!(
        "usage: figures [EXPERIMENT ...] [--scale small|paper] [--jobs N] [--checkpoint PATH] \
         [--progress quiet|plain|json]"
    );
    eprintln!("experiments:");
    for e in Experiment::ALL {
        eprintln!("  {}", e.name());
    }
    eprintln!("  all");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::Paper;
    let mut jobs = Runner::default_parallelism();
    let mut checkpoint: Option<std::path::PathBuf> = None;
    let mut progress = ProgressKind::Plain;
    let mut selected: Vec<Experiment> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("small") => ExperimentScale::Small,
                    Some("paper") => ExperimentScale::Paper,
                    _ => usage(),
                };
            }
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage(),
                };
            }
            "--checkpoint" => {
                i += 1;
                checkpoint = match args.get(i) {
                    Some(p) if !p.is_empty() => Some(std::path::PathBuf::from(p)),
                    _ => usage(),
                };
            }
            "--progress" => {
                i += 1;
                progress = match args.get(i).and_then(|v| ProgressKind::parse(v)) {
                    Some(kind) => kind,
                    None => usage(),
                };
            }
            "all" => selected.extend(Experiment::ALL),
            name => match Experiment::parse(name) {
                Some(e) => selected.push(e),
                None => usage(),
            },
        }
        i += 1;
    }
    if selected.is_empty() {
        usage();
    }

    let runner = Runner::new(jobs);
    let reporter = progress.reporter();
    runner.set_reporter(std::sync::Arc::clone(&reporter));
    if let Some(path) = &checkpoint {
        match runner.attach_checkpoint(path) {
            Ok(load) => {
                reporter.report(ProgressEvent::Note {
                    message: format!(
                        "checkpoint {}: {} completed point(s) loaded{}",
                        path.display(),
                        load.loaded,
                        if load.truncated() {
                            format!(" ({} corrupt tail byte(s) dropped)", load.dropped_bytes)
                        } else {
                            String::new()
                        },
                    ),
                });
            }
            Err(e) => {
                eprintln!("error: cannot use checkpoint {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    println!("# SLICC reproduction — experiment output");
    println!();
    println!("scale: {scale:?}");
    println!();
    for e in selected {
        let start = std::time::Instant::now();
        let section = e.run(scale, &runner);
        println!("{section}");
        reporter.report(ProgressEvent::Note {
            message: format!("[{}] done in {:.1}s", e.name(), start.elapsed().as_secs_f64()),
        });
    }
    let stats = runner.stats();
    if stats.cache_hits + stats.cache_misses > 0 {
        reporter.report(ProgressEvent::Note {
            message: format!(
                "{} simulation points ({} served from the run cache), {} jobs, {:.0} instructions/s",
                stats.cache_hits + stats.cache_misses,
                stats.cache_hits,
                jobs,
                stats.sim_ips(),
            ),
        });
    }
}
