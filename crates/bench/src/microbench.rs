//! A dependency-free micro-benchmark harness.
//!
//! The workspace builds with no registry access at all (DESIGN.md §5), so
//! the `cargo bench` targets cannot use criterion. This module provides
//! the small subset the benches need: warm-up, batch-size calibration,
//! median-of-samples timing, and per-element throughput reporting.
//!
//! ```text
//! cache/access/LRU            14.2 ns/iter      70.3 M elems/s
//! ```
//!
//! Benches run with `cargo bench [FILTER]`; only benchmark names
//! containing FILTER are run. `--quick` cuts the measurement time by 10x.

use std::time::{Duration, Instant};

/// How long to measure each benchmark for (split across samples).
const MEASURE_TIME: Duration = Duration::from_millis(300);
/// Samples per benchmark; the median is reported.
const SAMPLES: usize = 7;

/// Harness state shared by every benchmark in one bench binary.
pub struct Harness {
    filter: Option<String>,
    measure_time: Duration,
    ran: usize,
}

impl Harness {
    /// Builds a harness from the command line. Cargo appends `--bench`
    /// when invoking a `harness = false` target; any other `--flag` except
    /// `--quick` is rejected, and a bare word becomes the name filter.
    pub fn from_args() -> Harness {
        let mut filter = None;
        let mut measure_time = MEASURE_TIME;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--quick" => measure_time = MEASURE_TIME / 10,
                flag if flag.starts_with('-') => {
                    eprintln!("usage: bench [--quick] [FILTER]");
                    eprintln!("unknown flag '{flag}'");
                    std::process::exit(2);
                }
                word => filter = Some(word.to_string()),
            }
        }
        Harness { filter, measure_time, ran: 0 }
    }

    /// A named group; benchmark names render as `group/name`.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group { harness: self, name: name.to_string(), elements: 1 }
    }

    /// The per-benchmark measurement budget in effect (`--quick` aware).
    pub fn measure_time(&self) -> Duration {
        self.measure_time
    }

    /// Prints the trailing summary line.
    pub fn finish(self) {
        println!("\n{} benchmarks run", self.ran);
    }
}

/// A group of benchmarks sharing a name prefix and a throughput unit.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    elements: u64,
}

impl Group<'_> {
    /// Declares that one iteration processes `elements` elements, so the
    /// report includes elements/second.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.elements = elements.max(1);
        self
    }

    /// Times `f`, printing median ns/iter and throughput.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let ns = median_ns_per_iter(self.harness.measure_time, &mut f);
        let rate = self.elements as f64 * 1e9 / ns;
        println!("{full:<40} {:>12} {:>14}", format_ns(ns), format_rate(rate));
        self.harness.ran += 1;
        self
    }
}

/// Times `f` with the harness's calibration discipline (batch growth until
/// one batch fills `measure_time / SAMPLES`, then median-of-samples) and
/// returns the median ns per iteration. Public for bench targets that
/// report machine-readable output instead of the harness's table.
pub fn time_ns_per_iter<T>(measure_time: Duration, mut f: impl FnMut() -> T) -> f64 {
    median_ns_per_iter(measure_time, &mut f)
}

/// Times `f` for `samples` whole runs and returns the median ns per run.
/// For macro-scale work (whole simulation points) where the calibrated
/// batching of [`time_ns_per_iter`] would multiply seconds-long runs.
pub fn time_ns_per_run<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    let samples = samples.max(1);
    let mut times: Vec<f64> = (0..samples).map(|_| time_batch(1, &mut f).as_secs_f64() * 1e9).collect();
    times.sort_by(f64::total_cmp);
    times[samples / 2]
}

/// Median over [`SAMPLES`] timed batches of a calibrated size.
fn median_ns_per_iter<T>(measure_time: Duration, f: &mut impl FnMut() -> T) -> f64 {
    // Calibrate: grow the batch until one batch takes ~1/SAMPLES of the
    // measurement budget. This also serves as warm-up.
    let per_sample = measure_time / SAMPLES as u32;
    let mut batch: u64 = 1;
    loop {
        let elapsed = time_batch(batch, f);
        if elapsed >= per_sample {
            break;
        }
        // Aim directly for the target once the timing is meaningful.
        batch = if elapsed < Duration::from_micros(50) {
            batch * 8
        } else {
            let scale = per_sample.as_secs_f64() / elapsed.as_secs_f64();
            (batch as f64 * scale * 1.1) as u64 + 1
        };
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| time_batch(batch, f).as_secs_f64() * 1e9 / batch as f64)
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[SAMPLES / 2]
}

fn time_batch<T>(batch: u64, f: &mut impl FnMut() -> T) -> Duration {
    let start = Instant::now();
    for _ in 0..batch {
        std::hint::black_box(f());
    }
    start.elapsed()
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us/iter", ns / 1e3)
    } else {
        format!("{:.2} ms/iter", ns / 1e6)
    }
}

fn format_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.1} M elems/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} K elems/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} elems/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_converges_on_cheap_work() {
        let mut x = 0u64;
        let ns = median_ns_per_iter(Duration::from_millis(10), &mut || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(ns > 0.0 && ns < 1e6, "cheap work must time in sane range, got {ns}");
    }

    #[test]
    fn units_render() {
        assert_eq!(format_ns(12.34), "12.3 ns/iter");
        assert_eq!(format_ns(12_340.0), "12.34 us/iter");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms/iter");
        assert_eq!(format_rate(2.5e7), "25.0 M elems/s");
        assert_eq!(format_rate(2.5e3), "2.5 K elems/s");
    }
}
