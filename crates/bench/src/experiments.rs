//! One generator per table and figure of the paper's evaluation (§5).
//!
//! Each figure describes its simulation points as [`RunRequest`]s and
//! hands the whole batch to a shared [`Runner`], which fans independent
//! points across host cores and memoizes completed ones — so the Baseline
//! runs shared by Figures 1, 7, 8, 10 and 11 simulate once per `figures
//! all` invocation. Results come back in submission order, which keeps the
//! rendering code a straight zip over the request list.

use crate::format::{bar_chart, f1, f2, pct, Table};
use slicc_cache::PolicyKind;
use slicc_core::{HwCostConfig, SliccParams, PIF_STORAGE_BYTES};
use slicc_sim::{RunRequest, Runner, SchedulerMode, SimConfig, SimConfigBuilder};
use slicc_trace::{instruction_reuse, FootprintStats, TraceScale, Workload};

/// How big the simulated runs are.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExperimentScale {
    /// 48 transactions, ~160-block segments: minutes for the full set.
    Small,
    /// 160 transactions, 288-block segments: the default evaluation
    /// scale (tens of minutes for the full set).
    Paper,
}

impl ExperimentScale {
    /// The corresponding trace scale.
    pub fn trace_scale(self) -> TraceScale {
        match self {
            ExperimentScale::Small => TraceScale::small(),
            ExperimentScale::Paper => TraceScale::paper_like(),
        }
    }
}

/// The reproducible experiments, one per paper table/figure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Experiment {
    /// Figure 1: L1 miss breakdown and speedup vs cache size.
    Fig1,
    /// Figure 2: replacement policies on the baseline L1-I.
    Fig2,
    /// Figure 3: instruction-block reuse classes.
    Fig3,
    /// Figure 7: fill-up_t × matched_t sweep.
    Fig7,
    /// Figure 8: dilution_t sweep.
    Fig8,
    /// Figure 9: bloom-filter accuracy vs size.
    Fig9,
    /// Figure 10: I-/D-MPKI per mode and workload.
    Fig10,
    /// Figure 11: speedup per mode and workload.
    Fig11,
    /// Table 1: workload parameters.
    Table1,
    /// Table 2: system parameters.
    Table2,
    /// Table 3: hardware storage cost.
    Table3,
    /// §5.8: broadcasts per kilo-instruction.
    Bpki,
    /// Beyond-paper ablations of this implementation's design choices.
    Ablations,
    /// Beyond-paper extensions: STEPS-style time multiplexing, the real
    /// PIF prefetcher, and the §5.5 TLB statistics.
    Extensions,
    /// Beyond-paper: SLICC benefit vs core count (collective capacity).
    Scaling,
}

impl Experiment {
    /// Every experiment, in paper order.
    pub const ALL: [Experiment; 15] = [
        Experiment::Table1,
        Experiment::Table2,
        Experiment::Fig1,
        Experiment::Fig2,
        Experiment::Fig3,
        Experiment::Fig7,
        Experiment::Fig8,
        Experiment::Fig9,
        Experiment::Fig10,
        Experiment::Fig11,
        Experiment::Table3,
        Experiment::Bpki,
        Experiment::Ablations,
        Experiment::Extensions,
        Experiment::Scaling,
    ];

    /// Parses a CLI name like `fig10` or `table3`.
    pub fn parse(name: &str) -> Option<Experiment> {
        Some(match name.to_ascii_lowercase().as_str() {
            "fig1" => Experiment::Fig1,
            "fig2" => Experiment::Fig2,
            "fig3" => Experiment::Fig3,
            "fig7" => Experiment::Fig7,
            "fig8" => Experiment::Fig8,
            "fig9" => Experiment::Fig9,
            "fig10" => Experiment::Fig10,
            "fig11" => Experiment::Fig11,
            "table1" => Experiment::Table1,
            "table2" => Experiment::Table2,
            "table3" => Experiment::Table3,
            "bpki" => Experiment::Bpki,
            "ablations" => Experiment::Ablations,
            "extensions" => Experiment::Extensions,
            "scaling" => Experiment::Scaling,
            _ => return None,
        })
    }

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Experiment::Fig1 => "fig1",
            Experiment::Fig2 => "fig2",
            Experiment::Fig3 => "fig3",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Fig9 => "fig9",
            Experiment::Fig10 => "fig10",
            Experiment::Fig11 => "fig11",
            Experiment::Table1 => "table1",
            Experiment::Table2 => "table2",
            Experiment::Table3 => "table3",
            Experiment::Bpki => "bpki",
            Experiment::Ablations => "ablations",
            Experiment::Extensions => "extensions",
            Experiment::Scaling => "scaling",
        }
    }

    /// Runs the experiment on `runner`'s pool and returns a markdown
    /// section. Sharing one runner across experiments shares its run
    /// cache, so repeated points (every figure's baselines) simulate once.
    pub fn run(self, scale: ExperimentScale, runner: &Runner) -> String {
        match self {
            Experiment::Fig1 => fig1(scale, runner),
            Experiment::Fig2 => fig2(scale, runner),
            Experiment::Fig3 => fig3(scale),
            Experiment::Fig7 => fig7(scale, runner),
            Experiment::Fig8 => fig8(scale, runner),
            Experiment::Fig9 => fig9(scale, runner),
            Experiment::Fig10 => fig10(scale, runner),
            Experiment::Fig11 => fig11(scale, runner),
            Experiment::Table1 => table1(scale),
            Experiment::Table2 => table2(),
            Experiment::Table3 => table3(),
            Experiment::Bpki => bpki(scale, runner),
            Experiment::Ablations => ablations(scale, runner),
            Experiment::Extensions => extensions(scale, runner),
            Experiment::Scaling => scaling(scale, runner),
        }
    }
}

fn base_cfg() -> SimConfig {
    SimConfig::paper_baseline()
}

/// A request for `w` at this experiment scale on machine `cfg`.
fn req(w: Workload, scale: ExperimentScale, cfg: SimConfig) -> RunRequest {
    RunRequest::new(w, scale.trace_scale(), cfg)
}

/// The SLICC-SW builder most sweeps and ablations start from.
fn sw_builder() -> SimConfigBuilder {
    SimConfigBuilder::paper_baseline().mode(SchedulerMode::SliccSw)
}

/// Figure 1: I-/D-MPKI (3C breakdown) and relative performance as a
/// function of L1 cache size.
fn fig1(scale: ExperimentScale, runner: &Runner) -> String {
    let sizes_kb = [16u64, 32, 64, 128, 256, 512];
    let workloads = [Workload::TpcC1, Workload::TpcE, Workload::MapReduce];

    // One batch for the whole figure: per (sweep, workload), the shared
    // baseline followed by the size sweep.
    let mut reqs = Vec::new();
    for sweep_i in [true, false] {
        for w in workloads {
            reqs.push(req(w, scale, base_cfg()));
            for &kb in &sizes_kb {
                let mut cfg = base_cfg().with_classification();
                if sweep_i {
                    cfg = cfg.with_l1i_size(kb * 1024);
                } else {
                    cfg = cfg.with_l1d_size(kb * 1024);
                }
                reqs.push(req(w, scale, cfg));
            }
        }
    }
    let mut results = runner.run_metrics(&reqs).into_iter();

    let mut out = String::from("## Figure 1 — L1 misses and performance vs cache size\n\n");
    for sweep_i in [true, false] {
        let which = if sweep_i { "L1-I" } else { "L1-D" };
        out.push_str(&format!("### Sweeping {which} (other L1 fixed at 32 KiB)\n\n"));
        let mut t = Table::new(vec![
            "workload", "size KiB", "latency", "conflict", "capacity", "compulsory", "MPKI", "speedup",
        ]);
        for w in workloads {
            let baseline = results.next().expect("baseline result");
            for &kb in &sizes_kb {
                let lat = if sweep_i { base_cfg().with_l1i_size(kb * 1024).l1i_latency() } else { 3 };
                let m = results.next().expect("sweep result");
                let bd = if sweep_i { m.i_breakdown } else { m.d_breakdown }.expect("classification on");
                let total = if sweep_i { m.i_mpki() } else { m.d_mpki() };
                let scale_mpki = |count: u64| 1000.0 * count as f64 / m.instructions.max(1) as f64;
                t.row(vec![
                    w.name().into(),
                    kb.to_string(),
                    lat.to_string(),
                    f1(scale_mpki(bd.conflict)),
                    f1(scale_mpki(bd.capacity)),
                    f1(scale_mpki(bd.compulsory)),
                    f1(total),
                    f2(m.speedup_over(&baseline)),
                ]);
            }
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Figure 2: I-MPKI under each replacement policy at 32 KiB.
fn fig2(scale: ExperimentScale, runner: &Runner) -> String {
    let workloads = [Workload::TpcC1, Workload::TpcE, Workload::MapReduce];
    let reqs: Vec<RunRequest> = workloads
        .iter()
        .flat_map(|&w| PolicyKind::ALL.map(|policy| req(w, scale, base_cfg().with_policy(policy))))
        .collect();
    let mut results = runner.run_metrics(&reqs).into_iter();

    let mut out = String::from("## Figure 2 — replacement policies (32 KiB L1-I)\n\n");
    let mut t = Table::new(vec!["workload", "LRU", "LIP", "BIP", "DIP", "SRRIP", "BRRIP", "DRRIP"]);
    for w in workloads {
        let mut cells = vec![w.name().to_owned()];
        for _ in PolicyKind::ALL {
            cells.push(f1(results.next().expect("policy result").i_mpki()));
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out
}

/// Figure 3: accesses by instruction-block reuse class.
fn fig3(scale: ExperimentScale) -> String {
    let mut out = String::from("## Figure 3 — instruction accesses by block reuse\n\n");
    let mut t = Table::new(vec!["workload", "classification", "single", "few", "most"]);
    for w in [Workload::TpcC1, Workload::TpcE] {
        let spec = w.spec(scale.trace_scale());
        for per_type in [false, true] {
            let r = instruction_reuse(&spec, per_type);
            t.row(vec![
                w.name().into(),
                if per_type { "Per Transaction" } else { "Global" }.into(),
                pct(r.single),
                pct(r.few),
                pct(r.most),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

/// Figure 7: fill-up_t × matched_t (dilution_t = 0, idealized search).
fn fig7(scale: ExperimentScale, runner: &Runner) -> String {
    let workloads = [Workload::TpcC1, Workload::TpcE];
    let fills = [128u32, 256, 384, 512];
    let matches = [2u32, 4, 6, 8, 10];

    let mut reqs = Vec::new();
    for w in workloads {
        reqs.push(req(w, scale, base_cfg()));
        for fill in fills {
            for matched in matches {
                let cfg = sw_builder()
                    .slicc_params(
                        SliccParams::paper_default().with_fill_up(fill).with_matched(matched).with_dilution(0),
                    )
                    .exact_search(true)
                    .build()
                    .expect("figure 7 sweep point is valid");
                reqs.push(req(w, scale, cfg));
            }
        }
    }
    let mut results = runner.run_metrics(&reqs).into_iter();

    let mut out = String::from(
        "## Figure 7 — fill-up_t x matched_t sweep (dilution_t = 0, zero-overhead exact search)\n\n",
    );
    let mut t = Table::new(vec!["workload", "fill-up_t", "matched_t", "I-MPKI", "D-MPKI", "speedup"]);
    for w in workloads {
        let baseline = results.next().expect("baseline result");
        for fill in fills {
            for matched in matches {
                let m = results.next().expect("sweep result");
                t.row(vec![
                    w.name().into(),
                    fill.to_string(),
                    matched.to_string(),
                    f1(m.i_mpki()),
                    f1(m.d_mpki()),
                    f2(m.speedup_over(&baseline)),
                ]);
            }
        }
    }
    out.push_str(&t.render());
    out
}

/// Figure 8: dilution_t sweep at the best fill-up/matched setting.
fn fig8(scale: ExperimentScale, runner: &Runner) -> String {
    let workloads = [Workload::TpcC1, Workload::TpcE];
    let dilutions: Vec<u32> = (2..=30).step_by(2).collect();

    let mut reqs = Vec::new();
    for w in workloads {
        reqs.push(req(w, scale, base_cfg()));
        for &dilution in &dilutions {
            let cfg = sw_builder()
                .slicc_params(SliccParams::paper_default().with_fill_up(128).with_dilution(dilution))
                .build()
                .expect("figure 8 sweep point is valid");
            reqs.push(req(w, scale, cfg));
        }
    }
    let mut results = runner.run_metrics(&reqs).into_iter();

    let mut out =
        String::from("## Figure 8 — dilution_t sweep (fill-up_t = 128, matched_t = 4)\n\n");
    let mut t =
        Table::new(vec!["workload", "dilution_t", "I-MPKI", "D-MPKI", "mig/KI", "speedup"]);
    for w in workloads {
        let baseline = results.next().expect("baseline result");
        for &dilution in &dilutions {
            let m = results.next().expect("sweep result");
            t.row(vec![
                w.name().into(),
                dilution.to_string(),
                f1(m.i_mpki()),
                f1(m.d_mpki()),
                f2(m.migrations_per_kilo_instruction()),
                f2(m.speedup_over(&baseline)),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

/// Figure 9: bloom-filter accuracy vs size under live migration.
fn fig9(scale: ExperimentScale, runner: &Runner) -> String {
    let workloads = [Workload::TpcC1, Workload::TpcE];
    let sizes = [512u64, 1024, 2048, 4096, 8192];

    let mut reqs = Vec::new();
    for w in workloads {
        for bits in sizes {
            let cfg = sw_builder()
                .bloom_bits(bits)
                .measure_bloom_accuracy()
                .build()
                .expect("figure 9 sweep point is valid");
            reqs.push(req(w, scale, cfg));
        }
    }
    let mut results = runner.run_metrics(&reqs).into_iter();

    let mut out = String::from("## Figure 9 — partial-address bloom filter accuracy\n\n");
    let mut t = Table::new(vec!["workload", "bits", "accuracy", "speedup vs 2K-bit"]);
    for w in workloads {
        let mut reference_cycles = None;
        for bits in sizes {
            let m = results.next().expect("sweep result");
            if bits == 2048 {
                reference_cycles = Some(m.cycles);
            }
            t.row(vec![
                w.name().into(),
                bits.to_string(),
                pct(m.bloom_accuracy.unwrap_or(1.0)),
                match reference_cycles {
                    Some(r) => f2(r as f64 / m.cycles as f64),
                    None => "-".into(),
                },
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str("\n(speedup column is relative to the 2K-bit configuration once measured)\n");
    out
}

/// Figure 10: L1 I- and D-MPKI per workload and mode.
fn fig10(scale: ExperimentScale, runner: &Runner) -> String {
    let reqs: Vec<RunRequest> = Workload::ALL
        .iter()
        .flat_map(|&w| SchedulerMode::ALL.map(|mode| req(w, scale, base_cfg().with_mode(mode))))
        .collect();
    let mut results = runner.run_metrics(&reqs).into_iter();

    let mut out = String::from("## Figure 10 — L1 I- and D-MPKI\n\n");
    let mut t = Table::new(vec!["workload", "mode", "I-MPKI", "D-MPKI", "mig/KI"]);
    for w in Workload::ALL {
        for mode in SchedulerMode::ALL {
            let m = results.next().expect("mode result");
            t.row(vec![
                w.name().into(),
                mode.name().into(),
                f1(m.i_mpki()),
                f1(m.d_mpki()),
                f2(m.migrations_per_kilo_instruction()),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

/// Figure 11: overall performance per workload and configuration.
fn fig11(scale: ExperimentScale, runner: &Runner) -> String {
    let variants = |w: Workload| -> Vec<RunRequest> {
        vec![
            req(w, scale, base_cfg()),
            req(w, scale, base_cfg().with_next_line(1)),
            req(w, scale, base_cfg().with_mode(SchedulerMode::Slicc)),
            req(w, scale, base_cfg().with_mode(SchedulerMode::SliccPp)),
            req(w, scale, base_cfg().with_mode(SchedulerMode::SliccSw)),
            req(w, scale, base_cfg().with_pif_model()),
        ]
    };
    let reqs: Vec<RunRequest> = Workload::ALL.iter().flat_map(|&w| variants(w)).collect();
    let results = runner.run_metrics(&reqs);
    let mut chunks = results.chunks(6);

    let mut out = String::from("## Figure 11 — performance (speedup over baseline)\n\n");
    let mut out_chart = String::new();
    let mut t =
        Table::new(vec!["workload", "Base", "Next-Line", "SLICC", "SLICC-Pp", "SLICC-SW", "PIF"]);
    for w in Workload::ALL {
        let [base, nl, slicc, pp, sw, pif] = chunks.next().expect("six results per workload") else {
            unreachable!("chunk size is six");
        };
        t.row(vec![
            w.name().into(),
            "1.00".into(),
            f2(nl.speedup_over(base)),
            f2(slicc.speedup_over(base)),
            f2(pp.speedup_over(base)),
            f2(sw.speedup_over(base)),
            f2(pif.speedup_over(base)),
        ]);
        if w == Workload::TpcC1 {
            out_chart = bar_chart(
                &[
                    ("Base", 1.0),
                    ("Next-Line", nl.speedup_over(base)),
                    ("SLICC", slicc.speedup_over(base)),
                    ("SLICC-Pp", pp.speedup_over(base)),
                    ("SLICC-SW", sw.speedup_over(base)),
                    ("PIF", pif.speedup_over(base)),
                ],
                48,
            );
        }
    }
    out.push_str(&t.render());
    out.push_str("\nTPC-C-1 speedups:\n\n```\n");
    out.push_str(&out_chart);
    out.push_str("```\n");
    out
}

/// Table 1: workload parameters, plus measured footprints.
fn table1(scale: ExperimentScale) -> String {
    let mut out = String::from("## Table 1 — workload parameters\n\n");
    let mut t = Table::new(vec![
        "workload", "types", "tasks", "segments", "code KiB", "mean thread I-KiB", "instructions",
    ]);
    for w in Workload::ALL {
        let spec = w.spec(scale.trace_scale());
        let fp = FootprintStats::measure(&spec);
        t.row(vec![
            w.name().into(),
            spec.types.len().to_string(),
            spec.num_tasks.to_string(),
            spec.pool.len().to_string(),
            (spec.pool.total_bytes() / 1024).to_string(),
            f1(fp.mean_instruction_bytes / 1024.0),
            fp.total_instructions.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Table 2: system parameters (the Table 2 machine).
fn table2() -> String {
    let c = SimConfig::paper_baseline();
    let mut out = String::from("## Table 2 — system parameters\n\n");
    let mut t = Table::new(vec!["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("cores", format!("{} ({}x{} torus)", c.cores, c.noc_cols, c.noc_rows)),
        ("L1-I", format!("{} KiB, {}-way, {}-cycle", c.l1i_size / 1024, c.l1i_assoc, c.l1i_latency())),
        ("L1-D", format!("{} KiB, {}-way", c.l1d_size / 1024, c.l1d_assoc)),
        ("L2", format!("{} MiB, {}-way, {} banks, {}-cycle", c.l2_size / (1024 * 1024), c.l2_assoc, c.l2_banks, c.l2_hit_latency)),
        ("DRAM", "DDR3-1600, 2 channels, 8 banks/channel, open page".into()),
        ("SLICC fill-up_t", c.slicc.fill_up_t.to_string()),
        ("SLICC matched_t", c.slicc.matched_t.to_string()),
        ("SLICC dilution_t", c.slicc.dilution_t.to_string()),
        ("bloom signature", format!("{} bits", c.bloom_bits)),
        ("thread pool", format!("{}N", c.pool_multiplier)),
        ("thread queue", format!("{} entries", c.thread_queue_capacity)),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v]);
    }
    out.push_str(&t.render());
    out
}

/// Table 3: SLICC hardware storage cost.
fn table3() -> String {
    let b = HwCostConfig::paper_table3().breakdown();
    let mut out = String::from("## Table 3 — hardware component storage costs\n\n");
    let mut t = Table::new(vec!["component", "bits", "bytes"]);
    t.row(vec!["Missed-Tag Queue (MTQ)".into(), b.mtq_bits.to_string(), String::new()]);
    t.row(vec!["Miss Shift-Vector (MSV)".into(), b.msv_bits.to_string(), String::new()]);
    t.row(vec!["Cache Signature (bloom)".into(), b.bloom_bits.to_string(), String::new()]);
    t.row(vec!["Cache monitor subtotal".into(), b.monitor_bits.to_string(), b.monitor_bits.div_ceil(8).to_string()]);
    t.row(vec!["Thread queue".into(), b.thread_queue_bits.to_string(), (b.thread_queue_bits / 8).to_string()]);
    t.row(vec!["Team management table".into(), b.team_table_bits.to_string(), (b.team_table_bits / 8).to_string()]);
    t.row(vec!["Grand total".into(), b.total_bits.to_string(), b.total_bytes().to_string()]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nRelative to PIF's ~{} KiB per core: {}\n",
        PIF_STORAGE_BYTES / 1024,
        pct(b.relative_to(PIF_STORAGE_BYTES))
    ));
    out
}

/// §5.8: broadcast frequency of the remote cache segment search.
fn bpki(scale: ExperimentScale, runner: &Runner) -> String {
    let workloads = [Workload::TpcC1, Workload::TpcE];
    let modes = [SchedulerMode::Slicc, SchedulerMode::SliccPp, SchedulerMode::SliccSw];
    let reqs: Vec<RunRequest> = workloads
        .iter()
        .flat_map(|&w| modes.map(|mode| req(w, scale, base_cfg().with_mode(mode))))
        .collect();
    let mut results = runner.run_metrics(&reqs).into_iter();

    let mut out = String::from("## Section 5.8 — remote search broadcasts per kilo-instruction\n\n");
    let mut t = Table::new(vec!["workload", "SLICC", "SLICC-Pp", "SLICC-SW"]);
    for w in workloads {
        let mut cells = vec![w.name().to_owned()];
        for _ in modes {
            cells.push(f2(results.next().expect("mode result").bpki()));
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out
}

/// Ablations of this implementation's own design choices (beyond the
/// paper's figures; see DESIGN.md §4).
fn ablations(scale: ExperimentScale, runner: &Runner) -> String {
    let w = Workload::TpcC1;
    let valid = "ablation variant is valid";
    let mut variants: Vec<(String, SimConfig)> =
        vec![("default".into(), sw_builder().build().expect(valid))];
    // Search mechanism: bloom signature vs idealized exact contents.
    variants.push(("exact search (no bloom)".into(), sw_builder().exact_search(true).build().expect(valid)));
    // Migration context size.
    for blocks in [0u32, 16, 64] {
        variants.push((
            format!("context = {blocks} blocks"),
            sw_builder().migration_context_blocks(blocks).build().expect(valid),
        ));
    }
    // Work stealing off (strictly local queues).
    variants.push(("work stealing off".into(), sw_builder().work_stealing(false).build().expect(valid)));
    // Migration target congestion bound.
    for ql in [1usize, 2, 8] {
        variants
            .push((format!("queue limit = {ql}"), sw_builder().migration_queue_limit(ql).build().expect(valid)));
    }
    // Thread pool depth.
    for pool in [2u32, 3, 6] {
        variants.push((format!("pool = {pool}N"), sw_builder().pool_multiplier(pool).build().expect(valid)));
    }

    let mut reqs = vec![req(w, scale, base_cfg())];
    reqs.extend(variants.iter().map(|(_, cfg)| req(w, scale, cfg.clone())));
    let mut results = runner.run_metrics(&reqs).into_iter();
    let baseline = results.next().expect("baseline result");

    let mut out = String::from("## Ablations (TPC-C-1, SLICC-SW unless noted)\n\n");
    let mut t = Table::new(vec!["variant", "I-MPKI", "D-MPKI", "mig/KI", "speedup"]);
    for (label, _) in &variants {
        let m = results.next().expect("variant result");
        t.row(vec![
            label.clone(),
            f1(m.i_mpki()),
            f1(m.d_mpki()),
            f2(m.migrations_per_kilo_instruction()),
            f2(m.speedup_over(&baseline)),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Beyond-paper extensions: the §6 comparisons implemented for real.
fn extensions(scale: ExperimentScale, runner: &Runner) -> String {
    let workloads = [Workload::TpcC1, Workload::TpcE];
    let mut out = String::from("## Extensions (beyond the paper's figures)\n\n");

    out.push_str("### STEPS-style time multiplexing vs SLICC (space vs time, §6)\n\n");
    let steps_modes = [SchedulerMode::Steps, SchedulerMode::SliccSw];
    let mut reqs = Vec::new();
    for w in workloads {
        reqs.push(req(w, scale, base_cfg()));
        reqs.extend(steps_modes.map(|mode| req(w, scale, base_cfg().with_mode(mode))));
    }
    let mut results = runner.run_metrics(&reqs).into_iter();
    let mut t = Table::new(vec!["workload", "mode", "I-MPKI", "D-MPKI", "switches or migrations", "speedup"]);
    for w in workloads {
        let base = results.next().expect("baseline result");
        for mode in steps_modes {
            let m = results.next().expect("mode result");
            t.row(vec![
                w.name().into(),
                mode.name().into(),
                f1(m.i_mpki()),
                f1(m.d_mpki()),
                (m.context_switches + m.migrations).to_string(),
                f2(m.speedup_over(&base)),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nSTEPS reuses instruction chunks across same-core teammates (deepest\n\
         I-MPKI cut) but concentrates each team's data on one L1-D and adds\n\
         switch overhead; SLICC wins end-to-end by using the space domain.\n\n",
    );

    out.push_str("### The real PIF prefetcher vs the paper's upper-bound model\n\n");
    let mut reqs = Vec::new();
    for w in workloads {
        reqs.push(req(w, scale, base_cfg()));
        reqs.push(req(w, scale, base_cfg().with_real_pif()));
        reqs.push(req(w, scale, base_cfg().with_pif_model()));
        reqs.push(req(w, scale, base_cfg().with_mode(SchedulerMode::SliccSw)));
    }
    let results = runner.run_metrics(&reqs);
    let mut chunks = results.chunks(4);
    let mut t = Table::new(vec!["workload", "config", "I-MPKI", "speedup"]);
    for w in workloads {
        let [base, real, bound, sw] = chunks.next().expect("four results per workload") else {
            unreachable!("chunk size is four");
        };
        t.row(vec![w.name().into(), "PIF (real, ~40 KiB)".into(), f1(real.i_mpki()), f2(real.speedup_over(base))]);
        t.row(vec![w.name().into(), "PIF (paper's bound)".into(), f1(bound.i_mpki()), f2(bound.speedup_over(base))]);
        t.row(vec![w.name().into(), "SLICC-SW (966 B)".into(), f1(sw.i_mpki()), f2(sw.speedup_over(base))]);
    }
    out.push_str(&t.render());

    out.push_str("\n### TLB effects (§5.5)\n\n");
    let tlb_modes = [SchedulerMode::Baseline, SchedulerMode::Slicc, SchedulerMode::SliccSw];
    let reqs: Vec<RunRequest> = workloads
        .iter()
        .flat_map(|&w| tlb_modes.map(|mode| req(w, scale, base_cfg().with_mode(mode))))
        .collect();
    let results = runner.run_metrics(&reqs);
    let mut chunks = results.chunks(3);
    let mut t = Table::new(vec!["workload", "mode", "I-TLB MPKI", "D-TLB MPKI", "D-TLB vs base"]);
    for w in workloads {
        let chunk = chunks.next().expect("three results per workload");
        let base = &chunk[0];
        for (mode, m) in tlb_modes.iter().zip(chunk) {
            t.row(vec![
                w.name().into(),
                mode.name().into(),
                f2(m.i_tlb_mpki()),
                f2(m.d_tlb_mpki()),
                pct(m.d_tlb_mpki() / base.d_tlb_mpki() - 1.0),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

/// Beyond-paper: how the SLICC benefit scales with core count (the
/// collective's aggregate capacity).
fn scaling(scale: ExperimentScale, runner: &Runner) -> String {
    let shapes = [(4usize, 2u32, 2u32), (8, 4, 2), (16, 4, 4), (32, 8, 4)];
    let mut reqs = Vec::new();
    for (cores, cols, rows) in shapes {
        let machine = SimConfigBuilder::paper_baseline()
            .cores(cores, cols, rows)
            .l2(cores as u64 * 1024 * 1024, cores)
            .build()
            .expect("scaled machine is valid");
        reqs.push(req(Workload::TpcC1, scale, machine.clone()));
        reqs.push(req(Workload::TpcC1, scale, machine.with_mode(SchedulerMode::SliccSw)));
    }
    let results = runner.run_metrics(&reqs);
    let mut chunks = results.chunks(2);

    let mut out = String::from("## Scaling — SLICC benefit vs core count (TPC-C-1)\n\n");
    let mut t = Table::new(vec![
        "cores", "aggregate L1-I", "base I-MPKI", "SW I-MPKI", "SW speedup", "txn latency x",
    ]);
    for (cores, _, _) in shapes {
        let [base, sw] = chunks.next().expect("two results per shape") else {
            unreachable!("chunk size is two");
        };
        t.row(vec![
            cores.to_string(),
            format!("{} KiB", cores * 32),
            f1(base.i_mpki()),
            f1(sw.i_mpki()),
            f2(sw.speedup_over(base)),
            f2(sw.mean_txn_latency / base.mean_txn_latency.max(1.0)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nThe collective needs enough aggregate capacity for the footprint: with\n\
         4 cores (128 KiB) migration buys little; the benefit peaks once the\n\
         aggregate covers the concurrent footprint (16 cores here) and flattens\n\
         or dips beyond it, where extra spread adds traffic without extra reuse\n\
         - the capacity argument of §2.1.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::parse(e.name()), Some(e));
        }
        assert_eq!(Experiment::parse("fig99"), None);
    }

    #[test]
    fn table_experiments_render() {
        // The two config-only experiments run instantly.
        let runner = Runner::new(1);
        let t2 = Experiment::Table2.run(ExperimentScale::Small, &runner);
        assert!(t2.contains("Table 2"));
        assert!(t2.contains("torus"));
        let t3 = Experiment::Table3.run(ExperimentScale::Small, &runner);
        assert!(t3.contains("966"));
        assert!(t3.contains("2.4%"));
    }
}
