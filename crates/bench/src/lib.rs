//! Experiment harness for the SLICC reproduction.
//!
//! Each [`Experiment`] regenerates one table or figure of the paper's
//! evaluation (§5) and returns it as a markdown section. Experiments
//! describe their simulation points as [`slicc_sim::RunRequest`]s and run
//! them on a shared [`slicc_sim::Runner`], which fans independent points
//! across host cores and memoizes repeated ones (every figure's
//! baselines). The `figures` binary drives them from the command line:
//!
//! ```text
//! cargo run --release -p slicc-bench --bin figures -- all
//! cargo run --release -p slicc-bench --bin figures -- fig10 fig11 --scale small
//! cargo run --release -p slicc-bench --bin figures -- fig11 --jobs 4
//! ```
//!
//! `--jobs N` sets the worker-thread count (default: all host cores);
//! results are identical for every N. [`microbench`] is the
//! dependency-free harness behind `cargo bench`.
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for the
//! recorded paper-vs-measured comparison.

pub mod experiments;
pub mod format;
pub mod microbench;

pub use experiments::{Experiment, ExperimentScale};
pub use format::Table;
pub use microbench::{time_ns_per_iter, time_ns_per_run, Harness};
