//! Experiment harness for the SLICC reproduction.
//!
//! Each public function in [`experiments`] regenerates one table or
//! figure of the paper's evaluation (§5) and returns it as a markdown
//! section. The `figures` binary drives them from the command line:
//!
//! ```text
//! cargo run --release -p slicc-bench --bin figures -- all
//! cargo run --release -p slicc-bench --bin figures -- fig10 fig11 --scale small
//! ```
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for the
//! recorded paper-vs-measured comparison.

pub mod experiments;
pub mod format;

pub use experiments::{Experiment, ExperimentScale};
pub use format::Table;
