//! Core timing model for the SLICC simulator.
//!
//! The paper runs Zesto, a cycle-level out-of-order x86 model. This crate
//! substitutes a *cycle-accounting* model that preserves the one property
//! SLICC's evaluation hinges on (§3.3): **instruction misses cost more
//! than data misses**, because an I-miss starves the pipeline while a
//! D-miss is largely hidden by out-of-order execution ("data misses can
//! be partially overlapped with out-of-order execution", §5.5).
//!
//! - [`TimingConfig`]: the model's parameters, with Table-2-flavoured
//!   defaults — see [`timing`];
//! - [`CoreTimer`]: per-core cycle accounting — see [`timing`];
//! - [`MigrationModel`]: the Thread-Motion-style context transfer cost of
//!   §4.4 (architectural state staged through the L2 bank nearest the
//!   target core) — see [`migration`].

pub mod migration;
pub mod timing;
pub mod tlb;

pub use migration::MigrationModel;
pub use timing::{CoreStats, CoreTimer, TimingConfig};
pub use tlb::Tlb;
