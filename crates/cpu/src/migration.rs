//! The hardware thread-migration cost model.
//!
//! §4.4: "the thread migration performed in SLICC transfers architectural
//! register files as in Thread Motion [25]. The thread's context is saved
//! in the L2 cache closest to the target core and is then retrieved at the
//! target core." The model charges:
//!
//! - a pipeline drain at the source;
//! - `context_blocks` cache-line writes from the source core to the L2
//!   bank co-located with the target (source→target hops);
//! - `context_blocks` cache-line reads at the target from that bank
//!   (local bank: 0 hops);
//!
//! all through the L2's access port (its hit latency per line, pipelined
//! at one line per `pipeline_interval`).

use slicc_common::Cycle;

/// Cost parameters for one hardware thread migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationModel {
    /// Cache lines of architectural state (x86-64 integer + SSE register
    /// file and control state ≈ 4 x 64 B).
    pub context_blocks: u32,
    /// Cycles to drain the source pipeline before state can be captured.
    pub drain_cycles: Cycle,
    /// Cycles between successive context-line transfers (pipelined).
    pub pipeline_interval: Cycle,
}

impl slicc_common::StableHash for MigrationModel {
    fn stable_hash(&self, h: &mut slicc_common::StableHasher) {
        self.context_blocks.stable_hash(h);
        self.drain_cycles.stable_hash(h);
        self.pipeline_interval.stable_hash(h);
    }
}

impl MigrationModel {
    /// The default model used across the evaluation.
    pub fn paper_like() -> Self {
        MigrationModel { context_blocks: 4, drain_cycles: 20, pipeline_interval: 2 }
    }

    /// A free-migration model for upper-bound ablations.
    pub fn zero_cost() -> Self {
        MigrationModel { context_blocks: 0, drain_cycles: 0, pipeline_interval: 0 }
    }

    /// Total cycles the *thread* is off the critical path for one
    /// migration, given the one-way NoC latency from source to target and
    /// the L2 bank hit latency.
    ///
    /// Save: drain + (first line: src→bank latency + L2 write) + remaining
    /// lines pipelined. Restore at the target reads from its local bank:
    /// L2 latency + pipelined lines.
    pub fn cost(&self, src_to_target_noc: Cycle, l2_hit_latency: Cycle) -> Cycle {
        if self.context_blocks == 0 {
            return self.drain_cycles;
        }
        let pipelined = (self.context_blocks as Cycle - 1) * self.pipeline_interval;
        let save = src_to_target_noc + l2_hit_latency + pipelined;
        let restore = l2_hit_latency + pipelined;
        self.drain_cycles + save + restore
    }
}

impl Default for MigrationModel {
    fn default() -> Self {
        MigrationModel::paper_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_like_cost_is_tens_of_cycles() {
        let m = MigrationModel::paper_like();
        // 2 hops away, 16-cycle L2: 20 + (2+16+6) + (16+6) = 66.
        assert_eq!(m.cost(2, 16), 66);
    }

    #[test]
    fn cost_grows_with_distance() {
        let m = MigrationModel::paper_like();
        assert!(m.cost(4, 16) > m.cost(1, 16));
        assert_eq!(m.cost(4, 16) - m.cost(1, 16), 3);
    }

    #[test]
    fn zero_cost_model_only_drains() {
        let m = MigrationModel::zero_cost();
        assert_eq!(m.cost(4, 16), 0);
    }

    #[test]
    fn more_context_costs_more() {
        let small = MigrationModel { context_blocks: 2, ..MigrationModel::paper_like() };
        let big = MigrationModel { context_blocks: 16, ..MigrationModel::paper_like() };
        assert!(big.cost(2, 16) > small.cost(2, 16));
    }

    #[test]
    fn migration_is_amortizable() {
        // The premise of §1: migration every ~3.2K instructions must cost
        // far less than the instruction-miss stalls it removes. At 0.4
        // cycles/instruction base, 3.2K instructions = 1280 cycles; one
        // migration is ~5% of that.
        let m = MigrationModel::paper_like();
        assert!(m.cost(4, 16) < 100);
    }
}
