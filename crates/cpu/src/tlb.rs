//! A fully-associative LRU translation lookaside buffer.
//!
//! §5.5 of the paper reports migration's side effect on address
//! translation: "D-TLB misses increase on average by 11% and 8% with
//! SLICC and SLICC-SW... I-TLB misses are within +/- 0.5% of the
//! baseline". Reproducing that statistic needs per-core TLBs whose
//! contents, like the L1s, are left behind on migration.

use slicc_cache::LruList;
use slicc_common::{Addr, FastHashMap};

/// Default page size (4 KiB).
pub const PAGE_BYTES: u64 = 4096;
/// Huge-page size (2 MiB), typical for DBMS code and buffer pools.
pub const HUGE_PAGE_BYTES: u64 = 2 * 1024 * 1024;

/// A fully-associative, LRU-replacement TLB.
///
/// # Example
///
/// ```
/// use slicc_cpu::Tlb;
/// use slicc_common::Addr;
///
/// let mut tlb = Tlb::new(4);
/// assert!(!tlb.access(Addr::new(0x1000)));   // cold miss
/// assert!(tlb.access(Addr::new(0x1fff)));    // same page: hit
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    /// Page number -> arena slot.
    map: FastHashMap<u64, usize>,
    lru: LruList,
    /// Arena slot -> page number.
    slot_page: Vec<u64>,
    free: Vec<usize>,
    page_bytes: u64,
    /// `log2(page_bytes)` when the page size is a power of two, so the
    /// per-access translation is a shift instead of a 64-bit divide.
    page_shift: Option<u32>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with `entries` slots of 4 KiB pages.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        Tlb::with_page_bytes(entries, PAGE_BYTES)
    }

    /// Creates an empty TLB with an explicit page size (e.g.
    /// [`HUGE_PAGE_BYTES`] for code mapped with huge pages).
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `page_bytes` is zero.
    pub fn with_page_bytes(entries: usize, page_bytes: u64) -> Self {
        assert!(entries > 0, "TLB must have at least one entry");
        assert!(page_bytes > 0, "pages must be non-empty");
        let mut map = FastHashMap::default();
        map.reserve(entries);
        Tlb {
            map,
            lru: LruList::new(entries),
            slot_page: vec![0; entries],
            free: (0..entries).rev().collect(),
            page_bytes,
            page_shift: page_bytes.is_power_of_two().then(|| page_bytes.trailing_zeros()),
            hits: 0,
            misses: 0,
        }
    }

    /// The page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Translates `addr`: returns whether the page was resident, filling
    /// it on miss.
    pub fn access(&mut self, addr: Addr) -> bool {
        let page = match self.page_shift {
            Some(shift) => addr.raw() >> shift,
            None => addr.raw() / self.page_bytes,
        };
        if let Some(&slot) = self.map.get(&page) {
            self.lru.touch(slot);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let victim = self.lru.pop_lru().expect("full TLB is non-empty");
                self.map.remove(&self.slot_page[victim]);
                victim
            }
        };
        self.slot_page[slot] = page;
        self.map.insert(page, slot);
        self.lru.push_mru(slot);
        false
    }

    /// Translation hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Translation misses (page walks) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resident page count.
    pub fn occupancy(&self) -> usize {
        self.map.len()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.slot_page.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::HUGE_PAGE_BYTES;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(8);
        assert!(!t.access(Addr::new(0)));
        assert!(t.access(Addr::new(100)));
        assert!(t.access(Addr::new(4095)));
        assert!(!t.access(Addr::new(4096)));
        assert_eq!(t.hits(), 2);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(2);
        t.access(Addr::new(0)); // page 0
        t.access(Addr::new(PAGE_BYTES)); // page 1
        t.access(Addr::new(0)); // touch page 0
        t.access(Addr::new(2 * PAGE_BYTES)); // evicts page 1
        assert!(t.access(Addr::new(0)), "page 0 must survive");
        assert!(!t.access(Addr::new(PAGE_BYTES)), "page 1 was evicted");
    }

    #[test]
    fn occupancy_bounded() {
        let mut t = Tlb::new(4);
        for p in 0..100u64 {
            t.access(Addr::new(p * PAGE_BYTES));
            assert!(t.occupancy() <= 4);
        }
        assert_eq!(t.capacity(), 4);
        assert_eq!(t.misses(), 100);
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut t = Tlb::new(8);
        for _ in 0..10 {
            for p in 0..8u64 {
                t.access(Addr::new(p * PAGE_BYTES));
            }
        }
        assert_eq!(t.misses(), 8, "only cold misses");
        assert_eq!(t.hits(), 72);
    }

    #[test]
    fn huge_pages_cover_more_addresses() {
        let mut t = Tlb::with_page_bytes(2, crate::tlb::HUGE_PAGE_BYTES);
        assert!(!t.access(Addr::new(0)));
        assert!(t.access(Addr::new(HUGE_PAGE_BYTES - 1)));
        assert!(!t.access(Addr::new(HUGE_PAGE_BYTES)));
        assert_eq!(t.page_bytes(), HUGE_PAGE_BYTES);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = Tlb::new(0);
    }
}
