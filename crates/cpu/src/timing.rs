//! Per-core cycle accounting.
//!
//! The model charges, per retired instruction, a base cost (the
//! no-miss IPC of Table 2's 6-wide OoO core on OLTP code), and adds:
//!
//! - the **full** round-trip latency plus a pipeline-refill penalty for
//!   every L1-I miss (fetch starvation defeats out-of-order execution);
//! - a **fraction** of the round-trip latency for L1-D load misses (the
//!   ROB hides most of it while independent work retires), provided an
//!   MSHR is free — when all MSHRs are busy the latency is fully exposed;
//! - a small fraction for store misses (the store buffer retires them off
//!   the critical path).
//!
//! Cycle arithmetic uses millicycle fixed point so fractional base CPIs
//! accumulate exactly and deterministically.

use slicc_cache::{mshr::MshrOutcome, MshrFile};
use slicc_common::{BlockAddr, Cycle};

/// Timing-model parameters.
///
/// Fractions are in parts-per-thousand so the whole model is integer and
/// bit-deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingConfig {
    /// Base instructions per cycle × 1000 (no-miss throughput).
    pub base_ipc_x1000: u64,
    /// Extra front-end refill cycles charged per instruction-cache miss,
    /// on top of the memory round trip.
    pub ifetch_refill_penalty: Cycle,
    /// Parts-per-thousand of a load miss hidden by out-of-order overlap
    /// when an MSHR is available.
    pub load_hide_x1000: u64,
    /// Parts-per-thousand of a store miss that remains visible (store
    /// buffer absorbs the rest).
    pub store_visible_x1000: u64,
    /// L1 data MSHRs bounding memory-level parallelism (Table 2: 32).
    pub num_mshrs: usize,
    /// Parts-per-thousand of one cycle charged *per L1-I access* (one per
    /// fetched block) for each cycle of hit latency beyond the baseline
    /// (branch redirects and fetch restarts expose deeper front-ends). This is what makes a
    /// 512 KiB L1-I slower than a 32 KiB one despite missing less —
    /// Figure 1's capacity/latency trade-off, and why the paper models
    /// PIF as a big cache *at the small cache's latency*.
    pub fetch_latency_sensitivity_x1000: u64,
    /// The pipeline's design-point L1-I hit latency (Table 2: 3-cycle
    /// load-to-use); only latency beyond this is charged.
    pub baseline_l1i_latency: Cycle,
}

impl TimingConfig {
    /// Defaults calibrated so the baseline reproduces the paper's stall
    /// composition: memory stalls ≈ 75–80% of cycles, instruction stalls
    /// ≈ 70–85% of stall cycles (§1, §5.2 citing [28]).
    pub fn paper_like() -> Self {
        TimingConfig {
            base_ipc_x1000: 2500,
            ifetch_refill_penalty: 10,
            load_hide_x1000: 750,
            store_visible_x1000: 50,
            num_mshrs: 32,
            fetch_latency_sensitivity_x1000: 1500,
            baseline_l1i_latency: 3,
        }
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig::paper_like()
    }
}

impl slicc_common::StableHash for TimingConfig {
    fn stable_hash(&self, h: &mut slicc_common::StableHasher) {
        self.base_ipc_x1000.stable_hash(h);
        self.ifetch_refill_penalty.stable_hash(h);
        self.load_hide_x1000.stable_hash(h);
        self.store_visible_x1000.stable_hash(h);
        self.num_mshrs.stable_hash(h);
        self.fetch_latency_sensitivity_x1000.stable_hash(h);
        self.baseline_l1i_latency.stable_hash(h);
    }
}

/// Cycle/stall composition counters for one core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles spent on base execution (millicycle-exact).
    pub base_cycles: Cycle,
    /// Cycles stalled on instruction misses.
    pub ifetch_stall_cycles: Cycle,
    /// Cycles lost to above-baseline L1-I hit latency (front-end depth).
    pub fetch_latency_cycles: Cycle,
    /// Cycles spent on TLB page walks.
    pub tlb_walk_cycles: Cycle,
    /// Cycles stalled on data misses (visible portion).
    pub data_stall_cycles: Cycle,
    /// Cycles spent transferring thread contexts (migrations).
    pub migration_cycles: Cycle,
    /// Cycles the core sat with no runnable thread.
    pub idle_cycles: Cycle,
}

// The 16 per-core blocks fold into RunMetrics via the workspace-wide
// `Merge` trait.
slicc_common::impl_merge_counters!(CoreStats {
    instructions,
    base_cycles,
    ifetch_stall_cycles,
    fetch_latency_cycles,
    tlb_walk_cycles,
    data_stall_cycles,
    migration_cycles,
    idle_cycles,
});

impl CoreStats {
    /// Total accounted cycles.
    pub fn total_cycles(&self) -> Cycle {
        self.base_cycles
            + self.ifetch_stall_cycles
            + self.fetch_latency_cycles
            + self.tlb_walk_cycles
            + self.data_stall_cycles
            + self.migration_cycles
            + self.idle_cycles
    }

    /// Fraction of non-idle cycles that are memory stalls.
    pub fn memory_stall_fraction(&self) -> f64 {
        let busy = self.total_cycles() - self.idle_cycles;
        if busy == 0 {
            return 0.0;
        }
        (self.ifetch_stall_cycles + self.data_stall_cycles) as f64 / busy as f64
    }

    /// Fraction of memory-stall cycles due to instruction misses.
    pub fn ifetch_stall_share(&self) -> f64 {
        let stalls = self.ifetch_stall_cycles + self.data_stall_cycles;
        if stalls == 0 {
            return 0.0;
        }
        self.ifetch_stall_cycles as f64 / stalls as f64
    }
}

/// The cycle-accounting engine for one core.
///
/// # Example
///
/// ```
/// use slicc_cpu::{CoreTimer, TimingConfig};
///
/// let mut timer = CoreTimer::new(TimingConfig::paper_like());
/// timer.retire_instruction();
/// timer.ifetch_miss(20);
/// assert!(timer.now() >= 20);
/// assert_eq!(timer.stats().instructions, 1);
/// ```
#[derive(Clone, Debug)]
pub struct CoreTimer {
    config: TimingConfig,
    /// Current local time in millicycles.
    now_millis: u64,
    /// Cumulative base-execution millicycles (for exact stats).
    base_millis: u64,
    /// Cumulative front-end latency millicycles (for exact stats).
    fetch_latency_millis: u64,
    mshrs: MshrFile,
    stats: CoreStats,
}

impl CoreTimer {
    /// Creates a timer at local time zero.
    pub fn new(config: TimingConfig) -> Self {
        CoreTimer {
            config,
            now_millis: 0,
            base_millis: 0,
            fetch_latency_millis: 0,
            mshrs: MshrFile::new(config.num_mshrs),
            stats: CoreStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TimingConfig {
        &self.config
    }

    /// Current local time in whole cycles.
    pub fn now(&self) -> Cycle {
        self.now_millis / 1000
    }

    /// Accumulated composition counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Charges the base cost of one retired instruction.
    pub fn retire_instruction(&mut self) {
        let cost_millis = 1_000_000 / self.config.base_ipc_x1000;
        self.now_millis += cost_millis;
        self.base_millis += cost_millis;
        self.stats.instructions += 1;
        self.stats.base_cycles = self.base_millis / 1000;
    }

    /// Charges the front-end cost of an L1-I *hit* at `hit_latency`.
    /// Latency at or below the design point is free (the pipeline hides
    /// it); each extra cycle costs `fetch_latency_sensitivity` per
    /// instruction.
    pub fn ifetch_hit(&mut self, hit_latency: Cycle) {
        let extra = hit_latency.saturating_sub(self.config.baseline_l1i_latency);
        if extra == 0 {
            return;
        }
        let millis = extra * self.config.fetch_latency_sensitivity_x1000;
        self.now_millis += millis;
        self.fetch_latency_millis += millis;
        self.stats.fetch_latency_cycles = self.fetch_latency_millis / 1000;
    }

    /// Charges a full fetch stall for an instruction miss with the given
    /// memory round-trip latency.
    pub fn ifetch_miss(&mut self, round_trip: Cycle) {
        let stall = round_trip + self.config.ifetch_refill_penalty;
        self.now_millis += stall * 1000;
        self.stats.ifetch_stall_cycles += stall;
    }

    /// Charges the visible portion of a data miss. `block` and the
    /// completion time feed the MSHR occupancy model.
    pub fn data_miss(&mut self, block: BlockAddr, round_trip: Cycle, is_store: bool) {
        let now = self.now();
        self.mshrs.retire_before(now);
        let visible = if is_store {
            round_trip * self.config.store_visible_x1000 / 1000
        } else {
            match self.mshrs.register(block, now + round_trip) {
                MshrOutcome::Allocated | MshrOutcome::Merged(_) => {
                    round_trip * (1000 - self.config.load_hide_x1000) / 1000
                }
                MshrOutcome::Full(earliest) => {
                    // No MSHR: expose the wait until one frees, plus the
                    // unhidden part.
                    let wait = earliest.saturating_sub(now);
                    wait + round_trip * (1000 - self.config.load_hide_x1000) / 1000
                }
            }
        };
        self.now_millis += visible * 1000;
        self.stats.data_stall_cycles += visible;
    }

    /// Charges a TLB page walk. Instruction-side walks stall the front
    /// end fully; data-side walks overlap like loads do.
    pub fn tlb_walk(&mut self, cycles: Cycle, instruction_side: bool) {
        let visible = if instruction_side {
            cycles
        } else {
            cycles * (1000 - self.config.load_hide_x1000) / 1000
        };
        self.now_millis += visible * 1000;
        self.stats.tlb_walk_cycles += visible;
    }

    /// Charges thread-migration overhead (context save/restore, drain).
    pub fn migration(&mut self, cycles: Cycle) {
        self.now_millis += cycles * 1000;
        self.stats.migration_cycles += cycles;
    }

    /// Advances local time to `target` (at least), booking the gap as
    /// idle. No-op if `target` is in the past.
    pub fn idle_until(&mut self, target: Cycle) {
        let target_millis = target * 1000;
        if target_millis > self.now_millis {
            self.stats.idle_cycles += (target_millis - self.now_millis) / 1000;
            self.now_millis = target_millis;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer() -> CoreTimer {
        CoreTimer::new(TimingConfig::paper_like())
    }

    #[test]
    fn base_cost_accumulates_fractionally() {
        let mut t = timer();
        // base IPC 2.5 -> 0.4 cycles per instruction.
        for _ in 0..10 {
            t.retire_instruction();
        }
        assert_eq!(t.now(), 4);
        assert_eq!(t.stats().instructions, 10);
    }

    #[test]
    fn ifetch_miss_stalls_fully_plus_refill() {
        let mut t = timer();
        t.ifetch_miss(20);
        assert_eq!(t.now(), 30); // 20 + 10 refill
        assert_eq!(t.stats().ifetch_stall_cycles, 30);
    }

    #[test]
    fn load_miss_is_mostly_hidden() {
        let mut t = timer();
        t.data_miss(BlockAddr::new(1), 100, false);
        // 25% visible.
        assert_eq!(t.now(), 25);
        assert_eq!(t.stats().data_stall_cycles, 25);
    }

    #[test]
    fn store_miss_is_nearly_free() {
        let mut t = timer();
        t.data_miss(BlockAddr::new(1), 100, true);
        assert_eq!(t.now(), 5);
    }

    #[test]
    fn instruction_misses_cost_more_than_data_misses() {
        // The §3.3 asymmetry that motivates SLICC.
        let mut ti = timer();
        let mut td = timer();
        ti.ifetch_miss(100);
        td.data_miss(BlockAddr::new(1), 100, false);
        assert!(ti.now() > 3 * td.now());
    }

    #[test]
    fn mshr_exhaustion_exposes_full_latency() {
        let cfg = TimingConfig { num_mshrs: 2, load_hide_x1000: 1000, ..TimingConfig::paper_like() };
        let mut t = CoreTimer::new(cfg);
        // Two loads fill both MSHRs; 100% hidden -> time stays 0.
        t.data_miss(BlockAddr::new(1), 100, false);
        t.data_miss(BlockAddr::new(2), 100, false);
        assert_eq!(t.now(), 0);
        // Third load must wait for an MSHR (earliest completes at 100).
        t.data_miss(BlockAddr::new(3), 100, false);
        assert_eq!(t.now(), 100);
    }

    #[test]
    fn merged_misses_do_not_double_allocate() {
        let cfg = TimingConfig { num_mshrs: 1, load_hide_x1000: 1000, ..TimingConfig::paper_like() };
        let mut t = CoreTimer::new(cfg);
        t.data_miss(BlockAddr::new(1), 100, false);
        // Same block: merges instead of stalling for a free MSHR.
        t.data_miss(BlockAddr::new(1), 100, false);
        assert_eq!(t.now(), 0);
    }

    #[test]
    fn migration_and_idle_accounting() {
        let mut t = timer();
        t.migration(80);
        assert_eq!(t.stats().migration_cycles, 80);
        t.idle_until(200);
        assert_eq!(t.stats().idle_cycles, 120);
        assert_eq!(t.now(), 200);
        // Idle into the past is a no-op.
        t.idle_until(100);
        assert_eq!(t.now(), 200);
    }

    #[test]
    fn stall_composition_metrics() {
        let mut t = timer();
        for _ in 0..1000 {
            t.retire_instruction();
        }
        t.ifetch_miss(90); // 100 with refill
        t.data_miss(BlockAddr::new(1), 100, false); // 25 visible
        let s = t.stats();
        assert!((s.ifetch_stall_share() - 0.8).abs() < 0.01, "{}", s.ifetch_stall_share());
        assert!(s.memory_stall_fraction() > 0.2);
        assert_eq!(s.total_cycles(), s.base_cycles + 100 + 25);
    }

    #[test]
    fn tlb_walks_are_charged_by_side() {
        let mut t = timer();
        t.tlb_walk(40, true);
        assert_eq!(t.now(), 40);
        t.tlb_walk(40, false); // 25% visible
        assert_eq!(t.now(), 50);
        assert_eq!(t.stats().tlb_walk_cycles, 50);
    }

    #[test]
    fn ifetch_hit_charges_only_above_design_point() {
        let mut t = timer();
        t.ifetch_hit(3); // at the design point: free
        assert_eq!(t.now(), 0);
        t.ifetch_hit(2); // below: free
        assert_eq!(t.now(), 0);
        // +2 cycles of latency at 1.5 cycles/access sensitivity.
        t.ifetch_hit(5);
        t.ifetch_hit(5);
        assert_eq!(t.now(), 6);
        assert_eq!(t.stats().fetch_latency_cycles, 6);
    }

    #[test]
    fn zero_stats_metrics_are_zero() {
        let s = CoreStats::default();
        assert_eq!(s.memory_stall_fraction(), 0.0);
        assert_eq!(s.ifetch_stall_share(), 0.0);
    }
}
