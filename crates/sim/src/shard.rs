//! Intra-point parallelism: private segments, speculation slots, lanes.
//!
//! The sharded engine (DESIGN §13) splits every core step into a
//! **private segment** — a run of records that provably touch only the
//! core's own site (L1-I hits in already-cached blocks, L1-D hits with
//! the right dirtiness) — followed by at most one **blocking record**
//! that needs shared state (the L2 NUCA, the directory, the NoC, other
//! cores' blooms). Private segments are pure functions of the site +
//! stream state they start from, so the committer can *speculatively*
//! dispatch the next segment of a core to a shard lane while it commits
//! other cores, then collect the result when that core is popped —
//! metrics stay byte-identical to running every segment inline, because
//! nothing can touch a core's site or its running thread's stream
//! between that core's steps (all thread movement happens inside the
//! core's own step; cross-core effects queue in mailboxes drained at
//! step barriers).
//!
//! This module holds the pieces both sides share:
//!
//! - [`ThreadStream`]: one thread's decode ring with `peek`/`advance`
//!   split so classification can look at a record without consuming it;
//! - [`run_segment`]: the private-segment executor (used inline by the
//!   committer at `point_threads = 1`, by shard lanes otherwise);
//! - [`SpecSlot`]/[`LaneSet`]: the per-core speculation slot state
//!   machine (`Empty → Queued → Running → Done`) and the lane worker
//!   queues that drive it. The committer can steal a `Queued` task and
//!   run it inline, so a saturated worker pool degrades to sequential
//!   execution instead of deadlocking.

use crate::system::{CoreSite, SegmentParams};
use slicc_common::{lock_unpoisoned, CoreId, ThreadId};
use slicc_obs::{CoreSink, EventKind};
use slicc_trace::{Record, ThreadTrace, WorkloadSpec};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// Records processed per engine step before re-entering the heap.
pub(crate) const BATCH: usize = 100;

/// Records decoded per refill of a thread's reusable ring. Larger than
/// [`BATCH`] so one refill feeds several heap steps; any value is
/// semantics-preserving (the ring replays the generator's exact stream).
pub(crate) const DECODE_BATCH: usize = 256;

/// One thread's record stream: a lazy trace generator batch-drained into
/// a reusable decode ring, or the whole pre-decoded stream when decode
/// parallelism materialized it up front. Checked out alongside its
/// core's site when a segment is speculated.
pub(crate) struct ThreadStream<'a> {
    /// The lazy generator; `None` when the stream was fully pre-decoded.
    trace: Option<ThreadTrace<'a>>,
    pending: Vec<Record>,
    pos: usize,
    /// Records actually executed (diagnostics; equals the old
    /// `ThreadTrace::emitted` exactly, which batching would overcount).
    executed: u64,
}

impl<'a> ThreadStream<'a> {
    pub(crate) fn lazy(trace: ThreadTrace<'a>) -> Self {
        ThreadStream { trace: Some(trace), pending: Vec::new(), pos: 0, executed: 0 }
    }

    pub(crate) fn decoded(records: Vec<Record>) -> Self {
        ThreadStream { trace: None, pending: records, pos: 0, executed: 0 }
    }

    /// The next record without consuming it, refilling the ring in
    /// [`DECODE_BATCH`]es. Returns `None` exactly when the generator is
    /// exhausted: the ring changes decode locality, never content.
    #[inline]
    pub(crate) fn peek(&mut self) -> Option<Record> {
        if let Some(&rec) = self.pending.get(self.pos) {
            return Some(rec);
        }
        let trace = self.trace.as_mut()?;
        self.pending.clear();
        self.pos = 0;
        if trace.fill(&mut self.pending, DECODE_BATCH) == 0 {
            return None;
        }
        Some(self.pending[0])
    }

    /// Consumes the record last returned by [`ThreadStream::peek`].
    #[inline]
    pub(crate) fn advance(&mut self) {
        self.pos += 1;
        self.executed += 1;
    }

    /// Peek + advance, for callers that never split the two.
    #[inline]
    pub(crate) fn next(&mut self) -> Option<Record> {
        let rec = self.peek()?;
        self.advance();
        Some(rec)
    }

    /// Records executed so far (diagnostics).
    pub(crate) fn executed(&self) -> u64 {
        self.executed
    }
}

/// Why a private segment stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StopReason {
    /// The next record needs shared state; it was peeked, not consumed.
    /// The committer re-peeks and executes it through the full
    /// `System::ifetch`/`data_access` path, which ends the step.
    Blocking,
    /// The stream is exhausted: the thread completes.
    Exhausted,
    /// [`BATCH`] private records ran; the step ends to keep the heap
    /// cadence bounded, no blocking record pending.
    BatchCap,
}

/// What one private segment did.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SegmentReport {
    /// Private records executed (each one L1 hit, timer-charged locally).
    pub(crate) records: u32,
    pub(crate) stop: StopReason,
}

/// Executes one private segment: up to [`BATCH`] records that are all
/// classifiable as private against the current site state. A record is
/// private iff its fetch either stays in the current block or hits an
/// already-cached block with no fetch side-channel configured
/// (prefetcher / PIF / bloom-accuracy probe), and its data access (if
/// any) hits the L1-D — dirty, for stores (a store to a clean line
/// needs a directory upgrade). Everything else stops the segment with
/// [`StopReason::Blocking`], leaving the record un-consumed.
///
/// The execution bodies mirror the hit paths of `System::ifetch` /
/// `System::data_access` exactly (see `CoreSite::private_ifetch_hit` /
/// `private_data_hit`), so a segment run here is byte-equivalent to the
/// same records run inline by the sequential engine.
pub(crate) fn run_segment(
    site: &mut CoreSite,
    stream: &mut ThreadStream<'_>,
    sink: &mut CoreSink,
    core: CoreId,
    thread: ThreadId,
    spec: &WorkloadSpec,
    params: &SegmentParams,
) -> SegmentReport {
    let mut records: u32 = 0;
    while (records as usize) < BATCH {
        let Some(rec) = stream.peek() else {
            return SegmentReport { records, stop: StopReason::Exhausted };
        };
        let block = rec.pc.block_default();
        let transition = site.last_iblock != Some(block);
        if transition && (params.fetch_transition_blocks || !site.l1i.contains(block)) {
            return SegmentReport { records, stop: StopReason::Blocking };
        }
        let data = rec.data.map(|d| (d.addr.block_default(), d.is_store));
        if let Some((dblock, is_store)) = data {
            if !site.l1d.contains(dblock) || (is_store && !site.l1d.contains_dirty(dblock)) {
                return SegmentReport { records, stop: StopReason::Blocking };
            }
        }

        // Private: consume and execute against the site alone, in the
        // exact order of the sequential per-record body.
        stream.advance();
        site.timer.retire_instruction();
        if transition {
            site.last_iblock = Some(block);
            let fetch_start = if sink.is_enabled() { site.timer.now() } else { 0 };
            site.private_ifetch_hit(block, params);
            if params.uses_agents {
                site.agent.on_fetch(true, None);
            }
            if sink.is_enabled() {
                let segment = spec.pool.segment_of_block(block);
                if segment != site.last_segment {
                    site.last_segment = segment;
                    if let Some(segment) = segment {
                        sink.record(
                            core,
                            fetch_start,
                            EventKind::SegmentBoundary { thread: thread.raw(), segment },
                        );
                    }
                }
            }
        }
        if let Some((dblock, is_store)) = data {
            site.private_data_hit(dblock, is_store, params);
        }
        records += 1;
    }
    SegmentReport { records, stop: StopReason::BatchCap }
}

/// Everything a speculated segment needs, checked out of the engine:
/// the core's site, the running thread's stream, and the core's event
/// ring. Ownership transfers through the slot mutex, so lanes never
/// alias engine state.
/// How a collected speculation arrived at the committer: finished ahead
/// of time (the only outcome that buys wall-clock), finished only after
/// the committer blocked on it, or stolen back and run inline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CollectKind {
    Overlapped,
    Waited,
    Stolen,
}

pub(crate) struct SpecTask<'a> {
    pub(crate) core: CoreId,
    pub(crate) thread: ThreadId,
    pub(crate) site: Box<CoreSite>,
    pub(crate) stream: ThreadStream<'a>,
    pub(crate) sink: CoreSink,
}

enum SlotState<'a> {
    /// Nothing speculated for this core.
    Empty,
    /// Dispatched, not yet picked up by a lane; the committer may steal
    /// it and run it inline.
    Queued(SpecTask<'a>),
    /// A lane is executing the segment; the committer waits on `done`.
    Running,
    /// Segment finished; the task (with mutated site/stream) waits for
    /// collection.
    Done(SpecTask<'a>, SegmentReport),
}

struct SpecSlot<'a> {
    state: Mutex<SlotState<'a>>,
    done: Condvar,
}

struct LaneQueue {
    queue: Mutex<VecDeque<usize>>,
    work: Condvar,
}

/// The shard lanes of one parallel point: a per-core speculation slot
/// plus `lanes` worker queues. The partition maps each core to one lane
/// so a core's segments always run on the same worker (site state
/// stays cache-warm on that worker's CPU), but correctness never
/// depends on the mapping — any partition yields identical digests.
pub(crate) struct LaneSet<'a> {
    slots: Vec<SpecSlot<'a>>,
    lanes: Vec<LaneQueue>,
    shutdown: AtomicBool,
}

fn run_task(task: &mut SpecTask<'_>, spec: &WorkloadSpec, params: &SegmentParams) -> SegmentReport {
    run_segment(
        &mut task.site,
        &mut task.stream,
        &mut task.sink,
        task.core,
        task.thread,
        spec,
        params,
    )
}

impl<'a> LaneSet<'a> {
    pub(crate) fn new(cores: usize, lanes: usize) -> Self {
        LaneSet {
            slots: (0..cores)
                .map(|_| SpecSlot { state: Mutex::new(SlotState::Empty), done: Condvar::new() })
                .collect(),
            lanes: (0..lanes.max(1))
                .map(|_| LaneQueue { queue: Mutex::new(VecDeque::new()), work: Condvar::new() })
                .collect(),
            shutdown: AtomicBool::new(false),
        }
    }

    pub(crate) fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Queues a speculated segment for `core` on `lane`.
    pub(crate) fn dispatch(&self, core_idx: usize, lane: usize, task: SpecTask<'a>) {
        {
            let mut state = lock_unpoisoned(&self.slots[core_idx].state);
            debug_assert!(matches!(*state, SlotState::Empty), "dispatch over a live slot");
            *state = SlotState::Queued(task);
        }
        let lane = &self.lanes[lane];
        lock_unpoisoned(&lane.queue).push_back(core_idx);
        lane.work.notify_one();
    }

    /// Collects the speculated segment for `core`: takes the finished
    /// result, waits for a running one, or steals a still-queued one and
    /// runs it inline on the calling (committer) thread — the
    /// degradation path that keeps a starved worker pool deadlock-free.
    /// The third return reports how the result arrived — genuinely
    /// overlapped, waited-for, or stolen — feeding the priming throttle.
    pub(crate) fn collect(
        &self,
        core_idx: usize,
        spec: &WorkloadSpec,
        params: &SegmentParams,
    ) -> (SpecTask<'a>, SegmentReport, CollectKind) {
        let slot = &self.slots[core_idx];
        let mut state = lock_unpoisoned(&slot.state);
        let mut waited = false;
        loop {
            match std::mem::replace(&mut *state, SlotState::Empty) {
                SlotState::Queued(mut task) => {
                    drop(state);
                    let report = run_task(&mut task, spec, params);
                    return (task, report, CollectKind::Stolen);
                }
                SlotState::Done(task, report) => {
                    let kind =
                        if waited { CollectKind::Waited } else { CollectKind::Overlapped };
                    return (task, report, kind);
                }
                SlotState::Running => {
                    waited = true;
                    *state = SlotState::Running;
                    state = slot
                        .done
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                SlotState::Empty => unreachable!("collect on a core that was never primed"),
            }
        }
    }

    /// Lane worker body: pop a core index, claim its queued task, run
    /// the segment locklessly, publish the result. Queue entries are
    /// hints, not ownership — a stale entry (the committer stole the
    /// task) is skipped by the state machine.
    pub(crate) fn drive(&self, lane: usize, spec: &WorkloadSpec, params: &SegmentParams) {
        loop {
            let core_idx = {
                let q = &self.lanes[lane];
                let mut queue = lock_unpoisoned(&q.queue);
                loop {
                    if let Some(c) = queue.pop_front() {
                        break c;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    queue =
                        q.work.wait(queue).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let slot = &self.slots[core_idx];
            let mut task = {
                let mut state = lock_unpoisoned(&slot.state);
                match std::mem::replace(&mut *state, SlotState::Running) {
                    SlotState::Queued(task) => task,
                    other => {
                        // Stale hint: the committer already stole it (or
                        // this entry outlived a whole dispatch cycle).
                        *state = other;
                        continue;
                    }
                }
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_task(&mut task, spec, params)
            }));
            let report = match &outcome {
                Ok(report) => *report,
                // Keep the slot state machine coherent even if the
                // segment panicked (an engine bug): publish the task so
                // the committer never deadlocks, then re-raise; the pool
                // scope re-raises it again after the run, discarding the
                // poisoned result.
                Err(_) => SegmentReport { records: 0, stop: StopReason::Blocking },
            };
            {
                let mut state = lock_unpoisoned(&slot.state);
                *state = SlotState::Done(task, report);
            }
            slot.done.notify_all();
            if let Err(payload) = outcome {
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Tells every lane worker to exit once its queue is empty.
    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for lane in &self.lanes {
            let _guard = lock_unpoisoned(&lane.queue);
            lane.work.notify_all();
        }
    }

    /// Drains every outstanding speculation for an error-path snapshot:
    /// queued tasks come back untouched (`None` report), running ones
    /// are waited out, finished ones are taken as-is. The caller checks
    /// everything back in before reading engine state.
    pub(crate) fn settle(&self) -> Vec<(SpecTask<'a>, Option<SegmentReport>)> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let mut state = lock_unpoisoned(&slot.state);
            loop {
                match std::mem::replace(&mut *state, SlotState::Empty) {
                    SlotState::Empty => break,
                    SlotState::Queued(task) => {
                        out.push((task, None));
                        break;
                    }
                    SlotState::Done(task, report) => {
                        out.push((task, Some(report)));
                        break;
                    }
                    SlotState::Running => {
                        *state = SlotState::Running;
                        state = slot
                            .done
                            .wait(state)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            }
        }
        out
    }
}

/// Shuts the lanes down when dropped, so a committer panic can never
/// leave lane workers parked forever (the pool scope joins them).
pub(crate) struct ShutdownGuard<'x, 'a>(pub(crate) &'x LaneSet<'a>);

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}
