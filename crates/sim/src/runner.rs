//! Parallel experiment runner: typed run descriptors, a std::thread job
//! pool, a bounded byte-weighted run cache, and per-point fault
//! isolation.
//!
//! Every simulation point is an independent, deterministic, single-threaded
//! job, so a figure's point set can fan out across host cores. This module
//! provides the pieces:
//!
//! - [`RunRequest`] — the typed experiment-point descriptor (workload,
//!   scale, config; the mode lives in the config). It is simultaneously
//!   the runner's job type, the run-cache key (via
//!   [`RunRequest::stable_key`]), and the CLI/figures entry point.
//! - [`RunResult`] — the metrics plus wall-time and
//!   simulated-instructions-per-second observability counters.
//! - [`Runner`] — a job pool of `jobs` worker threads fed through an mpsc
//!   work queue. Results always come back in submission order, and
//!   completed points are memoized, so a Baseline point shared by several
//!   figures simulates once per process. The memo is a
//!   [`crate::service::BoundedResultCache`]: byte-weighted, LRU-evicting,
//!   and capped ([`Runner::set_cache_bytes`]) so a long-lived process
//!   cannot grow without limit. Admission control
//!   ([`Runner::set_queue_limit`]) and the [`crate::service::SimService`]
//!   submission layer build on the same runner.
//!
//! Failures are contained per point: each worker runs its simulation
//! under `catch_unwind`, so a panicking or livelocking point becomes a
//! typed [`RunError`] in that point's slot of the batch while every other
//! point completes normally. Attaching a checkpoint file
//! ([`Runner::attach_checkpoint`]) persists each completed point as it
//! finishes, so an interrupted or partially-failed sweep resumes with
//! only the missing points re-simulated.
//!
//! The pool is plain `std::thread::scope` + `std::sync::mpsc` — the
//! workspace builds with no external dependencies (DESIGN.md §5), and a
//! work queue of whole simulations needs nothing fancier.
//!
//! # Example
//!
//! ```no_run
//! use slicc_sim::{RunRequest, Runner, SchedulerMode, SimConfig};
//! use slicc_trace::{TraceScale, Workload};
//!
//! let runner = Runner::with_default_parallelism();
//! let reqs: Vec<RunRequest> = [SchedulerMode::Baseline, SchedulerMode::Slicc]
//!     .iter()
//!     .map(|&m| {
//!         RunRequest::new(Workload::TpcC1, TraceScale::small(), SimConfig::paper_baseline())
//!             .with_mode(m)
//!     })
//!     .collect();
//! let results = runner.run_all(&reqs);
//! let base = results[0].as_ref().expect("baseline point completed");
//! let slicc = results[1].as_ref().expect("SLICC point completed");
//! let speedup = base.metrics.cycles as f64 / slicc.metrics.cycles as f64;
//! println!("SLICC speedup: {speedup:.2}x over {:.0} sim-insn/s", slicc.sim_ips);
//! ```

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointLoad};
use crate::config::{DeadlineConfig, InjectedFault, SchedulerMode, SimConfig};
use crate::engine::RunControl;
use crate::error::{PointSummary, RunError, SimError};
use crate::metrics::RunMetrics;
use crate::service::{BoundedResultCache, PressureSnapshot, DEFAULT_CACHE_BYTES};
use crate::session::{RunOutcome, RunSession};
use slicc_common::{lock_unpoisoned, ArtifactIo, CancelToken, StableHash, StableHasher};
use slicc_obs::{ObsConfig, Observation, ProgressEvent, Reporter, WarningsOnlyReporter};
use slicc_trace::{TraceScale, Workload, WorkloadSpec};
use std::collections::HashMap;
use std::collections::hash_map::Entry;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// A typed experiment point: which workload to run, at what scale, on what
/// machine. Equal requests describe byte-identical simulations, which is
/// what makes the request usable as the run-cache key.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRequest {
    /// The benchmark workload.
    pub workload: Workload,
    /// Trace scale (task count, segment size, trace seed).
    pub scale: TraceScale,
    /// Task-count override applied on top of `scale`, if any.
    pub tasks: Option<u32>,
    /// Trace-seed override applied on top of `scale`, if any.
    pub seed: Option<u64>,
    /// The machine and execution mode.
    pub config: SimConfig,
    /// What to observe while simulating (events, interval series).
    /// Deliberately excluded from [`RunRequest::stable_key`]: observation
    /// never changes simulated results, so an observed run and its
    /// unobserved twin share a cache slot (the cached copy may then carry
    /// `obs: None` — callers wanting artifacts should run fresh).
    pub obs: ObsConfig,
    /// Wall-clock budget for this point. Also excluded from
    /// [`RunRequest::stable_key`], for the same shape of reason: a
    /// deadline never changes the metrics of a run it does not abort, and
    /// an aborted run is an error, which is never cached or checkpointed
    /// — so a resumed sweep may change its deadline and still reuse every
    /// completed point.
    pub deadline: DeadlineConfig,
}

impl RunRequest {
    /// Describes `workload` at `scale` on the machine `config`.
    pub fn new(workload: Workload, scale: TraceScale, config: SimConfig) -> Self {
        RunRequest {
            workload,
            scale,
            tasks: None,
            seed: None,
            config,
            obs: ObsConfig::disabled(),
            deadline: DeadlineConfig::disabled(),
        }
    }

    /// Returns a copy observing per `obs` (see [`ObsConfig`]).
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Returns a copy bounded by `deadline` (see [`DeadlineConfig`]).
    pub fn with_deadline(mut self, deadline: DeadlineConfig) -> Self {
        self.deadline = deadline;
        self
    }

    /// Returns a copy running under `mode`.
    pub fn with_mode(mut self, mode: SchedulerMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Returns a copy with the task count overridden.
    pub fn with_tasks(mut self, tasks: u32) -> Self {
        self.tasks = Some(tasks);
        self
    }

    /// Returns a copy with the trace seed overridden.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The execution mode (stored in the config).
    pub fn mode(&self) -> SchedulerMode {
        self.config.mode
    }

    /// The trace scale with the `tasks`/`seed` overrides applied.
    pub fn effective_scale(&self) -> TraceScale {
        let mut scale = self.scale;
        if let Some(tasks) = self.tasks {
            scale.tasks = tasks;
        }
        if let Some(seed) = self.seed {
            scale.seed = seed;
        }
        scale
    }

    /// Generates the workload specification this request describes.
    pub fn spec(&self) -> WorkloadSpec {
        self.workload.spec(self.effective_scale())
    }

    /// The spec-memo key: a stable hash of exactly the inputs that shape
    /// the materialized trace — workload and effective scale. Narrower
    /// than [`RunRequest::stable_key`] on purpose: requests differing
    /// only in machine config (e.g. the five scheduler modes of one
    /// figure column) share one [`WorkloadSpec`].
    pub fn spec_key(&self) -> u64 {
        let mut h = StableHasher::new();
        self.workload.stable_hash(&mut h);
        self.effective_scale().stable_hash(&mut h);
        h.finish()
    }

    /// The run-cache key: a stable hash of everything that can influence
    /// the outcome — including the watchdog fuel budget and any injected
    /// fault, so an aborted point never aliases its healthy twin in the
    /// cache or a checkpoint file. Identical on every host and in every
    /// process.
    pub fn stable_key(&self) -> u64 {
        let mut h = StableHasher::new();
        self.workload.stable_hash(&mut h);
        self.effective_scale().stable_hash(&mut h);
        self.config.stable_hash(&mut h);
        h.finish()
    }

    /// Runs this point now, on the calling thread, bypassing any cache.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`]; [`RunRequest::try_execute`] reports
    /// those as typed errors instead.
    pub fn execute(&self) -> RunResult {
        self.try_execute().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs this point now, on the calling thread, bypassing any cache,
    /// reporting simulation failures as typed errors.
    pub fn try_execute(&self) -> Result<RunResult, SimError> {
        self.try_execute_with_spec(&self.spec())
    }

    /// [`RunRequest::try_execute`] against an already-materialized spec,
    /// so callers holding a memoized [`WorkloadSpec`] (the [`Runner`])
    /// skip trace generation. `spec` must equal [`RunRequest::spec`] for
    /// this request or the result describes a different experiment.
    /// Honours the request's own [`DeadlineConfig`]; external
    /// cancellation needs [`RunRequest::try_execute_controlled`].
    pub fn try_execute_with_spec(&self, spec: &WorkloadSpec) -> Result<RunResult, SimError> {
        match self.deadline.budget() {
            // Nothing can interrupt this point, so run the quiescent
            // session: its loop body polls no control state at all.
            None => {
                let started = Instant::now();
                let outcome = RunSession::new(spec, &self.config)?.observe(self.obs).run()?;
                Ok(RunResult::of(outcome, started))
            }
            Some(budget) => {
                let ctrl = RunControl {
                    cancel: CancelToken::new(),
                    deadline: Some(Instant::now() + budget),
                };
                self.try_execute_controlled(spec, &ctrl)
            }
        }
    }

    /// [`RunRequest::try_execute_with_spec`] under explicit external
    /// [`RunControl`] (the [`Runner`]'s cancellation token plus the
    /// resolved deadline). The control's deadline wins over the request's
    /// own: the caller has already resolved which applies.
    pub fn try_execute_controlled(
        &self,
        spec: &WorkloadSpec,
        ctrl: &RunControl,
    ) -> Result<RunResult, SimError> {
        let started = Instant::now();
        let outcome =
            RunSession::new(spec, &self.config)?.observe(self.obs).control(ctrl.clone()).run()?;
        Ok(RunResult::of(outcome, started))
    }
}

/// The outcome of one simulation point.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The simulation's metrics.
    pub metrics: RunMetrics,
    /// Wall-clock time the simulation took (zero-cost when served from the
    /// run cache; this is the original simulation's time).
    pub wall: Duration,
    /// Simulated instructions per wall-clock second — the runner's
    /// throughput observability counter.
    pub sim_ips: f64,
    /// Whether this result was served from the run cache (or deduplicated
    /// within a batch) rather than freshly simulated.
    pub from_cache: bool,
    /// Observation artifacts (event trace, interval series), when the
    /// request asked for any ([`RunRequest::obs`]). `None` for unobserved
    /// runs and for results decoded from a checkpoint file (the format
    /// persists metrics, not traces).
    pub obs: Option<Observation>,
    /// How many attempts this result took (1 = first try; >1 means the
    /// [`RetryPolicy`] re-ran a transient failure). Transient metadata
    /// like [`RunResult::from_cache`]: not persisted by the checkpoint
    /// codec — decoded results report 1.
    pub attempts: u32,
}

impl RunResult {
    /// Wraps a freshly-run session outcome with the runner-level
    /// bookkeeping: wall time since `started`, derived sim-ips, and the
    /// fresh-run defaults for cache/attempt metadata.
    fn of(outcome: RunOutcome, started: Instant) -> RunResult {
        let wall = started.elapsed();
        let sim_ips = if wall.as_secs_f64() > 0.0 {
            outcome.metrics.instructions as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        RunResult {
            metrics: outcome.metrics,
            wall,
            sim_ips,
            from_cache: false,
            obs: outcome.obs,
            attempts: 1,
        }
    }
}

/// How the [`Runner`] re-attempts failed points.
///
/// Failures split into *transient* (worth re-attempting with more
/// resources) and *permanent* (deterministic; retrying reproduces them):
///
/// | [`RunError`]         | class     | retry strategy                      |
/// |----------------------|-----------|-------------------------------------|
/// | `Livelock`           | transient | escalate watchdog fuel by
///                                      [`RetryPolicy::fuel_escalation`]^n,
///                                      capped at `max_fuel_factor`       |
/// | checkpoint I/O error | transient | deterministic bounded backoff
///                                      ([`RetryPolicy::io_backoff_ms`],
///                                      doubling per attempt)             |
/// | `Panicked`           | permanent | —                                   |
/// | `Stalled`            | permanent | —                                   |
/// | `Config`             | permanent | —                                   |
/// | `Lost`               | permanent | —                                   |
/// | `Cancelled`          | permanent | the caller asked it to stop         |
/// | `DeadlineExceeded`   | permanent | the budget is already spent         |
/// | `Overloaded`         | permanent | nothing ran; the *caller* should back
///                                      off per the error's retry-after hint
///                                      and resubmit                        |
///
/// A fuel-escalated retry runs a *modified* config, but its result is
/// cached and checkpointed under the original request's key — safe
/// because the watchdog never alters the metrics of a run it does not
/// abort; it only decides how long to wait before giving up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per point (1 = no retries; clamped to at least 1).
    pub max_attempts: u32,
    /// Watchdog fuel multiplier applied per livelock retry (attempt n
    /// runs with `fuel_escalation^(n-1)` times the budget).
    pub fuel_escalation: u64,
    /// Upper bound on the cumulative fuel multiplier.
    pub max_fuel_factor: u64,
    /// Base backoff before re-attempting a failed checkpoint write, in
    /// milliseconds; doubles per attempt. Deterministic: no jitter.
    pub io_backoff_ms: u64,
}

impl RetryPolicy {
    /// No retries (the runner default): every failure surfaces on the
    /// first attempt, preserving the exact semantics of un-retried runs.
    pub const fn none() -> Self {
        RetryPolicy { max_attempts: 1, fuel_escalation: 1, max_fuel_factor: 1, io_backoff_ms: 0 }
    }

    /// The recommended campaign policy: three attempts, 8× fuel per
    /// livelock retry (64× cap), 25 ms base I/O backoff.
    pub const fn standard() -> Self {
        RetryPolicy { max_attempts: 3, fuel_escalation: 8, max_fuel_factor: 64, io_backoff_ms: 25 }
    }

    /// Whether `error` is worth re-attempting under this policy (see the
    /// classification table on [`RetryPolicy`]).
    pub fn is_transient(&self, error: &RunError) -> bool {
        matches!(error, RunError::Livelock { .. })
    }

    /// The fuel multiplier for attempt `attempt` (1-based; attempt 1 is
    /// the un-escalated run).
    pub fn fuel_factor(&self, attempt: u32) -> u64 {
        self.fuel_escalation
            .max(1)
            .saturating_pow(attempt.saturating_sub(1))
            .clamp(1, self.max_fuel_factor.max(1))
    }

    /// The deterministic backoff before I/O retry `attempt` (1-based).
    pub fn io_backoff(&self, attempt: u32) -> Duration {
        let doubled = self.io_backoff_ms.saturating_mul(1u64 << attempt.saturating_sub(1).min(16));
        Duration::from_millis(doubled)
    }

    /// `req` with its watchdog fuel budget escalated for `attempt`.
    fn escalated(&self, req: &RunRequest, attempt: u32) -> RunRequest {
        let factor = self.fuel_factor(attempt);
        let mut req = req.clone();
        let w = &mut req.config.watchdog;
        if let Some(steps) = w.max_heap_steps {
            w.max_heap_steps = Some(steps.saturating_mul(factor));
        }
        if let Some(cycles) = w.max_cycles {
            w.max_cycles = Some(cycles.saturating_mul(factor));
        }
        req
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Aggregate observability counters for a [`Runner`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunnerStats {
    /// Requests served from a result that was already memoized when the
    /// request arrived (including points seeded from a checkpoint file).
    /// Duplicates that piggy-back on an in-flight simulation are counted
    /// separately as [`RunnerStats::coalesced_hits`].
    pub cache_hits: u64,
    /// Requests served by attaching to a simulation that was already in
    /// flight: intra-batch duplicates, and concurrent
    /// [`crate::service::SimService`] submissions coalesced onto one
    /// flight. Together with [`RunnerStats::cache_hits`] these are the
    /// requests that cost nothing; the split tells memoization apart
    /// from stampede suppression.
    pub coalesced_hits: u64,
    /// Requests that required a fresh simulation attempt (successful or
    /// not).
    pub cache_misses: u64,
    /// Entries evicted from the bounded run cache to stay inside its
    /// byte budget (inserts too heavy to ever fit count once each).
    pub cache_evictions: u64,
    /// Bytes currently resident in the bounded run cache.
    pub cache_bytes: u64,
    /// Submissions rejected by admission control with
    /// [`RunError::Overloaded`] (process total, never reset).
    pub shed_points: u64,
    /// Fresh simulation attempts that failed with a [`RunError`]. Failed
    /// points are never cached, so they are re-attempted by every batch
    /// that names them.
    pub failed_points: u64,
    /// Extra simulation attempts spent by the [`RetryPolicy`] on
    /// transient failures (a point that succeeds on attempt 3 adds 2).
    pub retried_attempts: u64,
    /// Distinct [`WorkloadSpec`]s materialized. With the spec memo, a
    /// five-mode figure column costs one build, not five.
    pub spec_builds: u64,
    /// Total instructions simulated by fresh runs.
    pub simulated_instructions: u64,
    /// Total CPU time spent inside fresh simulations (sums across worker
    /// threads, so it can exceed wall-clock time).
    pub busy_nanos: u64,
    /// OS threads ever spawned by the process-global worker pool
    /// ([`slicc_common::pool`]) that backs `parallel_map` pre-decode and
    /// the engine's intra-point shard lanes. Threads are parked and
    /// reused, so a steady workload converges to a constant here no
    /// matter how many points it runs.
    pub pool_spinups: u64,
}

impl RunnerStats {
    /// Mean simulated instructions per busy second across all fresh runs.
    pub fn sim_ips(&self) -> f64 {
        let secs = self.busy_nanos as f64 / 1e9;
        if secs > 0.0 {
            self.simulated_instructions as f64 / secs
        } else {
            0.0
        }
    }
}

/// A memoizing job pool for simulation points.
///
/// `jobs` worker threads pull [`RunRequest`]s off an mpsc work queue;
/// completed points land in a run cache keyed by [`RunRequest::stable_key`]
/// so repeated points (across figures, or duplicated within one batch)
/// simulate exactly once. Results are returned in submission order
/// regardless of completion order, so output is deterministic for any
/// `jobs` value.
///
/// Faults are isolated per point: a panic or watchdog abort in one
/// simulation yields a [`RunError`] for that point only. All shared state
/// is accessed with poison recovery, so a panicked worker never wedges
/// [`Runner::cached_points`] or [`Runner::stats`].
pub struct Runner {
    jobs: usize,
    /// The memoized run cache: byte-weighted, LRU-evicting, bounded by
    /// [`Runner::set_cache_bytes`].
    cache: Mutex<BoundedResultCache>,
    /// Materialized traces keyed by [`RunRequest::spec_key`]: every mode
    /// variant of a (workload, scale) point shares one spec build.
    specs: Mutex<HashMap<u64, Arc<WorkloadSpec>>>,
    checkpoint: Mutex<Option<Checkpoint>>,
    /// Telemetry sink for progress events. Defaults to
    /// [`WarningsOnlyReporter`] so embedding code keeps a quiet stderr
    /// while degradation warnings still surface; the binaries swap in the
    /// user's `--progress` choice via [`Runner::set_reporter`].
    reporter: Mutex<Arc<dyn Reporter>>,
    /// Cooperative cancellation shared with every in-flight engine. The
    /// binaries hand it to [`slicc_common::install_sigint_cancel`] so the
    /// first Ctrl-C drains the pool gracefully.
    cancel: CancelToken,
    retry: Mutex<RetryPolicy>,
    /// Deadline applied to requests that do not carry their own
    /// [`RunRequest::deadline`]; the per-request value wins.
    default_deadline: Mutex<Option<Duration>>,
    /// Admission bound on concurrently executing fresh points; `None`
    /// (the default) admits everything. See [`Runner::set_queue_limit`].
    queue_limit: Mutex<Option<usize>>,
    /// Fresh points currently holding an admission slot.
    inflight: AtomicUsize,
    hits: AtomicU64,
    coalesced: AtomicU64,
    misses: AtomicU64,
    failures: AtomicU64,
    retries: AtomicU64,
    shed: AtomicU64,
    spec_builds: AtomicU64,
    simulated_instructions: AtomicU64,
    busy_nanos: AtomicU64,
}

/// One batch's deduplicated fresh points, keyed by stable key, in
/// submission order.
type KeyedPoints<'a> = Vec<(u64, &'a RunRequest)>;

impl Runner {
    /// A runner with `jobs` worker threads (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Runner {
            jobs: jobs.max(1),
            cache: Mutex::new(BoundedResultCache::new(DEFAULT_CACHE_BYTES)),
            specs: Mutex::new(HashMap::new()),
            checkpoint: Mutex::new(None),
            reporter: Mutex::new(Arc::new(WarningsOnlyReporter::stderr())),
            cancel: CancelToken::new(),
            retry: Mutex::new(RetryPolicy::none()),
            default_deadline: Mutex::new(None),
            queue_limit: Mutex::new(None),
            inflight: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            spec_builds: AtomicU64::new(0),
            simulated_instructions: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// A runner sized to the host ([`Runner::default_parallelism`]).
    pub fn with_default_parallelism() -> Self {
        Runner::new(Runner::default_parallelism())
    }

    /// The host's available parallelism; 1 if it cannot be determined.
    pub fn default_parallelism() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// The worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Replaces the progress reporter (see [`slicc_obs::ProgressKind`]).
    pub fn set_reporter(&self, reporter: Arc<dyn Reporter>) {
        *lock_unpoisoned(&self.reporter) = reporter;
    }

    /// The current progress reporter.
    pub fn reporter(&self) -> Arc<dyn Reporter> {
        Arc::clone(&lock_unpoisoned(&self.reporter))
    }

    /// The runner's cancellation token. Cancelling it makes every
    /// in-flight simulation abort with [`RunError::Cancelled`] at its
    /// next engine step, and every not-yet-started point fail fast
    /// without simulating. Completed points keep their results (and
    /// their checkpoint records).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Replaces the retry policy (default: [`RetryPolicy::none`]).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *lock_unpoisoned(&self.retry) = policy;
    }

    /// The current retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *lock_unpoisoned(&self.retry)
    }

    /// Sets the wall-clock deadline applied to every request that does
    /// not carry its own [`RunRequest::deadline`]. `None` disables it.
    /// The budget is per point, measured from the attempt's start.
    pub fn set_default_deadline(&self, budget: Option<Duration>) {
        *lock_unpoisoned(&self.default_deadline) = budget;
    }

    /// The default per-point deadline budget, if any.
    pub fn default_deadline(&self) -> Option<Duration> {
        *lock_unpoisoned(&self.default_deadline)
    }

    /// Rebudgets the run cache to `max_bytes` (the `--cache-bytes` flag),
    /// evicting least-recently-used entries if the resident set no longer
    /// fits. Governance only: changes what stays memoized, never what any
    /// simulation computes — the budget is not part of
    /// [`RunRequest::stable_key`].
    pub fn set_cache_bytes(&self, max_bytes: u64) {
        lock_unpoisoned(&self.cache).set_max_bytes(max_bytes);
    }

    /// The run cache's byte budget (default
    /// [`crate::service::DEFAULT_CACHE_BYTES`]).
    pub fn cache_budget(&self) -> u64 {
        lock_unpoisoned(&self.cache).max_bytes()
    }

    /// Bounds how many fresh points may execute concurrently through this
    /// runner (the `--queue-limit` flag). With a limit of `n`, a batch
    /// admits at most `n` fresh simulations at a time; the overflow is
    /// *shed* — failed fast with [`RunError::Overloaded`] and a
    /// retry-after hint — rather than queued without bound. Cache hits
    /// and coalesced duplicates are always served: only fresh work
    /// consumes slots. `None` (the default) admits everything.
    ///
    /// The batch [`Runner`] sheds because it has no one to queue for; the
    /// [`crate::service::SimService`] front door adds a bounded wait
    /// queue on top for interactive submitters.
    pub fn set_queue_limit(&self, limit: Option<usize>) {
        *lock_unpoisoned(&self.queue_limit) = limit;
    }

    /// The admission bound, if any.
    pub fn queue_limit(&self) -> Option<usize> {
        *lock_unpoisoned(&self.queue_limit)
    }

    /// How long a shed client should wait before resubmitting: the mean
    /// busy time of completed fresh points (clamped to 10 ms..10 s), or
    /// 50 ms before any point has completed. A hint, not a reservation —
    /// the service makes no admission promise to returning clients.
    pub fn retry_after_hint(&self) -> Duration {
        let busy = self.busy_nanos.load(Ordering::Relaxed);
        let completed =
            self.misses.load(Ordering::Relaxed).saturating_sub(self.failures.load(Ordering::Relaxed));
        if busy == 0 || completed == 0 {
            return Duration::from_millis(50);
        }
        Duration::from_nanos(busy / completed)
            .clamp(Duration::from_millis(10), Duration::from_secs(10))
    }

    /// The runner's current pressure: in-flight count, cache residency,
    /// and shed totals. `queue_depth` is always 0 at the bare runner (it
    /// sheds instead of queueing); [`crate::service::SimService::pressure`]
    /// fills in its real wait-queue depth.
    pub fn pressure(&self) -> PressureSnapshot {
        let (cache_bytes, cache_budget, cache_entries) = {
            let cache = lock_unpoisoned(&self.cache);
            (cache.bytes(), cache.max_bytes(), cache.len())
        };
        PressureSnapshot {
            queue_depth: 0,
            inflight: self.inflight.load(Ordering::Relaxed),
            cache_bytes,
            cache_budget,
            cache_entries,
            shed: self.shed.load(Ordering::Relaxed),
        }
    }

    /// The memoized result for `key`, if resident: promoted to
    /// most-recently-used, counted as a cache hit, and returned with
    /// [`RunResult::from_cache`] set. The [`crate::service::SimService`]
    /// fast path.
    pub fn cached_result(&self, key: u64) -> Option<RunResult> {
        let mut result = lock_unpoisoned(&self.cache).get(key)?.clone();
        self.hits.fetch_add(1, Ordering::Relaxed);
        result.from_cache = true;
        Some(result)
    }

    /// Counts a duplicate submission coalesced onto an in-flight
    /// simulation (the [`crate::service::SimService`] single-flight path).
    pub(crate) fn note_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a submission shed by a layer above the runner.
    pub(crate) fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Attaches a checkpoint file: previously completed points are seeded
    /// into the run cache (they will be served as cache hits), and every
    /// point completed from now on is appended to the file as it
    /// finishes. A corrupt tail in an existing file is discarded — see
    /// [`Checkpoint::open`]. Attach before the first `run_all` call:
    /// points that are already memoized are not retroactively written.
    pub fn attach_checkpoint(&self, path: impl AsRef<Path>) -> Result<CheckpointLoad, CheckpointError> {
        self.attach_checkpoint_with_io(path, Arc::new(slicc_common::StdIo))
    }

    /// [`Runner::attach_checkpoint`] with an explicit [`ArtifactIo`]
    /// backend — the fault-injection seam the chaos tests drive with
    /// [`slicc_common::FaultyIo`].
    pub fn attach_checkpoint_with_io(
        &self,
        path: impl AsRef<Path>,
        io: Arc<dyn ArtifactIo>,
    ) -> Result<CheckpointLoad, CheckpointError> {
        let (ckpt, entries, load) = Checkpoint::open_with_io(path.as_ref(), io)?;
        {
            let mut cache = lock_unpoisoned(&self.cache);
            for (key, result) in entries {
                cache.insert_if_absent(key, result);
            }
        }
        *lock_unpoisoned(&self.checkpoint) = Some(ckpt);
        Ok(load)
    }

    /// Runs one point, serving it from the run cache when possible.
    pub fn run(&self, req: &RunRequest) -> Result<RunResult, RunError> {
        self.run_all(std::slice::from_ref(req)).pop().expect("one request yields one result")
    }

    /// Runs a batch, fanning uncached points across the worker pool.
    ///
    /// Returns one result per request, in submission order. Duplicate
    /// points — within the batch or across earlier calls — simulate once;
    /// their repeats are marked [`RunResult::from_cache`].
    ///
    /// Failures are per point: a panicking, livelocking, or misconfigured
    /// point yields a [`RunError`] in its slot while the rest of the
    /// batch completes. Failed points are not cached (and not
    /// checkpointed), so a later batch — e.g. a resumed sweep — attempts
    /// them again.
    pub fn run_all(&self, reqs: &[RunRequest]) -> Vec<Result<RunResult, RunError>> {
        let keys: Vec<u64> = reqs.iter().map(RunRequest::stable_key).collect();

        // One pass under the cache lock: pin every resident result (a
        // clone, so this batch's own inserts can never evict a result we
        // still owe the caller), and collect the distinct missing points
        // in first-occurrence order (stable across runs, so scheduling is
        // reproducible).
        let mut pinned: HashMap<u64, RunResult> = HashMap::new();
        let mut fresh: Vec<(u64, &RunRequest)> = Vec::new();
        {
            let mut cache = lock_unpoisoned(&self.cache);
            for (&key, req) in keys.iter().zip(reqs) {
                if pinned.contains_key(&key) || fresh.iter().any(|&(k, _)| k == key) {
                    continue;
                }
                match cache.get(key) {
                    Some(result) => {
                        pinned.insert(key, result.clone());
                    }
                    None => fresh.push((key, req)),
                }
            }
        }

        // Admission control: each fresh point needs an execution slot;
        // with a queue limit set, the overflow is shed with a typed
        // rejection instead of piling up. Cache hits cost nothing and are
        // never shed.
        let (admitted, shed) = self.admit(fresh);

        let reporter = self.reporter();
        reporter.report(ProgressEvent::BatchStarted { points: reqs.len(), fresh: admitted.len() });
        let computed = self.simulate_batch(&admitted);
        self.inflight.fetch_sub(admitted.len(), Ordering::Relaxed);

        let mut failed: HashMap<u64, RunError> = HashMap::new();
        let limit = self.queue_limit().unwrap_or(usize::MAX);
        for (key, req) in &shed {
            self.shed.fetch_add(1, Ordering::Relaxed);
            failed.insert(
                *key,
                RunError::Overloaded {
                    point: PointSummary::of(req),
                    retry_after: self.retry_after_hint(),
                    inflight: limit,
                    limit,
                },
            );
        }

        // Bank successes into the cache *and* a batch-local map: the
        // cache may evict them immediately under a tiny byte budget, but
        // this batch's callers still get their results.
        let mut banked: HashMap<u64, RunResult> = HashMap::new();
        {
            let mut cache = lock_unpoisoned(&self.cache);
            for ((key, _), outcome) in admitted.iter().zip(computed) {
                self.misses.fetch_add(1, Ordering::Relaxed);
                match outcome {
                    Ok(result) => {
                        self.simulated_instructions.fetch_add(result.metrics.instructions, Ordering::Relaxed);
                        self.busy_nanos.fetch_add(result.wall.as_nanos() as u64, Ordering::Relaxed);
                        cache.insert(*key, result.clone());
                        banked.insert(*key, result);
                    }
                    Err(error) => {
                        self.failures.fetch_add(1, Ordering::Relaxed);
                        failed.insert(*key, error);
                    }
                }
            }
        }

        // Assemble results in submission order. The first occurrence of a
        // freshly simulated point reports from_cache = false; repeats of
        // it are coalesced hits, and occurrences of pinned (pre-resident)
        // results are cache hits — the split tells memoization apart from
        // intra-batch stampede suppression. Failed and shed points are
        // reported (cloned for duplicates) and counted neither as hits
        // nor as extra misses.
        let mut first_use: Vec<u64> = Vec::new();
        let mut cached_served = 0usize;
        let results: Vec<Result<RunResult, RunError>> = keys
            .iter()
            .zip(reqs)
            .map(|(key, req)| {
                if let Some(error) = failed.get(key) {
                    return Err(error.clone());
                }
                let fresh_now = banked.contains_key(key) && !first_use.contains(key);
                let mut result = banked
                    .get(key)
                    .or_else(|| pinned.get(key))
                    .expect("every key was simulated, pinned, or failed")
                    .clone();
                if fresh_now {
                    first_use.push(*key);
                } else {
                    if pinned.contains_key(key) {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    cached_served += 1;
                    reporter.report(ProgressEvent::PointCached { label: point_label(req) });
                }
                result.from_cache = !fresh_now;
                Ok(result)
            })
            .collect();
        reporter.report(ProgressEvent::BatchFinished {
            fresh: admitted.len(),
            cached: cached_served,
            failed: failed.len(),
        });
        reporter.report(self.pressure().event());
        results
    }

    /// Splits `fresh` into the points that won an execution slot and the
    /// overflow to shed. Slots are reserved with a bounded CAS loop so
    /// concurrent batches through one runner share the same admission
    /// budget; without a queue limit every point is admitted (and still
    /// counted in-flight for [`Runner::pressure`]).
    fn admit<'a>(&self, fresh: KeyedPoints<'a>) -> (KeyedPoints<'a>, KeyedPoints<'a>) {
        let limit = self.queue_limit();
        let mut admitted = Vec::with_capacity(fresh.len());
        let mut shed = Vec::new();
        for (key, req) in fresh {
            let slot = match limit {
                None => {
                    self.inflight.fetch_add(1, Ordering::Relaxed);
                    true
                }
                Some(limit) => self.try_reserve_slot(limit),
            };
            if slot {
                admitted.push((key, req));
            } else {
                shed.push((key, req));
            }
        }
        (admitted, shed)
    }

    /// Reserves one in-flight slot below `limit`, lock-free.
    fn try_reserve_slot(&self, limit: usize) -> bool {
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current >= limit {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Convenience over [`Runner::run_all`] when only the metrics matter
    /// and failure should be fatal (the figure pipeline: a figure with a
    /// missing point is not a figure).
    ///
    /// # Panics
    ///
    /// Panics with the [`RunError`] report of the first failed point.
    pub fn run_metrics(&self, reqs: &[RunRequest]) -> Vec<RunMetrics> {
        self.run_all(reqs)
            .into_iter()
            .map(|r| match r {
                Ok(result) => result.metrics,
                Err(e) => panic!("simulation point failed: {e}"),
            })
            .collect()
    }

    /// Aggregate cache and throughput counters.
    pub fn stats(&self) -> RunnerStats {
        let (cache_evictions, cache_bytes) = {
            let cache = lock_unpoisoned(&self.cache);
            (cache.evictions(), cache.bytes())
        };
        RunnerStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            coalesced_hits: self.coalesced.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            cache_evictions,
            cache_bytes,
            shed_points: self.shed.load(Ordering::Relaxed),
            failed_points: self.failures.load(Ordering::Relaxed),
            retried_attempts: self.retries.load(Ordering::Relaxed),
            spec_builds: self.spec_builds.load(Ordering::Relaxed),
            simulated_instructions: self.simulated_instructions.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            pool_spinups: slicc_common::pool::spinups(),
        }
    }

    /// Points currently memoized (including any seeded from a
    /// checkpoint).
    pub fn cached_points(&self) -> usize {
        lock_unpoisoned(&self.cache).len()
    }

    /// The memoized spec for `req`, materializing it on first use. The
    /// lock is held across the build so concurrent workers asking for the
    /// same (workload, scale) wait for one build instead of racing their
    /// own; a build is milliseconds against simulations of seconds.
    fn spec_for(&self, req: &RunRequest) -> Arc<WorkloadSpec> {
        let mut specs = lock_unpoisoned(&self.specs);
        match specs.entry(req.spec_key()) {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(v) => {
                self.spec_builds.fetch_add(1, Ordering::Relaxed);
                Arc::clone(v.insert(Arc::new(req.spec())))
            }
        }
    }

    /// Executes one point with panic containment: a panic anywhere in the
    /// simulation (or an engine-level [`SimError`]) becomes a [`RunError`]
    /// carrying the point's identity, instead of unwinding into the pool.
    ///
    /// Transient failures are re-attempted per the [`RetryPolicy`]; the
    /// returned result's [`RunResult::attempts`] records how many tries
    /// it took. A cancelled runner fails the point fast, before any
    /// simulation work.
    /// Runs `req` now, on the calling thread, bypassing the run cache and
    /// admission control entirely: nothing is looked up, banked, shed, or
    /// counted toward hit/miss stats. The spec memo, retry policy, default
    /// deadline, and cancellation token still apply, so the result is
    /// digest-identical to what a cached [`Runner::run`] of the same
    /// request would compute — which is exactly what the governance
    /// invariance tests use it for (a reference run untouched by cache
    /// policy).
    pub fn execute_uncached(&self, req: &RunRequest) -> Result<RunResult, RunError> {
        self.execute_point(req)
    }

    fn execute_point(&self, req: &RunRequest) -> Result<RunResult, RunError> {
        if self.cancel.is_cancelled() {
            // heap_steps = 0 reads as "cancelled before it started".
            return Err(RunError::Cancelled { point: PointSummary::of(req), snapshot: Box::default() });
        }
        let spec = self.spec_for(req);
        let policy = self.retry_policy();
        let mut attempt = 1u32;
        loop {
            match self.execute_attempt(req, &spec, attempt, &policy) {
                Ok(mut result) => {
                    result.attempts = attempt;
                    return Ok(result);
                }
                Err(error) => {
                    let retry = attempt < policy.max_attempts.max(1)
                        && policy.is_transient(&error)
                        && !self.cancel.is_cancelled();
                    if !retry {
                        return Err(error);
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                    self.reporter().report(ProgressEvent::PointRetried {
                        label: point_label(req),
                        attempt,
                        error: error.to_string(),
                    });
                }
            }
        }
    }

    /// One containment-wrapped simulation attempt. Attempts after the
    /// first run a fuel-escalated copy of the request
    /// ([`RetryPolicy::fuel_factor`]); the point's identity — and with it
    /// the cache and checkpoint key — stays the original's, which is
    /// sound because the watchdog budget never changes the metrics of a
    /// run it does not abort.
    fn execute_attempt(
        &self,
        req: &RunRequest,
        spec: &WorkloadSpec,
        attempt: u32,
        policy: &RetryPolicy,
    ) -> Result<RunResult, RunError> {
        let point = PointSummary::of(req);
        let escalated;
        let run_req = if attempt > 1 {
            escalated = policy.escalated(req, attempt);
            &escalated
        } else {
            req
        };
        let budget = run_req.deadline.budget().or_else(|| self.default_deadline());
        let ctrl = RunControl {
            cancel: self.cancel.clone(),
            deadline: budget.map(|b| Instant::now() + b),
        };
        // Runner-layer fault injection: AllocPressure holds a touched
        // ballast allocation across the attempt (the engine never sees
        // it), stressing the host the way an obs-heavy neighbour would.
        let _ballast = match run_req.config.fault_injection {
            Some(InjectedFault::AllocPressure { mib }) => {
                let mut ballast = vec![0u8; (mib as usize) << 20];
                for page in ballast.chunks_mut(4096) {
                    page[0] = 1;
                }
                Some(ballast)
            }
            _ => None,
        };
        let outcome = match panic::catch_unwind(AssertUnwindSafe(|| {
            run_req.try_execute_controlled(spec, &ctrl)
        })) {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(sim_error)) => Err(RunError::from_sim(point, sim_error)),
            // `as_ref` matters: `&payload` would coerce the Box itself into
            // the `dyn Any`, and the downcasts below would never match.
            Err(payload) => {
                Err(RunError::Panicked { point, payload: panic_message(payload.as_ref()) })
            }
        };
        // SlowConsumer holds the finished result (and with it the worker
        // slot) before releasing it — the deterministic way the chaos
        // drills keep an admission slot occupied. The metrics are already
        // computed, so they stay byte-identical to the healthy run.
        if let Some(InjectedFault::SlowConsumer { delay_ms }) = run_req.config.fault_injection {
            if outcome.is_ok() {
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
        }
        outcome
    }

    /// Appends a completed point to the attached checkpoint, if any.
    /// Write failures are transient per the [`RetryPolicy`]: each failed
    /// append is retried after a deterministic bounded backoff (the log
    /// rewinds on failure, so a retry extends a clean file). Only after
    /// the final attempt fails is checkpointing disabled for the rest of
    /// the process (with one warning) rather than failing the batch: the
    /// results in memory are still good.
    fn checkpoint_store(&self, key: u64, result: &RunResult) {
        let policy = self.retry_policy();
        let mut guard = lock_unpoisoned(&self.checkpoint);
        let Some(ckpt) = guard.as_mut() else { return };
        for attempt in 1..=policy.max_attempts.max(1) {
            let Err(e) = ckpt.append(key, result) else { return };
            if attempt < policy.max_attempts.max(1) {
                let backoff = policy.io_backoff(attempt);
                self.reporter().report(ProgressEvent::Warning {
                    message: format!(
                        "checkpoint write to {} failed ({e}); retrying in {} ms \
                         (attempt {attempt} of {})",
                        ckpt.path().display(),
                        backoff.as_millis(),
                        policy.max_attempts,
                    ),
                });
                std::thread::sleep(backoff);
            } else {
                self.reporter().report(ProgressEvent::Warning {
                    message: format!(
                        "checkpoint write to {} failed ({e}); checkpointing disabled",
                        ckpt.path().display()
                    ),
                });
                *guard = None;
                return;
            }
        }
    }

    /// Simulates the given distinct points, returning outcomes in the
    /// same order. Runs inline for one worker, otherwise fans out over an
    /// mpsc work queue shared by `min(jobs, points)` threads. Each
    /// completed point is checkpointed as it finishes, not at batch end,
    /// so an interrupted sweep keeps its completed prefix.
    fn simulate_batch(&self, fresh: &[(u64, &RunRequest)]) -> Vec<Result<RunResult, RunError>> {
        let workers = self.jobs.min(fresh.len());
        let reporter = self.reporter();
        let total = fresh.len();
        if workers <= 1 {
            return fresh
                .iter()
                .enumerate()
                .map(|(i, &(key, req))| {
                    report_point_start(&*reporter, i + 1, total, req);
                    let outcome = self.execute_point(req);
                    report_point_end(&*reporter, i + 1, total, req, &outcome);
                    if let Ok(result) = &outcome {
                        self.checkpoint_store(key, result);
                    }
                    outcome
                })
                .collect();
        }

        let (job_tx, job_rx) = mpsc::channel::<(usize, &RunRequest)>();
        let job_rx = Mutex::new(job_rx);
        let (result_tx, result_rx) = mpsc::channel::<(usize, Result<RunResult, RunError>)>();
        for (idx, &(_, req)) in fresh.iter().enumerate() {
            job_tx.send((idx, req)).expect("receiver outlives submission");
        }
        drop(job_tx);

        let mut results: Vec<Option<Result<RunResult, RunError>>> = vec![None; fresh.len()];
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = &job_rx;
                let result_tx = result_tx.clone();
                let reporter = &reporter;
                scope.spawn(move || loop {
                    // Hold the queue lock only for the dequeue, not the
                    // simulation. Poison recovery: another worker dying
                    // while holding the lock must not cascade.
                    let job = lock_unpoisoned(job_rx).recv();
                    match job {
                        Ok((idx, req)) => {
                            report_point_start(&**reporter, idx + 1, total, req);
                            let outcome = self.execute_point(req);
                            report_point_end(&**reporter, idx + 1, total, req, &outcome);
                            if result_tx.send((idx, outcome)).is_err() {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                });
            }
            drop(result_tx);
            // Reassemble in submission order as workers finish,
            // checkpointing each success immediately.
            for (idx, outcome) in result_rx {
                if let Ok(result) = &outcome {
                    self.checkpoint_store(fresh[idx].0, result);
                }
                results[idx] = Some(outcome);
            }
        });
        results
            .into_iter()
            .enumerate()
            .map(|(idx, outcome)| {
                // A missing slot means a worker died without even a panic
                // report — contained, but diagnosable.
                outcome.unwrap_or_else(|| Err(RunError::Lost { point: PointSummary::of(fresh[idx].1) }))
            })
            .collect()
    }
}

/// Human label for progress lines: enough to recognize the point without
/// the full reproduction key.
fn point_label(req: &RunRequest) -> String {
    let scale = req.effective_scale();
    format!(
        "{} [{}] tasks={} seed={}",
        req.workload.name(),
        req.mode().name(),
        scale.tasks,
        scale.seed
    )
}

fn report_point_start(reporter: &dyn Reporter, index: usize, total: usize, req: &RunRequest) {
    reporter.report(ProgressEvent::PointStarted { index, total, label: point_label(req) });
}

fn report_point_end(
    reporter: &dyn Reporter,
    index: usize,
    total: usize,
    req: &RunRequest,
    outcome: &Result<RunResult, RunError>,
) {
    let label = point_label(req);
    let event = match outcome {
        Ok(result) => ProgressEvent::PointFinished {
            index,
            total,
            label,
            wall_ns: result.wall.as_nanos() as u64,
            sim_ips: result.sim_ips,
        },
        Err(error) if error.is_cancellation() => {
            ProgressEvent::PointCancelled { index, total, label }
        }
        Err(error) => {
            ProgressEvent::PointFailed { index, total, label, error: error.to_string() }
        }
    };
    reporter.report(event);
}

/// Renders a caught panic payload for [`RunError::Panicked`]. Panics
/// almost always carry `&str` or `String`; anything else is reported by
/// type only.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::with_default_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InjectedFault, SimConfigBuilder};

    fn tiny_request() -> RunRequest {
        RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test())
    }

    fn expect_ok(r: Result<RunResult, RunError>) -> RunResult {
        r.expect("point must complete")
    }

    #[test]
    fn stable_key_is_reproducible_and_field_sensitive() {
        let base = tiny_request();
        assert_eq!(base.stable_key(), tiny_request().stable_key());
        assert_ne!(base.stable_key(), base.clone().with_mode(SchedulerMode::Slicc).stable_key());
        assert_ne!(base.stable_key(), base.clone().with_seed(99).stable_key());
        assert_ne!(base.stable_key(), base.clone().with_tasks(3).stable_key());
        let other_workload = RunRequest::new(Workload::TpcE, TraceScale::tiny(), SimConfig::tiny_test());
        assert_ne!(base.stable_key(), other_workload.stable_key());
        let mut other_cfg = tiny_request();
        other_cfg.config.seed ^= 1;
        assert_ne!(base.stable_key(), other_cfg.stable_key());
    }

    #[test]
    fn overrides_change_the_spec_not_just_the_key() {
        let req = tiny_request().with_tasks(2).with_seed(7);
        let scale = req.effective_scale();
        assert_eq!(scale.tasks, 2);
        assert_eq!(scale.seed, 7);
        assert_eq!(req.spec().num_tasks, 2);
    }

    #[test]
    fn cache_hits_identical_request() {
        let runner = Runner::new(1);
        let req = tiny_request();
        let first = expect_ok(runner.run(&req));
        let second = expect_ok(runner.run(&req));
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(format!("{:?}", first.metrics), format!("{:?}", second.metrics));
        let stats = runner.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1, "a cross-call repeat is a true memoized hit");
        assert_eq!(stats.coalesced_hits, 0);
        assert_eq!(stats.failed_points, 0);
        assert_eq!(runner.cached_points(), 1);
        assert!(stats.cache_bytes > 0, "the resident result must be charged");
        assert!(stats.cache_bytes <= runner.cache_budget());
    }

    #[test]
    fn cache_misses_when_any_field_differs() {
        let runner = Runner::new(1);
        let base = tiny_request();
        expect_ok(runner.run(&base));
        expect_ok(runner.run(&base.clone().with_mode(SchedulerMode::Slicc)));
        expect_ok(runner.run(&base.clone().with_seed(123)));
        let mut policy_seed = base.clone();
        policy_seed.config.seed ^= 1;
        expect_ok(runner.run(&policy_seed));
        let stats = runner.stats();
        assert_eq!(stats.cache_misses, 4, "each distinct request must simulate");
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn batch_deduplicates_repeated_points() {
        let runner = Runner::new(2);
        let base = tiny_request();
        let slicc = base.clone().with_mode(SchedulerMode::Slicc);
        let results: Vec<RunResult> = runner
            .run_all(&[base.clone(), slicc.clone(), base.clone(), slicc])
            .into_iter()
            .map(expect_ok)
            .collect();
        assert_eq!(results.len(), 4);
        let stats = runner.stats();
        assert_eq!(stats.cache_misses, 2, "two distinct points in the batch");
        assert_eq!(stats.coalesced_hits, 2, "intra-batch duplicates coalesce onto the fresh run");
        assert_eq!(stats.cache_hits, 0, "nothing was memoized before this batch");
        assert!(!results[0].from_cache);
        assert!(!results[1].from_cache);
        assert!(results[2].from_cache);
        assert!(results[3].from_cache);
        assert_eq!(format!("{:?}", results[0].metrics), format!("{:?}", results[2].metrics));
        assert_eq!(format!("{:?}", results[1].metrics), format!("{:?}", results[3].metrics));
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let runner = Runner::new(4);
        let reqs: Vec<RunRequest> = [
            SchedulerMode::Baseline,
            SchedulerMode::Slicc,
            SchedulerMode::SliccSw,
            SchedulerMode::Steps,
        ]
        .iter()
        .map(|&m| tiny_request().with_mode(m))
        .collect();
        let results = runner.run_all(&reqs);
        for (req, result) in reqs.iter().zip(&results) {
            let result = result.as_ref().expect("point must complete");
            assert_eq!(result.metrics.mode, req.mode().name(), "result out of submission order");
        }
    }

    #[test]
    fn observability_counters_accumulate() {
        let runner = Runner::new(1);
        let result = expect_ok(runner.run(&tiny_request()));
        let stats = runner.stats();
        assert_eq!(stats.simulated_instructions, result.metrics.instructions);
        assert!(stats.busy_nanos > 0);
        assert!(stats.sim_ips() > 0.0);
    }

    #[test]
    fn spec_memo_shares_one_build_across_modes() {
        let runner = Runner::new(2);
        let reqs: Vec<RunRequest> =
            SchedulerMode::WITH_STEPS.iter().map(|&m| tiny_request().with_mode(m)).collect();
        for r in runner.run_all(&reqs) {
            expect_ok(r);
        }
        let stats = runner.stats();
        assert_eq!(stats.cache_misses, reqs.len() as u64, "every mode simulates");
        assert_eq!(stats.spec_builds, 1, "all modes share one materialized trace");
    }

    #[test]
    fn spec_memo_does_not_alias_distinct_traces() {
        let runner = Runner::new(1);
        let base = tiny_request();
        expect_ok(runner.run(&base));
        expect_ok(runner.run(&base.clone().with_seed(99)));
        expect_ok(runner.run(&base.clone().with_tasks(2)));
        // Same trace on a different machine: no new build.
        let mut other_cfg = tiny_request();
        other_cfg.config.seed ^= 1;
        expect_ok(runner.run(&other_cfg));
        assert_eq!(
            runner.stats().spec_builds,
            3,
            "seed/task overrides are distinct traces, a config change is not"
        );
    }

    #[test]
    fn spec_key_ignores_config_but_not_trace_inputs() {
        let base = tiny_request();
        let slicc = base.clone().with_mode(SchedulerMode::Slicc);
        assert_eq!(base.spec_key(), slicc.spec_key(), "mode must not split the spec memo");
        assert_ne!(base.stable_key(), slicc.stable_key(), "...but it does split the run cache");
        assert_ne!(base.spec_key(), base.clone().with_seed(9).spec_key());
        assert_ne!(base.spec_key(), base.clone().with_tasks(3).spec_key());
        let other_workload = RunRequest::new(Workload::TpcE, TraceScale::tiny(), SimConfig::tiny_test());
        assert_ne!(base.spec_key(), other_workload.spec_key());
    }

    #[test]
    fn memoized_spec_reproduces_direct_execution() {
        let runner = Runner::new(1);
        let req = tiny_request().with_mode(SchedulerMode::Slicc);
        let pooled = expect_ok(runner.run(&req));
        let direct = req.try_execute().expect("direct run completes");
        assert_eq!(format!("{:?}", pooled.metrics), format!("{:?}", direct.metrics));
    }

    fn panicking_request() -> RunRequest {
        let config = SimConfigBuilder::tiny_test()
            .inject_fault(InjectedFault::Panic)
            .build()
            .expect("fault injection is a valid config");
        RunRequest::new(Workload::TpcC1, TraceScale::tiny(), config)
    }

    #[test]
    fn a_panicking_point_is_contained_and_identified() {
        let runner = Runner::new(2);
        let bad = panicking_request();
        let err = runner.run(&bad).expect_err("injected panic must surface");
        match &err {
            RunError::Panicked { point, payload } => {
                assert_eq!(point.key, bad.stable_key());
                assert!(payload.contains("injected fault"), "got payload: {payload}");
            }
            other => panic!("expected Panicked, got {other}"),
        }
        assert_eq!(runner.stats().failed_points, 1);
        // The runner is still fully usable after the panic.
        assert_eq!(runner.cached_points(), 0);
        expect_ok(runner.run(&tiny_request()));
    }

    #[test]
    fn failed_points_are_not_cached_and_retry() {
        let runner = Runner::new(1);
        let bad = panicking_request();
        assert!(runner.run(&bad).is_err());
        assert!(runner.run(&bad).is_err(), "failures are re-attempted, not cached");
        let stats = runner.stats();
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.failed_points, 2);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn duplicate_failed_points_in_one_batch_share_the_error() {
        let runner = Runner::new(2);
        let bad = panicking_request();
        let results = runner.run_all(&[bad.clone(), tiny_request(), bad.clone()]);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
        assert!(results[2].is_err());
        assert_eq!(runner.stats().cache_misses, 2, "the duplicate failure simulates once");
        assert_eq!(runner.stats().failed_points, 1);
    }

    /// A request whose 1-step fuel budget livelocks on the first attempt
    /// but completes once the retry policy escalates it.
    fn starved_request() -> RunRequest {
        let config = SimConfigBuilder::tiny_test()
            .watchdog_steps(1)
            .build()
            .expect("tiny config with a 1-step fuel budget is valid");
        RunRequest::new(Workload::TpcC1, TraceScale::tiny(), config)
    }

    #[test]
    fn retry_policy_classifies_and_escalates() {
        let p = RetryPolicy::standard();
        let livelock = RunError::Livelock {
            point: PointSummary::of(&tiny_request()),
            snapshot: Box::default(),
        };
        let cancelled = RunError::Cancelled {
            point: PointSummary::of(&tiny_request()),
            snapshot: Box::default(),
        };
        assert!(p.is_transient(&livelock));
        assert!(!p.is_transient(&cancelled), "a cancelled point must stay cancelled");
        assert_eq!(p.fuel_factor(1), 1, "the first attempt runs unescalated");
        assert_eq!(p.fuel_factor(2), 8);
        assert_eq!(p.fuel_factor(3), 64);
        assert_eq!(p.fuel_factor(4), 64, "escalation clamps at max_fuel_factor");
        assert_eq!(p.io_backoff(1), Duration::from_millis(25));
        assert_eq!(p.io_backoff(2), Duration::from_millis(50));
        assert_eq!(RetryPolicy::none().fuel_factor(9), 1);
        assert_eq!(RetryPolicy::default(), RetryPolicy::none());
    }

    #[test]
    fn without_retries_a_starved_point_fails_on_the_first_attempt() {
        let runner = Runner::new(1);
        let err = runner.run(&starved_request()).expect_err("1 step of fuel must livelock");
        assert!(matches!(err, RunError::Livelock { .. }), "got {err}");
        assert_eq!(runner.stats().retried_attempts, 0);
    }

    #[test]
    fn livelock_retries_escalate_fuel_and_cache_under_the_original_key() {
        let runner = Runner::new(1);
        runner.set_retry_policy(RetryPolicy {
            max_attempts: 8,
            fuel_escalation: 1024,
            max_fuel_factor: u64::MAX,
            io_backoff_ms: 0,
        });
        let req = starved_request();
        let result = expect_ok(runner.run(&req));
        assert!(result.attempts > 1, "the 1-step budget cannot succeed first try");
        assert_eq!(runner.stats().retried_attempts, u64::from(result.attempts) - 1);
        assert_eq!(runner.stats().failed_points, 0, "a retried success is not a failure");
        // The escalated run answers for the *original* request: cached
        // under its key, with the metrics an unstarved run produces.
        let again = expect_ok(runner.run(&req));
        assert!(again.from_cache);
        let unstarved = expect_ok(Runner::new(1).run(&tiny_request()));
        assert_eq!(result.metrics.digest(), unstarved.metrics.digest());
    }

    #[test]
    fn permanent_failures_are_not_retried() {
        let runner = Runner::new(1);
        runner.set_retry_policy(RetryPolicy::standard());
        assert!(runner.run(&panicking_request()).is_err());
        assert_eq!(runner.stats().retried_attempts, 0, "a panic is deterministic");
    }

    #[test]
    fn a_cancelled_runner_fails_points_fast_and_keeps_finished_work() {
        let runner = Runner::new(1);
        let done = expect_ok(runner.run(&tiny_request()));
        runner.cancel_token().cancel();
        let err = runner
            .run(&tiny_request().with_seed(99))
            .expect_err("a cancelled runner must not start new work");
        match &err {
            RunError::Cancelled { snapshot, .. } => {
                assert_eq!(snapshot.heap_steps, 0, "the point never started simulating");
            }
            other => panic!("expected Cancelled, got {other}"),
        }
        assert!(err.is_cancellation());
        // Completed work survives cancellation.
        let again = expect_ok(runner.run(&tiny_request()));
        assert!(again.from_cache);
        assert_eq!(again.metrics.digest(), done.metrics.digest());
    }

    #[test]
    fn an_expired_deadline_fails_one_point_while_its_siblings_complete() {
        let runner = Runner::new(2);
        let doomed = tiny_request().with_deadline(DeadlineConfig::from_ms(0));
        let healthy = tiny_request().with_mode(SchedulerMode::Slicc);
        let results = runner.run_all(&[doomed.clone(), healthy]);
        match &results[0] {
            Err(RunError::DeadlineExceeded { point, snapshot }) => {
                assert_eq!(point.key, doomed.stable_key());
                assert!(snapshot.heap_steps > 0, "the snapshot must show where it stopped");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        expect_ok(results[1].clone());
    }

    #[test]
    fn the_default_deadline_applies_only_to_requests_without_their_own() {
        let runner = Runner::new(1);
        runner.set_default_deadline(Some(Duration::ZERO));
        assert!(matches!(
            runner.run(&tiny_request()),
            Err(RunError::DeadlineExceeded { .. })
        ));
        // A generous per-request deadline overrides the impossible default.
        let roomy = tiny_request().with_deadline(DeadlineConfig::from_ms(60_000));
        expect_ok(runner.run(&roomy));
        runner.set_default_deadline(None);
        assert_eq!(runner.default_deadline(), None);
    }

    #[test]
    fn a_tiny_cache_budget_evicts_but_never_changes_results() {
        let runner = Runner::new(1);
        let first = tiny_request();
        let reference = expect_ok(runner.run(&first));
        // Rebudget below one entry's weight: the resident result is
        // evicted and nothing can become resident.
        runner.set_cache_bytes(8);
        let stats = runner.stats();
        assert_eq!(stats.cache_bytes, 0);
        assert!(stats.cache_evictions >= 1);
        assert_eq!(runner.cached_points(), 0);
        // The evicted point re-simulates — a miss, not a hit — and its
        // metrics are byte-identical: eviction is a cost, never a change.
        let again = expect_ok(runner.run(&first));
        assert!(!again.from_cache);
        assert_eq!(again.metrics.digest(), reference.metrics.digest());
        assert_eq!(runner.stats().cache_misses, 2);
        assert!(runner.stats().cache_bytes <= runner.cache_budget());
    }

    #[test]
    fn a_zero_queue_limit_sheds_fresh_points_but_serves_hits() {
        let runner = Runner::new(1);
        let req = tiny_request();
        expect_ok(runner.run(&req));
        runner.set_queue_limit(Some(0));
        // The memoized point is still served: hits are never shed.
        assert!(expect_ok(runner.run(&req)).from_cache);
        // A fresh point cannot win a slot and is shed with a hint.
        let err = runner.run(&req.clone().with_seed(5)).expect_err("no slots means shed");
        assert!(err.is_overload(), "got {err}");
        match &err {
            RunError::Overloaded { retry_after, .. } => assert!(*retry_after > Duration::ZERO),
            other => panic!("expected Overloaded, got {other}"),
        }
        let stats = runner.stats();
        assert_eq!(stats.shed_points, 1);
        assert_eq!(stats.failed_points, 0, "a shed point never simulated, so it never failed");
        // Lifting the limit recovers the same point.
        runner.set_queue_limit(None);
        expect_ok(runner.run(&req.clone().with_seed(5)));
        assert_eq!(runner.queue_limit(), None);
    }

    #[test]
    fn execute_uncached_bypasses_cache_and_stats() {
        let runner = Runner::new(1);
        let req = tiny_request();
        let cached = expect_ok(runner.run(&req));
        let direct = runner.execute_uncached(&req).expect("uncached run completes");
        assert!(!direct.from_cache);
        assert_eq!(direct.metrics.digest(), cached.metrics.digest());
        let stats = runner.stats();
        assert_eq!(stats.cache_misses, 1, "the uncached run is not a miss");
        assert_eq!(stats.cache_hits, 0, "...and not a hit");
    }

    #[test]
    fn pressure_reports_cache_residency_and_idle_slots() {
        let runner = Runner::new(2);
        expect_ok(runner.run(&tiny_request()));
        let p = runner.pressure();
        assert_eq!(p.queue_depth, 0);
        assert_eq!(p.inflight, 0, "no batch is running");
        assert_eq!(p.cache_entries, 1);
        assert!(p.cache_bytes > 0 && p.cache_bytes <= p.cache_budget);
        assert_eq!(p.shed, 0);
    }

    #[test]
    fn governance_knobs_are_excluded_from_the_stable_key() {
        // A cache budget or admission limit changes when work is refused
        // or recomputed, never what any simulation computes — so equal
        // requests stay equal across differently-governed runners.
        let runner_a = Runner::new(1);
        let runner_b = Runner::new(1);
        runner_b.set_cache_bytes(8);
        runner_b.set_queue_limit(Some(64));
        let a = expect_ok(runner_a.run(&tiny_request()));
        let b = expect_ok(runner_b.run(&tiny_request()));
        assert_eq!(a.metrics.digest(), b.metrics.digest());
    }

    #[test]
    fn deadline_is_excluded_from_the_stable_key() {
        let base = tiny_request();
        let dated = tiny_request().with_deadline(DeadlineConfig::from_ms(5));
        assert_eq!(
            base.stable_key(),
            dated.stable_key(),
            "a deadline changes when a run may be abandoned, never its metrics"
        );
    }
}
