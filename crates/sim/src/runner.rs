//! Parallel experiment runner: typed run descriptors, a std::thread job
//! pool, and a memoizing run cache.
//!
//! Every simulation point is an independent, deterministic, single-threaded
//! job, so a figure's point set can fan out across host cores. This module
//! provides the three pieces:
//!
//! - [`RunRequest`] — the typed experiment-point descriptor (workload,
//!   scale, config; the mode lives in the config). It is simultaneously
//!   the runner's job type, the run-cache key (via
//!   [`RunRequest::stable_key`]), and the CLI/figures entry point.
//! - [`RunResult`] — the metrics plus wall-time and
//!   simulated-instructions-per-second observability counters.
//! - [`Runner`] — a job pool of `jobs` worker threads fed through an mpsc
//!   work queue. Results always come back in submission order, and
//!   completed points are memoized, so a Baseline point shared by several
//!   figures simulates once per process.
//!
//! The pool is plain `std::thread::scope` + `std::sync::mpsc` — the
//! workspace builds with no external dependencies (DESIGN.md §5), and a
//! work queue of whole simulations needs nothing fancier.
//!
//! # Example
//!
//! ```no_run
//! use slicc_sim::{RunRequest, Runner, SchedulerMode, SimConfig};
//! use slicc_trace::{TraceScale, Workload};
//!
//! let runner = Runner::with_default_parallelism();
//! let reqs: Vec<RunRequest> = [SchedulerMode::Baseline, SchedulerMode::Slicc]
//!     .iter()
//!     .map(|&m| {
//!         RunRequest::new(Workload::TpcC1, TraceScale::small(), SimConfig::paper_baseline())
//!             .with_mode(m)
//!     })
//!     .collect();
//! let results = runner.run_all(&reqs);
//! let speedup = results[0].metrics.cycles as f64 / results[1].metrics.cycles as f64;
//! println!("SLICC speedup: {speedup:.2}x over {:.0} sim-insn/s", results[1].sim_ips);
//! ```

use crate::config::{SchedulerMode, SimConfig};
use crate::engine;
use crate::metrics::RunMetrics;
use slicc_common::{StableHash, StableHasher};
use slicc_trace::{TraceScale, Workload, WorkloadSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// A typed experiment point: which workload to run, at what scale, on what
/// machine. Equal requests describe byte-identical simulations, which is
/// what makes the request usable as the run-cache key.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRequest {
    /// The benchmark workload.
    pub workload: Workload,
    /// Trace scale (task count, segment size, trace seed).
    pub scale: TraceScale,
    /// Task-count override applied on top of `scale`, if any.
    pub tasks: Option<u32>,
    /// Trace-seed override applied on top of `scale`, if any.
    pub seed: Option<u64>,
    /// The machine and execution mode.
    pub config: SimConfig,
}

impl RunRequest {
    /// Describes `workload` at `scale` on the machine `config`.
    pub fn new(workload: Workload, scale: TraceScale, config: SimConfig) -> Self {
        RunRequest { workload, scale, tasks: None, seed: None, config }
    }

    /// Returns a copy running under `mode`.
    pub fn with_mode(mut self, mode: SchedulerMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Returns a copy with the task count overridden.
    pub fn with_tasks(mut self, tasks: u32) -> Self {
        self.tasks = Some(tasks);
        self
    }

    /// Returns a copy with the trace seed overridden.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The execution mode (stored in the config).
    pub fn mode(&self) -> SchedulerMode {
        self.config.mode
    }

    /// The trace scale with the `tasks`/`seed` overrides applied.
    pub fn effective_scale(&self) -> TraceScale {
        let mut scale = self.scale;
        if let Some(tasks) = self.tasks {
            scale.tasks = tasks;
        }
        if let Some(seed) = self.seed {
            scale.seed = seed;
        }
        scale
    }

    /// Generates the workload specification this request describes.
    pub fn spec(&self) -> WorkloadSpec {
        self.workload.spec(self.effective_scale())
    }

    /// The run-cache key: a stable hash of everything that can influence
    /// the metrics. Identical on every host and in every process.
    pub fn stable_key(&self) -> u64 {
        let mut h = StableHasher::new();
        self.workload.stable_hash(&mut h);
        self.effective_scale().stable_hash(&mut h);
        self.config.stable_hash(&mut h);
        h.finish()
    }

    /// Runs this point now, on the calling thread, bypassing any cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration violates an invariant; construct
    /// configs through [`crate::SimConfigBuilder`] to catch that early as
    /// a [`crate::ConfigError`].
    pub fn execute(&self) -> RunResult {
        let spec = self.spec();
        let started = Instant::now();
        let metrics = engine::run(&spec, &self.config);
        let wall = started.elapsed();
        let sim_ips = if wall.as_secs_f64() > 0.0 { metrics.instructions as f64 / wall.as_secs_f64() } else { 0.0 };
        RunResult { metrics, wall, sim_ips, from_cache: false }
    }
}

/// The outcome of one simulation point.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The simulation's metrics.
    pub metrics: RunMetrics,
    /// Wall-clock time the simulation took (zero-cost when served from the
    /// run cache; this is the original simulation's time).
    pub wall: Duration,
    /// Simulated instructions per wall-clock second — the runner's
    /// throughput observability counter.
    pub sim_ips: f64,
    /// Whether this result was served from the run cache (or deduplicated
    /// within a batch) rather than freshly simulated.
    pub from_cache: bool,
}

/// Aggregate observability counters for a [`Runner`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunnerStats {
    /// Requests served from the memoized run cache (including duplicates
    /// within one batch).
    pub cache_hits: u64,
    /// Requests that required a fresh simulation.
    pub cache_misses: u64,
    /// Total instructions simulated by fresh runs.
    pub simulated_instructions: u64,
    /// Total CPU time spent inside fresh simulations (sums across worker
    /// threads, so it can exceed wall-clock time).
    pub busy_nanos: u64,
}

impl RunnerStats {
    /// Mean simulated instructions per busy second across all fresh runs.
    pub fn sim_ips(&self) -> f64 {
        let secs = self.busy_nanos as f64 / 1e9;
        if secs > 0.0 {
            self.simulated_instructions as f64 / secs
        } else {
            0.0
        }
    }
}

/// A memoizing job pool for simulation points.
///
/// `jobs` worker threads pull [`RunRequest`]s off an mpsc work queue;
/// completed points land in a run cache keyed by [`RunRequest::stable_key`]
/// so repeated points (across figures, or duplicated within one batch)
/// simulate exactly once. Results are returned in submission order
/// regardless of completion order, so output is deterministic for any
/// `jobs` value.
pub struct Runner {
    jobs: usize,
    cache: Mutex<HashMap<u64, RunResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
    simulated_instructions: AtomicU64,
    busy_nanos: AtomicU64,
}

impl Runner {
    /// A runner with `jobs` worker threads (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Runner {
            jobs: jobs.max(1),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            simulated_instructions: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// A runner sized to the host ([`Runner::default_parallelism`]).
    pub fn with_default_parallelism() -> Self {
        Runner::new(Runner::default_parallelism())
    }

    /// The host's available parallelism; 1 if it cannot be determined.
    pub fn default_parallelism() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// The worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs one point, serving it from the run cache when possible.
    pub fn run(&self, req: &RunRequest) -> RunResult {
        self.run_all(std::slice::from_ref(req)).pop().expect("one request yields one result")
    }

    /// Runs a batch, fanning uncached points across the worker pool.
    ///
    /// Returns one result per request, in submission order. Duplicate
    /// points — within the batch or across earlier calls — simulate once;
    /// their repeats are marked [`RunResult::from_cache`].
    pub fn run_all(&self, reqs: &[RunRequest]) -> Vec<RunResult> {
        let keys: Vec<u64> = reqs.iter().map(RunRequest::stable_key).collect();

        // Serve whatever the cache already has, and collect the distinct
        // missing points in first-occurrence order (stable across runs, so
        // scheduling is reproducible).
        let mut fresh: Vec<(u64, &RunRequest)> = Vec::new();
        {
            let cache = self.cache.lock().expect("run cache poisoned");
            for (&key, req) in keys.iter().zip(reqs) {
                if !cache.contains_key(&key) && fresh.iter().all(|&(k, _)| k != key) {
                    fresh.push((key, req));
                }
            }
        }

        let computed = self.simulate_batch(&fresh);

        let mut cache = self.cache.lock().expect("run cache poisoned");
        for ((key, _), result) in fresh.iter().zip(computed) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.simulated_instructions.fetch_add(result.metrics.instructions, Ordering::Relaxed);
            self.busy_nanos.fetch_add(result.wall.as_nanos() as u64, Ordering::Relaxed);
            cache.insert(*key, result);
        }

        // Assemble results in submission order. The first occurrence of a
        // freshly simulated point reports from_cache = false; everything
        // else (cache hits and intra-batch duplicates) reports true.
        let mut first_use: Vec<u64> = Vec::new();
        keys.iter()
            .map(|key| {
                let mut result = cache.get(key).expect("every key was simulated or cached").clone();
                let fresh_now = fresh.iter().any(|&(k, _)| k == *key) && !first_use.contains(key);
                if fresh_now {
                    first_use.push(*key);
                } else {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                result.from_cache = !fresh_now;
                result
            })
            .collect()
    }

    /// Convenience over [`Runner::run_all`] when only the metrics matter.
    pub fn run_metrics(&self, reqs: &[RunRequest]) -> Vec<RunMetrics> {
        self.run_all(reqs).into_iter().map(|r| r.metrics).collect()
    }

    /// Aggregate cache and throughput counters.
    pub fn stats(&self) -> RunnerStats {
        RunnerStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            simulated_instructions: self.simulated_instructions.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
        }
    }

    /// Points currently memoized.
    pub fn cached_points(&self) -> usize {
        self.cache.lock().expect("run cache poisoned").len()
    }

    /// Simulates the given distinct points, returning results in the same
    /// order. Runs inline for one worker, otherwise fans out over an mpsc
    /// work queue shared by `min(jobs, points)` threads.
    fn simulate_batch(&self, fresh: &[(u64, &RunRequest)]) -> Vec<RunResult> {
        let workers = self.jobs.min(fresh.len());
        if workers <= 1 {
            return fresh.iter().map(|&(_, req)| req.execute()).collect();
        }

        let (job_tx, job_rx) = mpsc::channel::<(usize, &RunRequest)>();
        let job_rx = Mutex::new(job_rx);
        let (result_tx, result_rx) = mpsc::channel::<(usize, RunResult)>();
        for (idx, &(_, req)) in fresh.iter().enumerate() {
            job_tx.send((idx, req)).expect("receiver outlives submission");
        }
        drop(job_tx);

        let mut results: Vec<Option<RunResult>> = vec![None; fresh.len()];
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = &job_rx;
                let result_tx = result_tx.clone();
                scope.spawn(move || loop {
                    // Hold the queue lock only for the dequeue, not the
                    // simulation.
                    let job = job_rx.lock().expect("job queue poisoned").recv();
                    match job {
                        Ok((idx, req)) => {
                            let result = req.execute();
                            if result_tx.send((idx, result)).is_err() {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                });
            }
            drop(result_tx);
            // Reassemble in submission order as workers finish.
            for (idx, result) in result_rx {
                results[idx] = Some(result);
            }
        });
        results.into_iter().map(|r| r.expect("every job completed")).collect()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::with_default_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_request() -> RunRequest {
        RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test())
    }

    #[test]
    fn stable_key_is_reproducible_and_field_sensitive() {
        let base = tiny_request();
        assert_eq!(base.stable_key(), tiny_request().stable_key());
        assert_ne!(base.stable_key(), base.clone().with_mode(SchedulerMode::Slicc).stable_key());
        assert_ne!(base.stable_key(), base.clone().with_seed(99).stable_key());
        assert_ne!(base.stable_key(), base.clone().with_tasks(3).stable_key());
        let other_workload = RunRequest::new(Workload::TpcE, TraceScale::tiny(), SimConfig::tiny_test());
        assert_ne!(base.stable_key(), other_workload.stable_key());
        let mut other_cfg = tiny_request();
        other_cfg.config.seed ^= 1;
        assert_ne!(base.stable_key(), other_cfg.stable_key());
    }

    #[test]
    fn overrides_change_the_spec_not_just_the_key() {
        let req = tiny_request().with_tasks(2).with_seed(7);
        let scale = req.effective_scale();
        assert_eq!(scale.tasks, 2);
        assert_eq!(scale.seed, 7);
        assert_eq!(req.spec().num_tasks, 2);
    }

    #[test]
    fn cache_hits_identical_request() {
        let runner = Runner::new(1);
        let req = tiny_request();
        let first = runner.run(&req);
        let second = runner.run(&req);
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(format!("{:?}", first.metrics), format!("{:?}", second.metrics));
        let stats = runner.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(runner.cached_points(), 1);
    }

    #[test]
    fn cache_misses_when_any_field_differs() {
        let runner = Runner::new(1);
        let base = tiny_request();
        runner.run(&base);
        runner.run(&base.clone().with_mode(SchedulerMode::Slicc));
        runner.run(&base.clone().with_seed(123));
        let mut policy_seed = base.clone();
        policy_seed.config.seed ^= 1;
        runner.run(&policy_seed);
        let stats = runner.stats();
        assert_eq!(stats.cache_misses, 4, "each distinct request must simulate");
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn batch_deduplicates_repeated_points() {
        let runner = Runner::new(2);
        let base = tiny_request();
        let slicc = base.clone().with_mode(SchedulerMode::Slicc);
        let results = runner.run_all(&[base.clone(), slicc.clone(), base.clone(), slicc]);
        assert_eq!(results.len(), 4);
        assert_eq!(runner.stats().cache_misses, 2, "two distinct points in the batch");
        assert!(!results[0].from_cache);
        assert!(!results[1].from_cache);
        assert!(results[2].from_cache);
        assert!(results[3].from_cache);
        assert_eq!(format!("{:?}", results[0].metrics), format!("{:?}", results[2].metrics));
        assert_eq!(format!("{:?}", results[1].metrics), format!("{:?}", results[3].metrics));
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let runner = Runner::new(4);
        let reqs: Vec<RunRequest> = [
            SchedulerMode::Baseline,
            SchedulerMode::Slicc,
            SchedulerMode::SliccSw,
            SchedulerMode::Steps,
        ]
        .iter()
        .map(|&m| tiny_request().with_mode(m))
        .collect();
        let results = runner.run_all(&reqs);
        for (req, result) in reqs.iter().zip(&results) {
            assert_eq!(result.metrics.mode, req.mode().name(), "result out of submission order");
        }
    }

    #[test]
    fn observability_counters_accumulate() {
        let runner = Runner::new(1);
        let result = runner.run(&tiny_request());
        let stats = runner.stats();
        assert_eq!(stats.simulated_instructions, result.metrics.instructions);
        assert!(stats.busy_nanos > 0);
        assert!(stats.sim_ips() > 0.0);
    }
}
