//! Incremental run-cache checkpointing: sweep results that survive the
//! process.
//!
//! A checkpoint file is an append-only log of completed simulation
//! points, written and device-synced after *each* point finishes so an
//! interrupted sweep loses at most the points in flight. On open, the
//! valid prefix is loaded back into the runner's cache and any corrupt
//! tail (a crash mid-append, a truncated copy) is discarded and
//! overwritten — resume then re-simulates only the missing or failed
//! points. A file that is not a readable checkpoint at all (foreign
//! bytes, a future format version) is quarantined to a `.corrupt`
//! sidecar and the sweep restarts fresh; nothing is ever silently
//! deleted. All writes go through the injectable
//! [`slicc_common::ArtifactIo`] layer so chaos tests can fail or tear
//! them deterministically.
//!
//! # File format (version 1)
//!
//! ```text
//! header:  magic "SLCCKPT1" (8 bytes) | version u32-LE (= 1)
//! record:  tag 0xA5 | key u64-LE | len u32-LE | payload[len] | hash u64-LE
//! ```
//!
//! `key` is [`crate::RunRequest::stable_key`]; the payload is the
//! hand-rolled little-endian encoding of the [`RunResult`] (the workspace
//! builds with no external dependencies, so there is no serde — see
//! DESIGN.md §5); `hash` is the workspace's stable FNV-1a over the key
//! and payload bytes, so a torn or bit-flipped record is detected and
//! dropped rather than resurrected as a wrong result. Results are
//! deterministic per key, which is what makes "drop the tail, re-simulate
//! the rest" a correct recovery strategy.

use crate::metrics::RunMetrics;
use crate::runner::RunResult;
use slicc_cache::MissBreakdown;
use slicc_common::{ArtifactIo, StableHasher, StdIo};
use slicc_cpu::CoreStats;
use slicc_mem::{DramStats, L2Stats};
use slicc_noc::NocStats;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const MAGIC: &[u8; 8] = b"SLCCKPT1";
const VERSION: u32 = 1;
const RECORD_TAG: u8 = 0xA5;
/// Sanity bound on one record's payload; real encoded results are a few
/// hundred bytes, so anything past this is corruption, not data.
const MAX_PAYLOAD: u32 = 1 << 20;

/// Why a checkpoint file could not be used. Corruption *within* a
/// well-formed file is not an error — the valid prefix is kept and the
/// tail re-simulated — and an unreadable file (bad magic, unknown future
/// version) is quarantined to a `.corrupt` sidecar with a fresh restart,
/// also not an error. What remains is real I/O failure; the other
/// variants survive as the internal classification [`Checkpoint::open`]
/// turns into quarantines.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The file exists but does not start with the checkpoint magic.
    BadMagic,
    /// The file is a checkpoint of an unknown format version.
    UnsupportedVersion(u32),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::BadMagic => {
                write!(f, "not a checkpoint file (bad magic)")
            }
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "checkpoint format version {v} is not supported (this build reads {VERSION})")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// What [`Checkpoint::open`] recovered from disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointLoad {
    /// Valid records loaded.
    pub loaded: usize,
    /// Bytes of corrupt tail discarded (0 for a clean file).
    pub dropped_bytes: u64,
    /// Whether the on-disk file was unreadable (foreign bytes, unknown
    /// future version) and was moved aside to the
    /// [`Checkpoint::quarantine_path`] sidecar before starting fresh.
    pub quarantined: bool,
}

impl CheckpointLoad {
    /// Whether a corrupt tail was detected and discarded.
    pub fn truncated(&self) -> bool {
        self.dropped_bytes > 0
    }
}

/// An open checkpoint file, positioned for appending.
pub struct Checkpoint {
    file: File,
    path: PathBuf,
    io: Arc<dyn ArtifactIo>,
}

/// What [`Checkpoint::open`] recovers: the append handle, the valid
/// `(stable_key, result)` records, and a report of the recovery.
pub type OpenedCheckpoint = (Checkpoint, Vec<(u64, RunResult)>, CheckpointLoad);

impl Checkpoint {
    /// Opens (or creates) the checkpoint at `path` with the production
    /// I/O layer. See [`Checkpoint::open_with_io`].
    pub fn open(path: &Path) -> Result<OpenedCheckpoint, CheckpointError> {
        Checkpoint::open_with_io(path, Arc::new(StdIo))
    }

    /// Opens (or creates) the checkpoint at `path`, routing writes
    /// through `io` (chaos tests inject a [`slicc_common::FaultyIo`]).
    ///
    /// Returns the append handle, the valid records recovered from an
    /// existing file, and a [`CheckpointLoad`] describing the recovery. A
    /// corrupt or truncated tail is cut back to the last valid record. A
    /// file that is not a readable checkpoint at all (foreign bytes,
    /// unknown future version) is moved aside to the
    /// [`Checkpoint::quarantine_path`] sidecar — never deleted — and the
    /// sweep restarts with a fresh log; `load.quarantined` reports it.
    pub fn open_with_io(
        path: &Path,
        io: Arc<dyn ArtifactIo>,
    ) -> Result<OpenedCheckpoint, CheckpointError> {
        let mut bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };

        if let Err(reason) = classify(&bytes) {
            // Not a checkpoint we can read. Preserve the bytes in a
            // sidecar for post-mortem and restart with a fresh log.
            std::fs::rename(path, Checkpoint::quarantine_path(path))?;
            bytes = Vec::new();
            let (file, entries, mut load) = Checkpoint::build(path, io, &bytes)?;
            load.quarantined = true;
            debug_assert!(matches!(
                reason,
                CheckpointError::BadMagic | CheckpointError::UnsupportedVersion(_)
            ));
            return Ok((file, entries, load));
        }
        Checkpoint::build(path, io, &bytes)
    }

    /// The sidecar an unreadable checkpoint is quarantined to:
    /// `<path>.corrupt`.
    pub fn quarantine_path(path: &Path) -> PathBuf {
        let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        name.push(".corrupt");
        path.with_file_name(name)
    }

    /// Recovers the valid record prefix of `bytes` (already classified as
    /// readable) and opens the append handle, healing a torn tail or a
    /// missing/partial header.
    fn build(
        path: &Path,
        io: Arc<dyn ArtifactIo>,
        bytes: &[u8],
    ) -> Result<OpenedCheckpoint, CheckpointError> {
        let header_len = MAGIC.len() + 4;
        let mut entries = Vec::new();
        let mut load = CheckpointLoad::default();
        let mut write_header = false;
        let valid_end = if bytes.len() < header_len {
            // Empty file, or a header torn by an interrupted create.
            load.dropped_bytes = bytes.len() as u64;
            write_header = true;
            header_len
        } else {
            let mut pos = header_len;
            while let Some((key, result, next)) = read_record(bytes, pos) {
                entries.push((key, result));
                pos = next;
            }
            load.dropped_bytes = (bytes.len() - pos) as u64;
            pos
        };
        load.loaded = entries.len();

        let mut file = OpenOptions::new().create(true).truncate(false).write(true).open(path)?;
        if write_header {
            file.set_len(0)?;
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            // Durability for the create itself: a power cut after the
            // first append must not find a file with no header.
            io.sync_all(&file)?;
        } else if load.truncated() {
            // Cut the corrupt tail so future appends extend a valid log.
            file.set_len(valid_end as u64)?;
        }
        file.seek(SeekFrom::Start(valid_end as u64))?;
        Ok((Checkpoint { file, path: path.to_path_buf(), io }, entries, load))
    }

    /// Appends one completed point and syncs it to the device (not just
    /// the OS buffer), so the record survives even if the machine — not
    /// merely the process — dies on the very next point. On a failed
    /// write the log is rewound best-effort to its pre-append length, so
    /// a retried append extends a clean log.
    pub fn append(&mut self, key: u64, result: &RunResult) -> Result<(), CheckpointError> {
        let start = self.file.stream_position()?;
        let payload = encode_result(result);
        let mut record = Vec::with_capacity(1 + 8 + 4 + payload.len() + 8);
        record.push(RECORD_TAG);
        record.extend_from_slice(&key.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&record_hash(key, &payload).to_le_bytes());
        let written = self
            .io
            .write_chunk(&mut self.file, &record)
            .and_then(|()| self.io.sync_data(&self.file));
        if let Err(e) = written {
            let _ = self.file.set_len(start);
            let _ = self.file.seek(SeekFrom::Start(start));
            return Err(e.into());
        }
        Ok(())
    }

    /// The file this checkpoint appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Decides whether `bytes` are a checkpoint this build can read: yes for
/// an empty/torn-header file whose prefix matches our magic (recoverable),
/// no for foreign bytes or a future format version (quarantine).
fn classify(bytes: &[u8]) -> Result<(), CheckpointError> {
    let header_len = MAGIC.len() + 4;
    if bytes.len() < header_len {
        if !MAGIC.starts_with(&bytes[..bytes.len().min(MAGIC.len())]) {
            return Err(CheckpointError::BadMagic);
        }
        return Ok(());
    }
    if bytes[..MAGIC.len()] != MAGIC[..] {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[MAGIC.len()..header_len].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    Ok(())
}

/// The integrity hash over one record: the workspace's stable FNV-1a so
/// the format is identical on every host.
fn record_hash(key: u64, payload: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(key);
    h.write_bytes(payload);
    h.finish()
}

/// Parses the record at `pos`, returning `(key, result, next_pos)`, or
/// `None` if the bytes from `pos` are not a complete valid record (end of
/// file or a corrupt tail — the caller cannot distinguish, and does not
/// need to: both mean "stop here and truncate").
fn read_record(bytes: &[u8], pos: usize) -> Option<(u64, RunResult, usize)> {
    let header_end = pos.checked_add(1 + 8 + 4)?;
    if header_end > bytes.len() || bytes[pos] != RECORD_TAG {
        return None;
    }
    let key = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().ok()?);
    let len = u32::from_le_bytes(bytes[pos + 9..pos + 13].try_into().ok()?);
    if len > MAX_PAYLOAD {
        return None;
    }
    let payload_end = header_end.checked_add(len as usize)?;
    let hash_end = payload_end.checked_add(8)?;
    if hash_end > bytes.len() {
        return None;
    }
    let payload = &bytes[header_end..payload_end];
    let stored = u64::from_le_bytes(bytes[payload_end..hash_end].try_into().ok()?);
    if stored != record_hash(key, payload) {
        return None;
    }
    let result = decode_result(payload)?;
    Some((key, result, hash_end))
}

// ---------------------------------------------------------------------
// RunResult payload codec: explicit field-by-field little-endian
// encoding. Field order is part of the version-1 format; changing it (or
// RunMetrics' shape) requires bumping VERSION.

/// The serialized size of `result` in the version-1 payload encoding:
/// the byte-weight basis the bounded run cache charges per entry (see
/// [`crate::service::BoundedResultCache`]).
pub(crate) fn encoded_size(result: &RunResult) -> usize {
    encode_result(result).len()
}

fn encode_result(result: &RunResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    put_u64(&mut out, result.wall.as_nanos() as u64);
    put_f64(&mut out, result.sim_ips);
    let m = &result.metrics;
    put_str(&mut out, &m.workload);
    put_str(&mut out, &m.mode);
    for v in [
        m.instructions,
        m.cycles,
        m.i_misses,
        m.d_misses,
        m.i_accesses,
        m.d_accesses,
        m.migrations,
        m.context_switches,
        m.matched_migrations,
        m.idle_migrations,
        m.blocked_migrations,
        m.completed_threads,
        m.i_tlb_misses,
        m.d_tlb_misses,
        m.p95_txn_latency,
    ] {
        put_u64(&mut out, v);
    }
    for v in core_stats_fields(&m.core_stats) {
        put_u64(&mut out, v);
    }
    for v in [m.noc.unicasts, m.noc.broadcasts, m.noc.unicast_hops] {
        put_u64(&mut out, v);
    }
    for v in [m.l2.hits, m.l2.misses, m.l2.store_invalidations, m.l2.downgrades, m.l2.back_invalidations]
    {
        put_u64(&mut out, v);
    }
    for v in [m.dram.row_hits, m.dram.row_closed, m.dram.row_conflicts, m.dram.reads, m.dram.writes] {
        put_u64(&mut out, v);
    }
    put_breakdown(&mut out, &m.i_breakdown);
    put_breakdown(&mut out, &m.d_breakdown);
    match m.bloom_accuracy {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_f64(&mut out, v);
        }
    }
    put_f64(&mut out, m.mean_cores_per_thread);
    put_f64(&mut out, m.stray_fraction);
    put_f64(&mut out, m.mean_txn_latency);
    out
}

fn decode_result(payload: &[u8]) -> Option<RunResult> {
    let mut cur = Cursor { bytes: payload, pos: 0 };
    let wall = Duration::from_nanos(cur.u64()?);
    let sim_ips = cur.f64()?;
    let mut m = RunMetrics {
        workload: cur.str()?,
        mode: cur.str()?,
        ..Default::default()
    };
    m.instructions = cur.u64()?;
    m.cycles = cur.u64()?;
    m.i_misses = cur.u64()?;
    m.d_misses = cur.u64()?;
    m.i_accesses = cur.u64()?;
    m.d_accesses = cur.u64()?;
    m.migrations = cur.u64()?;
    m.context_switches = cur.u64()?;
    m.matched_migrations = cur.u64()?;
    m.idle_migrations = cur.u64()?;
    m.blocked_migrations = cur.u64()?;
    m.completed_threads = cur.u64()?;
    m.i_tlb_misses = cur.u64()?;
    m.d_tlb_misses = cur.u64()?;
    m.p95_txn_latency = cur.u64()?;
    m.core_stats = CoreStats {
        instructions: cur.u64()?,
        base_cycles: cur.u64()?,
        ifetch_stall_cycles: cur.u64()?,
        fetch_latency_cycles: cur.u64()?,
        tlb_walk_cycles: cur.u64()?,
        data_stall_cycles: cur.u64()?,
        migration_cycles: cur.u64()?,
        idle_cycles: cur.u64()?,
    };
    m.noc = NocStats { unicasts: cur.u64()?, broadcasts: cur.u64()?, unicast_hops: cur.u64()? };
    m.l2 = L2Stats {
        hits: cur.u64()?,
        misses: cur.u64()?,
        store_invalidations: cur.u64()?,
        downgrades: cur.u64()?,
        back_invalidations: cur.u64()?,
    };
    m.dram = DramStats {
        row_hits: cur.u64()?,
        row_closed: cur.u64()?,
        row_conflicts: cur.u64()?,
        reads: cur.u64()?,
        writes: cur.u64()?,
    };
    m.i_breakdown = cur.breakdown()?;
    m.d_breakdown = cur.breakdown()?;
    m.bloom_accuracy = match cur.u8()? {
        0 => None,
        1 => Some(cur.f64()?),
        _ => return None,
    };
    m.mean_cores_per_thread = cur.f64()?;
    m.stray_fraction = cur.f64()?;
    m.mean_txn_latency = cur.f64()?;
    if cur.pos != payload.len() {
        return None; // trailing garbage inside a "valid" record
    }
    // A checkpointed result is, by definition, served from disk rather
    // than freshly simulated; the flag is recomputed per batch anyway.
    // The format persists metrics only, so observation artifacts do not
    // survive a round trip: decoded results always carry `obs: None`.
    // `attempts` is likewise transient retry metadata; it describes the
    // original simulation, not the reload.
    Some(RunResult { metrics: m, wall, sim_ips, from_cache: true, obs: None, attempts: 1 })
}

fn core_stats_fields(s: &CoreStats) -> [u64; 8] {
    [
        s.instructions,
        s.base_cycles,
        s.ifetch_stall_cycles,
        s.fetch_latency_cycles,
        s.tlb_walk_cycles,
        s.data_stall_cycles,
        s.migration_cycles,
        s.idle_cycles,
    ]
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_breakdown(out: &mut Vec<u8>, b: &Option<MissBreakdown>) {
    match b {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            put_u64(out, b.compulsory);
            put_u64(out, b.conflict);
            put_u64(out, b.capacity);
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().ok()?);
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn breakdown(&mut self) -> Option<Option<MissBreakdown>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(MissBreakdown {
                compulsory: self.u64()?,
                conflict: self.u64()?,
                capacity: self.u64()?,
            })),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique temp path per test (no tempfile crate in the workspace).
    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("slicc-ckpt-{tag}-{}-{n}.bin", std::process::id()))
    }

    /// A result with every field populated distinctly, so a codec that
    /// swaps or drops any field fails the round trip.
    fn dense_result() -> RunResult {
        let mut m = RunMetrics { workload: "TPC-C-1".into(), mode: "SLICC".into(), ..Default::default() };
        m.instructions = 1;
        m.cycles = 2;
        m.i_misses = 3;
        m.d_misses = 4;
        m.i_accesses = 5;
        m.d_accesses = 6;
        m.migrations = 7;
        m.context_switches = 8;
        m.matched_migrations = 9;
        m.idle_migrations = 10;
        m.blocked_migrations = 11;
        m.completed_threads = 12;
        m.i_tlb_misses = 13;
        m.d_tlb_misses = 14;
        m.p95_txn_latency = 15;
        m.core_stats = CoreStats {
            instructions: 16,
            base_cycles: 17,
            ifetch_stall_cycles: 18,
            fetch_latency_cycles: 19,
            tlb_walk_cycles: 20,
            data_stall_cycles: 21,
            migration_cycles: 22,
            idle_cycles: 23,
        };
        m.noc = NocStats { unicasts: 24, broadcasts: 25, unicast_hops: 26 };
        m.l2 = L2Stats {
            hits: 27,
            misses: 28,
            store_invalidations: 29,
            downgrades: 30,
            back_invalidations: 31,
        };
        m.dram =
            DramStats { row_hits: 32, row_closed: 33, row_conflicts: 34, reads: 35, writes: 36 };
        m.i_breakdown = Some(MissBreakdown { compulsory: 37, conflict: 38, capacity: 39 });
        m.d_breakdown = None;
        m.bloom_accuracy = Some(0.25);
        m.mean_cores_per_thread = 1.5;
        m.stray_fraction = 0.125;
        m.mean_txn_latency = 42.5;
        RunResult {
            metrics: m,
            wall: Duration::from_nanos(12345),
            sim_ips: 678.0,
            from_cache: false,
            obs: None,
            attempts: 1,
        }
    }

    fn assert_same_result(a: &RunResult, b: &RunResult) {
        assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
        assert_eq!(a.wall, b.wall);
        assert_eq!(a.sim_ips, b.sim_ips);
    }

    #[test]
    fn payload_round_trips_every_field() {
        let original = dense_result();
        let decoded = decode_result(&encode_result(&original)).expect("payload decodes");
        assert_same_result(&original, &decoded);
        assert!(decoded.from_cache, "a decoded result is by definition cached");
    }

    #[test]
    fn file_round_trips_and_reopens() {
        let path = temp_path("roundtrip");
        let (mut ckpt, entries, load) = Checkpoint::open(&path).unwrap();
        assert!(entries.is_empty());
        assert_eq!(load, CheckpointLoad::default());
        ckpt.append(0xABCD, &dense_result()).unwrap();
        ckpt.append(0xEF01, &dense_result()).unwrap();
        drop(ckpt);

        let (_ckpt, entries, load) = Checkpoint::open(&path).unwrap();
        assert_eq!(load.loaded, 2);
        assert!(!load.truncated());
        assert_eq!(entries[0].0, 0xABCD);
        assert_eq!(entries[1].0, 0xEF01);
        assert_same_result(&entries[0].1, &dense_result());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped_and_healed() {
        let path = temp_path("truncate");
        let (mut ckpt, _, _) = Checkpoint::open(&path).unwrap();
        ckpt.append(1, &dense_result()).unwrap();
        ckpt.append(2, &dense_result()).unwrap();
        drop(ckpt);

        // Simulate a crash mid-append: cut the last few bytes.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let (mut ckpt, entries, load) = Checkpoint::open(&path).unwrap();
        assert_eq!(load.loaded, 1, "only the intact record survives");
        assert!(load.truncated());
        assert_eq!(entries[0].0, 1);
        // The log is healed: appending after recovery yields a clean file.
        ckpt.append(3, &dense_result()).unwrap();
        drop(ckpt);
        let (_ckpt, entries, load) = Checkpoint::open(&path).unwrap();
        assert_eq!(load.loaded, 2);
        assert!(!load.truncated());
        assert_eq!(entries.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![1, 3]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_fails_the_hash_and_drops_the_record() {
        let path = temp_path("bitflip");
        let (mut ckpt, _, _) = Checkpoint::open(&path).unwrap();
        ckpt.append(1, &dense_result()).unwrap();
        drop(ckpt);

        let mut bytes = std::fs::read(&path).unwrap();
        let mid = MAGIC.len() + 4 + 20; // somewhere inside the payload
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (_ckpt, entries, load) = Checkpoint::open(&path).unwrap();
        assert!(entries.is_empty(), "a corrupt record must not be served");
        assert!(load.truncated());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_file_is_quarantined_not_lost() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let (mut ckpt, entries, load) = Checkpoint::open(&path).unwrap();
        assert!(entries.is_empty());
        assert!(load.quarantined, "a foreign file must be reported as quarantined");
        assert_eq!(load.loaded, 0);
        // The original bytes survive in the sidecar for post-mortem…
        let sidecar = Checkpoint::quarantine_path(&path);
        assert_eq!(std::fs::read(&sidecar).unwrap(), b"definitely not a checkpoint");
        // …and the sweep restarts with a working log at the same path.
        ckpt.append(7, &dense_result()).unwrap();
        drop(ckpt);
        let (_ckpt, entries, load) = Checkpoint::open(&path).unwrap();
        assert_eq!(load.loaded, 1);
        assert!(!load.quarantined);
        assert_eq!(entries[0].0, 7);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&sidecar).unwrap();
    }

    #[test]
    fn future_version_is_quarantined() {
        let path = temp_path("version");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let (_ckpt, entries, load) = Checkpoint::open(&path).unwrap();
        assert!(entries.is_empty());
        assert!(load.quarantined);
        let sidecar = Checkpoint::quarantine_path(&path);
        assert_eq!(std::fs::read(&sidecar).unwrap(), bytes, "future bytes preserved verbatim");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&sidecar).unwrap();
    }

    #[test]
    fn file_is_replayable_after_every_append() {
        // The durability contract: each append ends with the bytes on
        // disk forming a complete, loadable log. Snapshot the file after
        // every append (as a crash at that instant would see it) and
        // replay the snapshot.
        let path = temp_path("replay");
        let snap = temp_path("replay-snap");
        let (mut ckpt, _, _) = Checkpoint::open(&path).unwrap();
        for i in 1..=4u64 {
            ckpt.append(i, &dense_result()).unwrap();
            std::fs::copy(&path, &snap).unwrap();
            let (_c, entries, load) = Checkpoint::open(&snap).unwrap();
            assert_eq!(load.loaded, i as usize, "append {i} must be replayable");
            assert!(!load.truncated(), "no torn bytes after a successful append");
            assert_eq!(
                entries.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
                (1..=i).collect::<Vec<_>>()
            );
        }
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&snap).unwrap();
    }

    #[test]
    fn failed_append_rewinds_and_a_retry_extends_a_clean_log() {
        use slicc_common::{FaultyIo, IoFault};
        let path = temp_path("rewind");
        let io = Arc::new(FaultyIo::new(IoFault::FailOnNth(2)));
        let (mut ckpt, _, _) = Checkpoint::open_with_io(&path, io).unwrap();
        ckpt.append(1, &dense_result()).unwrap();
        assert!(ckpt.append(2, &dense_result()).is_err(), "second write is injected to fail");
        // The retry (write #3) must land on a clean log.
        ckpt.append(2, &dense_result()).unwrap();
        drop(ckpt);
        let (_c, entries, load) = Checkpoint::open(&path).unwrap();
        assert_eq!(load.loaded, 2);
        assert!(!load.truncated(), "the failed append must not leave torn bytes");
        assert_eq!(entries.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_appends_are_dropped_on_reload_and_earlier_points_survive() {
        use slicc_common::{FaultyIo, IoFault};
        let path = temp_path("torn");
        // A healthy first run commits two points…
        let (mut ckpt, _, _) = Checkpoint::open(&path).unwrap();
        ckpt.append(1, &dense_result()).unwrap();
        ckpt.append(2, &dense_result()).unwrap();
        drop(ckpt);
        // …then a run whose appends all land torn (CorruptCheckpointTail).
        let io = Arc::new(FaultyIo::new(IoFault::CorruptTail));
        let (mut ckpt, entries, _) = Checkpoint::open_with_io(&path, io).unwrap();
        assert_eq!(entries.len(), 2);
        ckpt.append(3, &dense_result()).unwrap();
        drop(ckpt);
        let (_c, entries, load) = Checkpoint::open(&path).unwrap();
        assert_eq!(load.loaded, 2, "the torn record must be dropped");
        assert!(load.truncated());
        assert_eq!(entries.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn deterministic_fuzz_never_panics_and_preserves_the_valid_prefix() {
        // Hand-rolled stand-in for the proptest version (tests/properties
        // .rs, feature-gated): every truncation length, plus a SplitMix64
        // sample of single-bit flips. Whatever the damage, open() must
        // not panic, must keep loaded keys a prefix of what was written,
        // and must leave a healed, appendable log behind.
        use slicc_common::SplitMix64;
        let path = temp_path("fuzz");
        let (mut ckpt, _, _) = Checkpoint::open(&path).unwrap();
        for i in 1..=3u64 {
            ckpt.append(i, &dense_result()).unwrap();
        }
        drop(ckpt);
        let pristine = std::fs::read(&path).unwrap();

        let check = |damaged: &[u8], what: &str| {
            std::fs::write(&path, damaged).unwrap();
            let sidecar = Checkpoint::quarantine_path(&path);
            std::fs::remove_file(&sidecar).ok();
            let (mut ckpt, entries, load) = Checkpoint::open(&path).unwrap();
            let keys: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
            assert!(
                [1, 2, 3].starts_with(&keys),
                "{what}: loaded keys {keys:?} must be a prefix of the written ones"
            );
            for (i, (_, r)) in entries.iter().enumerate() {
                assert_same_result(r, &dense_result());
                assert_eq!(keys[i], i as u64 + 1);
            }
            if load.quarantined {
                assert_eq!(std::fs::read(&sidecar).unwrap(), damaged, "{what}: bytes preserved");
            }
            // The healed log must accept appends and reload cleanly.
            ckpt.append(99, &dense_result()).unwrap();
            drop(ckpt);
            let (_c, reloaded, load) = Checkpoint::open(&path).unwrap();
            assert!(!load.truncated(), "{what}: healed log must reload clean");
            assert_eq!(reloaded.len(), keys.len() + 1);
        };

        for cut in 0..pristine.len() {
            check(&pristine[..cut], &format!("truncate to {cut}"));
        }
        let mut rng = SplitMix64::new(0x5EED_CAFE);
        for _ in 0..200 {
            let byte = (rng.next_u64() % pristine.len() as u64) as usize;
            let bit = 1u8 << (rng.next_u64() % 8);
            let mut damaged = pristine.clone();
            damaged[byte] ^= bit;
            check(&damaged, &format!("flip bit {bit:#04x} of byte {byte}"));
        }
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(Checkpoint::quarantine_path(&path)).ok();
    }
}
