//! `slicc` — command-line driver for the SLICC chip-multiprocessor
//! simulator.
//!
//! Arguments parse into a [`RunRequest`] via [`SimConfigBuilder`], so every
//! invalid combination is rejected with an error naming the offending
//! option before any simulation starts. Run `slicc --help` for the full
//! option list.

use slicc_cache::PolicyKind;
use slicc_common::{atomic_write, install_sigint_cancel, sigint_count, FaultyIo};
use slicc_sim::{
    chrome_trace_json, DeadlineConfig, InjectedFault, ObsConfig, ProgressEvent, ProgressKind,
    RunError, RunRequest, RunResult, Runner, RetryPolicy, SchedulerMode, SimConfigBuilder,
    TraceMeta,
};
use slicc_trace::{TraceScale, Workload};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const USAGE: &str = "slicc — SLICC chip-multiprocessor simulator

USAGE:
    slicc [OPTIONS]

OPTIONS:
    --workload tpcc1|tpcc10|tpce|mapreduce
                          benchmark workload (default tpcc1)
    --mode base|slicc|slicc-sw|slicc-pp|steps
                          scheduling/migration mode (default slicc-sw)
    --scale tiny|small|paper
                          trace scale (default small)
    --tasks N             override the transaction count
    --seed N              override the workload trace seed
    --policy lru|lip|bip|dip|srrip|brrip|drrip
                          L1 replacement policy (default lru)
    --l1i-kib N           L1-I capacity in KiB (default 32)
    --next-line           enable next-line L1-I prefetching
    --pif-bound           the paper's PIF model (512 KiB L1-I, 3-cycle latency)
    --pif-real            the real PIF prefetcher (history buffer + streams)
    --fill-up N           SLICC fill-up_t threshold
    --matched N           SLICC matched_t threshold
    --dilution N          SLICC dilution_t threshold
    --classify            enable 3C miss classification
    --baseline-compare    also run the same machine under baseline
                          scheduling and report speedup
    --fuel-steps N        abort the run after N event-loop steps
                          (forward-progress watchdog)
    --decode-threads N    worker threads used inside each point to
                          pre-decode trace streams in parallel
                          (default 1; never changes results;
                          --threads-per-point is a deprecated alias)
    --point-threads N|auto
                          worker threads for one point's parallel
                          event loop: a committer plus N-1 shard
                          lanes (default 1; auto = simulated
                          cores/8, clamped to the host; never
                          changes results)
    --fuel-cycles N       abort the run once any core passes cycle N
    --deadline-ms N       abort any point still simulating after N
                          wall-clock milliseconds (reported with a
                          diagnostic snapshot, like the watchdog)
    --retries N           re-attempt transient failures (livelocks,
                          checkpoint write errors) up to N extra times,
                          escalating the fuel budget per retry
                          (default 0)
    --inject panic|stall:STEP|io-error:N|corrupt-tail
                          deterministic fault injection for resilience
                          drills: panic mid-run, stall the event loop at
                          STEP, fail the Nth artifact write, or tear
                          every checkpoint record's final byte
    --cache-bytes N       byte budget for the memoized run cache
                          (default 64 MiB); least-recently-used
                          results are evicted, never altered
    --queue-limit N       shed new submissions once N points are
                          already waiting behind the worker pool
                          (typed 'overloaded' failure with a
                          retry-after hint; default unlimited)
    --checkpoint PATH     load completed points from PATH and append
                          each newly completed point to it; an
                          unreadable file is quarantined to PATH.corrupt
                          and the sweep restarts fresh
    --keep-going          on failure, still run the remaining points
                          before exiting
    --progress quiet|plain|json
                          stderr telemetry: nothing, human progress
                          lines, or one JSON object per line
                          (default plain)
    --obs-out PREFIX      observe the run and write PREFIX.trace.json
                          (Chrome trace_event JSON, loadable in
                          Perfetto), PREFIX.intervals.csv and
                          PREFIX.intervals.json (per-epoch MPKI / IPC /
                          migration series)
    --obs-epoch N         interval-series epoch length in cycles
                          (default 10000; implies series collection)
    --obs-events N        per-core event-ring capacity (default 16384;
                          implies event tracing)
    --obs-sample N        keep 1 in N cache-miss events (default 64)
    --obs-summary         print the per-epoch table to stdout after the
                          metrics report
    --help                print this help

Exit status is 0 on success, 1 if any simulation point fails (the
failing point's workload/scale/seed and stable key are printed to
stderr), 2 on a usage error, and 130 when interrupted by Ctrl-C. The
first Ctrl-C cancels outstanding points cooperatively — completed
points are flushed to the checkpoint and a resume hint is printed; a
second Ctrl-C exits immediately.";

/// Staged `--point-threads` value; `auto` resolves against the built
/// config's core count and the host's parallelism.
enum PointThreads {
    Exact(usize),
    Auto,
}

/// A rejected command line: which option went wrong, and why.
#[derive(Debug)]
struct CliError {
    option: String,
    message: String,
}

impl CliError {
    fn new(option: &str, message: impl Into<String>) -> Self {
        CliError { option: option.to_string(), message: message.into() }
    }
}

#[derive(Debug)]
enum Command {
    Help,
    Run {
        // Boxed: a RunRequest embeds a full SimConfig, and clippy rightly
        // objects to a ~600-byte spread between the variants.
        request: Box<RunRequest>,
        compare: bool,
        keep_going: bool,
        checkpoint: Option<PathBuf>,
        progress: ProgressKind,
        obs_out: Option<PathBuf>,
        obs_summary: bool,
        retries: u32,
        inject: Option<InjectedFault>,
        cache_bytes: Option<u64>,
        queue_limit: Option<usize>,
    },
}

fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut workload = Workload::TpcC1;
    let mut mode = SchedulerMode::SliccSw;
    let mut scale = TraceScale::small();
    let mut tasks: Option<u32> = None;
    let mut seed: Option<u64> = None;
    let mut builder = SimConfigBuilder::paper_baseline();
    let mut compare = false;
    let mut keep_going = false;
    let mut checkpoint: Option<PathBuf> = None;
    let mut progress = ProgressKind::Plain;
    let mut obs_out: Option<PathBuf> = None;
    let mut obs_summary = false;
    let mut obs_epoch: Option<u64> = None;
    let mut obs_events: Option<usize> = None;
    let mut obs_sample: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut point_threads = None;
    let mut retries: u32 = 0;
    let mut inject: Option<InjectedFault> = None;
    let mut cache_bytes: Option<u64> = None;
    let mut queue_limit: Option<usize> = None;

    let mut i = 0;
    fn value(args: &[String], i: &mut usize, opt: &str) -> Result<String, CliError> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| CliError::new(opt, "missing value"))
    }
    fn number<T: std::str::FromStr>(opt: &str, raw: &str) -> Result<T, CliError> {
        raw.parse().map_err(|_| CliError::new(opt, format!("expected a number, got '{raw}'")))
    }

    while i < args.len() {
        let opt = args[i].clone();
        match opt.as_str() {
            "--help" | "-h" => return Ok(Command::Help),
            "--workload" => {
                workload = match value(args, &mut i, &opt)?.as_str() {
                    "tpcc1" => Workload::TpcC1,
                    "tpcc10" => Workload::TpcC10,
                    "tpce" => Workload::TpcE,
                    "mapreduce" => Workload::MapReduce,
                    w => return Err(CliError::new(&opt, format!("unknown workload '{w}'"))),
                }
            }
            "--mode" => {
                mode = match value(args, &mut i, &opt)?.as_str() {
                    "base" => SchedulerMode::Baseline,
                    "slicc" => SchedulerMode::Slicc,
                    "slicc-sw" => SchedulerMode::SliccSw,
                    "slicc-pp" => SchedulerMode::SliccPp,
                    "steps" => SchedulerMode::Steps,
                    m => return Err(CliError::new(&opt, format!("unknown mode '{m}'"))),
                }
            }
            "--scale" => {
                scale = match value(args, &mut i, &opt)?.as_str() {
                    "tiny" => TraceScale::tiny(),
                    "small" => TraceScale::small(),
                    "paper" => TraceScale::paper_like(),
                    s => return Err(CliError::new(&opt, format!("unknown scale '{s}'"))),
                }
            }
            "--tasks" => tasks = Some(number(&opt, &value(args, &mut i, &opt)?)?),
            "--seed" => seed = Some(number(&opt, &value(args, &mut i, &opt)?)?),
            "--policy" => {
                let p = value(args, &mut i, &opt)?;
                let policy = PolicyKind::ALL
                    .into_iter()
                    .find(|k| k.name().eq_ignore_ascii_case(&p))
                    .ok_or_else(|| CliError::new(&opt, format!("unknown policy '{p}'")))?;
                builder = builder.policy(policy);
            }
            "--l1i-kib" => {
                let kib: u64 = number(&opt, &value(args, &mut i, &opt)?)?;
                builder = builder.l1i_size(kib * 1024);
            }
            "--next-line" => builder = builder.next_line(1),
            "--pif-bound" => builder = builder.pif_model(),
            "--pif-real" => builder = builder.real_pif(),
            "--fill-up" => builder = builder.fill_up(number(&opt, &value(args, &mut i, &opt)?)?),
            "--matched" => builder = builder.matched(number(&opt, &value(args, &mut i, &opt)?)?),
            "--dilution" => builder = builder.dilution(number(&opt, &value(args, &mut i, &opt)?)?),
            "--classify" => builder = builder.classify_3c(),
            "--baseline-compare" => compare = true,
            "--fuel-steps" => {
                builder = builder.watchdog_steps(number(&opt, &value(args, &mut i, &opt)?)?)
            }
            "--fuel-cycles" => {
                builder = builder.watchdog_cycles(number(&opt, &value(args, &mut i, &opt)?)?)
            }
            "--decode-threads" | "--threads-per-point" => {
                // The old name survives one release as an alias.
                builder = builder.decode_threads(number(&opt, &value(args, &mut i, &opt)?)?)
            }
            "--point-threads" => {
                let raw = value(args, &mut i, &opt)?;
                point_threads = Some(if raw == "auto" {
                    PointThreads::Auto
                } else {
                    PointThreads::Exact(number(&opt, &raw)?)
                });
            }
            "--deadline-ms" => deadline_ms = Some(number(&opt, &value(args, &mut i, &opt)?)?),
            "--retries" => retries = number(&opt, &value(args, &mut i, &opt)?)?,
            "--inject" => {
                let spec = value(args, &mut i, &opt)?;
                let fault = InjectedFault::parse(&spec)
                    .ok_or_else(|| CliError::new(&opt, format!("unknown fault spec '{spec}'")))?;
                builder = builder.inject_fault(fault);
                inject = Some(fault);
            }
            "--cache-bytes" => cache_bytes = Some(number(&opt, &value(args, &mut i, &opt)?)?),
            "--queue-limit" => queue_limit = Some(number(&opt, &value(args, &mut i, &opt)?)?),
            "--checkpoint" => checkpoint = Some(PathBuf::from(value(args, &mut i, &opt)?)),
            "--keep-going" => keep_going = true,
            "--progress" => {
                let p = value(args, &mut i, &opt)?;
                progress = ProgressKind::parse(&p)
                    .ok_or_else(|| CliError::new(&opt, format!("unknown progress kind '{p}'")))?;
            }
            "--obs-out" => obs_out = Some(PathBuf::from(value(args, &mut i, &opt)?)),
            "--obs-epoch" => obs_epoch = Some(number(&opt, &value(args, &mut i, &opt)?)?),
            "--obs-events" => obs_events = Some(number(&opt, &value(args, &mut i, &opt)?)?),
            "--obs-sample" => obs_sample = Some(number(&opt, &value(args, &mut i, &opt)?)?),
            "--obs-summary" => obs_summary = true,
            other => return Err(CliError::new(other, "unknown option")),
        }
        i += 1;
    }

    // --mode is applied last: the PIF helpers default to baseline
    // scheduling, but an explicit (or default) --mode always wins, matching
    // the original CLI's behaviour.
    let mut config = builder
        .mode(mode)
        .build()
        .map_err(|e| CliError::new("configuration", e.to_string()))?;
    // `auto` scales lanes with the simulated machine (one committer per
    // ~8 simulated cores) without oversubscribing the host.
    match point_threads {
        Some(PointThreads::Exact(n)) => config.point_threads = n,
        Some(PointThreads::Auto) => {
            let host = std::thread::available_parallelism().map_or(1, |n| n.get());
            config.point_threads = (config.cores / 8).clamp(1, host);
        }
        None => {}
    }
    config.try_validate().map_err(|e| CliError::new("configuration", e.to_string()))?;
    let mut request = RunRequest::new(workload, scale, config);
    if let Some(t) = tasks {
        request = request.with_tasks(t);
    }
    if let Some(s) = seed {
        request = request.with_seed(s);
    }
    if let Some(ms) = deadline_ms {
        request = request.with_deadline(DeadlineConfig::from_ms(ms));
    }

    // Observation flags compose: each tuning flag implies the collection
    // it tunes; --obs-out implies both kinds of artifacts; --obs-summary
    // needs the series only.
    let mut obs = ObsConfig::disabled();
    if let Some(n) = obs_events {
        obs = obs.with_event_capacity(n);
    }
    if let Some(n) = obs_sample {
        obs = obs.with_sample_every(n);
    }
    if let Some(n) = obs_epoch {
        obs = obs.with_epochs(n);
    }
    if obs_out.is_some() {
        obs = obs.with_events();
        if obs.epoch_cycles.is_none() {
            obs = obs.with_epochs(ObsConfig::DEFAULT_EPOCH_CYCLES);
        }
    }
    if obs_summary && obs.epoch_cycles.is_none() {
        obs = obs.with_epochs(ObsConfig::DEFAULT_EPOCH_CYCLES);
    }
    request = request.with_obs(obs);

    Ok(Command::Run {
        request: Box::new(request),
        compare,
        keep_going,
        checkpoint,
        progress,
        obs_out,
        obs_summary,
        retries,
        inject,
        cache_bytes,
        queue_limit,
    })
}

fn report(result: &RunResult, baseline: Option<&RunResult>) {
    let m = &result.metrics;
    println!("workload        {}", m.workload);
    println!("mode            {}", m.mode);
    println!("instructions    {}", m.instructions);
    println!("cycles          {}", m.cycles);
    println!("I-MPKI          {:.2}", m.i_mpki());
    println!("D-MPKI          {:.2}", m.d_mpki());
    println!("I-TLB MPKI      {:.3}", m.i_tlb_mpki());
    println!("D-TLB MPKI      {:.3}", m.d_tlb_mpki());
    println!("migrations      {} ({:.2}/KI)", m.migrations, m.migrations_per_kilo_instruction());
    if m.context_switches > 0 {
        println!("ctx switches    {}", m.context_switches);
    }
    println!("BPKI            {:.3}", m.bpki());
    println!("spread          {:.1} cores/thread", m.mean_cores_per_thread);
    if let Some(bd) = &m.i_breakdown {
        println!("I-miss classes  conflict {} / capacity {} / compulsory {}", bd.conflict, bd.capacity, bd.compulsory);
    }
    let s = &m.core_stats;
    let total = s.total_cycles().max(1);
    println!(
        "cycle mix       base {:.0}% / I-stall {:.0}% / D-stall {:.0}% / TLB {:.0}% / mig {:.0}% / idle {:.0}%",
        100.0 * s.base_cycles as f64 / total as f64,
        100.0 * s.ifetch_stall_cycles as f64 / total as f64,
        100.0 * s.data_stall_cycles as f64 / total as f64,
        100.0 * s.tlb_walk_cycles as f64 / total as f64,
        100.0 * s.migration_cycles as f64 / total as f64,
        100.0 * s.idle_cycles as f64 / total as f64,
    );
    println!("sim throughput  {:.0} instructions/s ({:.2}s wall)", result.sim_ips, result.wall.as_secs_f64());
    if let Some(base) = baseline {
        println!("speedup         {:.3}x over baseline", m.speedup_over(&base.metrics));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = parse_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {}: {}", e.option, e.message);
        eprintln!("run 'slicc --help' for the option list");
        std::process::exit(2);
    });
    let Command::Run {
        request,
        compare,
        keep_going,
        checkpoint,
        progress,
        obs_out,
        obs_summary,
        retries,
        inject,
        cache_bytes,
        queue_limit,
    } = command
    else {
        println!("{USAGE}");
        return;
    };
    let request = *request;

    // Two points (the run and its baseline) are independent jobs, so even
    // the CLI benefits from the runner's pool and cache.
    let runner = Runner::with_default_parallelism();
    let reporter = progress.reporter();
    runner.set_reporter(Arc::clone(&reporter));
    if retries > 0 {
        runner.set_retry_policy(RetryPolicy {
            max_attempts: retries.saturating_add(1),
            ..RetryPolicy::standard()
        });
    }
    // Resource governance (DESIGN.md §12): a byte budget on the memoized
    // run cache and an admission limit on fresh work. Neither changes what
    // a completed run computes.
    if let Some(bytes) = cache_bytes {
        runner.set_cache_bytes(bytes);
    }
    if let Some(limit) = queue_limit {
        runner.set_queue_limit(Some(limit));
    }
    // The first Ctrl-C cancels in-flight points cooperatively; the second
    // hard-exits from the handler itself.
    install_sigint_cancel(&runner.cancel_token());
    if let Some(path) = &checkpoint {
        // I/O fault injection reaches the checkpoint through the same
        // seam the chaos tests use.
        let attached = match inject.and_then(|f| f.artifact_fault()) {
            Some(fault) => runner.attach_checkpoint_with_io(path, Arc::new(FaultyIo::new(fault))),
            None => runner.attach_checkpoint(path),
        };
        match attached {
            Ok(load) => {
                if load.quarantined {
                    reporter.report(ProgressEvent::Warning {
                        message: format!(
                            "checkpoint: {} was not a readable checkpoint; quarantined to \
                             {}.corrupt and starting fresh",
                            path.display(),
                            path.display(),
                        ),
                    });
                }
                if load.loaded > 0 || load.truncated() {
                    reporter.report(ProgressEvent::Note {
                        message: format!(
                            "checkpoint: {} point(s) loaded from {}{}",
                            load.loaded,
                            path.display(),
                            if load.truncated() {
                                format!(" ({} corrupt tail bytes discarded)", load.dropped_bytes)
                            } else {
                                String::new()
                            },
                        ),
                    });
                }
            }
            Err(e) => {
                eprintln!("error: --checkpoint: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut points = vec![request.clone()];
    if compare {
        points.push(request.clone().with_mode(SchedulerMode::Baseline));
    }

    // With --keep-going the whole batch runs regardless of failures;
    // without it, points run in order and the first failure stops the
    // remainder (the baseline of a --baseline-compare is pointless if the
    // run itself died).
    let results: Vec<Result<RunResult, RunError>> = if keep_going {
        runner.run_all(&points)
    } else {
        let mut out = Vec::new();
        for point in &points {
            let outcome = runner.run(point);
            let failed = outcome.is_err();
            out.push(outcome);
            if failed {
                break;
            }
        }
        out
    };

    let mut failed = false;
    if let Some(Ok(result)) = results.first() {
        report(result, results.get(1).and_then(|r| r.as_ref().ok()));
        if obs_out.is_some() || obs_summary {
            match &result.obs {
                Some(observation) => {
                    if obs_summary {
                        print_obs_summary(observation);
                    }
                    if let Some(prefix) = &obs_out {
                        if let Err(e) = write_obs_artifacts(observation, &request, prefix, &*reporter) {
                            eprintln!("error: --obs-out: {e}");
                            failed = true;
                        }
                    }
                }
                None => {
                    // The only unobserved path to a first result is a
                    // checkpoint/cache hit: artifacts are not persisted.
                    reporter.report(ProgressEvent::Warning {
                        message: "observation requested but the point was served from a \
                                  checkpoint; re-run without --checkpoint to capture artifacts"
                            .to_string(),
                    });
                }
            }
        }
    }
    for outcome in &results {
        if let Err(e) = outcome {
            failed = true;
            eprintln!("error: {e}");
        }
    }
    // An interrupt trumps the failure exit: the cancelled points are not
    // wrong, merely unfinished, and the user asked for the stop.
    if sigint_count() > 0 {
        match &checkpoint {
            Some(path) => eprintln!(
                "interrupted: completed points are saved; resume with --checkpoint {}",
                path.display()
            ),
            None => eprintln!(
                "interrupted: nothing persisted; re-run with --checkpoint PATH for resumable sweeps"
            ),
        }
        std::process::exit(130);
    }
    if failed {
        std::process::exit(1);
    }
}

/// The `--obs-summary` table: one row per epoch, stdout (it is part of
/// the report, not progress narration).
fn print_obs_summary(observation: &slicc_sim::Observation) {
    let Some(series) = &observation.series else { return };
    println!();
    println!("interval series ({} epochs of {} cycles)", series.epochs.len(), series.epoch_cycles);
    println!("{:>5} {:>12} {:>12} {:>12} {:>8} {:>8} {:>7} {:>6}", "epoch", "start", "end", "instr", "I-MPKI", "D-MPKI", "IPC", "migr");
    for (i, e) in series.epochs.iter().enumerate() {
        println!(
            "{i:>5} {:>12} {:>12} {:>12} {:>8.2} {:>8.2} {:>7.3} {:>6}",
            e.start_cycle,
            e.end_cycle,
            e.instructions,
            e.i_mpki(),
            e.d_mpki(),
            e.ipc(),
            e.migrations,
        );
    }
    if !observation.events.is_empty() || observation.dropped_events > 0 {
        println!(
            "trace           {} event(s) held, {} overwritten",
            observation.events.len(),
            observation.dropped_events
        );
    }
}

/// Writes `PREFIX.trace.json`, `PREFIX.intervals.csv`, and
/// `PREFIX.intervals.json` for `--obs-out`.
fn write_obs_artifacts(
    observation: &slicc_sim::Observation,
    request: &RunRequest,
    prefix: &Path,
    reporter: &dyn slicc_sim::Reporter,
) -> Result<(), String> {
    let with_suffix = |suffix: &str| {
        let mut name = prefix.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        name.push(suffix);
        prefix.with_file_name(name)
    };
    let meta = TraceMeta {
        workload: request.workload.name().to_string(),
        mode: request.mode().name().to_string(),
        cores: request.config.cores,
    };
    let trace_path = with_suffix(".trace.json");
    atomic_write(&trace_path, chrome_trace_json(&observation.events, &meta).as_bytes())
        .map_err(|e| format!("writing {}: {e}", trace_path.display()))?;
    reporter.report(ProgressEvent::Note {
        message: format!(
            "wrote {} ({} event(s), {} overwritten)",
            trace_path.display(),
            observation.events.len(),
            observation.dropped_events
        ),
    });
    if let Some(series) = &observation.series {
        for (suffix, body) in [(".intervals.csv", series.to_csv()), (".intervals.json", series.to_json())] {
            let path = with_suffix(suffix);
            atomic_write(&path, body.as_bytes())
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            reporter.report(ProgressEvent::Note {
                message: format!("wrote {} ({} epochs)", path.display(), series.epochs.len()),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&args)
    }

    #[test]
    fn defaults_build_a_slicc_sw_request() {
        match parse(&[]).unwrap() {
            Command::Run {
                request,
                compare,
                keep_going,
                checkpoint,
                progress,
                obs_out,
                obs_summary,
                retries,
                inject,
                cache_bytes,
                queue_limit,
            } => {
                assert_eq!(request.workload, Workload::TpcC1);
                assert_eq!(request.mode(), SchedulerMode::SliccSw);
                assert!(!compare);
                assert!(!keep_going);
                assert!(checkpoint.is_none());
                assert_eq!(progress, ProgressKind::Plain);
                assert!(obs_out.is_none());
                assert!(!obs_summary);
                assert_eq!(retries, 0, "retries must be opt-in");
                assert!(inject.is_none());
                assert!(cache_bytes.is_none(), "default budget lives in the runner");
                assert!(queue_limit.is_none(), "admission is unlimited unless asked");
                assert!(!request.deadline.is_enabled(), "no deadline unless asked");
                assert!(!request.obs.enabled(), "observation must be off by default");
            }
            Command::Help => panic!("empty args must run, not print help"),
        }
    }

    #[test]
    fn resilience_flags_reach_the_request_and_runner_knobs() {
        match parse(&["--deadline-ms", "250", "--retries", "2", "--inject", "stall:40"]).unwrap() {
            Command::Run { request, retries, inject, .. } => {
                assert_eq!(request.deadline.budget(), Some(std::time::Duration::from_millis(250)));
                assert_eq!(retries, 2);
                assert_eq!(inject, Some(InjectedFault::StallAt { step: 40 }));
                assert_eq!(
                    request.config.fault_injection,
                    Some(InjectedFault::StallAt { step: 40 }),
                    "the engine-visible fault must reach the config too"
                );
            }
            Command::Help => panic!("expected a run"),
        }
        let err = parse(&["--inject", "meteor"]).unwrap_err();
        assert_eq!(err.option, "--inject");
        assert!(err.message.contains("meteor"));
        let err = parse(&["--deadline-ms", "soon"]).unwrap_err();
        assert_eq!(err.option, "--deadline-ms");
    }

    #[test]
    fn obs_flags_compose_into_the_request() {
        match parse(&["--obs-out", "/tmp/o", "--obs-sample", "8"]).unwrap() {
            Command::Run { request, obs_out, .. } => {
                assert_eq!(obs_out.as_deref(), Some(std::path::Path::new("/tmp/o")));
                assert!(request.obs.events, "--obs-out implies event tracing");
                assert_eq!(request.obs.sample_every, 8);
                assert_eq!(
                    request.obs.epoch_cycles,
                    Some(ObsConfig::DEFAULT_EPOCH_CYCLES),
                    "--obs-out implies the interval series"
                );
            }
            Command::Help => panic!("expected a run"),
        }
        match parse(&["--obs-summary"]).unwrap() {
            Command::Run { request, obs_summary, .. } => {
                assert!(obs_summary);
                assert!(request.obs.epoch_cycles.is_some(), "--obs-summary implies the series");
                assert!(!request.obs.events, "--obs-summary alone needs no event trace");
            }
            Command::Help => panic!("expected a run"),
        }
        match parse(&["--obs-epoch", "500", "--obs-events", "64"]).unwrap() {
            Command::Run { request, .. } => {
                assert_eq!(request.obs.epoch_cycles, Some(500));
                assert_eq!(request.obs.event_capacity, 64);
                assert!(request.obs.events, "--obs-events implies event tracing");
            }
            Command::Help => panic!("expected a run"),
        }
    }

    #[test]
    fn governance_flags_reach_the_runner_knobs() {
        match parse(&["--cache-bytes", "4096", "--queue-limit", "0"]).unwrap() {
            Command::Run { cache_bytes, queue_limit, .. } => {
                assert_eq!(cache_bytes, Some(4096));
                assert_eq!(queue_limit, Some(0), "zero means shed every fresh point");
            }
            Command::Help => panic!("expected a run"),
        }
        let err = parse(&["--cache-bytes", "plenty"]).unwrap_err();
        assert_eq!(err.option, "--cache-bytes");
        let err = parse(&["--queue-limit"]).unwrap_err();
        assert_eq!(err.option, "--queue-limit");
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn progress_flag_parses_and_rejects_garbage() {
        match parse(&["--progress", "json"]).unwrap() {
            Command::Run { progress, .. } => assert_eq!(progress, ProgressKind::Json),
            Command::Help => panic!("expected a run"),
        }
        let err = parse(&["--progress", "loud"]).unwrap_err();
        assert_eq!(err.option, "--progress");
        assert!(err.message.contains("loud"));
    }

    #[test]
    fn fault_isolation_flags_reach_the_config() {
        match parse(&["--fuel-steps", "5", "--fuel-cycles", "100", "--keep-going", "--checkpoint", "/tmp/ck.bin"])
            .unwrap()
        {
            Command::Run { request, keep_going, checkpoint, .. } => {
                assert_eq!(request.config.watchdog.max_heap_steps, Some(5));
                assert_eq!(request.config.watchdog.max_cycles, Some(100));
                assert!(keep_going);
                assert_eq!(checkpoint.as_deref(), Some(std::path::Path::new("/tmp/ck.bin")));
            }
            Command::Help => panic!("expected a run"),
        }
    }

    #[test]
    fn decode_threads_reaches_the_config_and_rejects_zero() {
        match parse(&["--decode-threads", "4"]).unwrap() {
            Command::Run { request, .. } => {
                assert_eq!(request.config.decode_threads, 4);
            }
            Command::Help => panic!("expected a run"),
        }
        // The pre-rename flag survives one release as an alias.
        match parse(&["--threads-per-point", "3"]).unwrap() {
            Command::Run { request, .. } => {
                assert_eq!(request.config.decode_threads, 3);
            }
            Command::Help => panic!("expected a run"),
        }
        let err = parse(&["--decode-threads", "0"]).unwrap_err();
        assert!(err.message.contains("at least one"), "got {}", err.message);
    }

    #[test]
    fn point_threads_parses_exact_auto_and_rejects_zero() {
        match parse(&["--point-threads", "4"]).unwrap() {
            Command::Run { request, .. } => {
                assert_eq!(request.config.point_threads, 4);
            }
            Command::Help => panic!("expected a run"),
        }
        match parse(&["--point-threads", "auto"]).unwrap() {
            Command::Run { request, .. } => {
                let host = std::thread::available_parallelism().map_or(1, |n| n.get());
                // The default machine has 16 cores: auto asks for 2 lanes
                // unless the host is smaller.
                assert_eq!(request.config.point_threads, 2usize.min(host));
            }
            Command::Help => panic!("expected a run"),
        }
        let err = parse(&["--point-threads", "0"]).unwrap_err();
        assert!(err.message.contains("committer"), "got {}", err.message);
        let err = parse(&["--point-threads", "soon"]).unwrap_err();
        assert_eq!(err.option, "--point-threads");
    }

    #[test]
    fn fuel_flags_reject_garbage() {
        let err = parse(&["--fuel-steps", "plenty"]).unwrap_err();
        assert_eq!(err.option, "--fuel-steps");
        let err = parse(&["--checkpoint"]).unwrap_err();
        assert_eq!(err.option, "--checkpoint");
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn help_flag_wins() {
        assert!(matches!(parse(&["--help"]).unwrap(), Command::Help));
        assert!(matches!(parse(&["-h"]).unwrap(), Command::Help));
    }

    #[test]
    fn unknown_option_is_named() {
        let err = parse(&["--bogus"]).unwrap_err();
        assert_eq!(err.option, "--bogus");
    }

    #[test]
    fn bad_value_names_the_option() {
        let err = parse(&["--tasks", "many"]).unwrap_err();
        assert_eq!(err.option, "--tasks");
        assert!(err.message.contains("many"));
        let err = parse(&["--workload", "tpcd"]).unwrap_err();
        assert_eq!(err.option, "--workload");
        assert!(err.message.contains("tpcd"));
    }

    #[test]
    fn missing_value_is_reported() {
        let err = parse(&["--seed"]).unwrap_err();
        assert_eq!(err.option, "--seed");
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn invalid_configuration_is_rejected_at_parse_time() {
        // fill-up_t beyond the 32 KiB L1-I's 512 blocks cannot fire.
        let err = parse(&["--mode", "slicc", "--fill-up", "100000"]).unwrap_err();
        assert!(err.message.contains("fill_up_t"), "got: {}", err.message);
    }

    #[test]
    fn overrides_reach_the_request() {
        match parse(&["--tasks", "7", "--seed", "9", "--l1i-kib", "64"]).unwrap() {
            Command::Run { request, .. } => {
                assert_eq!(request.effective_scale().tasks, 7);
                assert_eq!(request.effective_scale().seed, 9);
                assert_eq!(request.config.l1i_size, 64 * 1024);
            }
            Command::Help => panic!("expected a run"),
        }
    }
}
