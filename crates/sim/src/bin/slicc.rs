//! `slicc` — command-line driver for the SLICC chip-multiprocessor
//! simulator.
//!
//! ```text
//! slicc [OPTIONS]
//!
//!   --workload tpcc1|tpcc10|tpce|mapreduce    (default tpcc1)
//!   --mode     base|slicc|slicc-sw|slicc-pp|steps   (default slicc-sw)
//!   --scale    tiny|small|paper               (default small)
//!   --tasks    N                              override transaction count
//!   --seed     N                              workload seed
//!   --policy   lru|lip|bip|dip|srrip|brrip|drrip
//!   --l1i-kib  N                              L1-I capacity
//!   --next-line                               enable next-line prefetch
//!   --pif-bound                               the paper's PIF model
//!   --pif-real                                the real PIF prefetcher
//!   --fill-up N --matched N --dilution N      SLICC thresholds
//!   --classify                                3C miss classification
//!   --baseline-compare                        also run the baseline and
//!                                             report speedup
//! ```

use slicc_cache::PolicyKind;
use slicc_sim::{run, RunMetrics, SchedulerMode, SimConfig};
use slicc_trace::{TraceScale, Workload};

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("see the crate docs (`slicc --help` output is at the top of src/bin/slicc.rs)");
    std::process::exit(2);
}

struct Options {
    workload: Workload,
    mode: SchedulerMode,
    scale: TraceScale,
    tasks: Option<u32>,
    seed: Option<u64>,
    cfg: SimConfig,
    compare: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        workload: Workload::TpcC1,
        mode: SchedulerMode::SliccSw,
        scale: TraceScale::small(),
        tasks: None,
        seed: None,
        cfg: SimConfig::paper_baseline(),
        compare: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage("missing option value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                opts.workload = match value(&mut i).as_str() {
                    "tpcc1" => Workload::TpcC1,
                    "tpcc10" => Workload::TpcC10,
                    "tpce" => Workload::TpcE,
                    "mapreduce" => Workload::MapReduce,
                    w => usage(&format!("unknown workload {w}")),
                }
            }
            "--mode" => {
                opts.mode = match value(&mut i).as_str() {
                    "base" => SchedulerMode::Baseline,
                    "slicc" => SchedulerMode::Slicc,
                    "slicc-sw" => SchedulerMode::SliccSw,
                    "slicc-pp" => SchedulerMode::SliccPp,
                    "steps" => SchedulerMode::Steps,
                    m => usage(&format!("unknown mode {m}")),
                }
            }
            "--scale" => {
                opts.scale = match value(&mut i).as_str() {
                    "tiny" => TraceScale::tiny(),
                    "small" => TraceScale::small(),
                    "paper" => TraceScale::paper_like(),
                    s => usage(&format!("unknown scale {s}")),
                }
            }
            "--tasks" => opts.tasks = Some(value(&mut i).parse().unwrap_or_else(|_| usage("bad --tasks"))),
            "--seed" => opts.seed = Some(value(&mut i).parse().unwrap_or_else(|_| usage("bad --seed"))),
            "--policy" => {
                let p = value(&mut i);
                let policy = PolicyKind::ALL
                    .into_iter()
                    .find(|k| k.name().eq_ignore_ascii_case(&p))
                    .unwrap_or_else(|| usage(&format!("unknown policy {p}")));
                opts.cfg = opts.cfg.clone().with_policy(policy);
            }
            "--l1i-kib" => {
                let kb: u64 = value(&mut i).parse().unwrap_or_else(|_| usage("bad --l1i-kib"));
                opts.cfg = opts.cfg.clone().with_l1i_size(kb * 1024);
            }
            "--next-line" => opts.cfg = opts.cfg.clone().with_next_line(1),
            "--pif-bound" => opts.cfg = opts.cfg.clone().with_pif_model(),
            "--pif-real" => opts.cfg = opts.cfg.clone().with_real_pif(),
            "--fill-up" => {
                opts.cfg.slicc.fill_up_t = value(&mut i).parse().unwrap_or_else(|_| usage("bad --fill-up"))
            }
            "--matched" => {
                opts.cfg.slicc.matched_t = value(&mut i).parse().unwrap_or_else(|_| usage("bad --matched"))
            }
            "--dilution" => {
                opts.cfg.slicc.dilution_t = value(&mut i).parse().unwrap_or_else(|_| usage("bad --dilution"))
            }
            "--classify" => opts.cfg.classify_3c = true,
            "--baseline-compare" => opts.compare = true,
            a => usage(&format!("unknown argument {a}")),
        }
        i += 1;
    }
    opts
}

fn report(m: &RunMetrics, baseline: Option<&RunMetrics>) {
    println!("workload        {}", m.workload);
    println!("mode            {}", m.mode);
    println!("instructions    {}", m.instructions);
    println!("cycles          {}", m.cycles);
    println!("I-MPKI          {:.2}", m.i_mpki());
    println!("D-MPKI          {:.2}", m.d_mpki());
    println!("I-TLB MPKI      {:.3}", m.i_tlb_mpki());
    println!("D-TLB MPKI      {:.3}", m.d_tlb_mpki());
    println!("migrations      {} ({:.2}/KI)", m.migrations, m.migrations_per_kilo_instruction());
    if m.context_switches > 0 {
        println!("ctx switches    {}", m.context_switches);
    }
    println!("BPKI            {:.3}", m.bpki());
    println!("spread          {:.1} cores/thread", m.mean_cores_per_thread);
    if let Some(bd) = &m.i_breakdown {
        println!("I-miss classes  conflict {} / capacity {} / compulsory {}", bd.conflict, bd.capacity, bd.compulsory);
    }
    let s = &m.core_stats;
    let total = s.total_cycles().max(1);
    println!(
        "cycle mix       base {:.0}% / I-stall {:.0}% / D-stall {:.0}% / TLB {:.0}% / mig {:.0}% / idle {:.0}%",
        100.0 * s.base_cycles as f64 / total as f64,
        100.0 * s.ifetch_stall_cycles as f64 / total as f64,
        100.0 * s.data_stall_cycles as f64 / total as f64,
        100.0 * s.tlb_walk_cycles as f64 / total as f64,
        100.0 * s.migration_cycles as f64 / total as f64,
        100.0 * s.idle_cycles as f64 / total as f64,
    );
    if let Some(base) = baseline {
        println!("speedup         {:.3}x over baseline", m.speedup_over(base));
    }
}

fn main() {
    let opts = parse_args();
    let mut scale = opts.scale;
    if let Some(t) = opts.tasks {
        scale = scale.with_tasks(t);
    }
    if let Some(s) = opts.seed {
        scale = scale.with_seed(s);
    }
    let spec = opts.workload.spec(scale);
    let cfg = opts.cfg.with_mode(opts.mode);

    let baseline = opts.compare.then(|| run(&spec, &SimConfig::paper_baseline()));
    let metrics = run(&spec, &cfg);
    report(&metrics, baseline.as_ref());
}
