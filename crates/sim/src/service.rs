//! Resource governance for simulation-as-a-service: a bounded,
//! byte-weighted, LRU-evicting run cache, single-flight stampede
//! coalescing, and admission control with graceful shedding.
//!
//! The batch [`Runner`] memoizes completed points so repeated requests
//! are free — but a long-lived server built on an unbounded memo map
//! OOMs, a traffic spike of identical requests simulates each copy
//! independently, and "too much work" has no answer but collapse. This
//! module supplies the three governing policies:
//!
//! - [`BoundedResultCache`] — the run cache itself, now weighted by each
//!   entry's serialized size (the checkpoint codec's encoding, plus any
//!   in-memory observation payload) and bounded by a configurable byte
//!   budget ([`Runner::set_cache_bytes`], `--cache-bytes`). Inserting
//!   past the budget evicts least-recently-used entries; the budget is
//!   never exceeded.
//! - [`SimService`] — a submission front door over a shared [`Runner`].
//!   Concurrent submissions with the same
//!   [`RunRequest::stable_key`] attach to one in-flight simulation
//!   (*single-flight*): exactly one client simulates, the rest wait on
//!   the flight and receive clones. Submissions beyond the service's
//!   slot and queue limits are shed with a typed
//!   [`RunError::Overloaded`] carrying a retry-after hint instead of
//!   queueing without bound.
//! - [`PressureSnapshot`] — the observable state of both policies
//!   (queue depth, in-flight count, cache residency, shed count),
//!   surfaced through the [`Reporter`] telemetry as
//!   [`ProgressEvent::Pressure`] and queryable directly.
//!
//! None of this governance enters [`RunRequest::stable_key`], exactly
//! like observation and deadline config before it (DESIGN.md §12): a
//! byte budget, a queue limit, or an eviction can change *whether* and
//! *when* a result is served from memory, never *what* a finished run
//! computed. The golden-digest suite pins that invariant.

use crate::checkpoint::encoded_size;
use crate::error::{PointSummary, RunError};
use crate::runner::{Runner, RunRequest, RunResult};
use slicc_common::lock_unpoisoned;
use slicc_obs::{Epoch, ProgressEvent, TraceEvent};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Default run-cache byte budget: 64 MiB. Generous enough that every
/// paper sweep (bare metrics results are a few hundred bytes each) is
/// effectively unbounded, small enough that a long-lived service cannot
/// grow without limit. Override with [`Runner::set_cache_bytes`] /
/// `--cache-bytes`.
pub const DEFAULT_CACHE_BYTES: u64 = 64 << 20;

/// Per-record framing overhead charged on top of the payload encoding
/// (mirrors the checkpoint record: tag + key + len + hash), so an
/// entry's weight is "what this result costs to keep", not zero for an
/// empty payload.
const ENTRY_OVERHEAD: u64 = 1 + 8 + 4 + 8;

/// The byte weight of one cached result: its serialized payload size in
/// the checkpoint codec plus the in-memory footprint of any observation
/// artifacts it carries (event trace, interval series). Observation
/// payloads dominate when present — an observed run with a deep event
/// ring weighs thousands of entries' worth of bare metrics — which is
/// exactly why they must be charged.
pub fn result_weight(result: &RunResult) -> u64 {
    let mut weight = ENTRY_OVERHEAD + encoded_size(result) as u64;
    if let Some(obs) = &result.obs {
        weight += (obs.events.len() * std::mem::size_of::<TraceEvent>()) as u64;
        if let Some(series) = &obs.series {
            weight += (series.epochs.len() * std::mem::size_of::<Epoch>()) as u64;
        }
    }
    weight
}

/// One resident cache entry, threaded into the intrusive LRU list by
/// key (`prev` toward the MRU end, `next` toward the LRU end).
struct CacheEntry {
    result: RunResult,
    weight: u64,
    prev: Option<u64>,
    next: Option<u64>,
}

/// A bounded, byte-weighted, LRU-evicting map from
/// [`RunRequest::stable_key`] to [`RunResult`].
///
/// Every entry is charged its [`result_weight`]; inserting past
/// [`BoundedResultCache::max_bytes`] evicts from the least-recently-used
/// end until the new entry fits. Reads ([`BoundedResultCache::get`])
/// promote to most-recently-used. A result heavier than the entire
/// budget is never admitted (the caller still holds it; it just is not
/// memoized). The structure is a plain `HashMap` plus an intrusive
/// doubly-linked list of keys — O(1) insert/get/evict, no external
/// dependencies.
pub struct BoundedResultCache {
    max_bytes: u64,
    bytes: u64,
    evictions: u64,
    map: HashMap<u64, CacheEntry>,
    /// Most-recently-used key.
    head: Option<u64>,
    /// Least-recently-used key (the eviction end).
    tail: Option<u64>,
}

impl BoundedResultCache {
    /// An empty cache with a budget of `max_bytes`.
    pub fn new(max_bytes: u64) -> Self {
        BoundedResultCache {
            max_bytes,
            bytes: 0,
            evictions: 0,
            map: HashMap::new(),
            head: None,
            tail: None,
        }
    }

    /// The configured byte budget.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Bytes currently resident. Never exceeds
    /// [`BoundedResultCache::max_bytes`].
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted over the cache's lifetime (including inserts too
    /// heavy to ever become resident, which count as self-evictions).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Rebudgets the cache, evicting LRU-first if the new budget is
    /// smaller than the resident set.
    pub fn set_max_bytes(&mut self, max_bytes: u64) {
        self.max_bytes = max_bytes;
        self.evict_to(max_bytes);
    }

    /// Whether `key` is resident (no LRU promotion).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// The resident result for `key`, promoted to most-recently-used.
    pub fn get(&mut self, key: u64) -> Option<&RunResult> {
        if !self.map.contains_key(&key) {
            return None;
        }
        self.detach(key);
        self.push_front(key);
        Some(&self.map[&key].result)
    }

    /// Inserts (or replaces) `key`, evicting LRU entries until the new
    /// entry fits. Returns whether the entry is resident afterwards
    /// (false only when it alone outweighs the whole budget).
    pub fn insert(&mut self, key: u64, result: RunResult) -> bool {
        let weight = result_weight(&result);
        if self.map.contains_key(&key) {
            self.remove(key);
        }
        if weight > self.max_bytes {
            // Too heavy to ever fit: count the refusal as an eviction of
            // itself so thrash under a tiny budget is visible in stats.
            self.evictions += 1;
            return false;
        }
        self.evict_to(self.max_bytes - weight);
        self.map.insert(key, CacheEntry { result, weight, prev: None, next: None });
        self.bytes += weight;
        self.push_front(key);
        true
    }

    /// [`BoundedResultCache::insert`] only if `key` is not already
    /// resident (checkpoint seeding must not clobber newer results).
    pub fn insert_if_absent(&mut self, key: u64, result: RunResult) {
        if !self.map.contains_key(&key) {
            self.insert(key, result);
        }
    }

    /// Removes `key`, returning whether it was resident.
    pub fn remove(&mut self, key: u64) -> bool {
        if !self.map.contains_key(&key) {
            return false;
        }
        self.detach(key);
        let entry = self.map.remove(&key).expect("checked resident");
        self.bytes -= entry.weight;
        true
    }

    /// Evicts least-recently-used entries until at most `budget` bytes
    /// are resident.
    fn evict_to(&mut self, budget: u64) {
        while self.bytes > budget {
            let victim = self.tail.expect("bytes > 0 implies a tail entry");
            self.remove(victim);
            self.evictions += 1;
        }
    }

    /// Unlinks `key` from the LRU list (the map entry stays).
    fn detach(&mut self, key: u64) {
        let (prev, next) = {
            let e = &self.map[&key];
            (e.prev, e.next)
        };
        match prev {
            Some(p) => self.map.get_mut(&p).expect("linked prev exists").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.map.get_mut(&n).expect("linked next exists").prev = prev,
            None => self.tail = prev,
        }
        let e = self.map.get_mut(&key).expect("detaching a resident key");
        e.prev = None;
        e.next = None;
    }

    /// Links `key` in at the most-recently-used end.
    fn push_front(&mut self, key: u64) {
        let old_head = self.head;
        {
            let e = self.map.get_mut(&key).expect("pushing a resident key");
            e.prev = None;
            e.next = old_head;
        }
        if let Some(h) = old_head {
            self.map.get_mut(&h).expect("old head exists").prev = Some(key);
        }
        self.head = Some(key);
        if self.tail.is_none() {
            self.tail = Some(key);
        }
    }
}

/// The observable state of the governance layer at one instant: what an
/// operator needs to tell "healthy", "hot", and "shedding" apart.
/// Surfaced as [`ProgressEvent::Pressure`] on the runner's [`Reporter`]
/// and queryable via [`Runner::pressure`] / [`SimService::pressure`].
///
/// [`Reporter`]: slicc_obs::Reporter
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PressureSnapshot {
    /// Submissions waiting for an execution slot (always 0 at the bare
    /// [`Runner`], which sheds instead of queueing; the [`SimService`]
    /// queues up to its configured limit).
    pub queue_depth: usize,
    /// Fresh simulations currently executing.
    pub inflight: usize,
    /// Bytes resident in the bounded run cache.
    pub cache_bytes: u64,
    /// The run cache's byte budget.
    pub cache_budget: u64,
    /// Entries resident in the run cache.
    pub cache_entries: usize,
    /// Submissions shed by admission control so far (process total).
    pub shed: u64,
}

impl PressureSnapshot {
    /// Renders this snapshot as its telemetry event.
    pub fn event(&self) -> ProgressEvent {
        ProgressEvent::Pressure {
            queue_depth: self.queue_depth,
            inflight: self.inflight,
            cache_bytes: self.cache_bytes,
            cache_budget: self.cache_budget,
            cache_entries: self.cache_entries,
            shed: self.shed,
        }
    }
}

/// Sizing policy for a [`SimService`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Fresh simulations allowed to execute concurrently through this
    /// service (clamped to at least 1). Coalesced waiters and cache hits
    /// do not consume slots.
    pub max_inflight: usize,
    /// Submissions allowed to *wait* for a slot before further arrivals
    /// are shed with [`RunError::Overloaded`]. Zero means "never queue":
    /// anything beyond the in-flight slots is shed immediately.
    pub queue_limit: usize,
}

impl ServiceConfig {
    /// `max_inflight` slots with a queue of twice that depth — a
    /// reasonable default for a service sized to the host.
    pub fn with_inflight(max_inflight: usize) -> Self {
        let max_inflight = max_inflight.max(1);
        ServiceConfig { max_inflight, queue_limit: max_inflight * 2 }
    }
}

/// One in-flight simulation that duplicate submissions attach to.
struct Flight {
    outcome: Mutex<Option<Result<RunResult, RunError>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight { outcome: Mutex::new(None), done: Condvar::new() }
    }

    /// Blocks until the owning submission fills the flight, then returns
    /// a clone of its outcome with `from_cache` set (the waiter did not
    /// simulate anything).
    fn wait(&self) -> Result<RunResult, RunError> {
        let guard = lock_unpoisoned(&self.outcome);
        let guard = wait_unpoisoned(&self.done, guard, |o| o.is_none());
        let mut outcome = guard.clone().expect("flight filled before notify");
        if let Ok(result) = &mut outcome {
            result.from_cache = true;
        }
        outcome
    }

    fn fill(&self, outcome: &Result<RunResult, RunError>) {
        *lock_unpoisoned(&self.outcome) = Some(outcome.clone());
        self.done.notify_all();
    }
}

/// `Condvar::wait_while` with the workspace's poison-recovery policy
/// (see [`slicc_common::lock_unpoisoned`]): a panicked peer must not
/// wedge every waiter behind a poisoned lock.
fn wait_unpoisoned<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    mut while_: impl FnMut(&mut T) -> bool,
) -> MutexGuard<'a, T> {
    cv.wait_while(guard, &mut while_).unwrap_or_else(|e| {
        let mut guard = e.into_inner();
        while while_(&mut guard) {
            // The condvar itself is not poisoned, only the mutex; spin
            // through wait() manually. This path only runs after a peer
            // panicked while holding the lock — correctness over speed.
            guard = cv
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        guard
    })
}

struct ServiceState {
    /// In-flight simulations by stable key; duplicate submissions attach
    /// here instead of simulating.
    flights: HashMap<u64, Arc<Flight>>,
    /// Submissions currently holding an execution slot.
    executing: usize,
    /// Submissions currently waiting for a slot.
    queued: usize,
}

/// A resource-governed submission front door over a shared [`Runner`]:
/// the piece a long-lived server exposes to its clients (ROADMAP item
/// 1's wire protocol plugs in directly above this).
///
/// Each client calls [`SimService::submit`] from its own thread.
/// The service resolves the submission in this order:
///
/// 1. **Memoized** — the bounded run cache has the result: served
///    immediately, no slot consumed (`cache_hits` in
///    [`crate::RunnerStats`]).
/// 2. **Coalesced** — an identical submission is already simulating:
///    attach to its flight and wait (`coalesced_hits`). Exactly one
///    simulation runs no matter how many clients stampede.
/// 3. **Admitted** — a free execution slot: simulate on the calling
///    thread through the shared runner (which banks the result in the
///    bounded cache and any attached checkpoint).
/// 4. **Queued** — all slots busy but the wait queue has room: block
///    until a slot frees or the result materializes.
/// 5. **Shed** — slots and queue both full: fail fast with
///    [`RunError::Overloaded`] and a retry-after hint
///    ([`Runner::retry_after_hint`]). Nothing simulates; the client is
///    expected to back off and resubmit.
pub struct SimService {
    runner: Arc<Runner>,
    cfg: ServiceConfig,
    state: Mutex<ServiceState>,
    /// Signalled when an execution slot frees or a flight registers, so
    /// queued submissions re-evaluate their options.
    slots: Condvar,
}

impl SimService {
    /// A service over `runner` with the given sizing policy.
    pub fn new(runner: Arc<Runner>, cfg: ServiceConfig) -> Self {
        let cfg = ServiceConfig { max_inflight: cfg.max_inflight.max(1), ..cfg };
        SimService {
            runner,
            cfg,
            state: Mutex::new(ServiceState { flights: HashMap::new(), executing: 0, queued: 0 }),
            slots: Condvar::new(),
        }
    }

    /// A service sized to its runner's worker pool.
    pub fn with_runner(runner: Arc<Runner>) -> Self {
        let jobs = runner.jobs();
        SimService::new(runner, ServiceConfig::with_inflight(jobs))
    }

    /// The shared runner (stats, cancellation, checkpoint attachment).
    pub fn runner(&self) -> &Arc<Runner> {
        &self.runner
    }

    /// The sizing policy.
    pub fn config(&self) -> ServiceConfig {
        self.cfg
    }

    /// The service's current pressure: real queue depth and in-flight
    /// count from the submission layer, cache and shed state from the
    /// shared runner.
    pub fn pressure(&self) -> PressureSnapshot {
        let (queued, executing) = {
            let st = lock_unpoisoned(&self.state);
            (st.queued, st.executing)
        };
        let mut p = self.runner.pressure();
        p.queue_depth = queued;
        p.inflight = executing;
        p
    }

    /// Submits one request, blocking until it resolves (served, simulated,
    /// failed, or shed). See the struct docs for the resolution order.
    pub fn submit(&self, req: &RunRequest) -> Result<RunResult, RunError> {
        let key = req.stable_key();
        loop {
            // Memoized? (Also re-checked after every wait: a flight we
            // waited out banks its result here.)
            if let Some(hit) = self.runner.cached_result(key) {
                return Ok(hit);
            }

            let mut st = lock_unpoisoned(&self.state);
            if let Some(flight) = st.flights.get(&key).map(Arc::clone) {
                drop(st);
                self.runner.note_coalesced();
                return flight.wait();
            }

            if st.executing < self.cfg.max_inflight {
                st.executing += 1;
                let flight = Arc::new(Flight::new());
                st.flights.insert(key, Arc::clone(&flight));
                drop(st);
                // Late arrivals in the window between our cache check and
                // the flight registration attach to the flight; the
                // runner re-checks its cache anyway.
                self.slots.notify_all();

                let outcome = self.runner.run(req);
                flight.fill(&outcome);
                let mut st = lock_unpoisoned(&self.state);
                st.flights.remove(&key);
                st.executing -= 1;
                drop(st);
                self.slots.notify_all();
                self.report_pressure();
                return outcome;
            }

            // No free slot: queue if there is room, shed otherwise.
            if st.queued >= self.cfg.queue_limit {
                drop(st);
                self.runner.note_shed();
                self.report_pressure();
                return Err(RunError::Overloaded {
                    point: PointSummary::of(req),
                    retry_after: self.runner.retry_after_hint(),
                    inflight: self.cfg.max_inflight,
                    limit: self.cfg.queue_limit,
                });
            }
            st.queued += 1;
            let max_inflight = self.cfg.max_inflight;
            let mut st = wait_unpoisoned(&self.slots, st, |s| {
                s.executing >= max_inflight && !s.flights.contains_key(&key)
            });
            st.queued -= 1;
            drop(st);
            // Loop: re-check cache, flights, and slots from the top.
        }
    }

    /// Emits the current pressure snapshot on the runner's reporter.
    fn report_pressure(&self) {
        let snapshot = self.pressure();
        self.runner.reporter().report(snapshot.event());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use slicc_trace::{TraceScale, Workload};

    fn tiny_request(seed: u64) -> RunRequest {
        RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test()).with_seed(seed)
    }

    /// A synthetic result whose weight is controlled through the
    /// workload-name string (the codec stores it length-prefixed).
    fn padded_result(pad: usize) -> RunResult {
        let mut result = RunResult {
            metrics: Default::default(),
            wall: Duration::from_millis(1),
            sim_ips: 0.0,
            from_cache: false,
            obs: None,
            attempts: 1,
        };
        result.metrics.workload = "w".repeat(pad);
        result
    }

    #[test]
    fn weights_charge_the_serialized_size_and_obs_payloads() {
        let small = padded_result(1);
        let big = padded_result(1000);
        assert!(result_weight(&big) >= result_weight(&small) + 999);

        let mut observed = padded_result(1);
        let event = TraceEvent {
            core: slicc_common::CoreId::new(0),
            cycle: 0,
            kind: slicc_obs::EventKind::ThreadStart { thread: 0 },
        };
        observed.obs = Some(slicc_obs::Observation {
            events: vec![event; 100],
            dropped_events: 0,
            series: None,
        });
        assert!(
            result_weight(&observed)
                >= result_weight(&small) + 100 * std::mem::size_of::<TraceEvent>() as u64,
            "an event trace must weigh what it occupies"
        );
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget_and_recency() {
        let unit = result_weight(&padded_result(16));
        let mut cache = BoundedResultCache::new(unit * 3);
        for key in 0..3u64 {
            assert!(cache.insert(key, padded_result(16)));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.bytes(), unit * 3);
        assert_eq!(cache.evictions(), 0);

        // Touch key 0 so key 1 is now least-recently-used.
        assert!(cache.get(0).is_some());
        assert!(cache.insert(3, padded_result(16)));
        assert_eq!(cache.evictions(), 1);
        assert!(!cache.contains(1), "the LRU entry must be the victim");
        assert!(cache.contains(0) && cache.contains(2) && cache.contains(3));
        assert!(cache.bytes() <= cache.max_bytes());
    }

    #[test]
    fn an_entry_heavier_than_the_budget_is_refused_not_overflowed() {
        let mut cache = BoundedResultCache::new(64);
        assert!(!cache.insert(1, padded_result(4096)));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.evictions(), 1, "the refusal is a self-eviction in stats");
    }

    #[test]
    fn replacing_a_key_recharges_its_weight() {
        let mut cache = BoundedResultCache::new(1 << 20);
        cache.insert(1, padded_result(16));
        let light = cache.bytes();
        cache.insert(1, padded_result(512));
        assert_eq!(cache.len(), 1);
        assert!(cache.bytes() > light, "the replacement's weight must be charged");
        cache.insert(1, padded_result(16));
        assert_eq!(cache.bytes(), light, "shrinking back must refund the difference");
    }

    #[test]
    fn rebudgeting_down_evicts_to_fit() {
        let unit = result_weight(&padded_result(16));
        let mut cache = BoundedResultCache::new(unit * 4);
        for key in 0..4u64 {
            cache.insert(key, padded_result(16));
        }
        cache.set_max_bytes(unit * 2);
        assert_eq!(cache.len(), 2);
        assert!(cache.bytes() <= cache.max_bytes());
        assert!(cache.contains(2) && cache.contains(3), "the newest entries survive");
    }

    #[test]
    fn insert_if_absent_preserves_the_resident_result() {
        let mut cache = BoundedResultCache::new(1 << 20);
        cache.insert(1, padded_result(16));
        cache.insert_if_absent(1, padded_result(512));
        assert_eq!(cache.get(1).unwrap().metrics.workload.len(), 16);
    }

    #[test]
    fn service_serves_cache_hits_without_consuming_slots() {
        let runner = Arc::new(Runner::new(1));
        let service = SimService::new(
            Arc::clone(&runner),
            ServiceConfig { max_inflight: 1, queue_limit: 0 },
        );
        let req = tiny_request(1);
        let first = service.submit(&req).expect("fresh point completes");
        assert!(!first.from_cache);
        let second = service.submit(&req).expect("memoized point is served");
        assert!(second.from_cache);
        let stats = runner.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.coalesced_hits, 0);
        assert_eq!(stats.shed_points, 0);
    }

    #[test]
    fn a_stampede_coalesces_to_exactly_one_simulation() {
        let runner = Arc::new(Runner::new(2));
        let service = SimService::new(
            Arc::clone(&runner),
            ServiceConfig { max_inflight: 2, queue_limit: 16 },
        );
        let req = tiny_request(2);
        let reference = runner.execute_uncached(&req).expect("reference run completes");

        let digests: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| service.submit(&req).map(|r| r.metrics.digest())))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap().expect("submission completes")).collect()
        });
        for digest in &digests {
            assert_eq!(*digest, reference.metrics.digest(), "coalesced results must be identical");
        }
        let stats = runner.stats();
        assert_eq!(stats.cache_misses, 1, "one simulation no matter how many clients");
        assert_eq!(
            stats.cache_hits + stats.coalesced_hits,
            7,
            "every duplicate is served, not simulated: {stats:?}"
        );
        assert_eq!(service.pressure().inflight, 0, "all slots released");
    }

    #[test]
    fn overload_sheds_with_a_typed_rejection_and_recovers() {
        use crate::config::{InjectedFault, SimConfigBuilder};
        let runner = Arc::new(Runner::new(1));
        let service = SimService::new(
            Arc::clone(&runner),
            ServiceConfig { max_inflight: 1, queue_limit: 0 },
        );
        // A slow point holds the only slot long enough for the shed to be
        // deterministic.
        let slow_config = SimConfigBuilder::tiny_test()
            .inject_fault(InjectedFault::SlowConsumer { delay_ms: 400 })
            .build()
            .expect("valid config");
        let slow = RunRequest::new(Workload::TpcC1, TraceScale::tiny(), slow_config);

        std::thread::scope(|scope| {
            let occupant = scope.spawn(|| service.submit(&slow));
            // Wait until the slow submission actually holds the slot.
            while service.pressure().inflight == 0 {
                std::thread::yield_now();
            }
            let err = service
                .submit(&tiny_request(3))
                .expect_err("with the slot held and no queue, arrivals must shed");
            match &err {
                RunError::Overloaded { retry_after, inflight, limit, .. } => {
                    assert!(*retry_after > Duration::ZERO);
                    assert_eq!(*inflight, 1);
                    assert_eq!(*limit, 0);
                }
                other => panic!("expected Overloaded, got {other}"),
            }
            assert!(err.is_overload());
            occupant.join().unwrap().expect("the slow point itself completes");
        });

        // Recovery: the same request is admitted once the slot frees.
        let recovered = service.submit(&tiny_request(3)).expect("post-overload submission");
        assert!(!recovered.from_cache);
        let stats = runner.stats();
        assert_eq!(stats.shed_points, 1);
        assert_eq!(service.pressure().shed, 1);
    }

    #[test]
    fn queued_submissions_wait_instead_of_shedding() {
        let runner = Arc::new(Runner::new(1));
        let service = SimService::new(
            Arc::clone(&runner),
            ServiceConfig { max_inflight: 1, queue_limit: 8 },
        );
        let reqs: Vec<RunRequest> = (10..14).map(tiny_request).collect();
        let service = &service;
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                reqs.iter().map(|req| scope.spawn(move || service.submit(req))).collect();
            for h in handles {
                h.join().unwrap().expect("queued submissions complete");
            }
        });
        let stats = runner.stats();
        assert_eq!(stats.cache_misses, 4, "all distinct points simulate");
        assert_eq!(stats.shed_points, 0, "a roomy queue sheds nothing");
        let p = service.pressure();
        assert_eq!((p.queue_depth, p.inflight), (0, 0));
    }
}
