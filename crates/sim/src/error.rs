//! Typed simulation failures: engine-level [`SimError`] and point-level
//! [`RunError`].
//!
//! The layering mirrors the call stack. The engine reports *what went
//! wrong inside one simulation* ([`SimError`]: invalid configuration, a
//! stalled event loop, an exhausted watchdog fuel budget). The runner
//! wraps that — plus panics caught at the worker boundary — into a
//! [`RunError`] that also identifies *which point* failed
//! ([`PointSummary`]: workload, scale, seed, and the stable run-cache
//! key), so a failed point in a hundred-point sweep can be reproduced
//! with one `slicc` invocation.

use crate::config::ConfigError;
use crate::runner::RunRequest;
use slicc_common::Cycle;
use slicc_obs::{Epoch, TraceEvent};
use std::fmt;

/// A failure inside one simulation (engine/system/config level).
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The configuration violates an invariant.
    Config(ConfigError),
    /// The event loop ran out of runnable cores before every thread
    /// completed — a scheduling invariant was violated.
    Stalled {
        /// Threads that did complete.
        completed: u64,
        /// Threads the workload dispatched in total.
        total: u64,
        /// Threads dispatched but never finished.
        in_flight: u64,
    },
    /// The forward-progress watchdog exhausted its fuel budget (see
    /// [`crate::WatchdogConfig`]). Boxed: the snapshot is large and this
    /// variant is rare.
    Livelock(Box<LivelockSnapshot>),
    /// The run was cancelled cooperatively (Ctrl-C, a test harness, a
    /// sibling deadline sweep) via a [`slicc_common::CancelToken`]. The
    /// snapshot shows what the machine was doing when it stopped.
    Cancelled(Box<LivelockSnapshot>),
    /// The run's wall-clock budget (see [`crate::DeadlineConfig`]) ran
    /// out before the simulation finished.
    DeadlineExceeded(Box<LivelockSnapshot>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::Stalled { completed, total, in_flight } => write!(
                f,
                "engine stalled: {completed}/{total} threads complete, {in_flight} in flight"
            ),
            SimError::Livelock(snap) => write!(f, "watchdog fired: {snap}"),
            SimError::Cancelled(snap) => write!(f, "cancelled: {snap}"),
            SimError::DeadlineExceeded(snap) => write!(f, "deadline exceeded: {snap}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// Diagnostic state captured when the watchdog aborts a run: enough to
/// tell a migration ping-pong (high migration count, hot thread bouncing)
/// from a starved queue (deep queues, low completion count) without
/// re-running the point under a debugger.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LivelockSnapshot {
    /// Event-loop heap steps executed before the abort.
    pub heap_steps: u64,
    /// Local time of the core that tripped the budget.
    pub cycles: Cycle,
    /// Threads completed before the abort.
    pub completed: u64,
    /// Threads the workload dispatched in total.
    pub total: u64,
    /// Threads dispatched and still unfinished.
    pub in_flight: u64,
    /// Migrations performed before the abort.
    pub migrations: u64,
    /// Migration attempts that had nowhere to go.
    pub blocked_migrations: u64,
    /// Waiting threads per core (excludes the running thread).
    pub queue_depths: Vec<usize>,
    /// The unfinished thread that has executed the most instructions.
    pub hottest_thread: Option<HotThread>,
    /// The last trace events before the abort — *what the machine was
    /// doing*, not just that it stopped. Empty unless the run was
    /// observed with event tracing on.
    pub recent_events: Vec<TraceEvent>,
    /// The tail of the interval series at abort time. Empty unless the
    /// run was observed with epoch sampling on.
    pub series_tail: Vec<Epoch>,
}

/// The busiest unfinished thread at watchdog time (see
/// [`LivelockSnapshot`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotThread {
    /// Raw thread id.
    pub thread: u32,
    /// Instructions the thread had executed.
    pub instructions: u64,
    /// Distinct cores the thread had visited.
    pub cores_visited: usize,
}

impl fmt::Display for LivelockSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no forward progress after {} heap steps / {} cycles; \
             {}/{} threads complete ({} in flight), {} migrations \
             ({} blocked), max queue depth {}",
            self.heap_steps,
            self.cycles,
            self.completed,
            self.total,
            self.in_flight,
            self.migrations,
            self.blocked_migrations,
            self.queue_depths.iter().copied().max().unwrap_or(0),
        )?;
        if let Some(hot) = &self.hottest_thread {
            write!(
                f,
                "; hottest thread {} ({} instructions over {} cores)",
                hot.thread, hot.instructions, hot.cores_visited
            )?;
        }
        if let Some(last) = self.recent_events.last() {
            write!(
                f,
                "; {} trace event(s) captured, latest {} on core {} at cycle {}",
                self.recent_events.len(),
                last.kind.name(),
                last.core.index(),
                last.cycle
            )?;
        }
        Ok(())
    }
}

/// Identifies one experiment point in error reports: everything needed to
/// reproduce it from the command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointSummary {
    /// The stable run-cache key ([`RunRequest::stable_key`]).
    pub key: u64,
    /// Workload name.
    pub workload: String,
    /// Mode label (Base / SLICC / ...).
    pub mode: String,
    /// Effective transaction count (after overrides).
    pub tasks: u32,
    /// Effective trace seed (after overrides).
    pub seed: u64,
    /// Trace segment size in blocks.
    pub segment_blocks: u32,
}

impl PointSummary {
    /// Summarizes `req` for error reporting.
    pub fn of(req: &RunRequest) -> Self {
        let scale = req.effective_scale();
        PointSummary {
            key: req.stable_key(),
            workload: req.workload.name().to_string(),
            mode: req.mode().name().to_string(),
            tasks: scale.tasks,
            seed: scale.seed,
            segment_blocks: scale.segment_blocks,
        }
    }
}

impl fmt::Display for PointSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] tasks={} seg={} seed={} key={:#018x}",
            self.workload, self.mode, self.tasks, self.segment_blocks, self.seed, self.key
        )
    }
}

/// A failed experiment point, as reported by [`crate::Runner::run_all`].
/// Every variant carries the [`PointSummary`] of the point that failed.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// The simulation panicked; the panic message is preserved.
    Panicked {
        /// The failed point.
        point: PointSummary,
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// The watchdog aborted the point for lack of forward progress.
    Livelock {
        /// The failed point.
        point: PointSummary,
        /// Diagnostic state at abort time.
        snapshot: Box<LivelockSnapshot>,
    },
    /// The event loop stalled with threads still in flight.
    Stalled {
        /// The failed point.
        point: PointSummary,
        /// Threads that did complete.
        completed: u64,
        /// Threads the workload dispatched in total.
        total: u64,
        /// Threads dispatched but never finished.
        in_flight: u64,
    },
    /// The point's configuration violates an invariant.
    Config {
        /// The failed point.
        point: PointSummary,
        /// The violated invariant.
        error: ConfigError,
    },
    /// The worker executing the point died without reporting a result
    /// (a runner bug; never expected under panic containment).
    Lost {
        /// The failed point.
        point: PointSummary,
    },
    /// The point was cancelled (Ctrl-C or a harness). A point cancelled
    /// before it started carries an empty (all-zero) snapshot.
    Cancelled {
        /// The cancelled point.
        point: PointSummary,
        /// What the machine was doing when it stopped.
        snapshot: Box<LivelockSnapshot>,
    },
    /// The point exceeded its wall-clock deadline
    /// (see [`crate::DeadlineConfig`]).
    DeadlineExceeded {
        /// The failed point.
        point: PointSummary,
        /// Diagnostic state at abort time.
        snapshot: Box<LivelockSnapshot>,
    },
    /// The point was shed by admission control before any simulation
    /// work: the pending queue was full (see
    /// [`crate::Runner::set_queue_limit`] and
    /// [`crate::service::SimService`]). A typed, graceful rejection — the
    /// run never started, nothing was computed, and the client should
    /// resubmit after roughly [`retry_after`](RunError::Overloaded).
    Overloaded {
        /// The shed point.
        point: PointSummary,
        /// A hint for when resubmission is likely to be admitted, derived
        /// from the mean wall-clock cost of recent fresh points.
        retry_after: std::time::Duration,
        /// Fresh simulations in flight when the point was shed.
        inflight: usize,
        /// The admission limit that was hit.
        limit: usize,
    },
}

impl RunError {
    /// Wraps an engine-level error with the identity of the failed point.
    pub fn from_sim(point: PointSummary, error: SimError) -> Self {
        match error {
            SimError::Config(error) => RunError::Config { point, error },
            SimError::Stalled { completed, total, in_flight } => {
                RunError::Stalled { point, completed, total, in_flight }
            }
            SimError::Livelock(snapshot) => RunError::Livelock { point, snapshot },
            SimError::Cancelled(snapshot) => RunError::Cancelled { point, snapshot },
            SimError::DeadlineExceeded(snapshot) => RunError::DeadlineExceeded { point, snapshot },
        }
    }

    /// The identity of the failed point.
    pub fn point(&self) -> &PointSummary {
        match self {
            RunError::Panicked { point, .. }
            | RunError::Livelock { point, .. }
            | RunError::Stalled { point, .. }
            | RunError::Config { point, .. }
            | RunError::Lost { point }
            | RunError::Cancelled { point, .. }
            | RunError::DeadlineExceeded { point, .. }
            | RunError::Overloaded { point, .. } => point,
        }
    }

    /// True for admission-control rejections (the point was shed before
    /// any simulation work; resubmitting later is expected to succeed).
    pub fn is_overload(&self) -> bool {
        matches!(self, RunError::Overloaded { .. })
    }

    /// True for cancellation outcomes (the point did not fail on its own
    /// merits; it was asked to stop).
    pub fn is_cancellation(&self) -> bool {
        matches!(self, RunError::Cancelled { .. })
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Panicked { point, payload } => {
                write!(f, "point {point} panicked: {payload}")
            }
            RunError::Livelock { point, snapshot } => {
                write!(f, "point {point} livelocked: {snapshot}")
            }
            RunError::Stalled { point, completed, total, in_flight } => write!(
                f,
                "point {point} stalled: {completed}/{total} threads complete, {in_flight} in flight"
            ),
            RunError::Config { point, error } => {
                write!(f, "point {point} rejected: {error}")
            }
            RunError::Lost { point } => {
                write!(f, "point {point} lost: worker died without reporting a result")
            }
            RunError::Cancelled { point, snapshot } => {
                if snapshot.heap_steps == 0 {
                    write!(f, "point {point} cancelled before it started")
                } else {
                    write!(f, "point {point} cancelled: {snapshot}")
                }
            }
            RunError::DeadlineExceeded { point, snapshot } => {
                write!(f, "point {point} exceeded its deadline: {snapshot}")
            }
            RunError::Overloaded { point, retry_after, inflight, limit } => {
                write!(
                    f,
                    "point {point} shed: service overloaded ({inflight} in flight, \
                     limit {limit}); retry in ~{} ms",
                    retry_after.as_millis()
                )
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Config { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use slicc_trace::{TraceScale, Workload};

    fn point() -> PointSummary {
        let req = RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test());
        PointSummary::of(&req)
    }

    #[test]
    fn point_summary_names_the_point() {
        let req = RunRequest::new(Workload::TpcC1, TraceScale::tiny(), SimConfig::tiny_test())
            .with_tasks(3)
            .with_seed(42);
        let p = PointSummary::of(&req);
        assert_eq!(p.key, req.stable_key());
        assert_eq!(p.tasks, 3);
        assert_eq!(p.seed, 42);
        let rendered = p.to_string();
        assert!(rendered.contains("TPC-C-1"), "got: {rendered}");
        assert!(rendered.contains("seed=42"), "got: {rendered}");
        assert!(rendered.contains("key=0x"), "got: {rendered}");
    }

    #[test]
    fn sim_errors_wrap_into_run_errors() {
        let e = RunError::from_sim(point(), SimError::Stalled { completed: 1, total: 4, in_flight: 2 });
        assert!(matches!(e, RunError::Stalled { completed: 1, total: 4, in_flight: 2, .. }));
        let snap = Box::new(LivelockSnapshot { heap_steps: 9, ..Default::default() });
        let e = RunError::from_sim(point(), SimError::Livelock(snap));
        assert!(matches!(e, RunError::Livelock { .. }));
        assert!(e.to_string().contains("9 heap steps"), "got: {e}");
    }

    #[test]
    fn cancellation_and_deadline_wrap_with_their_snapshots() {
        let snap = Box::new(LivelockSnapshot { heap_steps: 5, ..Default::default() });
        let e = RunError::from_sim(point(), SimError::DeadlineExceeded(snap));
        assert!(matches!(e, RunError::DeadlineExceeded { .. }));
        assert!(e.to_string().contains("deadline"), "got: {e}");
        assert!(e.to_string().contains("5 heap steps"), "got: {e}");
        assert!(!e.is_cancellation());

        let started = RunError::from_sim(
            point(),
            SimError::Cancelled(Box::new(LivelockSnapshot { heap_steps: 3, ..Default::default() })),
        );
        assert!(started.is_cancellation());
        assert!(started.to_string().contains("cancelled"), "got: {started}");
        let unstarted =
            RunError::Cancelled { point: point(), snapshot: Box::default() };
        assert!(unstarted.to_string().contains("before it started"), "got: {unstarted}");
    }

    #[test]
    fn overload_rejections_carry_a_retry_hint() {
        let e = RunError::Overloaded {
            point: point(),
            retry_after: std::time::Duration::from_millis(120),
            inflight: 4,
            limit: 4,
        };
        assert!(e.is_overload());
        assert!(!e.is_cancellation(), "a shed point was not cancelled mid-run");
        let rendered = e.to_string();
        assert!(rendered.contains("overloaded"), "got: {rendered}");
        assert!(rendered.contains("retry in ~120 ms"), "got: {rendered}");
        assert!(rendered.contains("key=0x"), "got: {rendered}");
    }

    #[test]
    fn displays_carry_the_reproduction_key() {
        let e = RunError::Panicked { point: point(), payload: "boom".into() };
        let rendered = e.to_string();
        assert!(rendered.contains("boom"), "got: {rendered}");
        assert!(rendered.contains("key=0x"), "got: {rendered}");
        assert_eq!(e.point().key, point().key);
    }
}
