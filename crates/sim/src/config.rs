//! Simulator configuration: the Table-2 machine and the execution modes.

use slicc_cache::{PifConfig, PolicyKind};
use slicc_common::{CacheGeometry, Cycle, LatencyTable, StableHash, StableHasher};
use slicc_core::SliccParams;
use slicc_cpu::{MigrationModel, TimingConfig};
use slicc_mem::DramConfig;
use std::fmt;

/// Which scheduling/migration algorithm runs the thread pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerMode {
    /// Conventional OS scheduling: up to N concurrent threads, one per
    /// core, no migration (§5.1's baseline).
    Baseline,
    /// Transaction-type-oblivious SLICC (§4.1).
    Slicc,
    /// SLICC-SW: the software layer annotates each thread with its
    /// transaction type (§4.3.1).
    SliccSw,
    /// SLICC-Pp: a scout core detects types by hashing each thread's
    /// first instructions (§4.3.1); one core is dedicated to scouting.
    SliccPp,
    /// STEPS-style software time-multiplexing (the §6 comparison):
    /// same-type threads share ONE core and context-switch at the
    /// boundaries SLICC would have migrated at, so instruction chunks are
    /// reused in the time domain instead of the space domain.
    Steps,
}

impl SchedulerMode {
    /// All modes in Figure 10/11 presentation order.
    pub const ALL: [SchedulerMode; 4] =
        [SchedulerMode::Baseline, SchedulerMode::Slicc, SchedulerMode::SliccPp, SchedulerMode::SliccSw];

    /// The paper's modes plus this workspace's STEPS re-creation.
    pub const WITH_STEPS: [SchedulerMode; 5] = [
        SchedulerMode::Baseline,
        SchedulerMode::Slicc,
        SchedulerMode::SliccPp,
        SchedulerMode::SliccSw,
        SchedulerMode::Steps,
    ];

    /// Display label matching the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            SchedulerMode::Baseline => "Base",
            SchedulerMode::Slicc => "SLICC",
            SchedulerMode::SliccSw => "SLICC-SW",
            SchedulerMode::SliccPp => "SLICC-Pp",
            SchedulerMode::Steps => "STEPS",
        }
    }

    /// Whether this mode migrates threads between cores.
    pub const fn is_slicc(self) -> bool {
        matches!(self, SchedulerMode::Slicc | SchedulerMode::SliccSw | SchedulerMode::SliccPp)
    }

    /// Whether this mode runs the per-core SLICC agents (migration modes
    /// and STEPS, which reuses the agent's chunk-boundary signal).
    pub const fn uses_agents(self) -> bool {
        !matches!(self, SchedulerMode::Baseline)
    }

    /// Whether this mode groups threads into type teams.
    pub const fn is_type_aware(self) -> bool {
        matches!(self, SchedulerMode::SliccSw | SchedulerMode::SliccPp | SchedulerMode::Steps)
    }
}

impl fmt::Display for SchedulerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl StableHash for SchedulerMode {
    fn stable_hash(&self, h: &mut StableHasher) {
        // Explicit ordinals so run-cache keys survive declaration reorder.
        let ordinal: u64 = match self {
            SchedulerMode::Baseline => 0,
            SchedulerMode::Slicc => 1,
            SchedulerMode::SliccSw => 2,
            SchedulerMode::SliccPp => 3,
            SchedulerMode::Steps => 4,
        };
        ordinal.stable_hash(h);
    }
}

/// Forward-progress watchdog for the engine's event loop.
///
/// A fuel budget: the run is aborted with
/// [`crate::SimError::Livelock`] (plus a diagnostic
/// [`crate::LivelockSnapshot`]) once it exceeds either bound. `None`
/// disables the corresponding bound; the default disables both, so
/// published figures never change under the watchdog. A budget of zero is
/// legal and trips on the first event-loop step — tests use this to
/// exercise the abort path deterministically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Abort once any core's local clock passes this cycle count.
    pub max_cycles: Option<Cycle>,
    /// Abort once the event loop has taken this many heap steps (each
    /// step executes up to one batch of trace records on one core).
    pub max_heap_steps: Option<u64>,
}

impl WatchdogConfig {
    /// Both bounds disabled (the default).
    pub const fn disabled() -> Self {
        WatchdogConfig { max_cycles: None, max_heap_steps: None }
    }

    /// Whether any bound is armed.
    pub const fn is_enabled(&self) -> bool {
        self.max_cycles.is_some() || self.max_heap_steps.is_some()
    }
}

impl StableHash for WatchdogConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.max_cycles.stable_hash(h);
        self.max_heap_steps.stable_hash(h);
    }
}

/// Deterministic fault injection, for exercising the runner's fault
/// isolation (tests, CI drills). The preset workloads cannot legitimately
/// fail, so the only way to demonstrate panic containment end-to-end is
/// to ask for a failure explicitly. Injected faults participate in the
/// run-cache key: a faulty point and its healthy twin never collide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic at the start of execution (models a simulator bug).
    Panic,
    /// Stop making forward progress once the event loop reaches heap step
    /// `step`: cores keep getting re-queued without executing, burning
    /// heap steps until the watchdog (or a deadline) trips. Models a
    /// wedged simulation; requires a fuel budget or deadline to
    /// terminate, exactly like the real failure it imitates.
    StallAt {
        /// First heap step at which progress stops (0 stalls immediately).
        step: u64,
    },
    /// Fail the nth artifact write (1-based) issued through the runner's
    /// injectable I/O layer. The engine ignores this variant: it is the
    /// typed vocabulary chaos harnesses translate into a
    /// [`slicc_common::FaultyIo`] attached to the checkpoint or artifact
    /// writers (see [`InjectedFault::artifact_fault`]).
    IoErrorOnNthWrite {
        /// Which write fails, 1-based.
        n: u64,
    },
    /// Tear the tail of every checkpoint record written while armed (the
    /// final hash byte lands flipped), modelling a crash mid-append. Also
    /// I/O-layer-only, like [`InjectedFault::IoErrorOnNthWrite`].
    CorruptCheckpointTail,
    /// Hold the completed result for `delay_ms` wall-clock milliseconds
    /// before releasing it, modelling a client that drains results slowly
    /// (a stalled socket, a saturated downstream). Runner-layer-only: the
    /// engine ignores it, the simulation completes normally, and the
    /// metrics are byte-identical to the unfaulted twin's — what the
    /// fault holds open is the service's in-flight slot, so coalesced
    /// waiters and admission control feel the backpressure.
    SlowConsumer {
        /// How long the result is held after completion, in milliseconds.
        delay_ms: u64,
    },
    /// Allocate and touch `mib` MiB of host scratch memory for the
    /// duration of the attempt, modelling allocator pressure from an
    /// oversized neighbour. Runner-layer-only like
    /// [`InjectedFault::SlowConsumer`]: the simulation itself is
    /// untouched and its metrics byte-identical.
    AllocPressure {
        /// Scratch allocation held across the attempt, in MiB.
        mib: u64,
    },
}

impl InjectedFault {
    /// Every variant, for exhaustive chaos matrices.
    pub const ALL: [InjectedFault; 6] = [
        InjectedFault::Panic,
        InjectedFault::StallAt { step: 0 },
        InjectedFault::IoErrorOnNthWrite { n: 1 },
        InjectedFault::CorruptCheckpointTail,
        InjectedFault::SlowConsumer { delay_ms: 10 },
        InjectedFault::AllocPressure { mib: 1 },
    ];

    /// The I/O-layer translation of this fault, if it is an I/O fault.
    /// Engine-level faults (panic, stall) and runner-layer faults
    /// (slow-consumer, alloc-pressure) return `None`.
    pub fn artifact_fault(&self) -> Option<slicc_common::IoFault> {
        match *self {
            InjectedFault::Panic
            | InjectedFault::StallAt { .. }
            | InjectedFault::SlowConsumer { .. }
            | InjectedFault::AllocPressure { .. } => None,
            InjectedFault::IoErrorOnNthWrite { n } => Some(slicc_common::IoFault::FailOnNth(n)),
            InjectedFault::CorruptCheckpointTail => Some(slicc_common::IoFault::CorruptTail),
        }
    }

    /// Parses the CLI spelling: `panic`, `stall:STEP`, `io-error:N`,
    /// `corrupt-tail`, `slow-consumer:MS`, `alloc-pressure:MIB`.
    pub fn parse(s: &str) -> Option<InjectedFault> {
        if s == "panic" {
            return Some(InjectedFault::Panic);
        }
        if s == "corrupt-tail" {
            return Some(InjectedFault::CorruptCheckpointTail);
        }
        if let Some(step) = s.strip_prefix("stall:") {
            return step.parse().ok().map(|step| InjectedFault::StallAt { step });
        }
        if let Some(n) = s.strip_prefix("io-error:") {
            return n.parse().ok().map(|n| InjectedFault::IoErrorOnNthWrite { n });
        }
        if let Some(ms) = s.strip_prefix("slow-consumer:") {
            return ms.parse().ok().map(|delay_ms| InjectedFault::SlowConsumer { delay_ms });
        }
        if let Some(mib) = s.strip_prefix("alloc-pressure:") {
            return mib.parse().ok().map(|mib| InjectedFault::AllocPressure { mib });
        }
        None
    }
}

impl StableHash for InjectedFault {
    fn stable_hash(&self, h: &mut StableHasher) {
        // Explicit ordinals so run-cache keys survive declaration reorder.
        let ordinal: u64 = match self {
            InjectedFault::Panic => 0,
            InjectedFault::StallAt { .. } => 1,
            InjectedFault::IoErrorOnNthWrite { .. } => 2,
            InjectedFault::CorruptCheckpointTail => 3,
            InjectedFault::SlowConsumer { .. } => 4,
            InjectedFault::AllocPressure { .. } => 5,
        };
        ordinal.stable_hash(h);
        match self {
            InjectedFault::Panic | InjectedFault::CorruptCheckpointTail => {}
            InjectedFault::StallAt { step } => step.stable_hash(h),
            InjectedFault::IoErrorOnNthWrite { n } => n.stable_hash(h),
            InjectedFault::SlowConsumer { delay_ms } => delay_ms.stable_hash(h),
            InjectedFault::AllocPressure { mib } => mib.stable_hash(h),
        }
    }
}

/// A per-point wall-clock budget.
///
/// Carried on [`crate::RunRequest`] (and settable runner-wide as a
/// default): when armed, the engine checks real elapsed time on the
/// watchdog cadence and aborts with [`crate::SimError::DeadlineExceeded`]
/// plus a diagnostic snapshot once the budget is spent. Deliberately
/// **excluded** from the run-cache key, like observation config: a
/// deadline never alters the metrics of a run it does not abort, and
/// aborted runs are errors, which are never cached or checkpointed — so a
/// resumed sweep may tighten or relax its deadline and still reuse every
/// completed point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeadlineConfig {
    /// Wall-clock budget in milliseconds; `None` disables the deadline.
    /// Zero is legal and trips on the first deadline check — tests use it
    /// to exercise the abort path deterministically.
    pub wall_ms: Option<u64>,
}

impl DeadlineConfig {
    /// No deadline (the default).
    pub const fn disabled() -> Self {
        DeadlineConfig { wall_ms: None }
    }

    /// A budget of `ms` milliseconds of wall-clock time.
    pub const fn from_ms(ms: u64) -> Self {
        DeadlineConfig { wall_ms: Some(ms) }
    }

    /// Whether a budget is armed.
    pub const fn is_enabled(&self) -> bool {
        self.wall_ms.is_some()
    }

    /// The budget as a [`std::time::Duration`], if armed.
    pub fn budget(&self) -> Option<std::time::Duration> {
        self.wall_ms.map(std::time::Duration::from_millis)
    }
}

/// Full machine + algorithm configuration.
///
/// [`SimConfig::paper_baseline`] reproduces Table 2; the `with_*` methods
/// derive the variants used across the evaluation, and
/// [`SimConfigBuilder`] is the validated write path.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Number of cores (Table 2: 16, on a 4×4 torus).
    pub cores: usize,
    /// Torus columns (`cores` must equal `noc_cols * noc_rows`).
    pub noc_cols: u32,
    /// Torus rows.
    pub noc_rows: u32,
    /// L1 instruction cache capacity in bytes.
    pub l1i_size: u64,
    /// L1-I associativity.
    pub l1i_assoc: u32,
    /// L1 data cache capacity in bytes.
    pub l1d_size: u64,
    /// L1-D associativity.
    pub l1d_assoc: u32,
    /// L1 replacement policy (both caches; Figure 2 sweeps this).
    pub l1_policy: PolicyKind,
    /// Capacity→latency model for the L1-I (the CACTI substitute).
    pub latency_table: LatencyTable,
    /// Fixed L1-I latency override (the PIF model: big cache, small-cache
    /// latency).
    pub l1i_latency_override: Option<Cycle>,
    /// L2 capacity in bytes (Table 2: 1 MiB per core).
    pub l2_size: u64,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// L2 banks.
    pub l2_banks: usize,
    /// L2 bank hit latency.
    pub l2_hit_latency: Cycle,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Core timing model.
    pub timing: TimingConfig,
    /// Thread-migration cost model.
    pub migration: MigrationModel,
    /// SLICC thresholds.
    pub slicc: SliccParams,
    /// Bloom-filter signature size in bits (§5.3: 2K).
    pub bloom_bits: u64,
    /// Execution mode.
    pub mode: SchedulerMode,
    /// Next-line prefetch degree on the L1-I, if enabled.
    pub next_line_prefetch: Option<u64>,
    /// Enable the 3C miss classifiers (Figure 1; costs memory/time).
    pub classify_3c: bool,
    /// SLICC's in-flight thread pool, as a multiple of N (§5.1: 2N).
    pub pool_multiplier: u32,
    /// Per-core thread queue capacity (Table 3: 30).
    pub thread_queue_capacity: usize,
    /// Maximum waiting threads at a migration target: a candidate with a
    /// longer queue is rejected and the thread falls back to an idle core
    /// or stays (loading the segment locally, which replicates hot
    /// segments and spreads load). The paper leaves target congestion
    /// unspecified; without this bound every thread converges on the
    /// single holder of each segment and the collective serializes.
    pub migration_queue_limit: usize,
    /// Scout-core preprocessing length for SLICC-Pp.
    pub scout_instructions: u32,
    /// Instruction TLB entries per core.
    pub itlb_entries: usize,
    /// Instruction page size: DBMS binaries are mapped with huge pages
    /// (the sparse code layout would otherwise thrash a 4 KiB iTLB).
    pub itlb_page_bytes: u64,
    /// Data TLB entries per core.
    pub dtlb_entries: usize,
    /// Page-walk latency in cycles.
    pub tlb_walk_cycles: u64,
    /// Run the real PIF prefetcher (Ferdman et al.) on each L1-I; only
    /// meaningful under baseline scheduling.
    pub pif_prefetch: Option<PifConfig>,
    /// STEPS context-switch cost in cycles (fast same-core switch).
    pub steps_switch_cycles: u64,
    /// STEPS thread-group size (the paper's STEPS forms groups of ~10).
    pub steps_team_size: usize,
    /// Cycles between successive transaction arrivals. Zero starts every
    /// thread at cycle 0, which lock-steps identical transactions into
    /// synchronized DRAM-bank convoys no real system exhibits.
    pub arrival_stagger_cycles: u64,
    /// Measure bloom-signature accuracy against ground truth on every
    /// L1-I access (Figure 9; adds overhead).
    pub measure_bloom_accuracy: bool,
    /// Ablation: answer remote segment searches from exact cache
    /// contents instead of the bloom signatures (an idealized,
    /// bandwidth-free search).
    pub exact_search: bool,
    /// Ablation: allow idle cores to steal surplus queued threads (the
    /// centralized-queue reading of §5.7). Disabling shows the
    /// utilization cost of strictly local queues.
    pub work_stealing: bool,
    /// Seed for the stochastic cache policies.
    pub seed: u64,
    /// Forward-progress fuel budget (disabled by default).
    pub watchdog: WatchdogConfig,
    /// Deterministic fault injection (none by default).
    pub fault_injection: Option<InjectedFault>,
    /// Worker threads used *inside* one simulation point to pre-decode
    /// independent threads' trace streams in parallel. Must be ≥ 1; the
    /// default of 1 decodes lazily on the simulating thread. Never
    /// changes simulated results, so it is excluded from the stable
    /// run-cache key. (Renamed from `threads_per_point`, which survives
    /// one release as a deprecated builder/CLI alias.)
    pub decode_threads: usize,
    /// Worker threads used to parallelize one point's *event loop*:
    /// 1 (the default) commits every split step inline; `P > 1` runs one
    /// committer plus `P − 1` shard lanes that speculatively execute
    /// private segments (see DESIGN §13). Must be ≥ 1. Never changes
    /// simulated results — metrics are byte-identical for any value — so
    /// it is excluded from the stable run-cache key. `exact_search`
    /// forces the sequential schedule regardless of this knob.
    pub point_threads: usize,
}

impl SimConfig {
    /// The Table-2 baseline machine.
    pub fn paper_baseline() -> Self {
        SimConfig {
            cores: 16,
            noc_cols: 4,
            noc_rows: 4,
            l1i_size: 32 * 1024,
            l1i_assoc: 8,
            l1d_size: 32 * 1024,
            l1d_assoc: 8,
            l1_policy: PolicyKind::Lru,
            latency_table: LatencyTable::cacti_like(),
            l1i_latency_override: None,
            l2_size: 16 * 1024 * 1024,
            l2_assoc: 16,
            l2_banks: 16,
            l2_hit_latency: 16,
            dram: DramConfig::paper_ddr3_1600(),
            timing: TimingConfig::paper_like(),
            migration: MigrationModel::paper_like(),
            slicc: SliccParams::calibrated(),
            bloom_bits: 2048,
            mode: SchedulerMode::Baseline,
            next_line_prefetch: None,
            classify_3c: false,
            // The paper manages 2N threads; our queue-bounded migration
            // needs a deeper pool to keep all cores fed (see DESIGN.md).
            pool_multiplier: 4,
            thread_queue_capacity: 30,
            migration_queue_limit: 4,
            scout_instructions: 48,
            itlb_entries: 128,
            itlb_page_bytes: 2 * 1024 * 1024,
            dtlb_entries: 64,
            tlb_walk_cycles: 30,
            pif_prefetch: None,
            steps_switch_cycles: 20,
            steps_team_size: 10,
            arrival_stagger_cycles: 97,
            measure_bloom_accuracy: false,
            exact_search: false,
            work_stealing: true,
            seed: 0x5eed,
            watchdog: WatchdogConfig::disabled(),
            fault_injection: None,
            decode_threads: 1,
            point_threads: 1,
        }
    }

    /// A miniature machine matched to [`slicc_trace::TraceScale::tiny`]:
    /// 4 KiB L1s so 48-block segments keep the §3.1 fits/doesn't-fit
    /// property, with thresholds scaled accordingly.
    pub fn tiny_test() -> Self {
        let mut c = SimConfig::paper_baseline();
        c.l1i_size = 4 * 1024;
        c.l1i_assoc = 8;
        c.l1d_size = 4 * 1024;
        c.l1d_assoc = 8;
        // 4 KiB / 64 B = 64 blocks; fill up at 1/4 of them, as in the
        // calibrated full-size configuration.
        c.slicc = c.slicc.with_fill_up(16).with_dilution(3);
        c.bloom_bits = 256;
        c.l2_size = 2 * 1024 * 1024;
        c.latency_table = LatencyTable::constant(3);
        c
    }

    /// Returns a copy running under `mode`.
    pub fn with_mode(mut self, mode: SchedulerMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns a copy with a next-line prefetcher of `degree`.
    pub fn with_next_line(mut self, degree: u64) -> Self {
        self.next_line_prefetch = Some(degree);
        self
    }

    /// Returns a copy running the *real* PIF prefetcher (history buffer +
    /// stream read-out) under baseline scheduling, as opposed to the
    /// paper's upper-bound model ([`SimConfig::with_pif_model`]).
    pub fn with_real_pif(mut self) -> Self {
        self.pif_prefetch = Some(PifConfig::default());
        self.mode = SchedulerMode::Baseline;
        self
    }

    /// Returns a copy modelling PIF as the paper does (§5.6): a 512 KiB
    /// L1-I with the 32 KiB cache's 3-cycle latency, baseline scheduling.
    pub fn with_pif_model(mut self) -> Self {
        self.l1i_size = 512 * 1024;
        self.l1i_latency_override = Some(3);
        self.mode = SchedulerMode::Baseline;
        self
    }

    /// Returns a copy with a different L1-I capacity (Figure 1 sweeps).
    pub fn with_l1i_size(mut self, bytes: u64) -> Self {
        self.l1i_size = bytes;
        self
    }

    /// Returns a copy with a different L1-D capacity (Figure 1 sweeps).
    pub fn with_l1d_size(mut self, bytes: u64) -> Self {
        self.l1d_size = bytes;
        self
    }

    /// Returns a copy with a different replacement policy (Figure 2).
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.l1_policy = policy;
        self
    }

    /// Returns a copy with different SLICC thresholds (Figures 7/8).
    pub fn with_slicc_params(mut self, params: SliccParams) -> Self {
        self.slicc = params;
        self
    }

    /// Returns a copy with 3C classification enabled (Figure 1).
    pub fn with_classification(mut self) -> Self {
        self.classify_3c = true;
        self
    }

    /// The effective L1-I hit latency (override or table lookup).
    pub fn l1i_latency(&self) -> Cycle {
        self.l1i_latency_override.unwrap_or_else(|| self.latency_table.l1_latency(self.l1i_size))
    }

    /// The L1-I geometry.
    pub fn l1i_geometry(&self) -> CacheGeometry {
        CacheGeometry::new(self.l1i_size, self.l1i_assoc, 64)
    }

    /// The L1-D geometry.
    pub fn l1d_geometry(&self) -> CacheGeometry {
        CacheGeometry::new(self.l1d_size, self.l1d_assoc, 64)
    }

    /// Validates cross-field invariants, returning the first violation.
    ///
    /// This is the full rule set behind [`SimConfigBuilder::build`]; see
    /// [`ConfigError`] for the individual invariants.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.cores < 1 {
            return Err(ConfigError::NoCores);
        }
        if self.cores as u32 != self.noc_cols * self.noc_rows {
            return Err(ConfigError::TorusMismatch {
                cores: self.cores,
                cols: self.noc_cols,
                rows: self.noc_rows,
            });
        }
        if self.pool_multiplier < 1 {
            return Err(ConfigError::ZeroPoolMultiplier);
        }
        if self.mode == SchedulerMode::SliccPp && self.cores < 2 {
            return Err(ConfigError::ScoutNeedsTwoCores);
        }
        if self.thread_queue_capacity < 1 {
            return Err(ConfigError::ZeroThreadQueue);
        }
        if self.l2_banks < 1 {
            return Err(ConfigError::ZeroL2Banks);
        }
        if self.bloom_bits < 1 {
            return Err(ConfigError::ZeroBloomBits);
        }
        if self.decode_threads < 1 {
            return Err(ConfigError::ZeroDecodeThreads);
        }
        if self.point_threads < 1 {
            return Err(ConfigError::ZeroPointThreads);
        }
        check_cache_shape("l1i", self.l1i_size, self.l1i_assoc)?;
        check_cache_shape("l1d", self.l1d_size, self.l1d_assoc)?;
        check_cache_shape("l2", self.l2_size, self.l2_assoc)?;
        if self.mode.uses_agents() {
            let blocks = self.l1i_size / slicc_common::BLOCK_SIZE;
            if u64::from(self.slicc.fill_up_t) > blocks {
                return Err(ConfigError::FillUpExceedsBlocks { fill_up_t: self.slicc.fill_up_t, blocks });
            }
        }
        Ok(())
    }

    /// Validates cross-field invariants.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant with the corresponding
    /// [`ConfigError`] message. Fallible callers (the builder, the CLI)
    /// use [`SimConfig::try_validate`] instead.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// Checks the invariants `CacheGeometry::new` would otherwise enforce by
/// panicking, so misconfigurations surface as typed errors.
fn check_cache_shape(cache: &'static str, size: u64, assoc: u32) -> Result<(), ConfigError> {
    if assoc == 0 {
        return Err(ConfigError::ZeroWayCache { cache });
    }
    if size == 0 {
        return Err(ConfigError::ZeroSizeCache { cache });
    }
    let way_bytes = u64::from(assoc) * slicc_common::BLOCK_SIZE;
    if !size.is_multiple_of(way_bytes) {
        return Err(ConfigError::UnalignedCache { cache, size, assoc });
    }
    let sets = size / way_bytes;
    if !sets.is_power_of_two() {
        return Err(ConfigError::NonPowerOfTwoSets { cache, sets });
    }
    Ok(())
}

/// A violated [`SimConfig`] invariant; each variant names the offending
/// field(s) and carries the rejected values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `cores` is zero.
    NoCores,
    /// `noc_cols * noc_rows` does not equal `cores`.
    TorusMismatch {
        /// The configured core count.
        cores: usize,
        /// Torus columns.
        cols: u32,
        /// Torus rows.
        rows: u32,
    },
    /// `pool_multiplier` is zero (SLICC needs an in-flight pool).
    ZeroPoolMultiplier,
    /// SLICC-Pp needs a scout core in addition to at least one worker.
    ScoutNeedsTwoCores,
    /// `thread_queue_capacity` is zero: no core could accept any thread.
    ZeroThreadQueue,
    /// `l2_banks` is zero.
    ZeroL2Banks,
    /// `bloom_bits` is zero: remote searches would have no signature.
    ZeroBloomBits,
    /// `decode_threads` is zero: every point needs at least the
    /// simulating thread itself.
    ZeroDecodeThreads,
    /// `point_threads` is zero: every point needs at least the committer
    /// thread itself.
    ZeroPointThreads,
    /// A cache is configured with zero ways.
    ZeroWayCache {
        /// Which cache field group (`l1i`, `l1d`, or `l2`).
        cache: &'static str,
    },
    /// A cache is configured with zero capacity.
    ZeroSizeCache {
        /// Which cache field group.
        cache: &'static str,
    },
    /// Capacity is not a multiple of `associativity * 64 B`.
    UnalignedCache {
        /// Which cache field group.
        cache: &'static str,
        /// The rejected capacity in bytes.
        size: u64,
        /// The configured associativity.
        assoc: u32,
    },
    /// The derived set count is not a power of two (caches index with bit
    /// fields).
    NonPowerOfTwoSets {
        /// Which cache field group.
        cache: &'static str,
        /// The rejected set count.
        sets: u64,
    },
    /// `slicc.fill_up_t` exceeds the L1-I's block count, so the fill-up
    /// detector could never fire.
    FillUpExceedsBlocks {
        /// The configured threshold.
        fill_up_t: u32,
        /// Blocks in the configured L1-I.
        blocks: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoCores => write!(f, "cores: need at least one core"),
            ConfigError::TorusMismatch { cores, cols, rows } => {
                write!(f, "noc_cols/noc_rows: torus {cols}x{rows} must cover {cores} cores")
            }
            ConfigError::ZeroPoolMultiplier => {
                write!(f, "pool_multiplier: pool multiplier must be at least 1")
            }
            ConfigError::ScoutNeedsTwoCores => {
                write!(f, "cores: SLICC-Pp dedicates one core to scouting")
            }
            ConfigError::ZeroThreadQueue => {
                write!(f, "thread_queue_capacity: per-core queues need capacity for at least one thread")
            }
            ConfigError::ZeroL2Banks => write!(f, "l2_banks: need at least one L2 bank"),
            ConfigError::ZeroBloomBits => {
                write!(f, "bloom_bits: bloom signatures need at least one bit")
            }
            ConfigError::ZeroDecodeThreads => {
                write!(f, "decode_threads: a point needs at least one decode worker thread")
            }
            ConfigError::ZeroPointThreads => {
                write!(f, "point_threads: a point needs at least the committer thread")
            }
            ConfigError::ZeroWayCache { cache } => {
                write!(f, "{cache}_assoc: zero-way caches cannot hold blocks")
            }
            ConfigError::ZeroSizeCache { cache } => {
                write!(f, "{cache}_size: cache capacity must be non-zero")
            }
            ConfigError::UnalignedCache { cache, size, assoc } => {
                write!(
                    f,
                    "{cache}_size: capacity {size} B is not a multiple of associativity {assoc} x 64 B blocks"
                )
            }
            ConfigError::NonPowerOfTwoSets { cache, sets } => {
                write!(f, "{cache}_size/{cache}_assoc: derived set count {sets} is not a power of two")
            }
            ConfigError::FillUpExceedsBlocks { fill_up_t, blocks } => {
                write!(
                    f,
                    "slicc.fill_up_t: threshold {fill_up_t} exceeds the L1-I's {blocks} blocks"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_baseline()
    }
}

impl StableHash for SimConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        // Every field, in declaration order: two configs that could ever
        // produce different metrics must produce different run-cache keys.
        self.cores.stable_hash(h);
        self.noc_cols.stable_hash(h);
        self.noc_rows.stable_hash(h);
        self.l1i_size.stable_hash(h);
        self.l1i_assoc.stable_hash(h);
        self.l1d_size.stable_hash(h);
        self.l1d_assoc.stable_hash(h);
        self.l1_policy.stable_hash(h);
        self.latency_table.stable_hash(h);
        self.l1i_latency_override.stable_hash(h);
        self.l2_size.stable_hash(h);
        self.l2_assoc.stable_hash(h);
        self.l2_banks.stable_hash(h);
        self.l2_hit_latency.stable_hash(h);
        self.dram.stable_hash(h);
        self.timing.stable_hash(h);
        self.migration.stable_hash(h);
        self.slicc.stable_hash(h);
        self.bloom_bits.stable_hash(h);
        self.mode.stable_hash(h);
        self.next_line_prefetch.stable_hash(h);
        self.classify_3c.stable_hash(h);
        self.pool_multiplier.stable_hash(h);
        self.thread_queue_capacity.stable_hash(h);
        self.migration_queue_limit.stable_hash(h);
        self.scout_instructions.stable_hash(h);
        self.itlb_entries.stable_hash(h);
        self.itlb_page_bytes.stable_hash(h);
        self.dtlb_entries.stable_hash(h);
        self.tlb_walk_cycles.stable_hash(h);
        self.pif_prefetch.stable_hash(h);
        self.steps_switch_cycles.stable_hash(h);
        self.steps_team_size.stable_hash(h);
        self.arrival_stagger_cycles.stable_hash(h);
        self.measure_bloom_accuracy.stable_hash(h);
        self.exact_search.stable_hash(h);
        self.work_stealing.stable_hash(h);
        self.seed.stable_hash(h);
        self.watchdog.stable_hash(h);
        self.fault_injection.stable_hash(h);
        // `decode_threads` is deliberately EXCLUDED: it only parallelizes
        // trace pre-decoding, never the coherent event loop, so any worker
        // count produces byte-identical metrics (asserted by the golden
        // determinism test) and must share a run-cache slot.
        // `point_threads` is EXCLUDED for the same reason: shard lanes
        // only *speculate* deterministic segments whose commit order and
        // inputs are fixed by the committer, so any worker count produces
        // byte-identical metrics (asserted by the golden scaling test)
        // and must share a run-cache slot.
    }
}

/// Validated construction of [`SimConfig`]s.
///
/// The builder is the write path for configurations: setters stage changes
/// and [`SimConfigBuilder::build`] runs the full
/// [`SimConfig::try_validate`] rule set, so a zero-way cache or a
/// `fill_up_t` larger than the L1-I can never reach the engine. Setters
/// mirror the experiment knobs the evaluation sweeps.
///
/// # Example
///
/// ```
/// use slicc_sim::{SchedulerMode, SimConfigBuilder};
///
/// let cfg = SimConfigBuilder::tiny_test().mode(SchedulerMode::Slicc).seed(7).build().unwrap();
/// assert_eq!(cfg.mode, SchedulerMode::Slicc);
///
/// // Invalid shapes are rejected with an error naming the field:
/// let err = SimConfigBuilder::tiny_test().l1i(4 * 1024, 0).build().unwrap_err();
/// assert!(err.to_string().contains("l1i_assoc"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Starts from the Table-2 baseline machine.
    pub fn paper_baseline() -> Self {
        SimConfigBuilder { cfg: SimConfig::paper_baseline() }
    }

    /// Starts from the miniature test machine.
    pub fn tiny_test() -> Self {
        SimConfigBuilder { cfg: SimConfig::tiny_test() }
    }

    /// Starts from an existing configuration (e.g. to derive a variant).
    pub fn from_config(cfg: SimConfig) -> Self {
        SimConfigBuilder { cfg }
    }

    /// Sets the core count and torus shape together (they must agree, so
    /// the builder exposes them as one knob).
    pub fn cores(mut self, cores: usize, noc_cols: u32, noc_rows: u32) -> Self {
        self.cfg.cores = cores;
        self.cfg.noc_cols = noc_cols;
        self.cfg.noc_rows = noc_rows;
        self
    }

    /// Sets L1-I capacity (bytes) and associativity.
    pub fn l1i(mut self, size: u64, assoc: u32) -> Self {
        self.cfg.l1i_size = size;
        self.cfg.l1i_assoc = assoc;
        self
    }

    /// Sets L1-I capacity, keeping the associativity (Figure 1 sweeps).
    pub fn l1i_size(mut self, size: u64) -> Self {
        self.cfg.l1i_size = size;
        self
    }

    /// Sets L1-D capacity (bytes) and associativity.
    pub fn l1d(mut self, size: u64, assoc: u32) -> Self {
        self.cfg.l1d_size = size;
        self.cfg.l1d_assoc = assoc;
        self
    }

    /// Sets L1-D capacity, keeping the associativity (Figure 1 sweeps).
    pub fn l1d_size(mut self, size: u64) -> Self {
        self.cfg.l1d_size = size;
        self
    }

    /// Sets the L1 replacement policy (Figure 2).
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.cfg.l1_policy = policy;
        self
    }

    /// Replaces the capacity→latency table (latency ablations).
    pub fn latency_table(mut self, table: LatencyTable) -> Self {
        self.cfg.latency_table = table;
        self
    }

    /// Sets L2 capacity and bank count (scaling experiments).
    pub fn l2(mut self, size: u64, banks: usize) -> Self {
        self.cfg.l2_size = size;
        self.cfg.l2_banks = banks;
        self
    }

    /// Sets the execution mode.
    pub fn mode(mut self, mode: SchedulerMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Enables a next-line L1-I prefetcher of `degree`.
    pub fn next_line(mut self, degree: u64) -> Self {
        self.cfg.next_line_prefetch = Some(degree);
        self
    }

    /// Runs the real PIF prefetcher under baseline scheduling.
    pub fn real_pif(mut self) -> Self {
        self.cfg = self.cfg.with_real_pif();
        self
    }

    /// Models PIF as the paper does: big L1-I at small-cache latency.
    pub fn pif_model(mut self) -> Self {
        self.cfg = self.cfg.with_pif_model();
        self
    }

    /// Replaces the SLICC thresholds wholesale (Figures 7/8).
    pub fn slicc_params(mut self, params: SliccParams) -> Self {
        self.cfg.slicc = params;
        self
    }

    /// Sets `fill-up_t` only.
    pub fn fill_up(mut self, fill_up_t: u32) -> Self {
        self.cfg.slicc = self.cfg.slicc.with_fill_up(fill_up_t);
        self
    }

    /// Sets `matched_t` only.
    pub fn matched(mut self, matched_t: u32) -> Self {
        self.cfg.slicc = self.cfg.slicc.with_matched(matched_t);
        self
    }

    /// Sets `dilution_t` only.
    pub fn dilution(mut self, dilution_t: u32) -> Self {
        self.cfg.slicc = self.cfg.slicc.with_dilution(dilution_t);
        self
    }

    /// Sets the bloom-signature size in bits (Figure 9).
    pub fn bloom_bits(mut self, bits: u64) -> Self {
        self.cfg.bloom_bits = bits;
        self
    }

    /// Enables 3C miss classification (Figure 1).
    pub fn classify_3c(mut self) -> Self {
        self.cfg.classify_3c = true;
        self
    }

    /// Sets the in-flight thread pool multiple.
    pub fn pool_multiplier(mut self, multiplier: u32) -> Self {
        self.cfg.pool_multiplier = multiplier;
        self
    }

    /// Sets the migration target queue bound (§5.7 ablations).
    pub fn migration_queue_limit(mut self, limit: usize) -> Self {
        self.cfg.migration_queue_limit = limit;
        self
    }

    /// Sets the migrated-context size in cache blocks (cost ablations).
    pub fn migration_context_blocks(mut self, blocks: u32) -> Self {
        self.cfg.migration.context_blocks = blocks;
        self
    }

    /// Enables/disables idle-core work stealing (§5.7 ablations).
    pub fn work_stealing(mut self, enabled: bool) -> Self {
        self.cfg.work_stealing = enabled;
        self
    }

    /// Answers remote searches from exact contents instead of bloom
    /// signatures (idealized-search ablation).
    pub fn exact_search(mut self, enabled: bool) -> Self {
        self.cfg.exact_search = enabled;
        self
    }

    /// Measures bloom-signature accuracy against ground truth (Figure 9).
    pub fn measure_bloom_accuracy(mut self) -> Self {
        self.cfg.measure_bloom_accuracy = true;
        self
    }

    /// Sets the STEPS context-switch cost (§6 sensitivity).
    pub fn steps_switch_cycles(mut self, cycles: u64) -> Self {
        self.cfg.steps_switch_cycles = cycles;
        self
    }

    /// Sets the worker-thread count for intra-point trace pre-decoding
    /// (validated ≥ 1 by [`SimConfigBuilder::build`]; never changes
    /// simulated results).
    pub fn decode_threads(mut self, threads: usize) -> Self {
        self.cfg.decode_threads = threads;
        self
    }

    /// Deprecated alias for [`SimConfigBuilder::decode_threads`], kept
    /// for one release under the knob's pre-rename name.
    pub fn threads_per_point(self, threads: usize) -> Self {
        self.decode_threads(threads)
    }

    /// Sets the worker-thread count for one point's parallel event loop
    /// (validated ≥ 1 by [`SimConfigBuilder::build`]; never changes
    /// simulated results — see DESIGN §13).
    pub fn point_threads(mut self, threads: usize) -> Self {
        self.cfg.point_threads = threads;
        self
    }

    /// Sets the RNG seed for stochastic cache policies.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Replaces the watchdog fuel budget wholesale.
    pub fn watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.cfg.watchdog = watchdog;
        self
    }

    /// Arms the watchdog's cycle bound.
    pub fn watchdog_cycles(mut self, max_cycles: Cycle) -> Self {
        self.cfg.watchdog.max_cycles = Some(max_cycles);
        self
    }

    /// Arms the watchdog's heap-step bound.
    pub fn watchdog_steps(mut self, max_heap_steps: u64) -> Self {
        self.cfg.watchdog.max_heap_steps = Some(max_heap_steps);
        self
    }

    /// Injects a deterministic fault (fault-isolation drills).
    pub fn inject_fault(mut self, fault: InjectedFault) -> Self {
        self.cfg.fault_injection = Some(fault);
        self
    }

    /// Applies an arbitrary mutation for knobs without a dedicated setter.
    /// Validation still runs at [`SimConfigBuilder::build`], so this
    /// cannot smuggle an invalid configuration past the rule set.
    pub fn tweak(mut self, f: impl FnOnce(&mut SimConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.cfg.try_validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_2() {
        let c = SimConfig::paper_baseline();
        c.validate();
        assert_eq!(c.cores, 16);
        assert_eq!(c.l1i_size, 32 * 1024);
        assert_eq!(c.l1i_latency(), 3);
        assert_eq!(c.l2_size, 16 * 1024 * 1024);
        assert_eq!(c.l2_hit_latency, 16);
        assert_eq!(c.thread_queue_capacity, 30);
    }

    #[test]
    fn pif_model_is_big_but_fast() {
        let c = SimConfig::paper_baseline().with_pif_model();
        assert_eq!(c.l1i_size, 512 * 1024);
        assert_eq!(c.l1i_latency(), 3);
        assert_eq!(c.mode, SchedulerMode::Baseline);
    }

    #[test]
    fn big_cache_without_override_is_slower() {
        let c = SimConfig::paper_baseline().with_l1i_size(512 * 1024);
        assert!(c.l1i_latency() > 3);
    }

    #[test]
    fn mode_helpers() {
        assert!(!SchedulerMode::Baseline.is_slicc());
        assert!(SchedulerMode::Slicc.is_slicc());
        assert!(!SchedulerMode::Slicc.is_type_aware());
        assert!(SchedulerMode::SliccSw.is_type_aware());
        assert_eq!(SchedulerMode::SliccPp.to_string(), "SLICC-Pp");
    }

    #[test]
    #[should_panic(expected = "torus")]
    fn bad_torus_panics() {
        let mut c = SimConfig::paper_baseline();
        c.cores = 12;
        c.validate();
    }

    #[test]
    fn builder_validates_on_build() {
        let cfg = SimConfigBuilder::paper_baseline().mode(SchedulerMode::Slicc).seed(42).build().unwrap();
        assert_eq!(cfg.mode, SchedulerMode::Slicc);
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn builder_rejects_zero_way_cache() {
        let err = SimConfigBuilder::paper_baseline().l1i(32 * 1024, 0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroWayCache { cache: "l1i" });
        assert!(err.to_string().contains("l1i_assoc"));
    }

    #[test]
    fn builder_rejects_fill_up_beyond_blocks() {
        // The tiny machine's 4 KiB L1-I holds 64 blocks; fill-up_t 65 can
        // never fire — but exactly 64 is legal (Figure 7 sweeps up to the
        // full block count).
        let err = SimConfigBuilder::tiny_test()
            .mode(SchedulerMode::Slicc)
            .fill_up(65)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::FillUpExceedsBlocks { fill_up_t: 65, blocks: 64 });
        assert!(SimConfigBuilder::tiny_test().mode(SchedulerMode::Slicc).fill_up(64).build().is_ok());
    }

    #[test]
    fn builder_rejects_bad_torus() {
        let err = SimConfigBuilder::paper_baseline().cores(12, 4, 4).build().unwrap_err();
        assert!(matches!(err, ConfigError::TorusMismatch { cores: 12, cols: 4, rows: 4 }));
        assert!(err.to_string().contains("torus"));
    }

    #[test]
    fn builder_tweak_cannot_skip_validation() {
        let err = SimConfigBuilder::paper_baseline().tweak(|c| c.pool_multiplier = 0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroPoolMultiplier);
    }

    #[test]
    fn stable_hash_distinguishes_configs() {
        use slicc_common::stable_hash_of;
        let base = SimConfig::paper_baseline();
        assert_eq!(stable_hash_of(&base), stable_hash_of(&SimConfig::paper_baseline()));
        let slicc = SimConfig::paper_baseline().with_mode(SchedulerMode::Slicc);
        assert_ne!(stable_hash_of(&base), stable_hash_of(&slicc));
        let seeded = SimConfigBuilder::paper_baseline().seed(1).build().unwrap();
        assert_ne!(stable_hash_of(&base), stable_hash_of(&seeded));
    }

    #[test]
    fn watchdog_and_fault_injection_change_the_stable_hash() {
        // Both knobs change the *outcome* of a run (abort vs. success), so
        // leaving them out of the key would alias a livelocking point with
        // its healthy twin and corrupt checkpoint resume.
        use slicc_common::stable_hash_of;
        let base = SimConfig::paper_baseline();
        let fueled = SimConfigBuilder::paper_baseline().watchdog_steps(10).build().unwrap();
        assert_ne!(stable_hash_of(&base), stable_hash_of(&fueled));
        let cycles = SimConfigBuilder::paper_baseline().watchdog_cycles(10).build().unwrap();
        assert_ne!(stable_hash_of(&base), stable_hash_of(&cycles));
        assert_ne!(stable_hash_of(&fueled), stable_hash_of(&cycles));
        let faulty = SimConfigBuilder::paper_baseline().inject_fault(InjectedFault::Panic).build().unwrap();
        assert_ne!(stable_hash_of(&base), stable_hash_of(&faulty));
    }

    #[test]
    fn decode_threads_is_validated_and_excluded_from_the_stable_hash() {
        use slicc_common::stable_hash_of;
        let err = SimConfigBuilder::paper_baseline().decode_threads(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroDecodeThreads);
        assert!(err.to_string().contains("decode_threads"), "got: {err}");
        // Decode parallelism never changes results, so it must alias into
        // the same run-cache slot as the single-threaded point.
        let base = SimConfig::paper_baseline();
        let wide = SimConfigBuilder::paper_baseline().decode_threads(8).build().unwrap();
        assert_eq!(wide.decode_threads, 8);
        assert_eq!(stable_hash_of(&base), stable_hash_of(&wide));
        // The pre-rename builder name still lands on the same knob.
        let alias = SimConfigBuilder::paper_baseline().threads_per_point(6).build().unwrap();
        assert_eq!(alias.decode_threads, 6);
    }

    #[test]
    fn point_threads_is_validated_and_excluded_from_the_stable_hash() {
        use slicc_common::stable_hash_of;
        let err = SimConfigBuilder::paper_baseline().point_threads(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroPointThreads);
        assert!(err.to_string().contains("point_threads"), "got: {err}");
        // Shard lanes only speculate committer-ordered segments, so any
        // worker count shares the single-threaded point's cache slot.
        let base = SimConfig::paper_baseline();
        let wide = SimConfigBuilder::paper_baseline().point_threads(8).build().unwrap();
        assert_eq!(wide.point_threads, 8);
        assert_eq!(stable_hash_of(&base), stable_hash_of(&wide));
    }

    #[test]
    fn every_injected_fault_hashes_distinctly_including_payloads() {
        use slicc_common::stable_hash_of;
        let mut keys: Vec<u64> = InjectedFault::ALL
            .iter()
            .map(|f| {
                stable_hash_of(
                    &SimConfigBuilder::paper_baseline().inject_fault(*f).build().unwrap(),
                )
            })
            .collect();
        // Payloads must feed the hash too, not just the ordinal.
        keys.push(stable_hash_of(
            &SimConfigBuilder::paper_baseline()
                .inject_fault(InjectedFault::StallAt { step: 7 })
                .build()
                .unwrap(),
        ));
        keys.push(stable_hash_of(
            &SimConfigBuilder::paper_baseline()
                .inject_fault(InjectedFault::IoErrorOnNthWrite { n: 7 })
                .build()
                .unwrap(),
        ));
        keys.push(stable_hash_of(
            &SimConfigBuilder::paper_baseline()
                .inject_fault(InjectedFault::SlowConsumer { delay_ms: 77 })
                .build()
                .unwrap(),
        ));
        keys.push(stable_hash_of(
            &SimConfigBuilder::paper_baseline()
                .inject_fault(InjectedFault::AllocPressure { mib: 77 })
                .build()
                .unwrap(),
        ));
        let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(distinct.len(), keys.len(), "fault keys must not collide: {keys:x?}");
    }

    #[test]
    fn injected_fault_parses_the_cli_spellings() {
        assert_eq!(InjectedFault::parse("panic"), Some(InjectedFault::Panic));
        assert_eq!(InjectedFault::parse("stall:42"), Some(InjectedFault::StallAt { step: 42 }));
        assert_eq!(
            InjectedFault::parse("io-error:3"),
            Some(InjectedFault::IoErrorOnNthWrite { n: 3 })
        );
        assert_eq!(InjectedFault::parse("corrupt-tail"), Some(InjectedFault::CorruptCheckpointTail));
        assert_eq!(
            InjectedFault::parse("slow-consumer:25"),
            Some(InjectedFault::SlowConsumer { delay_ms: 25 })
        );
        assert_eq!(
            InjectedFault::parse("alloc-pressure:8"),
            Some(InjectedFault::AllocPressure { mib: 8 })
        );
        for bad in
            ["", "stall", "stall:", "stall:x", "io-error:", "panic!", "slow-consumer:", "alloc-pressure:x"]
        {
            assert_eq!(InjectedFault::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn only_io_faults_translate_to_the_artifact_layer() {
        use slicc_common::IoFault;
        assert_eq!(InjectedFault::Panic.artifact_fault(), None);
        assert_eq!(InjectedFault::StallAt { step: 1 }.artifact_fault(), None);
        assert_eq!(
            InjectedFault::IoErrorOnNthWrite { n: 2 }.artifact_fault(),
            Some(IoFault::FailOnNth(2))
        );
        assert_eq!(
            InjectedFault::CorruptCheckpointTail.artifact_fault(),
            Some(IoFault::CorruptTail)
        );
        assert_eq!(InjectedFault::SlowConsumer { delay_ms: 5 }.artifact_fault(), None);
        assert_eq!(InjectedFault::AllocPressure { mib: 2 }.artifact_fault(), None);
    }

    #[test]
    fn deadline_config_budget_and_enablement() {
        assert!(!DeadlineConfig::disabled().is_enabled());
        assert_eq!(DeadlineConfig::disabled().budget(), None);
        let d = DeadlineConfig::from_ms(250);
        assert!(d.is_enabled());
        assert_eq!(d.budget(), Some(std::time::Duration::from_millis(250)));
    }

    #[test]
    fn watchdog_defaults_disabled() {
        let c = SimConfig::paper_baseline();
        assert!(!c.watchdog.is_enabled());
        assert!(c.fault_injection.is_none());
        assert!(SimConfigBuilder::tiny_test().watchdog_steps(0).build().unwrap().watchdog.is_enabled());
    }

    #[test]
    fn tiny_test_config_is_consistent() {
        let c = SimConfig::tiny_test();
        c.validate();
        assert_eq!(c.l1i_geometry().num_blocks(), 64);
        // A 48-block segment fits; two do not.
        assert!(48 <= c.l1i_geometry().num_blocks());
        assert!(96 > c.l1i_geometry().num_blocks());
    }
}
