//! Simulator configuration: the Table-2 machine and the execution modes.

use slicc_cache::{PifConfig, PolicyKind};
use slicc_common::{CacheGeometry, Cycle, LatencyTable};
use slicc_core::SliccParams;
use slicc_cpu::{MigrationModel, TimingConfig};
use slicc_mem::DramConfig;
use std::fmt;

/// Which scheduling/migration algorithm runs the thread pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerMode {
    /// Conventional OS scheduling: up to N concurrent threads, one per
    /// core, no migration (§5.1's baseline).
    Baseline,
    /// Transaction-type-oblivious SLICC (§4.1).
    Slicc,
    /// SLICC-SW: the software layer annotates each thread with its
    /// transaction type (§4.3.1).
    SliccSw,
    /// SLICC-Pp: a scout core detects types by hashing each thread's
    /// first instructions (§4.3.1); one core is dedicated to scouting.
    SliccPp,
    /// STEPS-style software time-multiplexing (the §6 comparison):
    /// same-type threads share ONE core and context-switch at the
    /// boundaries SLICC would have migrated at, so instruction chunks are
    /// reused in the time domain instead of the space domain.
    Steps,
}

impl SchedulerMode {
    /// All modes in Figure 10/11 presentation order.
    pub const ALL: [SchedulerMode; 4] =
        [SchedulerMode::Baseline, SchedulerMode::Slicc, SchedulerMode::SliccPp, SchedulerMode::SliccSw];

    /// The paper's modes plus this workspace's STEPS re-creation.
    pub const WITH_STEPS: [SchedulerMode; 5] = [
        SchedulerMode::Baseline,
        SchedulerMode::Slicc,
        SchedulerMode::SliccPp,
        SchedulerMode::SliccSw,
        SchedulerMode::Steps,
    ];

    /// Display label matching the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            SchedulerMode::Baseline => "Base",
            SchedulerMode::Slicc => "SLICC",
            SchedulerMode::SliccSw => "SLICC-SW",
            SchedulerMode::SliccPp => "SLICC-Pp",
            SchedulerMode::Steps => "STEPS",
        }
    }

    /// Whether this mode migrates threads between cores.
    pub const fn is_slicc(self) -> bool {
        matches!(self, SchedulerMode::Slicc | SchedulerMode::SliccSw | SchedulerMode::SliccPp)
    }

    /// Whether this mode runs the per-core SLICC agents (migration modes
    /// and STEPS, which reuses the agent's chunk-boundary signal).
    pub const fn uses_agents(self) -> bool {
        !matches!(self, SchedulerMode::Baseline)
    }

    /// Whether this mode groups threads into type teams.
    pub const fn is_type_aware(self) -> bool {
        matches!(self, SchedulerMode::SliccSw | SchedulerMode::SliccPp | SchedulerMode::Steps)
    }
}

impl fmt::Display for SchedulerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Full machine + algorithm configuration.
///
/// [`SimConfig::paper_baseline`] reproduces Table 2; the `with_*` methods
/// derive the variants used across the evaluation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of cores (Table 2: 16, on a 4×4 torus).
    pub cores: usize,
    /// Torus columns (`cores` must equal `noc_cols * noc_rows`).
    pub noc_cols: u32,
    /// Torus rows.
    pub noc_rows: u32,
    /// L1 instruction cache capacity in bytes.
    pub l1i_size: u64,
    /// L1-I associativity.
    pub l1i_assoc: u32,
    /// L1 data cache capacity in bytes.
    pub l1d_size: u64,
    /// L1-D associativity.
    pub l1d_assoc: u32,
    /// L1 replacement policy (both caches; Figure 2 sweeps this).
    pub l1_policy: PolicyKind,
    /// Capacity→latency model for the L1-I (the CACTI substitute).
    pub latency_table: LatencyTable,
    /// Fixed L1-I latency override (the PIF model: big cache, small-cache
    /// latency).
    pub l1i_latency_override: Option<Cycle>,
    /// L2 capacity in bytes (Table 2: 1 MiB per core).
    pub l2_size: u64,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// L2 banks.
    pub l2_banks: usize,
    /// L2 bank hit latency.
    pub l2_hit_latency: Cycle,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Core timing model.
    pub timing: TimingConfig,
    /// Thread-migration cost model.
    pub migration: MigrationModel,
    /// SLICC thresholds.
    pub slicc: SliccParams,
    /// Bloom-filter signature size in bits (§5.3: 2K).
    pub bloom_bits: u64,
    /// Execution mode.
    pub mode: SchedulerMode,
    /// Next-line prefetch degree on the L1-I, if enabled.
    pub next_line_prefetch: Option<u64>,
    /// Enable the 3C miss classifiers (Figure 1; costs memory/time).
    pub classify_3c: bool,
    /// SLICC's in-flight thread pool, as a multiple of N (§5.1: 2N).
    pub pool_multiplier: u32,
    /// Per-core thread queue capacity (Table 3: 30).
    pub thread_queue_capacity: usize,
    /// Maximum waiting threads at a migration target: a candidate with a
    /// longer queue is rejected and the thread falls back to an idle core
    /// or stays (loading the segment locally, which replicates hot
    /// segments and spreads load). The paper leaves target congestion
    /// unspecified; without this bound every thread converges on the
    /// single holder of each segment and the collective serializes.
    pub migration_queue_limit: usize,
    /// Scout-core preprocessing length for SLICC-Pp.
    pub scout_instructions: u32,
    /// Instruction TLB entries per core.
    pub itlb_entries: usize,
    /// Instruction page size: DBMS binaries are mapped with huge pages
    /// (the sparse code layout would otherwise thrash a 4 KiB iTLB).
    pub itlb_page_bytes: u64,
    /// Data TLB entries per core.
    pub dtlb_entries: usize,
    /// Page-walk latency in cycles.
    pub tlb_walk_cycles: u64,
    /// Run the real PIF prefetcher (Ferdman et al.) on each L1-I; only
    /// meaningful under baseline scheduling.
    pub pif_prefetch: Option<PifConfig>,
    /// STEPS context-switch cost in cycles (fast same-core switch).
    pub steps_switch_cycles: u64,
    /// STEPS thread-group size (the paper's STEPS forms groups of ~10).
    pub steps_team_size: usize,
    /// Cycles between successive transaction arrivals. Zero starts every
    /// thread at cycle 0, which lock-steps identical transactions into
    /// synchronized DRAM-bank convoys no real system exhibits.
    pub arrival_stagger_cycles: u64,
    /// Measure bloom-signature accuracy against ground truth on every
    /// L1-I access (Figure 9; adds overhead).
    pub measure_bloom_accuracy: bool,
    /// Ablation: answer remote segment searches from exact cache
    /// contents instead of the bloom signatures (an idealized,
    /// bandwidth-free search).
    pub exact_search: bool,
    /// Ablation: allow idle cores to steal surplus queued threads (the
    /// centralized-queue reading of §5.7). Disabling shows the
    /// utilization cost of strictly local queues.
    pub work_stealing: bool,
    /// Seed for the stochastic cache policies.
    pub seed: u64,
}

impl SimConfig {
    /// The Table-2 baseline machine.
    pub fn paper_baseline() -> Self {
        SimConfig {
            cores: 16,
            noc_cols: 4,
            noc_rows: 4,
            l1i_size: 32 * 1024,
            l1i_assoc: 8,
            l1d_size: 32 * 1024,
            l1d_assoc: 8,
            l1_policy: PolicyKind::Lru,
            latency_table: LatencyTable::cacti_like(),
            l1i_latency_override: None,
            l2_size: 16 * 1024 * 1024,
            l2_assoc: 16,
            l2_banks: 16,
            l2_hit_latency: 16,
            dram: DramConfig::paper_ddr3_1600(),
            timing: TimingConfig::paper_like(),
            migration: MigrationModel::paper_like(),
            slicc: SliccParams::calibrated(),
            bloom_bits: 2048,
            mode: SchedulerMode::Baseline,
            next_line_prefetch: None,
            classify_3c: false,
            // The paper manages 2N threads; our queue-bounded migration
            // needs a deeper pool to keep all cores fed (see DESIGN.md).
            pool_multiplier: 4,
            thread_queue_capacity: 30,
            migration_queue_limit: 4,
            scout_instructions: 48,
            itlb_entries: 128,
            itlb_page_bytes: 2 * 1024 * 1024,
            dtlb_entries: 64,
            tlb_walk_cycles: 30,
            pif_prefetch: None,
            steps_switch_cycles: 20,
            steps_team_size: 10,
            arrival_stagger_cycles: 97,
            measure_bloom_accuracy: false,
            exact_search: false,
            work_stealing: true,
            seed: 0x5eed,
        }
    }

    /// A miniature machine matched to [`slicc_trace::TraceScale::tiny`]:
    /// 4 KiB L1s so 48-block segments keep the §3.1 fits/doesn't-fit
    /// property, with thresholds scaled accordingly.
    pub fn tiny_test() -> Self {
        let mut c = SimConfig::paper_baseline();
        c.l1i_size = 4 * 1024;
        c.l1i_assoc = 8;
        c.l1d_size = 4 * 1024;
        c.l1d_assoc = 8;
        // 4 KiB / 64 B = 64 blocks; fill up at 1/4 of them, as in the
        // calibrated full-size configuration.
        c.slicc = c.slicc.with_fill_up(16).with_dilution(3);
        c.bloom_bits = 256;
        c.l2_size = 2 * 1024 * 1024;
        c.latency_table = LatencyTable::constant(3);
        c
    }

    /// Returns a copy running under `mode`.
    pub fn with_mode(mut self, mode: SchedulerMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns a copy with a next-line prefetcher of `degree`.
    pub fn with_next_line(mut self, degree: u64) -> Self {
        self.next_line_prefetch = Some(degree);
        self
    }

    /// Returns a copy running the *real* PIF prefetcher (history buffer +
    /// stream read-out) under baseline scheduling, as opposed to the
    /// paper's upper-bound model ([`SimConfig::with_pif_model`]).
    pub fn with_real_pif(mut self) -> Self {
        self.pif_prefetch = Some(PifConfig::default());
        self.mode = SchedulerMode::Baseline;
        self
    }

    /// Returns a copy modelling PIF as the paper does (§5.6): a 512 KiB
    /// L1-I with the 32 KiB cache's 3-cycle latency, baseline scheduling.
    pub fn with_pif_model(mut self) -> Self {
        self.l1i_size = 512 * 1024;
        self.l1i_latency_override = Some(3);
        self.mode = SchedulerMode::Baseline;
        self
    }

    /// Returns a copy with a different L1-I capacity (Figure 1 sweeps).
    pub fn with_l1i_size(mut self, bytes: u64) -> Self {
        self.l1i_size = bytes;
        self
    }

    /// Returns a copy with a different L1-D capacity (Figure 1 sweeps).
    pub fn with_l1d_size(mut self, bytes: u64) -> Self {
        self.l1d_size = bytes;
        self
    }

    /// Returns a copy with a different replacement policy (Figure 2).
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.l1_policy = policy;
        self
    }

    /// Returns a copy with different SLICC thresholds (Figures 7/8).
    pub fn with_slicc_params(mut self, params: SliccParams) -> Self {
        self.slicc = params;
        self
    }

    /// Returns a copy with 3C classification enabled (Figure 1).
    pub fn with_classification(mut self) -> Self {
        self.classify_3c = true;
        self
    }

    /// The effective L1-I hit latency (override or table lookup).
    pub fn l1i_latency(&self) -> Cycle {
        self.l1i_latency_override.unwrap_or_else(|| self.latency_table.l1_latency(self.l1i_size))
    }

    /// The L1-I geometry.
    pub fn l1i_geometry(&self) -> CacheGeometry {
        CacheGeometry::new(self.l1i_size, self.l1i_assoc, 64)
    }

    /// The L1-D geometry.
    pub fn l1d_geometry(&self) -> CacheGeometry {
        CacheGeometry::new(self.l1d_size, self.l1d_assoc, 64)
    }

    /// Validates cross-field invariants.
    ///
    /// # Panics
    ///
    /// Panics when the torus does not cover the cores, the pool
    /// multiplier is zero, or SLICC-Pp has fewer than two cores.
    pub fn validate(&self) {
        assert_eq!(
            self.cores as u32,
            self.noc_cols * self.noc_rows,
            "torus {}x{} must cover {} cores",
            self.noc_cols,
            self.noc_rows,
            self.cores
        );
        assert!(self.pool_multiplier >= 1, "pool multiplier must be at least 1");
        assert!(self.cores >= 1, "need at least one core");
        if self.mode == SchedulerMode::SliccPp {
            assert!(self.cores >= 2, "SLICC-Pp dedicates one core to scouting");
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_2() {
        let c = SimConfig::paper_baseline();
        c.validate();
        assert_eq!(c.cores, 16);
        assert_eq!(c.l1i_size, 32 * 1024);
        assert_eq!(c.l1i_latency(), 3);
        assert_eq!(c.l2_size, 16 * 1024 * 1024);
        assert_eq!(c.l2_hit_latency, 16);
        assert_eq!(c.thread_queue_capacity, 30);
    }

    #[test]
    fn pif_model_is_big_but_fast() {
        let c = SimConfig::paper_baseline().with_pif_model();
        assert_eq!(c.l1i_size, 512 * 1024);
        assert_eq!(c.l1i_latency(), 3);
        assert_eq!(c.mode, SchedulerMode::Baseline);
    }

    #[test]
    fn big_cache_without_override_is_slower() {
        let c = SimConfig::paper_baseline().with_l1i_size(512 * 1024);
        assert!(c.l1i_latency() > 3);
    }

    #[test]
    fn mode_helpers() {
        assert!(!SchedulerMode::Baseline.is_slicc());
        assert!(SchedulerMode::Slicc.is_slicc());
        assert!(!SchedulerMode::Slicc.is_type_aware());
        assert!(SchedulerMode::SliccSw.is_type_aware());
        assert_eq!(SchedulerMode::SliccPp.to_string(), "SLICC-Pp");
    }

    #[test]
    #[should_panic(expected = "torus")]
    fn bad_torus_panics() {
        let mut c = SimConfig::paper_baseline();
        c.cores = 12;
        c.validate();
    }

    #[test]
    fn tiny_test_config_is_consistent() {
        let c = SimConfig::tiny_test();
        c.validate();
        assert_eq!(c.l1i_geometry().num_blocks(), 64);
        // A 48-block segment fits; two do not.
        assert!(48 <= c.l1i_geometry().num_blocks());
        assert!(96 > c.l1i_geometry().num_blocks());
    }
}
