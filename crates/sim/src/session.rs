//! The single engine entry point: [`RunSession`].
//!
//! PR 5 grew the engine a 2×2×2 matrix of free-function entry points
//! (run / try-run, observed, controlled — since removed), and the
//! cross-cutting concerns each axis bolted on — cancellation polling,
//! deadline clock reads, the observation seam — leaked into the per-step
//! hot path, costing ~3.4% aggregate sim-ips. The session collapses the
//! matrix into one builder:
//!
//! ```
//! use slicc_sim::{RunControl, RunSession, SimConfig};
//! use slicc_trace::{TraceScale, Workload};
//!
//! let spec = Workload::TpcC1.spec(TraceScale::tiny());
//! let cfg = SimConfig::tiny_test();
//! let outcome = RunSession::new(&spec, &cfg)
//!     .expect("valid config")
//!     .control(RunControl::unbounded())
//!     .run()
//!     .expect("tiny point completes");
//! assert!(outcome.metrics.instructions > 0);
//! ```
//!
//! Everything cross-cutting is configured **once at the boundary** and
//! lowered before the loop starts:
//!
//! - watchdog fuel and injected stalls lower into a precomputed epoch
//!   plan of plain integer bounds (no `Option` unwraps per step);
//! - cancellation and deadlines are polled only in a *controlled*
//!   session (`.control()` was called), together, every 64 heap steps —
//!   a quiescent session monomorphizes a loop body with no atomic loads
//!   and no clock reads at all, compiling to the pre-resilience hot
//!   path;
//! - observation (`.observe()`) attaches the event sink and interval
//!   sampler at engine construction and never enters the per-access
//!   path when disabled.
//!
//! Control and observation are deliberately *not* part of a point's
//! stable cache key: neither changes what a completed run simulates
//! (the golden equivalence tests pin this down byte-for-byte).

use crate::config::SimConfig;
use crate::engine::{Engine, RunControl};
use crate::error::SimError;
use crate::metrics::RunMetrics;
use slicc_obs::{ObsConfig, Observation};
use slicc_trace::WorkloadSpec;

/// One configured simulation run: workload + machine, with optional
/// external control and observation composed at the boundary. See the
/// [module docs](self) for the design.
pub struct RunSession<'a> {
    spec: &'a WorkloadSpec,
    cfg: &'a SimConfig,
    obs: ObsConfig,
    ctrl: Option<RunControl>,
}

/// What a finished [`RunSession`] produced: the metrics, plus the
/// observation artifacts when the session was observed.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The simulated results.
    pub metrics: RunMetrics,
    /// Event trace / interval series (`None` unless
    /// [`RunSession::observe`] requested any).
    pub obs: Option<Observation>,
}

impl<'a> RunSession<'a> {
    /// Stages a run of `spec` on the machine `cfg` describes, validating
    /// the configuration eagerly so misconfiguration surfaces here — at
    /// the boundary — rather than mid-sweep.
    pub fn new(spec: &'a WorkloadSpec, cfg: &'a SimConfig) -> Result<Self, SimError> {
        cfg.try_validate()?;
        Ok(RunSession { spec, cfg, obs: ObsConfig::disabled(), ctrl: None })
    }

    /// Arms external run control: the event loop polls `ctrl`'s
    /// cancellation token and wall-clock deadline every 64 heap steps.
    /// Control never changes the metrics of a run it does not abort;
    /// sessions that skip this call run the quiescent loop body, which
    /// performs no control polling at all.
    pub fn control(mut self, ctrl: RunControl) -> Self {
        self.ctrl = Some(ctrl);
        self
    }

    /// Requests observation artifacts (event trace and/or interval
    /// series; see [`ObsConfig`]). Observation never changes simulated
    /// results; a disabled config leaves the outcome's `obs` empty.
    pub fn observe(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Builds the engine, runs the event loop to completion, and
    /// finalizes the outcome. Consumes the session: a run is executed
    /// exactly once.
    pub fn run(self) -> Result<RunOutcome, SimError> {
        let mut engine = Engine::try_new_with(self.spec, self.cfg, &self.obs)?;
        if let Some(ctrl) = self.ctrl {
            engine.attach_control(ctrl);
        }
        engine.try_execute()?;
        Ok(if self.obs.enabled() {
            let (metrics, observation) = engine.into_outcome();
            RunOutcome { metrics, obs: Some(observation) }
        } else {
            RunOutcome { metrics: engine.into_metrics(), obs: None }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConfigError, SimConfigBuilder};
    use slicc_common::CancelToken;
    use slicc_trace::{TraceScale, Workload};
    use std::time::Instant;

    fn tiny() -> (WorkloadSpec, SimConfig) {
        (Workload::TpcC1.spec(TraceScale::tiny()), SimConfig::tiny_test())
    }

    #[test]
    fn a_quiescent_session_completes_and_attaches_no_observation() {
        let (spec, cfg) = tiny();
        let outcome = RunSession::new(&spec, &cfg).unwrap().run().unwrap();
        assert!(outcome.metrics.instructions > 0);
        assert!(outcome.obs.is_none(), "no .observe() call, no artifacts");
    }

    #[test]
    fn invalid_configurations_fail_at_the_boundary() {
        let (spec, _) = tiny();
        let mut cfg = SimConfig::tiny_test();
        cfg.decode_threads = 0;
        match RunSession::new(&spec, &cfg) {
            Err(SimError::Config(ConfigError::ZeroDecodeThreads)) => {}
            other => panic!("expected a boundary config error, got {:?}", other.err()),
        }
    }

    #[test]
    fn control_that_never_fires_changes_nothing() {
        let (spec, cfg) = tiny();
        let quiescent = RunSession::new(&spec, &cfg).unwrap().run().unwrap();
        let controlled = RunSession::new(&spec, &cfg)
            .unwrap()
            .control(RunControl::unbounded())
            .run()
            .unwrap();
        assert_eq!(quiescent.metrics.digest(), controlled.metrics.digest());
        assert!(controlled.obs.is_none(), "control alone attaches no artifacts");
    }

    #[test]
    fn a_pre_cancelled_session_aborts_on_its_first_control_check() {
        let (spec, cfg) = tiny();
        let cancel = CancelToken::new();
        cancel.cancel();
        let ctrl = RunControl { cancel, deadline: None };
        match RunSession::new(&spec, &cfg).unwrap().control(ctrl).run() {
            Err(SimError::Cancelled(snap)) => {
                assert_eq!(snap.heap_steps, 1, "first control check lands on step 1");
            }
            other => panic!("expected Cancelled, got {:?}", other.err()),
        }
    }

    #[test]
    fn an_expired_deadline_aborts_on_its_first_control_check() {
        let (spec, cfg) = tiny();
        let ctrl = RunControl { cancel: CancelToken::new(), deadline: Some(Instant::now()) };
        match RunSession::new(&spec, &cfg).unwrap().control(ctrl).run() {
            Err(SimError::DeadlineExceeded(snap)) => {
                assert_eq!(snap.heap_steps, 1, "first control check lands on step 1");
            }
            other => panic!("expected DeadlineExceeded, got {:?}", other.err()),
        }
    }

    #[test]
    fn watchdog_fuel_lowers_into_the_epoch_plan_unchanged() {
        // A budget of N admits exactly N steps; zero trips immediately —
        // the same contract the pre-session loop enforced per step.
        let (spec, _) = tiny();
        let cfg = SimConfigBuilder::tiny_test().watchdog_steps(0).build().unwrap();
        match RunSession::new(&spec, &cfg).unwrap().run() {
            Err(SimError::Livelock(snap)) => assert_eq!(snap.heap_steps, 1),
            other => panic!("expected Livelock, got {:?}", other.err()),
        }
    }
}
