//! The full SLICC chip-multiprocessor simulator.
//!
//! This crate assembles every substrate of the workspace into the Table-2
//! machine — 16 out-of-order cores with private 32 KiB L1s, a 4×4 torus,
//! a 16-bank shared NUCA L2 with MESI-style coherence for the L1-Ds, and
//! DDR3-1600 memory — and executes synthetic workload traces under six
//! execution modes:
//!
//! | Mode | Meaning |
//! |---|---|
//! | `Baseline` | OS scheduling, one thread per core, no migration |
//! | `Baseline` + next-line | adds the §5.6 next-line L1-I prefetcher |
//! | `Baseline` + PIF model | 512 KiB L1-I at 32 KiB latency (§5.6's PIF upper bound) |
//! | `Slicc` | transaction-type-oblivious thread migration (§4.1) |
//! | `SliccSw` | software-provided types, team scheduling (§4.3) |
//! | `SliccPp` | scout-core type detection, team scheduling (§4.3.1) |
//! | `Steps` | STEPS-style time multiplexing on single cores (§6 comparison) |
//!
//! # Example
//!
//! ```no_run
//! use slicc_sim::{run, SchedulerMode, SimConfig};
//! use slicc_trace::{TraceScale, Workload};
//!
//! let spec = Workload::TpcC1.spec(TraceScale::small());
//! let base = run(&spec, &SimConfig::paper_baseline());
//! let slicc = run(&spec, &SimConfig::paper_baseline().with_mode(SchedulerMode::SliccSw));
//! println!("speedup: {:.2}x", base.cycles as f64 / slicc.cycles as f64);
//! ```

pub mod config;
pub mod engine;
pub mod metrics;
pub mod system;

pub use config::{SchedulerMode, SimConfig};
pub use engine::{run, Engine, MigrationEvent};
pub use metrics::RunMetrics;
pub use system::System;
