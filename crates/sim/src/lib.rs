//! The full SLICC chip-multiprocessor simulator.
//!
//! This crate assembles every substrate of the workspace into the Table-2
//! machine — 16 out-of-order cores with private 32 KiB L1s, a 4×4 torus,
//! a 16-bank shared NUCA L2 with MESI-style coherence for the L1-Ds, and
//! DDR3-1600 memory — and executes synthetic workload traces under six
//! execution modes:
//!
//! | Mode | Meaning |
//! |---|---|
//! | `Baseline` | OS scheduling, one thread per core, no migration |
//! | `Baseline` + next-line | adds the §5.6 next-line L1-I prefetcher |
//! | `Baseline` + PIF model | 512 KiB L1-I at 32 KiB latency (§5.6's PIF upper bound) |
//! | `Slicc` | transaction-type-oblivious thread migration (§4.1) |
//! | `SliccSw` | software-provided types, team scheduling (§4.3) |
//! | `SliccPp` | scout-core type detection, team scheduling (§4.3.1) |
//! | `Steps` | STEPS-style time multiplexing on single cores (§6 comparison) |
//!
//! # Example
//!
//! Experiment points are described by [`RunRequest`]s and executed by a
//! [`Runner`], which fans independent points across host cores and
//! memoizes completed ones:
//!
//! ```no_run
//! use slicc_sim::{RunRequest, Runner, SchedulerMode, SimConfig};
//! use slicc_trace::{TraceScale, Workload};
//!
//! let runner = Runner::with_default_parallelism();
//! let base = RunRequest::new(Workload::TpcC1, TraceScale::small(), SimConfig::paper_baseline());
//! let slicc = base.clone().with_mode(SchedulerMode::SliccSw);
//! let results = runner.run_all(&[base, slicc]);
//! let (base, slicc) = (results[0].as_ref().unwrap(), results[1].as_ref().unwrap());
//! let speedup = base.metrics.cycles as f64 / slicc.metrics.cycles as f64;
//! println!("speedup: {speedup:.2}x");
//! ```
//!
//! Each point is fault-isolated: `run_all` returns one
//! `Result<RunResult, RunError>` per request, so a panicking or
//! livelocking point (see [`WatchdogConfig`]) reports a typed [`RunError`]
//! while the rest of the batch completes, and
//! [`Runner::attach_checkpoint`] persists completed points incrementally
//! so interrupted sweeps resume where they left off.
//!
//! Long-lived embeddings front the runner with a [`SimService`]: the
//! run cache is byte-bounded and LRU-evicting ([`Runner::set_cache_bytes`]),
//! concurrent identical submissions coalesce onto one simulation, and
//! load beyond the configured limits is shed with a typed
//! [`RunError::Overloaded`] instead of queueing without bound (see
//! [`mod@service`]).
//!
//! Configurations are built through [`SimConfigBuilder`], which validates
//! cross-field invariants and reports violations as typed
//! [`ConfigError`]s. Custom [`slicc_trace::WorkloadSpec`]s that no preset
//! [`slicc_trace::Workload`] describes run through a [`RunSession`]
//! (`RunSession::new(&spec, &cfg)?.run()`), the single engine entry
//! point that composes control and observation at the boundary.

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod runner;
pub mod service;
pub mod session;
mod shard;
pub mod system;

pub use checkpoint::{Checkpoint, CheckpointError, CheckpointLoad, OpenedCheckpoint};
pub use config::{
    ConfigError, DeadlineConfig, InjectedFault, SchedulerMode, SimConfig, SimConfigBuilder,
    WatchdogConfig,
};
pub use engine::{Engine, MigrationEvent, RunControl};
pub use error::{HotThread, LivelockSnapshot, PointSummary, RunError, SimError};
pub use metrics::RunMetrics;
pub use runner::{RetryPolicy, RunRequest, RunResult, Runner, RunnerStats};
pub use service::{
    BoundedResultCache, PressureSnapshot, ServiceConfig, SimService, DEFAULT_CACHE_BYTES,
};
pub use session::{RunOutcome, RunSession};
pub use system::System;

// The observability vocabulary, re-exported so binaries and tests reach
// everything through `slicc_sim` (see the `slicc-obs` crate docs; the
// `obs-capture` default feature compile-time-gates event recording).
pub use slicc_obs::{
    chrome_trace_json, Epoch, EventKind, IntervalSeries, JsonLinesReporter, MigrationReason,
    MissKind, MissLevel, ObsConfig, Observation, PlainReporter, ProgressEvent, ProgressKind,
    QuietReporter, Reporter, ThreeC, TraceEvent, TraceMeta, WarningsOnlyReporter,
};
