//! Run-level metrics: the numbers the paper's figures report.

use slicc_cache::MissBreakdown;
use slicc_common::Cycle;
use slicc_cpu::CoreStats;
use slicc_mem::{DramStats, L2Stats};
use slicc_noc::NocStats;

/// Everything measured over one simulation run.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Workload name.
    pub workload: String,
    /// Mode label (Base / SLICC / ...).
    pub mode: String,
    /// Total instructions retired across all cores (including scout
    /// instructions under SLICC-Pp).
    pub instructions: u64,
    /// Completion time: the cycle at which the last transaction finished
    /// ("We measure performance by counting the number of cycles it takes
    /// to execute all transactions", §5.1).
    pub cycles: Cycle,
    /// L1-I demand misses (all cores).
    pub i_misses: u64,
    /// L1-D demand misses (all cores).
    pub d_misses: u64,
    /// L1-I demand accesses.
    pub i_accesses: u64,
    /// L1-D demand accesses.
    pub d_accesses: u64,
    /// Thread migrations performed.
    pub migrations: u64,
    /// STEPS context switches performed (STEPS mode only).
    pub context_switches: u64,
    /// Migrations whose target was found by the remote segment search.
    pub matched_migrations: u64,
    /// Migrations that fell back to an idle core.
    pub idle_migrations: u64,
    /// Migration attempts that had nowhere to go (stayed put, §4.1 (3)).
    pub blocked_migrations: u64,
    /// Transactions completed.
    pub completed_threads: u64,
    /// Aggregated per-core cycle composition.
    pub core_stats: CoreStats,
    /// Interconnect counters (broadcasts drive §5.8's BPKI).
    pub noc: NocStats,
    /// L2 counters.
    pub l2: L2Stats,
    /// DRAM counters.
    pub dram: DramStats,
    /// 3C breakdown of instruction misses (when classification enabled).
    pub i_breakdown: Option<MissBreakdown>,
    /// 3C breakdown of data misses (when classification enabled).
    pub d_breakdown: Option<MissBreakdown>,
    /// Bloom-signature accuracy (when measurement enabled; Figure 9).
    pub bloom_accuracy: Option<f64>,
    /// Instruction-TLB misses across all cores (§5.5 reports them within
    /// ±0.5% of baseline under SLICC).
    pub i_tlb_misses: u64,
    /// Data-TLB misses across all cores (§5.5: +11%/+8% under
    /// SLICC/SLICC-SW).
    pub d_tlb_misses: u64,
    /// Mean distinct cores visited per completed thread (the §5.4
    /// "spread" statistic).
    pub mean_cores_per_thread: f64,
    /// Fraction of threads dispatched as strays (type-aware modes).
    pub stray_fraction: f64,
    /// Mean transaction latency (arrival to completion, cycles).
    pub mean_txn_latency: f64,
    /// 95th-percentile transaction latency (cycles).
    pub p95_txn_latency: Cycle,
}

impl RunMetrics {
    /// Instruction misses per kilo-instruction.
    pub fn i_mpki(&self) -> f64 {
        mpki(self.i_misses, self.instructions)
    }

    /// Data misses per kilo-instruction.
    pub fn d_mpki(&self) -> f64 {
        mpki(self.d_misses, self.instructions)
    }

    /// Combined L1 misses per kilo-instruction.
    pub fn total_mpki(&self) -> f64 {
        mpki(self.i_misses + self.d_misses, self.instructions)
    }

    /// Broadcasts per kilo-instruction (§5.8).
    pub fn bpki(&self) -> f64 {
        self.noc.bpki(self.instructions)
    }

    /// Migrations per kilo-instruction (§4.2.3 quotes one per ~3.2K
    /// instructions on average).
    pub fn migrations_per_kilo_instruction(&self) -> f64 {
        mpki(self.migrations, self.instructions)
    }

    /// Instruction-TLB misses per kilo-instruction.
    pub fn i_tlb_mpki(&self) -> f64 {
        mpki(self.i_tlb_misses, self.instructions)
    }

    /// Data-TLB misses per kilo-instruction.
    pub fn d_tlb_mpki(&self) -> f64 {
        mpki(self.d_tlb_misses, self.instructions)
    }

    /// Speedup of this run relative to `baseline` (same workload).
    ///
    /// # Panics
    ///
    /// Panics if either run has zero cycles.
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        assert!(self.cycles > 0 && baseline.cycles > 0, "runs must have executed");
        baseline.cycles as f64 / self.cycles as f64
    }

    /// A stable digest over every measured field, for golden-determinism
    /// tests: two runs with identical simulated results produce identical
    /// digests, so performance work on the simulator can prove it did not
    /// change what was simulated.
    ///
    /// The digest folds the full `Debug` rendering (which covers every
    /// field, including nested counter structs) through the workspace's
    /// stable FNV-1a hasher, so it is reproducible across processes.
    pub fn digest(&self) -> u64 {
        slicc_common::stable_hash_of(format!("{self:?}").as_str())
    }
}

fn mpki(events: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        1000.0 * events as f64 / instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(misses: u64, instructions: u64, cycles: Cycle) -> RunMetrics {
        RunMetrics { i_misses: misses, instructions, cycles, ..Default::default() }
    }

    #[test]
    fn mpki_definitions() {
        let m = metrics(50, 1_000_000, 10);
        assert!((m.i_mpki() - 0.05).abs() < 1e-12);
        assert_eq!(m.d_mpki(), 0.0);
        assert!((m.total_mpki() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_instructions_yield_zero_mpki() {
        let m = metrics(10, 0, 1);
        assert_eq!(m.i_mpki(), 0.0);
        assert_eq!(m.bpki(), 0.0);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let base = metrics(0, 1, 200);
        let fast = metrics(0, 1, 100);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((base.speedup_over(&fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must have executed")]
    fn speedup_of_empty_run_panics() {
        let a = metrics(0, 0, 0);
        let b = metrics(0, 0, 1);
        let _ = b.speedup_over(&a);
    }
}
