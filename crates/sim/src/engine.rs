//! The execution engine: thread dispatch, migration, and the event loop.
//!
//! Each core owns a local clock ([`slicc_cpu::CoreTimer`]); a min-heap
//! over core clocks always advances the earliest core by a bounded batch
//! of trace records, so cross-core cache interactions resolve in
//! near-global time order while each thread's own accounting stays exact.
//!
//! # Split steps and intra-point parallelism (DESIGN §13)
//!
//! Every step is split into a **private segment** — records that provably
//! touch only the core's own site, executed by [`crate::shard::run_segment`]
//! — followed by at most one **blocking record** that needs shared state,
//! executed inline by the committer through the full `System` paths.
//! Cross-core coherence effects queue in per-core mailboxes and drain at
//! step barriers (see [`crate::system`]). Because a core's site and its
//! running thread's stream cannot change between that core's steps, the
//! committer may *speculatively* dispatch a core's next segment to a
//! shard lane (`point_threads > 1`) while committing other cores, pacing
//! dispatch with a conservative quantum derived from the minimum
//! cross-core interaction latency; collecting the result at the core's
//! next pop yields byte-identical metrics to running it inline, for any
//! worker count, partition, or quantum. `point_threads = 1` runs the
//! exact same split-step semantics with every segment inline.
//!
//! The engine implements the four scheduling modes:
//!
//! - **Baseline**: up to N concurrent threads, one per core, run to
//!   completion (the §5.1 OS baseline);
//! - **SLICC**: a 2N-thread pool, naïve least-congested load balancing of
//!   new threads, and the Figure-5 migration loop on every L1-I miss;
//! - **SLICC-SW**: types from the software layer; threads grouped into
//!   teams (§4.3.2), the oldest team scheduled first, large teams on all
//!   cores, medium teams on half, strays to idle cores; team threads are
//!   injected on the team's lead core (§5.2) so the pipeline of Figure 4
//!   forms;
//! - **SLICC-Pp**: like SLICC-SW, but types come from a scout core that
//!   executes each thread's first instructions and hashes them (§4.3.1);
//!   the scout core is excluded from normal execution;
//! - **STEPS**: the §6 software comparison — same-type thread groups are
//!   pinned to single cores and context-switch at the chunk boundaries
//!   the SLICC agent detects, reusing instructions in the time domain
//!   instead of the space domain.

use crate::config::{InjectedFault, SchedulerMode, SimConfig, WatchdogConfig};
use crate::error::{HotThread, LivelockSnapshot, SimError};
use crate::metrics::RunMetrics;
use crate::shard::{
    run_segment, CollectKind, LaneSet, ShutdownGuard, SpecTask, StopReason, ThreadStream,
};
use crate::system::{SegmentParams, System};
use slicc_cache::MissClass;
use slicc_common::{BlockAddr, CancelToken, CoreId, Cycle, RingFifo, ThreadId, TxnTypeId};
use slicc_obs::{
    EventKind, EventSink, IntervalSampler, MigrationReason, MissKind, MissLevel, ObsConfig,
    ObsCounters, Observation, ThreeC,
};
use slicc_core::{CoreMask, MigrationAdvice, ScoutHasher, TeamFormer, TeamKind, TypeRegistry};
use slicc_trace::{Record, WorkloadSpec};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Heap steps between external-control checks in a controlled session:
/// the cancellation flag (a relaxed atomic load) and the wall-clock
/// deadline (a real clock read) are polled together on this power-of-two
/// cadence, and not at all in a quiescent session. The first check lands
/// on step 1 so even a 0 ms budget or pre-cancelled token trips
/// deterministically.
const CONTROL_CHECK_MASK: u64 = 63;

/// External run control: a cooperative cancellation token plus an
/// optional wall-clock deadline, checked by the engine's event loop on
/// the watchdog cadence. The default (fresh token, no deadline) never
/// interrupts anything.
#[derive(Clone, Debug, Default)]
pub struct RunControl {
    /// Cooperative stop flag; when set the run aborts with
    /// [`SimError::Cancelled`] and a diagnostic snapshot.
    pub cancel: CancelToken,
    /// Absolute wall-clock deadline; past it the run aborts with
    /// [`SimError::DeadlineExceeded`] and a diagnostic snapshot.
    pub deadline: Option<Instant>,
}

impl RunControl {
    /// Control that never interrupts (fresh token, no deadline).
    pub fn unbounded() -> Self {
        RunControl::default()
    }
}

/// One migration, as recorded by [`Engine::events`] when event recording
/// is enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationEvent {
    /// The migrating thread.
    pub thread: ThreadId,
    /// Source core.
    pub from: CoreId,
    /// Destination core.
    pub to: CoreId,
    /// Source-core local time of the migration.
    pub at: Cycle,
    /// Instructions the thread had executed when it migrated.
    pub thread_instructions: u64,
    /// Whether the target came from the remote segment search (vs idle).
    pub matched: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    Pending,
    Queued,
    Running,
    Done,
}

/// Per-thread scheduler state in struct-of-arrays layout. The event loop
/// touches different subsets of this state at very different rates — the
/// record stream on every record, `ready_at`/`state` on every dispatch
/// decision, `team`/`is_stray` only at formation — so each concern lives
/// in its own dense array instead of one padded record per thread, and
/// the hot arrays stay resident while the cold ones stay out of the way.
struct Threads<'a> {
    /// Per-thread record streams (decode ring over the lazy generator, or
    /// the whole pre-decoded stream). A thread's unconsumed tail survives
    /// migration: the stream is positional state, not a per-core cache.
    /// `None` exactly while checked out to a speculated segment; streams
    /// of completed threads stay in place so diagnostics can read them.
    streams: Vec<Option<ThreadStream<'a>>>,
    state: Vec<ThreadState>,
    /// Earliest cycle the thread may start at its queued core (migration
    /// arrival or scout completion).
    ready_at: Vec<Cycle>,
    /// Local time of the core that completed the thread, when done (for
    /// transaction-latency statistics).
    completed_at: Vec<Option<Cycle>>,
    /// The thread's arrival time (dispatch eligibility).
    arrived_at: Vec<Cycle>,
    /// Cores this thread may run on (team restriction).
    allowed: Vec<CoreMask>,
    team: Vec<Option<usize>>,
    cores_visited: Vec<CoreMask>,
    is_stray: Vec<bool>,
}

impl<'a> Threads<'a> {
    fn len(&self) -> usize {
        self.state.len()
    }

    /// The next record of thread `t`'s stream, consumed.
    #[inline]
    fn next_record(&mut self, t: usize) -> Option<Record> {
        self.stream_mut(t).next()
    }

    /// Records thread `t` has executed so far (diagnostics).
    fn executed(&self, t: usize) -> u64 {
        self.streams[t].as_ref().expect("thread stream is checked out").executed()
    }

    fn stream_mut(&mut self, t: usize) -> &mut ThreadStream<'a> {
        self.streams[t].as_mut().expect("thread stream is checked out")
    }

    /// Lends thread `t`'s stream out for one speculated segment.
    fn checkout_stream(&mut self, t: usize) -> ThreadStream<'a> {
        self.streams[t].take().expect("thread stream double checkout")
    }

    /// Restores a stream lent by [`Threads::checkout_stream`].
    fn checkin_stream(&mut self, t: usize, stream: ThreadStream<'a>) {
        debug_assert!(self.streams[t].is_none(), "thread stream double checkin");
        self.streams[t] = Some(stream);
    }
}

/// Per-run loop bounds, lowered from [`WatchdogConfig`] and
/// [`InjectedFault`] once at session start: the inner loop compares the
/// step counter and the popped core's clock against plain integers
/// (`MAX` means unarmed) instead of unwrapping `Option`s every step.
#[derive(Clone, Copy)]
struct EpochPlan {
    /// First heap step at which the fuel budget is spent (budget + 1, so
    /// a budget of N admits exactly N steps; `u64::MAX` when unarmed).
    fuel_trip: u64,
    /// Watchdog cycle cap (`Cycle::MAX` when unarmed).
    cycle_cap: Cycle,
    /// First heap step at which an injected stall takes over
    /// (`u64::MAX` when no `StallAt` fault is armed).
    stall_at: u64,
}

struct Team {
    members: Vec<ThreadId>,
    #[allow(dead_code)]
    txn_type: TxnTypeId,
    kind: TeamKind,
    next_member: usize,
    done_members: usize,
    cores: CoreMask,
    lead: CoreId,
    active: bool,
}

/// Maps the cache crate's miss taxonomy onto the obs crate's mirror.
fn three_c(class: MissClass) -> ThreeC {
    match class {
        MissClass::Compulsory => ThreeC::Compulsory,
        MissClass::Conflict => ThreeC::Conflict,
        MissClass::Capacity => ThreeC::Capacity,
    }
}

/// The simulation engine. Most callers should use [`crate::RunSession`]
/// (or the [`crate::Runner`] above it); the engine is public for tests
/// and custom experiment loops that need intermediate state access.
/// Dispatches per throttle measurement window.
const SPEC_WINDOW: u32 = 256;
/// Steps to run without priming after a starved window. Long relative
/// to the window so a hopeless host spends ~1.5% of steps probing.
const SPEC_PAUSE_STEPS: u32 = 16_384;

pub struct Engine<'a> {
    sys: System,
    spec: &'a WorkloadSpec,
    mode: SchedulerMode,
    threads: Threads<'a>,
    queues: Vec<RingFifo<ThreadId>>,
    running: Vec<Option<ThreadId>>,
    heap: BinaryHeap<Reverse<(Cycle, u64, usize)>>,
    stamps: Vec<u64>,
    /// Whether each core's freshest stamp is present in the heap, plus the
    /// count of such live entries: answers "is any core runnable?" in O(1)
    /// instead of scanning the heap for a non-stale entry.
    in_heap: Vec<bool>,
    live_heap: usize,
    /// Cores with nothing running and an empty queue (scout excluded),
    /// maintained incrementally at every queue/running-slot mutation so
    /// idle-target selection and wake-ups never sweep all cores.
    idle: CoreMask,
    /// Cores whose thread queue is non-empty (the steal victims).
    queued: CoreMask,
    in_flight: usize,
    pool_limit: usize,
    completed: usize,
    migrations: u64,
    matched_migrations: u64,
    idle_migrations: u64,
    blocked_migrations: u64,
    // Baseline / oblivious dispatch cursor.
    next_pending: usize,
    // Team scheduling state.
    teams: Vec<Team>,
    next_team: usize,
    half_owner: [Option<usize>; 2],
    halves: [CoreMask; 2],
    strays: Vec<ThreadId>,
    stray_cursor: usize,
    exec_cores: CoreMask,
    scout_core: Option<CoreId>,
    migration_queue_limit: usize,
    work_stealing: bool,
    steps_switch_cycles: u64,
    steps_team_size: usize,
    context_switches: u64,
    record_events: bool,
    events: Vec<MigrationEvent>,
    /// Monotone counter stamping when each core last went idle. Idle-core
    /// selection prefers the least-recently-vacated core: the paper does
    /// not specify the choice, and picking the most recently vacated one
    /// would overwrite the freshest member of a forming collective.
    vacate_clock: u64,
    vacated_seq: Vec<u64>,
    watchdog: WatchdogConfig,
    fault: Option<InjectedFault>,
    /// Whether external control is armed. Selects the controlled loop
    /// body; the quiescent body never touches `cancel` or `deadline`.
    controlled: bool,
    /// Cooperative stop flag, polled every `CONTROL_CHECK_MASK + 1` heap
    /// steps in a controlled session (a relaxed atomic load).
    cancel: CancelToken,
    /// Absolute wall-clock deadline, polled on the same cadence.
    deadline: Option<Instant>,
    /// Typed event trace (a disabled no-op sink unless the run is
    /// observed with event tracing on; see [`slicc_obs::ObsConfig`]).
    sink: EventSink,
    /// Interval-series sampler (`None` unless the run is observed with
    /// epoch sampling on).
    sampler: Option<IntervalSampler>,
    /// Effective intra-point worker count: 1 means every segment runs
    /// inline; `exact_search` forces 1 (remote searches read other cores'
    /// L1-Is, which may be checked out under speculation).
    point_threads: usize,
    /// Speculation pacing quantum: a core may be primed while its clock
    /// is within this many cycles of the heap floor. Defaults to the
    /// minimum cross-core interaction latency (nearest NoC hop + L2 bank
    /// hit), the soonest any other core's commit could affect this one.
    quantum: Cycle,
    /// Core → lane assignment for speculated segments; semantics never
    /// depend on it (values are taken modulo the lane count).
    partition: Vec<usize>,
    /// Precomputed constants private segments need.
    params: SegmentParams,
    /// Whether each core currently has a speculated segment outstanding.
    primed: Vec<bool>,
    /// Cores whose priming was deferred by the quantum check, re-examined
    /// against each new heap floor.
    deferred_primes: CoreMask,
    /// Mirror of each core's clock at its last step barrier, readable
    /// while the core's site (and timer) is checked out to a lane.
    committed_now: Vec<Cycle>,
    /// Priming throttle: dispatches and genuinely-overlapped collects
    /// in the current measurement window, and the remaining pause steps.
    /// When a window shows almost no dispatch finishing ahead of the
    /// committer (an oversubscribed host ping-ponging with its lanes),
    /// speculation pauses — pure prefetch, so pacing never changes
    /// results.
    spec_window_dispatched: u32,
    spec_window_overlapped: u32,
    spec_pause: u32,
    /// Mirror of the machine-wide [`System::obs_counters`] at the last
    /// commit barrier, maintained incrementally so the interval sampler
    /// never reads a checked-out site. Exact: private segments change
    /// only instruction counts (reported per segment) and the inline
    /// blocking record is accounted as it executes.
    obs_cum: ObsCounters,
}

impl<'a> Engine<'a> {
    /// Builds the engine: constructs all thread traces, runs the scout
    /// phase (SLICC-Pp), and forms teams (type-aware modes).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation; [`Engine::try_new`] reports that
    /// as a typed error instead.
    pub fn new(spec: &'a WorkloadSpec, cfg: &SimConfig) -> Self {
        Engine::try_new(spec, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the engine, rejecting invalid configurations as typed
    /// errors instead of panicking.
    pub fn try_new(spec: &'a WorkloadSpec, cfg: &SimConfig) -> Result<Self, SimError> {
        Engine::try_new_with(spec, cfg, &ObsConfig::disabled())
    }

    /// Shared construction behind [`Engine::try_new`] and
    /// [`RunSession::run`]: builds the system, decodes or stages every
    /// thread trace, runs the scout phase (SLICC-Pp), and forms teams.
    pub(crate) fn try_new_with(
        spec: &'a WorkloadSpec,
        cfg: &SimConfig,
        obs: &ObsConfig,
    ) -> Result<Self, SimError> {
        let mut sys = System::try_new(cfg)?;
        // Mailbox semantics are the one semantics: sequential and sharded
        // runs both defer cross-core effects to step barriers.
        sys.set_deferred_effects(true);
        let n = cfg.cores;
        let mode = cfg.mode;
        let scout_core = (mode == SchedulerMode::SliccPp).then(|| CoreId::new((n - 1) as u16));
        let mut exec_cores = CoreMask::all(n);
        if let Some(s) = scout_core {
            exec_cores.remove(s);
        }

        let thread_ids: Vec<ThreadId> = spec.threads().collect();
        let total = thread_ids.len();
        let streams: Vec<Option<ThreadStream<'a>>> = if cfg.decode_threads > 1 {
            // Decode parallelism: independent threads' streams are pure
            // functions of (spec, thread id), so pre-decoding them across
            // workers is free of scheduling nondeterminism — any worker
            // count yields byte-identical records.
            slicc_common::parallel_map(total, cfg.decode_threads, |i| {
                spec.thread_trace(thread_ids[i]).collect::<Vec<Record>>()
            })
            .into_iter()
            .map(|records| Some(ThreadStream::decoded(records)))
            .collect()
        } else {
            thread_ids.iter().map(|&t| Some(ThreadStream::lazy(spec.thread_trace(t)))).collect()
        };
        // Transactions arrive spaced out, not in lockstep.
        let arrivals: Vec<Cycle> =
            thread_ids.iter().map(|t| t.raw() as Cycle * cfg.arrival_stagger_cycles).collect();
        let threads = Threads {
            streams,
            state: vec![ThreadState::Pending; total],
            ready_at: arrivals.clone(),
            completed_at: vec![None; total],
            arrived_at: arrivals,
            allowed: vec![exec_cores; total],
            team: vec![None; total],
            cores_visited: vec![CoreMask::empty(); total],
            is_stray: vec![false; total],
        };

        let pool_limit = match mode {
            SchedulerMode::Baseline => n,
            _ => n * cfg.pool_multiplier as usize,
        };

        let exec_list: Vec<CoreId> = exec_cores.iter().collect();
        let half_a: CoreMask = exec_list[..exec_list.len() / 2].iter().copied().collect();
        let half_b: CoreMask = exec_list[exec_list.len() / 2..].iter().copied().collect();

        // Exact search reads other cores' L1-I contents, which may be
        // checked out under speculation: force the sequential schedule
        // (semantics are identical either way; this is purely a policy
        // restriction).
        let point_threads = if cfg.exact_search { 1 } else { cfg.point_threads.max(1) };
        let lanes_n = point_threads.saturating_sub(1).max(1);
        // The conservative quantum: the soonest a commit on any core can
        // affect another is one nearest-neighbour NoC traversal plus an
        // L2 bank hit.
        let quantum = (1..n)
            .map(|i| sys.noc().latency(CoreId::new(0), CoreId::new(i as u16)))
            .min()
            .unwrap_or(0)
            + cfg.l2_hit_latency;
        let params = sys.segment_params(mode.uses_agents());

        let mut engine = Engine {
            sys,
            spec,
            mode,
            threads,
            queues: (0..n).map(|_| RingFifo::new(cfg.thread_queue_capacity)).collect(),
            running: vec![None; n],
            heap: BinaryHeap::new(),
            stamps: vec![0; n],
            in_heap: vec![false; n],
            live_heap: 0,
            idle: exec_cores,
            queued: CoreMask::empty(),
            in_flight: 0,
            pool_limit,
            completed: 0,
            migrations: 0,
            matched_migrations: 0,
            idle_migrations: 0,
            blocked_migrations: 0,
            next_pending: 0,
            teams: Vec::new(),
            next_team: 0,
            half_owner: [None, None],
            halves: [half_a, half_b],
            strays: Vec::new(),
            stray_cursor: 0,
            exec_cores,
            scout_core,
            migration_queue_limit: cfg.migration_queue_limit,
            work_stealing: cfg.work_stealing,
            steps_switch_cycles: cfg.steps_switch_cycles,
            steps_team_size: cfg.steps_team_size.max(1),
            context_switches: 0,
            record_events: false,
            events: Vec::new(),
            vacate_clock: 0,
            vacated_seq: vec![0; n],
            watchdog: cfg.watchdog,
            fault: cfg.fault_injection,
            controlled: false,
            cancel: CancelToken::new(),
            deadline: None,
            sink: if obs.events {
                EventSink::new(n, obs.event_capacity, obs.sample_every)
            } else {
                EventSink::disabled()
            },
            sampler: obs.epoch_cycles.map(IntervalSampler::new),
            point_threads,
            quantum,
            partition: (0..n).map(|c| c % lanes_n).collect(),
            params,
            primed: vec![false; n],
            deferred_primes: CoreMask::empty(),
            spec_window_dispatched: 0,
            spec_window_overlapped: 0,
            spec_pause: 0,
            committed_now: vec![0; n],
            obs_cum: ObsCounters::default(),
        };

        match mode {
            SchedulerMode::Baseline | SchedulerMode::Slicc => {}
            SchedulerMode::SliccSw => {
                let types: Vec<(ThreadId, TxnTypeId)> =
                    spec.threads().map(|t| (t, spec.thread_type(t))).collect();
                engine.form_teams(&types);
            }
            SchedulerMode::SliccPp => {
                let types = engine.scout_phase(cfg.scout_instructions);
                engine.form_teams(&types);
            }
            SchedulerMode::Steps => {
                let types: Vec<(ThreadId, TxnTypeId)> =
                    spec.threads().map(|t| (t, spec.thread_type(t))).collect();
                engine.form_steps_groups(&types);
            }
        }
        // Seed the clock and counter mirrors after formation (the scout
        // phase advances its core's clock and counters).
        for i in 0..n {
            engine.committed_now[i] = engine.sys.timer(CoreId::new(i as u16)).now();
        }
        engine.obs_cum = engine.sys.obs_counters();
        Ok(engine)
    }

    /// STEPS grouping: same-type thread groups of bounded size, each
    /// pinned to one core (round-robin over the machine).
    fn form_steps_groups(&mut self, types: &[(ThreadId, TxnTypeId)]) {
        let former = TeamFormer::new(self.steps_team_size.div_ceil(2));
        let exec: Vec<CoreId> = self.exec_cores.iter().collect();
        for (i, plan) in former.form_teams(types).into_iter().enumerate() {
            let core = exec[i % exec.len()];
            let mut mask = CoreMask::empty();
            mask.insert(core);
            let team_idx = self.teams.len();
            for &m in &plan.members {
                self.threads.team[m.index()] = Some(team_idx);
                self.threads.allowed[m.index()] = mask;
            }
            self.teams.push(Team {
                members: plan.members,
                txn_type: plan.txn_type,
                kind: plan.kind,
                next_member: 0,
                done_members: 0,
                cores: mask,
                lead: core,
                active: true,
            });
        }
    }

    /// SLICC-Pp preprocessing: each thread executes its first
    /// `budget` instructions on the scout core while their addresses are
    /// hashed into a type signature (§4.3.1).
    ///
    /// Hashing granularity: our synthetic control flow jitters *block*
    /// sequences between same-type instances, so the hash runs over the
    /// code-segment identity of each fetch (which the prologue-segment
    /// structure of the traces makes type-unique). The paper reports the
    /// raw-address variant is 100% accurate on its traces; this achieves
    /// the same accuracy on ours.
    fn scout_phase(&mut self, budget: u32) -> Vec<(ThreadId, TxnTypeId)> {
        let scout = self.scout_core.expect("scout phase requires SLICC-Pp");
        let mut registry = TypeRegistry::new();
        let mut out = Vec::with_capacity(self.threads.len());
        for idx in 0..self.threads.len() {
            let tid = ThreadId::new(idx as u32);
            let mut hasher = ScoutHasher::new(budget);
            let mut signature = None;
            while signature.is_none() {
                let Some(rec) = self.threads.next_record(idx) else {
                    break;
                };
                self.sys.timer_mut(scout).retire_instruction();
                let block = rec.pc.block_default();
                self.sys.ifetch(scout, block);
                if let Some(d) = rec.data {
                    self.sys.data_access(scout, d.addr.block_default(), d.is_store);
                }
                let token = self
                    .spec
                    .pool
                    .segment_of_block(block)
                    .map(|s| s as u64)
                    .unwrap_or(block.raw());
                signature = hasher.observe(BlockAddr::new(token));
            }
            let detected = registry.type_for(signature.unwrap_or(0x5c007 ^ idx as u64));
            self.threads.ready_at[idx] =
                self.threads.ready_at[idx].max(self.sys.timer(scout).now());
            out.push((tid, detected));
        }
        out
    }

    /// Groups threads into teams (§4.3.2) and separates strays.
    fn form_teams(&mut self, types: &[(ThreadId, TxnTypeId)]) {
        let exec_count = self.exec_cores.len() as usize;
        let former = TeamFormer::new(exec_count);
        for plan in former.form_teams(types) {
            if plan.kind == TeamKind::Stray {
                for &m in &plan.members {
                    self.threads.is_stray[m.index()] = true;
                    self.strays.push(m);
                }
                continue;
            }
            let team_idx = self.teams.len();
            for &m in &plan.members {
                self.threads.team[m.index()] = Some(team_idx);
            }
            self.teams.push(Team {
                members: plan.members,
                txn_type: plan.txn_type,
                kind: plan.kind,
                next_member: 0,
                done_members: 0,
                cores: CoreMask::empty(), // set at activation
                lead: CoreId::new(0),
                active: false,
            });
        }
    }

    /// Runs the event loop to completion.
    ///
    /// # Panics
    ///
    /// Panics if the event loop stalls or the watchdog fires;
    /// [`Engine::try_execute`] reports those as typed errors instead.
    pub fn execute(&mut self) {
        if let Err(e) = self.try_execute() {
            panic!("{e}");
        }
    }

    /// Arms external run control and switches the engine onto the
    /// controlled loop body (the session's `.control()` lowers to this).
    pub(crate) fn attach_control(&mut self, ctrl: RunControl) {
        self.controlled = true;
        self.cancel = ctrl.cancel;
        self.deadline = ctrl.deadline;
    }

    /// Overrides the core → lane partition for speculated segments
    /// (values are taken modulo the lane count). Public for tests: any
    /// partition must yield byte-identical metrics, because priming is a
    /// pure prefetch of deterministic work.
    ///
    /// # Panics
    ///
    /// Panics unless `partition` has one entry per core.
    pub fn set_partition(&mut self, partition: Vec<usize>) {
        assert_eq!(partition.len(), self.sys.num_cores(), "one lane assignment per core");
        self.partition = partition;
    }

    /// Overrides the speculation pacing quantum. Public for tests: any
    /// width must yield byte-identical metrics — the quantum only decides
    /// *when* a segment is dispatched, never what it computes.
    pub fn set_quantum(&mut self, quantum: Cycle) {
        self.quantum = quantum;
    }

    /// Lowers the run configuration into plain loop bounds (see
    /// [`EpochPlan`]).
    fn epoch_plan(&self) -> EpochPlan {
        EpochPlan {
            fuel_trip: self.watchdog.max_heap_steps.map_or(u64::MAX, |b| b.saturating_add(1)),
            cycle_cap: self.watchdog.max_cycles.unwrap_or(Cycle::MAX),
            stall_at: match self.fault {
                Some(InjectedFault::StallAt { step }) => step,
                _ => u64::MAX,
            },
        }
    }

    /// Runs the event loop to completion, reporting a stalled loop, an
    /// exhausted watchdog fuel budget, a cancellation, or a blown
    /// wall-clock deadline as a typed [`SimError`].
    ///
    /// On error the engine is left at the failure point: metrics and
    /// state accessors still work, which is what lets the livelock
    /// snapshot describe the stuck machine.
    pub fn try_execute(&mut self) -> Result<(), SimError> {
        if let Some(InjectedFault::Panic) = self.fault {
            panic!("injected fault: panic on execute (SimConfig::fault_injection)");
        }
        // Quiescent-mode specialization: each arm monomorphizes its own
        // loop body, so an uncontrolled session compiles to a loop with
        // no atomic loads, no clock reads, and no `Option` unwraps.
        if self.point_threads <= 1 {
            return if self.controlled {
                self.run_loop::<true>(None)
            } else {
                self.run_loop::<false>(None)
            };
        }
        let lanes = LaneSet::new(self.sys.num_cores(), self.point_threads - 1);
        let spec = self.spec;
        let params = self.params;
        slicc_common::pool::scope(|scope| {
            let lanes = &lanes;
            for lane in 0..lanes.lane_count() {
                scope.spawn(move || lanes.drive(lane, spec, &params));
            }
            // Shut the lanes down even if the committer panics, so the
            // pool scope's join barrier can never hang.
            let _guard = ShutdownGuard(lanes);
            if self.controlled {
                self.run_loop::<true>(Some(lanes))
            } else {
                self.run_loop::<false>(Some(lanes))
            }
        })
    }

    fn run_loop<const CONTROLLED: bool>(
        &mut self,
        lanes: Option<&LaneSet<'a>>,
    ) -> Result<(), SimError> {
        let plan = self.epoch_plan();
        let total = self.threads.len();
        let mut heap_steps: u64 = 0;
        self.try_dispatch();
        while self.completed < total {
            let Some((core, floor)) = self.pop_next_core() else {
                self.try_dispatch();
                if self.pop_next_core_peek() {
                    continue;
                }
                self.settle_speculation(lanes);
                return Err(SimError::Stalled {
                    completed: self.completed as u64,
                    total: total as u64,
                    in_flight: self.in_flight as u64,
                });
            };
            heap_steps += 1;
            // Watchdog fuel: a heap-step budget of N admits exactly N
            // steps (so zero trips immediately); the cycle cap compares
            // the popped core's committed clock, which is the global
            // progress floor under the min-heap discipline (and readable
            // even while the core's site is speculated out).
            if heap_steps >= plan.fuel_trip || self.committed_now[core.index()] > plan.cycle_cap {
                self.settle_speculation(lanes);
                if self.sink.is_enabled() {
                    let now = self.sys.timer(core).now();
                    self.sink.record(core, now, EventKind::WatchdogFired { heap_steps });
                }
                return Err(SimError::Livelock(Box::new(self.livelock_snapshot(heap_steps, core))));
            }
            if CONTROLLED && heap_steps & CONTROL_CHECK_MASK == 1 {
                if self.cancel.is_cancelled() {
                    self.settle_speculation(lanes);
                    return Err(SimError::Cancelled(Box::new(
                        self.livelock_snapshot(heap_steps, core),
                    )));
                }
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        self.settle_speculation(lanes);
                        return Err(SimError::DeadlineExceeded(Box::new(
                            self.livelock_snapshot(heap_steps, core),
                        )));
                    }
                }
            }
            if heap_steps >= plan.stall_at {
                // Injected stall: re-queue the core at its current time
                // without executing, so the loop spins until the
                // watchdog or a deadline puts it down.
                let now = self.committed_now[core.index()];
                self.push_core(core, now);
                continue;
            }
            self.step(core, lanes);
            // Epoch sampling off the popped core's clock: under the
            // min-heap discipline it is the global progress floor, so
            // every epoch closes at an honest machine-wide time. The
            // counters come from the committed mirror, which is exact at
            // step barriers — identical under any point_threads.
            if self.sampler.as_ref().is_some_and(|s| s.due(self.sys.timer(core).now())) {
                let now = self.sys.timer(core).now();
                let mut cum = self.obs_cum;
                cum.migrations = self.migrations;
                self.sampler.as_mut().expect("sampler checked above").sample(now, cum);
            }
            self.try_dispatch();
            if let Some(lanes) = lanes {
                self.prime_due_cores(lanes, floor);
                self.try_prime(core, lanes, floor);
            }
        }
        Ok(())
    }

    /// Captures the machine's state for the [`SimError::Livelock`]
    /// diagnostic: queue depths, migration counters, and the unfinished
    /// thread that has executed the most instructions.
    fn livelock_snapshot(&self, heap_steps: u64, core: CoreId) -> LivelockSnapshot {
        let hottest_thread = (0..self.threads.len())
            .filter(|&t| self.threads.state[t] != ThreadState::Done && self.threads.executed(t) > 0)
            .max_by_key(|&t| (self.threads.executed(t), std::cmp::Reverse(t)))
            .map(|t| HotThread {
                thread: t as u32,
                instructions: self.threads.executed(t),
                cores_visited: self.threads.cores_visited[t].len() as usize,
            });
        LivelockSnapshot {
            heap_steps,
            cycles: self.sys.timer(core).now(),
            completed: self.completed as u64,
            total: self.threads.len() as u64,
            in_flight: self.in_flight as u64,
            migrations: self.migrations,
            blocked_migrations: self.blocked_migrations,
            queue_depths: self.queues.iter().map(|q| q.len()).collect(),
            hottest_thread,
            recent_events: self.sink.recent(32),
            series_tail: self
                .sampler
                .as_ref()
                .map(|s| s.series().tail(8).to_vec())
                .unwrap_or_default(),
        }
    }

    /// Reclaims every outstanding speculation before an error-path exit:
    /// queued tasks come back unrun (their state is exactly the last
    /// commit barrier), running ones are waited out. After this, all
    /// sites, streams, and sink rings are back in place and every state
    /// accessor is coherent.
    fn settle_speculation(&mut self, lanes: Option<&LaneSet<'a>>) {
        let Some(lanes) = lanes else {
            return;
        };
        for (task, _report) in lanes.settle() {
            let c = task.core.index();
            debug_assert!(self.primed[c], "settled a task for an unprimed core");
            self.primed[c] = false;
            self.sys.checkin_site(task.core, task.site);
            self.threads.checkin_stream(task.thread.index(), task.stream);
            self.sink.put_core(task.core, task.sink);
        }
        self.deferred_primes = CoreMask::empty();
    }

    fn pop_next_core(&mut self) -> Option<(CoreId, Cycle)> {
        while let Some(Reverse((at, stamp, core))) = self.heap.pop() {
            if self.stamps[core] == stamp {
                self.in_heap[core] = false;
                self.live_heap -= 1;
                return Some((CoreId::new(core as u16), at));
            }
        }
        None
    }

    /// Whether any live (non-stale) heap entry remains.
    fn pop_next_core_peek(&self) -> bool {
        self.live_heap > 0
    }

    /// Registers `core` in the heap at its next interesting time. A
    /// re-push bumps the stamp, turning the core's older entry stale.
    fn push_core(&mut self, core: CoreId, at: Cycle) {
        let c = core.index();
        self.stamps[c] += 1;
        self.heap.push(Reverse((at, self.stamps[c], c)));
        if !self.in_heap[c] {
            self.in_heap[c] = true;
            self.live_heap += 1;
        }
    }

    /// Recomputes `core`'s membership in the idle and queued sets; must
    /// run after every mutation of its queue or running slot.
    fn refresh_core_sets(&mut self, core: CoreId) {
        let c = core.index();
        let queue_empty = self.queues[c].is_empty();
        if queue_empty {
            self.queued.remove(core);
        } else {
            self.queued.insert(core);
        }
        if queue_empty && self.running[c].is_none() && self.scout_core != Some(core) {
            self.idle.insert(core);
        } else {
            self.idle.remove(core);
        }
    }

    fn push_core_if_work(&mut self, core: CoreId) {
        let c = core.index();
        if self.running[c].is_some() {
            let at = self.sys.timer(core).now();
            self.push_core(core, at);
        } else if let Some(&tid) = self.queues[c].front() {
            let at = self.sys.timer(core).now().max(self.threads.ready_at[tid.index()]);
            self.push_core(core, at);
        }
    }

    /// Advances one core by one split step: start a queued thread if
    /// idle, run (or collect) one private segment, execute the trailing
    /// blocking record inline if the segment stopped on one, then drain
    /// the core's effect mailbox and refresh the commit mirrors. The
    /// mailbox drains at the end of *every* step — including empty ones —
    /// so deferred effects land at the same barriers under any
    /// `point_threads`.
    fn step(&mut self, core: CoreId, lanes: Option<&LaneSet<'a>>) {
        let c = core.index();
        // A pop supersedes any pending prime decision for this core.
        self.deferred_primes.remove(core);
        let report = if self.primed[c] {
            self.primed[c] = false;
            let lanes = lanes.expect("a core was primed without lanes");
            let (task, report, kind) = lanes.collect(c, self.spec, &self.params);
            self.spec_window_overlapped += u32::from(kind == CollectKind::Overlapped);
            self.sys.checkin_site(core, task.site);
            self.threads.checkin_stream(task.thread.index(), task.stream);
            self.sink.put_core(core, task.sink);
            report
        } else {
            if self.running[c].is_none() && !self.start_next_thread(core) {
                self.sys.drain_mailbox(core);
                return; // nothing to do; dispatcher will wake us
            }
            let tid = self.running[c].expect("core has a running thread");
            let mut site = self.sys.checkout_site(core);
            let mut stream = self.threads.checkout_stream(tid.index());
            let mut sink = self.sink.take_core(core);
            let report =
                run_segment(&mut site, &mut stream, &mut sink, core, tid, self.spec, &self.params);
            self.sys.checkin_site(core, site);
            self.threads.checkin_stream(tid.index(), stream);
            self.sink.put_core(core, sink);
            report
        };
        let tid = self.running[c].expect("core has a running thread");
        self.obs_cum.instructions += report.records as u64;
        match report.stop {
            StopReason::Exhausted => self.complete_thread(core, tid),
            StopReason::Blocking => self.exec_blocking_record(core, tid),
            StopReason::BatchCap => {}
        }
        self.sys.drain_mailbox(core);
        self.committed_now[c] = self.sys.timer(core).now();
        self.push_core_if_work(core);
    }

    /// Executes the blocking record a private segment stopped on, through
    /// the full shared-state paths: L2/directory fetch, agent policy with
    /// optional remote search, observation, and the migration or
    /// context-switch reaction to an L1-I miss. Mirrors the sequential
    /// per-record body exactly.
    fn exec_blocking_record(&mut self, core: CoreId, tid: ThreadId) {
        let rec = self
            .threads
            .stream_mut(tid.index())
            .next()
            .expect("segment stopped on a blocking record");
        self.obs_cum.instructions += 1;
        self.sys.timer_mut(core).retire_instruction();
        let block = rec.pc.block_default();
        // Fetch-buffer model: instructions within the current block are
        // fed from the fetch buffer; the L1-I (and SLICC agent) see one
        // access per block transition.
        let mut hit = true;
        let mut accessed = false;
        if self.sys.core_site(core).last_iblock != Some(block) {
            self.sys.core_site_mut(core).last_iblock = Some(block);
            accessed = true;
            let fetch_start = if self.sink.is_enabled() { self.sys.timer(core).now() } else { 0 };
            hit = self.sys.ifetch(core, block);
            if self.mode.uses_agents() {
                if hit {
                    self.sys.core_site_mut(core).agent.on_fetch(true, None);
                } else {
                    // The remote search only serves migration; STEPS
                    // switches locally and never broadcasts.
                    let mask = (self.mode.is_slicc()
                        && self.sys.core_site(core).agent.wants_remote_search())
                    .then(|| self.sys.remote_search(core, block));
                    self.sys.core_site_mut(core).agent.on_fetch(false, mask);
                }
            }
            if !hit {
                self.obs_cum.i_misses += 1;
            }
            if self.sink.is_enabled() {
                self.observe_fetch(core, tid, block, hit, fetch_start);
            }
        }

        if let Some(d) = rec.data {
            let d_hit = self.sys.data_access(core, d.addr.block_default(), d.is_store);
            if !d_hit {
                self.obs_cum.d_misses += 1;
                if self.sink.is_enabled() {
                    let kind = if d.is_store { MissKind::Store } else { MissKind::Load };
                    let class = self.sys.last_d_miss_class().map(three_c);
                    let now = self.sys.timer(core).now();
                    self.sink.record_sampled(
                        core,
                        now,
                        EventKind::Miss { level: MissLevel::L1D, kind, class },
                    );
                }
            }
        }

        if accessed && !hit {
            match self.mode {
                SchedulerMode::Steps => {
                    self.try_context_switch(core, tid);
                }
                m if m.is_slicc() => {
                    self.try_migrate(core, tid);
                }
                _ => {}
            }
        }
    }

    /// Post-ifetch observation: segment-boundary crossings, sampled
    /// misses stamped with their 3C class, and the stall the miss cost.
    /// Only called when the sink is live, so the fetch hot path pays one
    /// constant-false test per block transition when tracing is off.
    fn observe_fetch(
        &mut self,
        core: CoreId,
        tid: ThreadId,
        block: BlockAddr,
        hit: bool,
        fetch_start: Cycle,
    ) {
        let segment = self.spec.pool.segment_of_block(block);
        if segment != self.sys.core_site(core).last_segment {
            self.sys.core_site_mut(core).last_segment = segment;
            if let Some(segment) = segment {
                self.sink.record(
                    core,
                    fetch_start,
                    EventKind::SegmentBoundary { thread: tid.raw(), segment },
                );
            }
        }
        if !hit {
            let class = self.sys.last_i_miss_class().map(three_c);
            let kept = self.sink.record_sampled(
                core,
                fetch_start,
                EventKind::Miss { level: MissLevel::L1I, kind: MissKind::Fetch, class },
            );
            if kept {
                // The stall rides the miss's sampling decision so every
                // sampled miss carries its cost and no orphan stalls
                // clutter the trace.
                let now = self.sys.timer(core).now();
                let cycles = now.saturating_sub(fetch_start).min(u32::MAX as Cycle) as u32;
                self.sink.record(core, now, EventKind::Stall { cycles });
            }
        }
    }

    /// Pops the core's queue head into execution; an idle core with an
    /// empty queue steals the newest waiting thread from the most
    /// congested queue instead (§5.7 allows a centralized thread queue —
    /// stealing is the distributed equivalent and keeps cores busy).
    /// Returns false when there is nothing to run.
    fn start_next_thread(&mut self, core: CoreId) -> bool {
        let c = core.index();
        let tid = match self.queues[c].pop() {
            Some(t) => t,
            None => match self.steal_for(core) {
                Some(t) => t,
                None => return false,
            },
        };
        let t = tid.index();
        let ready = self.threads.ready_at[t];
        self.sys.timer_mut(core).idle_until(ready);
        self.threads.state[t] = ThreadState::Running;
        self.threads.cores_visited[t].insert(core);
        self.running[c] = Some(tid);
        {
            let site = self.sys.core_site_mut(core);
            site.last_iblock = None;
            site.last_segment = None;
        }
        self.refresh_core_sets(core);
        if self.sink.is_enabled() {
            let now = self.sys.timer(core).now();
            self.sink.record(core, now, EventKind::ThreadStart { thread: tid.raw() });
        }
        true
    }

    /// Figure-5 migration attempt for the running thread after an L1-I
    /// miss. Returns true if the thread left this core.
    fn try_migrate(&mut self, core: CoreId, tid: ThreadId) -> bool {
        let advice = self.sys.core_site_mut(core).agent.advice();
        let allowed = self.threads.allowed[tid.index()];
        let (target, matched) = match advice {
            MigrationAdvice::Stay => (None, false),
            MigrationAdvice::Migrate(mask) => {
                let candidates = (mask & allowed).without(core);
                let limit = self.migration_queue_limit;
                match self.pick_nearest(
                    core,
                    candidates
                        .iter()
                        .filter(|&t| !self.queue_full(t) && self.queues[t.index()].len() <= limit),
                ) {
                    Some(t) => (Some(t), true),
                    None => (self.pick_idle(core, allowed), false),
                }
            }
            MigrationAdvice::SeekIdle => (self.pick_idle(core, allowed), false),
        };
        let Some(target) = target else {
            if advice != MigrationAdvice::Stay {
                self.blocked_migrations += 1;
            }
            return false;
        };
        if matched {
            self.matched_migrations += 1;
        } else {
            self.idle_migrations += 1;
        }
        if self.record_events {
            self.events.push(MigrationEvent {
                thread: tid,
                from: core,
                to: target,
                at: self.sys.timer(core).now(),
                thread_instructions: self.threads.executed(tid.index()),
                matched,
            });
        }
        if self.sink.is_enabled() {
            let reason = if matched { MigrationReason::Matched } else { MigrationReason::Idle };
            let now = self.sys.timer(core).now();
            self.sink.record(
                core,
                now,
                EventKind::Migration { thread: tid.raw(), from: core, to: target, reason },
            );
        }
        self.migrate(core, target, tid);
        true
    }

    /// STEPS-style switch: at a chunk boundary, rotate the running
    /// thread to the back of its own core's queue so teammates re-run
    /// the chunk it just loaded (time-domain pipelining, §6).
    fn try_context_switch(&mut self, core: CoreId, tid: ThreadId) -> bool {
        let c = core.index();
        if !self.sys.core_site_mut(core).agent.chunk_boundary()
            || self.queues[c].is_empty()
            || self.queues[c].is_full()
        {
            return false;
        }
        self.sys.timer_mut(core).migration(self.steps_switch_cycles);
        let t = tid.index();
        self.threads.state[t] = ThreadState::Queued;
        self.threads.ready_at[t] = self.sys.timer(core).now();
        self.queues[c].push(tid);
        self.sys.core_site_mut(core).agent.on_thread_departed();
        self.running[c] = None;
        self.refresh_core_sets(core);
        self.context_switches += 1;
        if self.sink.is_enabled() {
            let now = self.sys.timer(core).now();
            self.sink.record(core, now, EventKind::ContextSwitch { thread: tid.raw() });
        }
        true
    }

    fn queue_full(&self, core: CoreId) -> bool {
        self.queues[core.index()].is_full()
    }

    fn pick_nearest(
        &self,
        from: CoreId,
        candidates: impl Iterator<Item = CoreId>,
    ) -> Option<CoreId> {
        candidates.min_by_key(|&c| (self.sys.noc().hops(from, c), c.index()))
    }

    /// An idle core (nothing running, empty queue) within `allowed`:
    /// least-recently-vacated first (its cache contents are the least
    /// likely to still serve anyone), then nearest.
    fn pick_idle(&self, from: CoreId, allowed: CoreMask) -> Option<CoreId> {
        (self.idle & allowed)
            .without(from)
            .iter()
            .min_by_key(|&c| (self.vacated_seq[c.index()], self.sys.noc().hops(from, c), c.index()))
    }

    fn mark_vacated(&mut self, core: CoreId) {
        self.vacate_clock += 1;
        self.vacated_seq[core.index()] = self.vacate_clock;
    }

    /// Steals the newest waiting thread from the most congested queue
    /// this core may serve (the thread's `allowed` mask must admit the
    /// thief). An idle core steals even a lone waiter: it may lose a
    /// little locality (it re-migrates on its first misses) but an idle
    /// core while threads wait costs a whole core-interval.
    fn steal_for(&mut self, thief: CoreId) -> Option<ThreadId> {
        if !self.mode.is_slicc() || !self.work_stealing {
            return None;
        }
        let victim = self
            .queued
            .without(thief)
            .iter()
            .filter(|&v| {
                self.running[v.index()].is_some()
                    && self.queues[v.index()]
                        .back()
                        .is_some_and(|&t| self.threads.allowed[t.index()].contains(thief))
            })
            .max_by_key(|&v| (self.queues[v.index()].len(), v.index()))?;
        // Take the back (newest) entry: the head may already be waiting
        // on the victim core's warmed state.
        if self.sink.is_enabled() {
            let now = self.sys.timer(thief).now();
            let victim_queue = self.queues[victim.index()].len() as u32;
            self.sink.record(thief, now, EventKind::Steal { victim, victim_queue });
        }
        let stolen = self.queues[victim.index()].pop_back();
        self.refresh_core_sets(victim);
        stolen
    }

    /// Executes the migration: drain at the source, context transfer to
    /// the target's local L2 bank, enqueue at the target.
    fn migrate(&mut self, from: CoreId, to: CoreId, tid: ThreadId) {
        debug_assert!(!self.queue_full(to), "caller checks target queue");
        let cfg = self.sys.config();
        let total = cfg.migration.cost(self.sys.noc().latency(from, to), cfg.l2_hit_latency);
        let drain = cfg.migration.drain_cycles.min(total);
        self.sys.timer_mut(from).migration(drain);
        let ready = self.sys.timer(from).now() + (total - drain);
        self.sys.record_migration_traffic(from, to);
        self.migrations += 1;

        let t = tid.index();
        self.threads.state[t] = ThreadState::Queued;
        self.threads.ready_at[t] = ready;
        self.queues[to.index()].push(tid);
        self.sys.core_site_mut(from).agent.on_thread_departed();
        self.running[from.index()] = None;
        {
            let site = self.sys.core_site_mut(from);
            site.last_iblock = None;
            site.last_segment = None;
        }
        // §4.2.1 + §5.7: the running thread is the queue's first entry, so
        // the "thread queue becomes empty" reset fires when the core is
        // left with no threads at all.
        if self.queues[from.index()].is_empty() {
            self.sys.core_site_mut(from).agent.on_queue_empty();
            self.mark_vacated(from);
        }
        self.refresh_core_sets(from);
        self.refresh_core_sets(to);

        // Reading the target's clock is only safe when it cannot be
        // primed: a core with nothing running never speculates.
        if self.running[to.index()].is_none() && self.queues[to.index()].len() == 1 {
            let wake = self.sys.timer(to).now().max(ready);
            self.push_core(to, wake);
        } else if self.queues[to.index()].len() > 1 {
            // Surplus work exists: idle cores may steal it.
            self.wake_idle_cores(ready);
        }
    }

    /// Re-arms every fully idle core so it gets a chance to steal.
    fn wake_idle_cores(&mut self, ready: Cycle) {
        let idle = self.idle;
        for c in idle.iter() {
            let at = self.sys.timer(c).now().max(ready);
            self.push_core(c, at);
        }
    }

    fn complete_thread(&mut self, core: CoreId, tid: ThreadId) {
        let c = core.index();
        let t = tid.index();
        self.threads.state[t] = ThreadState::Done;
        self.threads.completed_at[t] = Some(self.sys.timer(core).now());
        if self.sink.is_enabled() {
            let now = self.sys.timer(core).now();
            self.sink.record(core, now, EventKind::ThreadComplete { thread: tid.raw() });
        }
        self.running[c] = None;
        self.refresh_core_sets(core);
        self.completed += 1;
        self.in_flight -= 1;
        // Other queues may hold surplus work this completion frees a
        // core for: re-arm idle cores so they can steal it.
        if !self.queued.is_empty() {
            self.wake_idle_cores(0);
        }
        if self.mode.uses_agents() {
            self.sys.core_site_mut(core).agent.on_thread_departed();
            if self.queues[c].is_empty() {
                self.sys.core_site_mut(core).agent.on_queue_empty();
                self.mark_vacated(core);
            }
        }
        if let Some(team_idx) = self.threads.team[t] {
            let team = &mut self.teams[team_idx];
            team.done_members += 1;
            if team.done_members == team.members.len() {
                team.active = false;
                for h in 0..2 {
                    if self.half_owner[h] == Some(team_idx) {
                        self.half_owner[h] = None;
                    }
                }
                // §4.3.2: when a team completes, reset all MCs, MTQs,
                // MSVs (STEPS groups are per-core: reset only theirs).
                // Other cores' resets ride the mailboxes so they land at
                // the same step barrier under any point_threads.
                if self.mode == SchedulerMode::Steps {
                    self.sys.core_site_mut(core).agent.reset_all();
                } else {
                    for i in 0..self.sys.num_cores() {
                        self.sys.reset_agent(CoreId::new(i as u16), core);
                    }
                }
            }
        }
    }

    /// Enqueues a pending thread on `core` and wakes the core if needed.
    fn enqueue(&mut self, tid: ThreadId, core: CoreId) {
        debug_assert!(!self.queue_full(core));
        let t = tid.index();
        debug_assert_eq!(self.threads.state[t], ThreadState::Pending);
        self.threads.state[t] = ThreadState::Queued;
        self.queues[core.index()].push(tid);
        self.refresh_core_sets(core);
        self.in_flight += 1;
        let ready = self.threads.ready_at[t];
        if self.running[core.index()].is_none() && self.queues[core.index()].len() == 1 {
            let wake = self.sys.timer(core).now().max(ready);
            self.push_core(core, wake);
        } else if self.queues[core.index()].len() > 1 {
            // Surplus work exists: idle cores may steal it.
            self.wake_idle_cores(ready);
        }
    }

    /// Speculatively dispatches the just-stepped core's next segment if
    /// its clock is within the quantum of the heap floor; defers it for
    /// later floors otherwise. Priming is pure prefetch — the segment's
    /// input state is fixed at this barrier — so the pacing policy can
    /// never change results, only overlap.
    fn try_prime(&mut self, core: CoreId, lanes: &LaneSet<'a>, floor: Cycle) {
        if self.spec_pause > 0 {
            self.spec_pause -= 1;
            return;
        }
        let c = core.index();
        if self.primed[c] || self.running[c].is_none() {
            return;
        }
        if self.committed_now[c] <= floor.saturating_add(self.quantum) {
            self.dispatch_prime(core, lanes);
        } else {
            self.deferred_primes.insert(core);
        }
    }

    /// Re-examines deferred primes against a new heap floor.
    fn prime_due_cores(&mut self, lanes: &LaneSet<'a>, floor: Cycle) {
        if self.spec_pause > 0 || self.deferred_primes.is_empty() {
            return;
        }
        let horizon = floor.saturating_add(self.quantum);
        let due: Vec<CoreId> = self
            .deferred_primes
            .iter()
            .filter(|&cc| self.committed_now[cc.index()] <= horizon)
            .collect();
        for cc in due {
            self.deferred_primes.remove(cc);
            self.dispatch_prime(cc, lanes);
        }
    }

    fn dispatch_prime(&mut self, core: CoreId, lanes: &LaneSet<'a>) {
        let c = core.index();
        let tid = self.running[c].expect("primed cores have a running thread");
        let task = SpecTask {
            core,
            thread: tid,
            site: self.sys.checkout_site(core),
            stream: self.threads.checkout_stream(tid.index()),
            sink: self.sink.take_core(core),
        };
        lanes.dispatch(c, self.partition[c] % lanes.lane_count(), task);
        self.primed[c] = true;
        self.spec_window_dispatched += 1;
        if self.spec_window_dispatched >= SPEC_WINDOW {
            // Only collects that found the segment already finished
            // bought any wall-clock; a window where under 1/4 did (an
            // oversubscribed host ping-ponging with its lanes) means the
            // dispatch + wake overhead is pure loss — commit inline for
            // a while instead.
            if self.spec_window_overlapped < SPEC_WINDOW / 4 {
                self.spec_pause = SPEC_PAUSE_STEPS;
            }
            self.spec_window_dispatched = 0;
            self.spec_window_overlapped = 0;
        }
    }

    /// Mode-specific dispatch of pending work.
    fn try_dispatch(&mut self) {
        match self.mode {
            SchedulerMode::Baseline => self.dispatch_baseline(),
            SchedulerMode::Slicc => self.dispatch_oblivious(),
            SchedulerMode::SliccSw | SchedulerMode::SliccPp => self.dispatch_teams(),
            SchedulerMode::Steps => self.dispatch_steps(),
        }
    }

    /// Feeds every STEPS group's core from its member list.
    fn dispatch_steps(&mut self) {
        for team_idx in 0..self.teams.len() {
            loop {
                let team = &self.teams[team_idx];
                if team.next_member >= team.members.len()
                    || self.in_flight >= self.pool_limit
                    || self.queue_full(team.lead)
                {
                    break;
                }
                let tid = team.members[team.next_member];
                let lead = team.lead;
                self.teams[team_idx].next_member += 1;
                self.enqueue(tid, lead);
            }
        }
    }

    fn dispatch_baseline(&mut self) {
        while self.in_flight < self.pool_limit && self.next_pending < self.threads.len() {
            let Some(core) = self.pick_idle_global() else {
                return;
            };
            let tid = ThreadId::new(self.next_pending as u32);
            self.next_pending += 1;
            self.enqueue(tid, core);
        }
    }

    fn pick_idle_global(&self) -> Option<CoreId> {
        (self.idle & self.exec_cores).iter().next()
    }

    fn dispatch_oblivious(&mut self) {
        while self.in_flight < self.pool_limit && self.next_pending < self.threads.len() {
            // Naïve load balancing: least congested core (§4.1).
            let Some(core) = self
                .exec_cores
                .iter()
                .filter(|&c| !self.queues[c.index()].is_full())
                .min_by_key(|&c| {
                    self.queues[c.index()].len() + usize::from(self.running[c.index()].is_some())
                })
            else {
                return;
            };
            let tid = ThreadId::new(self.next_pending as u32);
            self.next_pending += 1;
            self.enqueue(tid, core);
        }
    }

    fn dispatch_teams(&mut self) {
        self.activate_teams();
        // Feed active teams from their lead cores.
        for team_idx in 0..self.teams.len() {
            if !self.teams[team_idx].active {
                continue;
            }
            loop {
                let team = &self.teams[team_idx];
                if team.next_member >= team.members.len()
                    || self.in_flight >= self.pool_limit
                    || self.queue_full(team.lead)
                {
                    break;
                }
                let tid = team.members[team.next_member];
                let (lead, cores) = (team.lead, team.cores);
                self.teams[team_idx].next_member += 1;
                self.threads.allowed[tid.index()] = cores;
                self.enqueue(tid, lead);
            }
        }
        // Strays fill idle cores (§4.3.2: "scheduled, individually, to
        // idle cores, or in parallel with a medium team").
        while self.stray_cursor < self.strays.len() && self.in_flight < self.pool_limit {
            let Some(core) = self.pick_idle_global() else {
                return;
            };
            let tid = self.strays[self.stray_cursor];
            self.stray_cursor += 1;
            self.threads.allowed[tid.index()] = self.exec_cores;
            self.enqueue(tid, core);
        }
    }

    /// Whether a half is free for a new team: unowned, or its owner has
    /// dispatched every member ("cores are time-multiplexed among teams",
    /// §4.3.2 — a draining team's tail overlaps the next team's ramp).
    fn half_free(&self, h: usize) -> bool {
        match self.half_owner[h] {
            None => true,
            Some(owner) => {
                let t = &self.teams[owner];
                t.next_member >= t.members.len()
            }
        }
    }

    /// Activates the oldest waiting teams onto free halves (large teams
    /// need both halves; mediums take one).
    fn activate_teams(&mut self) {
        while self.next_team < self.teams.len() {
            let kind = self.teams[self.next_team].kind;
            match kind {
                TeamKind::Large => {
                    if !self.half_free(0) || !self.half_free(1) {
                        return;
                    }
                    let team = &mut self.teams[self.next_team];
                    team.cores = self.halves[0] | self.halves[1];
                    team.lead = team.cores.iter().next().expect("exec cores are non-empty");
                    team.active = true;
                    self.half_owner = [Some(self.next_team), Some(self.next_team)];
                    self.next_team += 1;
                }
                TeamKind::Medium => {
                    let Some(h) = (0..2).find(|&h| self.half_free(h)) else {
                        return;
                    };
                    let team = &mut self.teams[self.next_team];
                    team.cores = self.halves[h];
                    team.lead = team.cores.iter().next().expect("halves are non-empty");
                    team.active = true;
                    self.half_owner[h] = Some(self.next_team);
                    self.next_team += 1;
                }
                TeamKind::Stray => unreachable!("strays are filtered at formation"),
            }
        }
    }

    /// Finalizes the run into metrics.
    pub fn into_metrics(self) -> RunMetrics {
        let mut out = RunMetrics {
            workload: self.spec.name.clone(),
            mode: self.mode.name().to_owned(),
            migrations: self.migrations,
            context_switches: self.context_switches,
            matched_migrations: self.matched_migrations,
            idle_migrations: self.idle_migrations,
            blocked_migrations: self.blocked_migrations,
            completed_threads: self.completed as u64,
            ..Default::default()
        };
        self.sys.collect_metrics(&mut out);
        let n_threads = self.threads.len().max(1) as f64;
        out.mean_cores_per_thread =
            self.threads.cores_visited.iter().map(|v| v.len() as f64).sum::<f64>() / n_threads;
        out.stray_fraction = self.strays.len() as f64 / n_threads;
        // Transaction latency: arrival to completion.
        let mut latencies: Vec<Cycle> = self
            .threads
            .completed_at
            .iter()
            .zip(&self.threads.arrived_at)
            .filter_map(|(done, &arrived)| done.map(|d| d.saturating_sub(arrived)))
            .collect();
        latencies.sort_unstable();
        if !latencies.is_empty() {
            out.mean_txn_latency =
                latencies.iter().sum::<Cycle>() as f64 / latencies.len() as f64;
            out.p95_txn_latency = latencies[(latencies.len() * 95 / 100).min(latencies.len() - 1)];
        }
        out
    }

    /// Finalizes an observed run into metrics plus the observation
    /// artifacts (the event timeline and the interval series).
    pub fn into_outcome(mut self) -> (RunMetrics, Observation) {
        let obs = self.take_observation();
        (self.into_metrics(), obs)
    }

    /// Drains the observability state: flushes the final partial epoch
    /// (which is what makes `series.totals()` reconcile exactly with the
    /// run's cumulative counters) and merges the per-core event rings
    /// into one timeline.
    fn take_observation(&mut self) -> Observation {
        let series = self.sampler.take().map(|s| {
            let mut cum = self.sys.obs_counters();
            cum.migrations = self.migrations;
            s.finish(self.sys.makespan(), cum)
        });
        Observation {
            dropped_events: self.sink.dropped(),
            events: self.sink.drain(),
            series,
        }
    }

    /// The engine's system (tests, diagnostics).
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Threads completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Enables migration-event recording (see [`Engine::events`]).
    pub fn record_events(&mut self) {
        self.record_events = true;
    }

    /// The recorded migration events (empty unless
    /// [`Engine::record_events`] was called before [`Engine::execute`]).
    pub fn events(&self) -> &[MigrationEvent] {
        &self.events
    }

    /// Migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }
}
