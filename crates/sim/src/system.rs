//! The assembled machine: cores + L1s + blooms + NoC + L2 + DRAM.
//!
//! [`System`] owns all hardware state and implements the two memory
//! operations the engine issues — instruction fetch and data access —
//! including miss-path latency (torus hops to the home L2 bank, bank hit
//! latency, DRAM on L2 miss), coherence side effects (store
//! invalidations, dirty downgrades, inclusive back-invalidation), bloom
//! signature maintenance, optional next-line prefetching, and optional 3C
//! classification.

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use slicc_cache::{
    AccessKind, BloomSignature, Cache, EvictedBlock, MissBreakdown, MissClass, NextLinePrefetcher,
    Pif, SignatureAccuracy, ThreeCClassifier,
};
use slicc_common::{BlockAddr, CoreId, Cycle, Merge};
use slicc_core::CoreMask;
use slicc_cpu::{CoreStats, CoreTimer, Tlb};
use slicc_mem::{Dram, L2AccessKind, L2Nuca, L2Response};
use slicc_noc::{NocStats, Torus};

/// Per-core hardware state.
struct CoreCtx {
    l1i: Cache,
    l1d: Cache,
    bloom: BloomSignature,
    timer: CoreTimer,
    itlb: Tlb,
    dtlb: Tlb,
    prefetcher: Option<NextLinePrefetcher>,
    pif: Option<Pif>,
    i_classifier: Option<ThreeCClassifier>,
    d_classifier: Option<ThreeCClassifier>,
}

/// The full simulated machine.
pub struct System {
    cfg: SimConfig,
    noc: Torus,
    noc_stats: NocStats,
    l2: L2Nuca,
    dram: Dram,
    cores: Vec<CoreCtx>,
    l1i_latency: Cycle,
    bloom_accuracy: SignatureAccuracy,
    /// Reusable eviction buffer for the fetch path: filled and drained
    /// within one `ifetch`, kept across calls so the steady state never
    /// allocates.
    evict_scratch: Vec<EvictedBlock>,
    /// 3C class of the most recent L1-I miss, written only when the
    /// classifier is configured, so observed runs can stamp Miss events
    /// with the class without a second classifier pass.
    last_i_miss_class: Option<MissClass>,
    /// 3C class of the most recent L1-D miss (see `last_i_miss_class`).
    last_d_miss_class: Option<MissClass>,
}

impl System {
    /// Builds the machine described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`]. Fallible callers
    /// (the engine's error path) use [`System::try_new`].
    pub fn new(cfg: &SimConfig) -> Self {
        System::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the machine described by `cfg`, rejecting invalid
    /// configurations as typed errors instead of panicking.
    pub fn try_new(cfg: &SimConfig) -> Result<Self, crate::ConfigError> {
        cfg.try_validate()?;
        let l1i_geom = cfg.l1i_geometry();
        let l1d_geom = cfg.l1d_geometry();
        let cores = (0..cfg.cores)
            .map(|i| CoreCtx {
                l1i: Cache::new(l1i_geom, cfg.l1_policy, cfg.seed ^ (i as u64) << 1),
                l1d: Cache::new(l1d_geom, cfg.l1_policy, cfg.seed ^ (i as u64) << 1 ^ 1),
                bloom: BloomSignature::new(cfg.bloom_bits.max(l1i_geom.num_sets()), l1i_geom),
                timer: CoreTimer::new(cfg.timing),
                itlb: Tlb::with_page_bytes(cfg.itlb_entries, cfg.itlb_page_bytes),
                dtlb: Tlb::new(cfg.dtlb_entries),
                prefetcher: cfg.next_line_prefetch.map(NextLinePrefetcher::new),
                pif: cfg.pif_prefetch.map(Pif::new),
                i_classifier: cfg.classify_3c.then(|| ThreeCClassifier::new(l1i_geom.num_blocks() as usize)),
                d_classifier: cfg.classify_3c.then(|| ThreeCClassifier::new(l1d_geom.num_blocks() as usize)),
            })
            .collect();
        Ok(System {
            noc: Torus::new(cfg.noc_cols, cfg.noc_rows),
            noc_stats: NocStats::default(),
            l2: L2Nuca::new(
                slicc_common::CacheGeometry::new(cfg.l2_size, cfg.l2_assoc, 64),
                cfg.l2_banks,
                cfg.l2_hit_latency,
                cfg.seed ^ 0x12,
            ),
            dram: Dram::new(cfg.dram),
            cores,
            l1i_latency: cfg.l1i_latency(),
            bloom_accuracy: SignatureAccuracy::default(),
            evict_scratch: Vec::new(),
            last_i_miss_class: None,
            last_d_miss_class: None,
            cfg: cfg.clone(),
        })
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The interconnect.
    pub fn noc(&self) -> &Torus {
        &self.noc
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The core's local clock.
    pub fn timer(&self, core: CoreId) -> &CoreTimer {
        &self.cores[core.index()].timer
    }

    /// Mutable access to the core's local clock (the engine charges
    /// migration, idling, and instruction retirement through this).
    pub fn timer_mut(&mut self, core: CoreId) -> &mut CoreTimer {
        &mut self.cores[core.index()].timer
    }

    /// Read access to a core's L1-I (tests, diagnostics).
    pub fn l1i(&self, core: CoreId) -> &Cache {
        &self.cores[core.index()].l1i
    }

    /// Read access to a core's L1-D (tests, diagnostics).
    pub fn l1d(&self, core: CoreId) -> &Cache {
        &self.cores[core.index()].l1d
    }

    /// Read access to a core's bloom signature (tests, diagnostics).
    pub fn bloom(&self, core: CoreId) -> &BloomSignature {
        &self.cores[core.index()].bloom
    }

    /// The effective L1-I hit latency.
    pub fn l1i_latency(&self) -> Cycle {
        self.l1i_latency
    }

    /// Performs one instruction fetch on `core` and charges its timer.
    /// Returns whether the L1-I hit.
    pub fn ifetch(&mut self, core: CoreId, block: BlockAddr) -> bool {
        let i = core.index();

        // Address translation precedes the cache.
        {
            let ctx = &mut self.cores[i];
            if !ctx.itlb.access(block.base_addr(64)) {
                ctx.timer.tlb_walk(self.cfg.tlb_walk_cycles, true);
            }
        }

        if self.cfg.measure_bloom_accuracy {
            // §5.3's accuracy metric: does the signature agree with the
            // cache on hit/miss, for every access?
            let ctx = &self.cores[i];
            self.bloom_accuracy.record(ctx.bloom.maybe_contains(block), ctx.l1i.contains(block));
        }

        // L1 lookup (with optional next-line prefetch), classification,
        // and bloom upkeep for prefetch fills. Evictions from prefetch
        // fills and the demand fill collect in the reused scratch buffer.
        let mut evictions = std::mem::take(&mut self.evict_scratch);
        evictions.clear();
        let result = {
            let ctx = &mut self.cores[i];
            let result = match &mut ctx.prefetcher {
                Some(pf) => {
                    let degree = pf.degree();
                    let out = pf.access_into(&mut ctx.l1i, block, &mut evictions);
                    // Prefetch-filled blocks are cached: the bloom
                    // signature must cover them for remote searches.
                    for d in 1..=degree {
                        let target = block.offset(d);
                        if ctx.l1i.contains(target) {
                            ctx.bloom.insert(target);
                        }
                    }
                    out
                }
                None => ctx.l1i.access(block, AccessKind::Read),
            };
            if let Some(c) = &mut ctx.i_classifier {
                if result.is_hit() {
                    c.observe(block);
                } else {
                    self.last_i_miss_class = Some(c.observe_miss(block));
                }
            }
            result
        };

        // Evictions caused by the demand fill and by prefetch fills.
        if let Some(ev) = result.evicted() {
            evictions.push(ev);
        }
        for ev in &evictions {
            self.handle_l1i_eviction(core, ev.block);
        }

        // The real-PIF comparator trains on the retire-order stream and
        // streams prefetch fills into the L1-I (same scratch, drained).
        evictions.clear();
        {
            let ctx = &mut self.cores[i];
            if let Some(pif) = &mut ctx.pif {
                pif.on_fetch_into(&mut ctx.l1i, block, result.is_hit(), &mut evictions);
            }
        }
        for ev in &evictions {
            self.handle_l1i_eviction(core, ev.block);
        }
        self.evict_scratch = evictions;

        if result.is_hit() {
            self.cores[i].timer.ifetch_hit(self.l1i_latency);
            return true;
        }

        // Miss path: request to the home L2 bank over the torus.
        let now = self.cores[i].timer.now();
        let (resp, round_trip) = self.l2_request(core, block, L2AccessKind::IFetch, now);
        self.apply_back_invalidations(&resp);
        let ctx = &mut self.cores[i];
        ctx.bloom.insert(block);
        ctx.timer.ifetch_miss(round_trip);
        false
    }

    /// Performs one data access on `core` and charges its timer.
    /// Returns whether the L1-D hit.
    pub fn data_access(&mut self, core: CoreId, block: BlockAddr, is_store: bool) -> bool {
        let i = core.index();
        let kind = if is_store { AccessKind::Write } else { AccessKind::Read };

        {
            let ctx = &mut self.cores[i];
            if !ctx.dtlb.access(block.base_addr(64)) {
                ctx.timer.tlb_walk(self.cfg.tlb_walk_cycles, false);
            }
        }

        let (result, was_dirty) = {
            let ctx = &mut self.cores[i];
            let was_dirty = ctx.l1d.contains_dirty(block);
            let result = ctx.l1d.access(block, kind);
            if let Some(c) = &mut ctx.d_classifier {
                if result.is_hit() {
                    c.observe(block);
                } else {
                    self.last_d_miss_class = Some(c.observe_miss(block));
                }
            }
            (result, was_dirty)
        };

        if let Some(ev) = result.evicted() {
            self.l2.on_l1_evict(core, ev.block, true, ev.dirty);
            if ev.dirty {
                // Write-back message to the home bank.
                let home = self.noc.bank_home(self.l2.bank_of(ev.block));
                let hops = self.noc.hops(core, home);
                self.noc_stats.record_unicast(hops);
            }
        }

        if result.is_hit() {
            // A store to a clean (potentially shared) line needs
            // exclusivity: an upgrade transaction at the directory.
            if is_store && !was_dirty {
                let now = self.cores[i].timer.now();
                let (resp, round_trip) = self.l2_request(core, block, L2AccessKind::DataWrite, now);
                self.apply_coherence(core, block, &resp);
                self.apply_back_invalidations(&resp);
                self.cores[i].timer.data_miss(block, round_trip, true);
            }
            return true;
        }

        let now = self.cores[i].timer.now();
        let l2_kind = if is_store { L2AccessKind::DataWrite } else { L2AccessKind::DataRead };
        let (resp, mut round_trip) = self.l2_request(core, block, l2_kind, now);
        // A dirty remote copy must be downgraded before the data returns.
        if let Some(owner) = resp.downgrade {
            let home = self.noc.bank_home(self.l2.bank_of(block));
            round_trip += self.noc.round_trip(home, owner);
            self.noc_stats.record_unicast(self.noc.hops(home, owner));
        }
        self.apply_coherence(core, block, &resp);
        self.apply_back_invalidations(&resp);
        self.cores[i].timer.data_miss(block, round_trip, is_store);
        false
    }

    /// The SLICC remote cache segment search: queries every other core's
    /// bloom signature for `block`. Counted as one broadcast (§5.8).
    pub fn remote_search(&mut self, core: CoreId, block: BlockAddr) -> CoreMask {
        self.noc_stats.record_broadcast();
        let mut mask = CoreMask::empty();
        for (i, ctx) in self.cores.iter().enumerate() {
            let holds = if self.cfg.exact_search {
                ctx.l1i.contains(block)
            } else {
                ctx.bloom.maybe_contains(block)
            };
            if i != core.index() && holds {
                mask.insert(CoreId::new(i as u16));
            }
        }
        mask
    }

    /// Measured bloom-signature accuracy so far (Figure 9), if enabled.
    pub fn bloom_accuracy(&self) -> Option<f64> {
        self.cfg.measure_bloom_accuracy.then(|| self.bloom_accuracy.accuracy())
    }

    /// Records the context-transfer messages of one migration.
    pub fn record_migration_traffic(&mut self, from: CoreId, to: CoreId) {
        let hops = self.noc.hops(from, to);
        // Save to the L2 bank near the target, restore locally.
        self.noc_stats.record_unicast(hops);
        self.noc_stats.record_unicast(0);
    }

    /// Issues an L2 request and computes its round-trip latency.
    fn l2_request(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: L2AccessKind,
        now: Cycle,
    ) -> (L2Response, Cycle) {
        let bank = self.l2.bank_of(block);
        let home = self.noc.bank_home(bank);
        let noc_one_way = self.noc.latency(core, home);
        self.noc_stats.record_unicast(self.noc.hops(core, home));
        let resp = self.l2.access(core, block, kind);
        let mut round_trip = 2 * noc_one_way + self.l2.hit_latency();
        if !resp.hit {
            let issue = now + noc_one_way + self.l2.hit_latency();
            let done = self.dram.access(block, issue, false);
            round_trip += done - issue;
        }
        if resp.dirty_writeback {
            // The L2 victim's write-back occupies a DRAM bank but is off
            // the critical path of this request.
            // (The victim block address is in `resp.back_invalidate` when
            // L1 sharers existed; for timing we model bank pressure only
            // when we know the block.)
        }
        (resp, round_trip)
    }

    /// Applies store-invalidations and downgrades to the victim L1-Ds.
    fn apply_coherence(&mut self, requester: CoreId, block: BlockAddr, resp: &L2Response) {
        for victim in resp.invalidate_data.iter() {
            debug_assert_ne!(victim, requester);
            self.cores[victim.index()].l1d.invalidate(block);
            self.noc_stats.record_unicast(self.noc.hops(requester, victim));
        }
        if let Some(owner) = resp.downgrade {
            self.cores[owner.index()].l1d.clean(block);
        }
    }

    /// Applies inclusive-L2 back-invalidations to all L1 copies.
    fn apply_back_invalidations(&mut self, resp: &L2Response) {
        if let Some(bi) = resp.back_invalidate {
            for c in bi.i_sharers.iter() {
                let removed = self.cores[c.index()].l1i.invalidate(bi.block).is_some();
                if removed {
                    self.remove_from_bloom(c, bi.block);
                }
            }
            for c in bi.d_sharers.iter() {
                self.cores[c.index()].l1d.invalidate(bi.block);
            }
        }
    }

    /// L1-I eviction bookkeeping: directory notification + bloom removal.
    fn handle_l1i_eviction(&mut self, core: CoreId, block: BlockAddr) {
        self.l2.on_l1_evict(core, block, false, false);
        self.remove_from_bloom(core, block);
    }

    fn remove_from_bloom(&mut self, core: CoreId, block: BlockAddr) {
        let ctx = &mut self.cores[core.index()];
        let set = ctx.l1i.geometry().set_index(block);
        ctx.bloom.remove(block, ctx.l1i.blocks_in_set(set));
    }

    /// The completion time of the machine: the latest core clock.
    pub fn makespan(&self) -> Cycle {
        self.cores.iter().map(|c| c.timer.now()).max().unwrap_or(0)
    }

    /// 3C class of the most recent L1-I miss, if 3C classification is on.
    pub fn last_i_miss_class(&self) -> Option<MissClass> {
        self.last_i_miss_class
    }

    /// 3C class of the most recent L1-D miss, if 3C classification is on.
    pub fn last_d_miss_class(&self) -> Option<MissClass> {
        self.last_d_miss_class
    }

    /// Snapshot of the cumulative counters the interval sampler tracks.
    /// `migrations` is owned by the engine and left zero here.
    pub fn obs_counters(&self) -> slicc_obs::ObsCounters {
        let mut cum = slicc_obs::ObsCounters::default();
        for ctx in &self.cores {
            cum.instructions += ctx.timer.stats().instructions;
            cum.i_misses += ctx.l1i.stats().misses;
            cum.d_misses += ctx.l1d.stats().misses;
        }
        cum
    }

    /// Gathers hardware-side metrics into `out`.
    pub fn collect_metrics(&self, out: &mut RunMetrics) {
        out.cycles = self.makespan();
        let mut core_stats = CoreStats::default();
        let mut i_bd = MissBreakdown::default();
        let mut d_bd = MissBreakdown::default();
        for ctx in &self.cores {
            out.i_tlb_misses += ctx.itlb.misses();
            out.d_tlb_misses += ctx.dtlb.misses();
            out.instructions += ctx.timer.stats().instructions;
            out.i_misses += ctx.l1i.stats().misses;
            out.d_misses += ctx.l1d.stats().misses;
            out.i_accesses += ctx.l1i.stats().accesses;
            out.d_accesses += ctx.l1d.stats().accesses;
            core_stats.merge(ctx.timer.stats());
            if let Some(c) = &ctx.i_classifier {
                i_bd.merge(&c.breakdown());
            }
            if let Some(c) = &ctx.d_classifier {
                d_bd.merge(&c.breakdown());
            }
        }
        out.core_stats = core_stats;
        out.noc = self.noc_stats;
        out.l2 = *self.l2.stats();
        out.dram = *self.dram.stats();
        if self.cfg.classify_3c {
            out.i_breakdown = Some(i_bd);
            out.d_breakdown = Some(d_bd);
        }
        out.bloom_accuracy = self.bloom_accuracy();
    }
}
