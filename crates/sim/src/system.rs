//! The assembled machine: cores + L1s + blooms + NoC + L2 + DRAM.
//!
//! [`System`] owns all hardware state and implements the two memory
//! operations the engine issues — instruction fetch and data access —
//! including miss-path latency (torus hops to the home L2 bank, bank hit
//! latency, DRAM on L2 miss), coherence side effects (store
//! invalidations, dirty downgrades, inclusive back-invalidation), bloom
//! signature maintenance, optional next-line prefetching, and optional 3C
//! classification.
//!
//! # Site split and deferred cross-core effects (DESIGN §13)
//!
//! Per-core state lives in a [`CoreSite`] box that the engine can check
//! out ([`System::checkout_site`]) and hand to a shard lane for the
//! duration of one speculated private segment. Everything that is not
//! per-core — the NoC, the L2 NUCA + directory, DRAM, and the bloom
//! signatures (read cross-core by `remote_search`) — stays behind
//! `&mut System` and is only ever touched by the committer thread.
//!
//! In deferred mode ([`System::set_deferred_effects`], which the engine
//! always enables for both `point_threads = 1` and `> 1` so the two are
//! identical by construction), cross-core coherence side effects do not
//! mutate the victim core directly. They are queued as typed
//! [`CrossEffect`] messages in a per-core mailbox and applied by
//! [`System::drain_mailbox`] at the end of every step of the target core
//! — the quantum barrier of the conservative parallel schedule. Effects
//! whose target is the requesting core itself apply immediately (its site
//! is in hand). The L2 directory tolerates the stale window this opens:
//! an eviction notice for a block the directory no longer tracks is a
//! no-op.

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use slicc_cache::{
    AccessKind, BloomSignature, Cache, EvictedBlock, MissBreakdown, MissClass, NextLinePrefetcher,
    Pif, SignatureAccuracy, ThreeCClassifier,
};
use slicc_common::{BlockAddr, CoreId, Cycle, Merge};
use slicc_core::{CoreMask, SliccAgent};
use slicc_cpu::{CoreStats, CoreTimer, Tlb};
use slicc_mem::{Dram, L2AccessKind, L2Nuca, L2Response};
use slicc_noc::{NocStats, Torus};

/// Per-core hardware state, boxed so the engine can lend it to a shard
/// lane for one speculated private segment and take it back unchanged.
///
/// The SLICC agent and the engine's fetch-block/segment cursors ride in
/// the site because a private segment advances them; the bloom signature
/// does *not* — remote searches read every core's bloom from the
/// committer thread, and private segments (all L1-I hits) never change
/// bloom contents.
pub(crate) struct CoreSite {
    pub(crate) l1i: Cache,
    pub(crate) l1d: Cache,
    pub(crate) timer: CoreTimer,
    pub(crate) itlb: Tlb,
    pub(crate) dtlb: Tlb,
    pub(crate) prefetcher: Option<NextLinePrefetcher>,
    pub(crate) pif: Option<Pif>,
    pub(crate) i_classifier: Option<ThreeCClassifier>,
    pub(crate) d_classifier: Option<ThreeCClassifier>,
    pub(crate) agent: SliccAgent,
    /// The block the core fetched from last; a record in the same block
    /// costs no fetch (it comes from the fetch buffer).
    pub(crate) last_iblock: Option<BlockAddr>,
    /// The code segment of the last fetch, for segment-boundary events.
    pub(crate) last_segment: Option<u32>,
}

/// The per-segment constants a private segment needs from the config,
/// precomputed once so shard lanes never read `SimConfig`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SegmentParams {
    pub(crate) tlb_walk_cycles: Cycle,
    pub(crate) l1i_latency: Cycle,
    /// When a prefetcher, the PIF comparator, or the bloom-accuracy probe
    /// is configured, every fetch-block transition has shared side
    /// effects and must take the blocking path.
    pub(crate) fetch_transition_blocks: bool,
    /// Whether the scheduler mode consults SLICC agents on fetches.
    pub(crate) uses_agents: bool,
}

impl CoreSite {
    /// One private instruction-fetch block transition. Callers guarantee
    /// `l1i.contains(block)` and `!fetch_transition_blocks`; this mirrors
    /// the hit path of [`System::ifetch`] exactly — TLB, L1-I access
    /// (recency update, no eviction possible), 3C observation, timer
    /// charge — and must stay in lockstep with it.
    pub(crate) fn private_ifetch_hit(&mut self, block: BlockAddr, p: &SegmentParams) {
        if !self.itlb.access(block.base_addr(64)) {
            self.timer.tlb_walk(p.tlb_walk_cycles, true);
        }
        let result = self.l1i.access(block, AccessKind::Read);
        debug_assert!(result.is_hit(), "private fetch classified as hit must hit");
        if let Some(c) = &mut self.i_classifier {
            c.observe(block);
        }
        self.timer.ifetch_hit(p.l1i_latency);
    }

    /// One private data access. Callers guarantee the L1-D holds the
    /// block (dirty, for stores); mirrors the hit path of
    /// [`System::data_access`] — TLB, L1-D access, 3C observation, no
    /// timer charge — and must stay in lockstep with it.
    pub(crate) fn private_data_hit(&mut self, block: BlockAddr, is_store: bool, p: &SegmentParams) {
        if !self.dtlb.access(block.base_addr(64)) {
            self.timer.tlb_walk(p.tlb_walk_cycles, false);
        }
        let kind = if is_store { AccessKind::Write } else { AccessKind::Read };
        let result = self.l1d.access(block, kind);
        debug_assert!(result.is_hit(), "private data access classified as hit must hit");
        if let Some(c) = &mut self.d_classifier {
            c.observe(block);
        }
    }
}

/// One cross-core coherence side effect, queued in the victim core's
/// mailbox and applied when that core's site is next in hand.
#[derive(Clone, Copy, Debug)]
pub(crate) enum CrossEffect {
    /// Inclusive back-invalidation of an L1-I copy. Bloom upkeep rides
    /// with the application (it reads the victim's L1-I set contents).
    InvalI(BlockAddr),
    /// L1-D invalidation (store exclusivity or inclusive back-inval).
    InvalD(BlockAddr),
    /// Dirty-owner downgrade: the line stays, loses dirtiness.
    CleanD(BlockAddr),
    /// SLICC agent reset broadcast at team completion.
    AgentReset,
}

/// The full simulated machine.
pub struct System {
    cfg: SimConfig,
    noc: Torus,
    noc_stats: NocStats,
    l2: L2Nuca,
    dram: Dram,
    sites: Vec<Option<Box<CoreSite>>>,
    /// Bloom signatures live outside the sites: `remote_search` reads
    /// every core's signature from the committer thread while sites may
    /// be checked out, and private segments never touch them.
    blooms: Vec<BloomSignature>,
    /// Deferred cross-core effects, drained at each core's step barrier.
    mailboxes: Vec<Vec<CrossEffect>>,
    /// Whether cross-core effects defer to mailboxes (the engine) or
    /// apply immediately (standalone `System` users).
    deferred: bool,
    l1i_latency: Cycle,
    bloom_accuracy: SignatureAccuracy,
    /// Reusable eviction buffer for the fetch path: filled and drained
    /// within one `ifetch`, kept across calls so the steady state never
    /// allocates.
    evict_scratch: Vec<EvictedBlock>,
    /// 3C class of the most recent L1-I miss, written only when the
    /// classifier is configured, so observed runs can stamp Miss events
    /// with the class without a second classifier pass.
    last_i_miss_class: Option<MissClass>,
    /// 3C class of the most recent L1-D miss (see `last_i_miss_class`).
    last_d_miss_class: Option<MissClass>,
}

impl System {
    /// Builds the machine described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`]. Fallible callers
    /// (the engine's error path) use [`System::try_new`].
    pub fn new(cfg: &SimConfig) -> Self {
        System::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the machine described by `cfg`, rejecting invalid
    /// configurations as typed errors instead of panicking.
    pub fn try_new(cfg: &SimConfig) -> Result<Self, crate::ConfigError> {
        cfg.try_validate()?;
        let l1i_geom = cfg.l1i_geometry();
        let l1d_geom = cfg.l1d_geometry();
        let sites = (0..cfg.cores)
            .map(|i| {
                Some(Box::new(CoreSite {
                    l1i: Cache::new(l1i_geom, cfg.l1_policy, cfg.seed ^ (i as u64) << 1),
                    l1d: Cache::new(l1d_geom, cfg.l1_policy, cfg.seed ^ (i as u64) << 1 ^ 1),
                    timer: CoreTimer::new(cfg.timing),
                    itlb: Tlb::with_page_bytes(cfg.itlb_entries, cfg.itlb_page_bytes),
                    dtlb: Tlb::new(cfg.dtlb_entries),
                    prefetcher: cfg.next_line_prefetch.map(NextLinePrefetcher::new),
                    pif: cfg.pif_prefetch.map(Pif::new),
                    i_classifier: cfg
                        .classify_3c
                        .then(|| ThreeCClassifier::new(l1i_geom.num_blocks() as usize)),
                    d_classifier: cfg
                        .classify_3c
                        .then(|| ThreeCClassifier::new(l1d_geom.num_blocks() as usize)),
                    agent: SliccAgent::new(CoreId::new(i as u16), cfg.slicc),
                    last_iblock: None,
                    last_segment: None,
                }))
            })
            .collect();
        Ok(System {
            noc: Torus::new(cfg.noc_cols, cfg.noc_rows),
            noc_stats: NocStats::default(),
            l2: L2Nuca::new(
                slicc_common::CacheGeometry::new(cfg.l2_size, cfg.l2_assoc, 64),
                cfg.l2_banks,
                cfg.l2_hit_latency,
                cfg.seed ^ 0x12,
            ),
            dram: Dram::new(cfg.dram),
            sites,
            blooms: (0..cfg.cores)
                .map(|_| BloomSignature::new(cfg.bloom_bits.max(l1i_geom.num_sets()), l1i_geom))
                .collect(),
            mailboxes: (0..cfg.cores).map(|_| Vec::new()).collect(),
            deferred: false,
            l1i_latency: cfg.l1i_latency(),
            bloom_accuracy: SignatureAccuracy::default(),
            evict_scratch: Vec::new(),
            last_i_miss_class: None,
            last_d_miss_class: None,
            cfg: cfg.clone(),
        })
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The interconnect.
    pub fn noc(&self) -> &Torus {
        &self.noc
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.sites.len()
    }

    fn site(&self, i: usize) -> &CoreSite {
        self.sites[i].as_deref().expect("core site is checked out to a shard lane")
    }

    fn site_mut(&mut self, i: usize) -> &mut CoreSite {
        self.sites[i].as_deref_mut().expect("core site is checked out to a shard lane")
    }

    /// The core's per-core hardware state (engine internal).
    pub(crate) fn core_site(&self, core: CoreId) -> &CoreSite {
        self.site(core.index())
    }

    /// Mutable per-core hardware state (engine internal).
    pub(crate) fn core_site_mut(&mut self, core: CoreId) -> &mut CoreSite {
        self.site_mut(core.index())
    }

    /// Lends a core's site out for one speculated private segment.
    pub(crate) fn checkout_site(&mut self, core: CoreId) -> Box<CoreSite> {
        self.sites[core.index()].take().expect("core site double checkout")
    }

    /// Restores a site lent by [`System::checkout_site`].
    pub(crate) fn checkin_site(&mut self, core: CoreId, site: Box<CoreSite>) {
        debug_assert!(self.sites[core.index()].is_none(), "core site double checkin");
        self.sites[core.index()] = Some(site);
    }

    /// Switches cross-core coherence effects from immediate application
    /// to per-core mailboxes drained at step barriers. The engine always
    /// turns this on — sequential and sharded runs share one semantics.
    pub(crate) fn set_deferred_effects(&mut self, deferred: bool) {
        self.deferred = deferred;
    }

    /// The precomputed constants a private segment needs.
    pub(crate) fn segment_params(&self, uses_agents: bool) -> SegmentParams {
        SegmentParams {
            tlb_walk_cycles: self.cfg.tlb_walk_cycles,
            l1i_latency: self.l1i_latency,
            fetch_transition_blocks: self.cfg.next_line_prefetch.is_some()
                || self.cfg.pif_prefetch.is_some()
                || self.cfg.measure_bloom_accuracy,
            uses_agents,
        }
    }

    /// Applies every queued cross-core effect for `core`, in arrival
    /// order (= canonical commit order: effects are queued by the
    /// committer as it retires blocking records). Called at the end of
    /// every step of `core`, with its site in place.
    pub(crate) fn drain_mailbox(&mut self, core: CoreId) {
        if self.mailboxes[core.index()].is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.mailboxes[core.index()]);
        for effect in pending.drain(..) {
            match effect {
                CrossEffect::InvalI(block) => self.apply_inval_i(core, block),
                CrossEffect::InvalD(block) => {
                    self.site_mut(core.index()).l1d.invalidate(block);
                }
                CrossEffect::CleanD(block) => {
                    self.site_mut(core.index()).l1d.clean(block);
                }
                CrossEffect::AgentReset => self.site_mut(core.index()).agent.reset_all(),
            }
        }
        // Hand the drained buffer back to reuse its allocation; drains
        // run on the committer thread, so nothing raced new effects in.
        self.mailboxes[core.index()] = pending;
    }

    /// Resets `core`'s SLICC agent: immediately when its site is in hand
    /// (it is the stepping core, or effects are immediate), deferred to
    /// its mailbox otherwise.
    pub(crate) fn reset_agent(&mut self, core: CoreId, stepping: CoreId) {
        if self.deferred && core != stepping {
            self.mailboxes[core.index()].push(CrossEffect::AgentReset);
        } else {
            self.site_mut(core.index()).agent.reset_all();
        }
    }

    /// The core's local clock.
    pub fn timer(&self, core: CoreId) -> &CoreTimer {
        &self.site(core.index()).timer
    }

    /// Mutable access to the core's local clock (the engine charges
    /// migration, idling, and instruction retirement through this).
    pub fn timer_mut(&mut self, core: CoreId) -> &mut CoreTimer {
        &mut self.site_mut(core.index()).timer
    }

    /// Read access to a core's L1-I (tests, diagnostics).
    pub fn l1i(&self, core: CoreId) -> &Cache {
        &self.site(core.index()).l1i
    }

    /// Read access to a core's L1-D (tests, diagnostics).
    pub fn l1d(&self, core: CoreId) -> &Cache {
        &self.site(core.index()).l1d
    }

    /// Read access to a core's bloom signature (tests, diagnostics).
    pub fn bloom(&self, core: CoreId) -> &BloomSignature {
        &self.blooms[core.index()]
    }

    /// The effective L1-I hit latency.
    pub fn l1i_latency(&self) -> Cycle {
        self.l1i_latency
    }

    /// Performs one instruction fetch on `core` and charges its timer.
    /// Returns whether the L1-I hit.
    pub fn ifetch(&mut self, core: CoreId, block: BlockAddr) -> bool {
        let i = core.index();

        // Address translation precedes the cache.
        {
            let walk = self.cfg.tlb_walk_cycles;
            let site = self.site_mut(i);
            if !site.itlb.access(block.base_addr(64)) {
                site.timer.tlb_walk(walk, true);
            }
        }

        if self.cfg.measure_bloom_accuracy {
            // §5.3's accuracy metric: does the signature agree with the
            // cache on hit/miss, for every access?
            let holds = self.site(i).l1i.contains(block);
            self.bloom_accuracy.record(self.blooms[i].maybe_contains(block), holds);
        }

        // L1 lookup (with optional next-line prefetch), classification,
        // and bloom upkeep for prefetch fills. Evictions from prefetch
        // fills and the demand fill collect in the reused scratch buffer.
        let mut evictions = std::mem::take(&mut self.evict_scratch);
        evictions.clear();
        let result = {
            let site = self.sites[i].as_deref_mut().expect("core site is checked out");
            let bloom = &mut self.blooms[i];
            let result = match &mut site.prefetcher {
                Some(pf) => {
                    let degree = pf.degree();
                    let out = pf.access_into(&mut site.l1i, block, &mut evictions);
                    // Prefetch-filled blocks are cached: the bloom
                    // signature must cover them for remote searches.
                    for d in 1..=degree {
                        let target = block.offset(d);
                        if site.l1i.contains(target) {
                            bloom.insert(target);
                        }
                    }
                    out
                }
                None => site.l1i.access(block, AccessKind::Read),
            };
            if let Some(c) = &mut site.i_classifier {
                if result.is_hit() {
                    c.observe(block);
                } else {
                    self.last_i_miss_class = Some(c.observe_miss(block));
                }
            }
            result
        };

        // Evictions caused by the demand fill and by prefetch fills.
        if let Some(ev) = result.evicted() {
            evictions.push(ev);
        }
        for ev in &evictions {
            self.handle_l1i_eviction(core, ev.block);
        }

        // The real-PIF comparator trains on the retire-order stream and
        // streams prefetch fills into the L1-I (same scratch, drained).
        evictions.clear();
        {
            let site = self.site_mut(i);
            if let Some(pif) = &mut site.pif {
                pif.on_fetch_into(&mut site.l1i, block, result.is_hit(), &mut evictions);
            }
        }
        for ev in &evictions {
            self.handle_l1i_eviction(core, ev.block);
        }
        self.evict_scratch = evictions;

        if result.is_hit() {
            let latency = self.l1i_latency;
            self.site_mut(i).timer.ifetch_hit(latency);
            return true;
        }

        // Miss path: request to the home L2 bank over the torus.
        let now = self.site(i).timer.now();
        let (resp, round_trip) = self.l2_request(core, block, L2AccessKind::IFetch, now);
        self.apply_back_invalidations(core, &resp);
        self.blooms[i].insert(block);
        self.site_mut(i).timer.ifetch_miss(round_trip);
        false
    }

    /// Performs one data access on `core` and charges its timer.
    /// Returns whether the L1-D hit.
    pub fn data_access(&mut self, core: CoreId, block: BlockAddr, is_store: bool) -> bool {
        let i = core.index();
        let kind = if is_store { AccessKind::Write } else { AccessKind::Read };

        {
            let walk = self.cfg.tlb_walk_cycles;
            let site = self.site_mut(i);
            if !site.dtlb.access(block.base_addr(64)) {
                site.timer.tlb_walk(walk, false);
            }
        }

        let (result, was_dirty) = {
            let site = self.site_mut(i);
            let was_dirty = site.l1d.contains_dirty(block);
            let result = site.l1d.access(block, kind);
            if let Some(c) = &mut site.d_classifier {
                if result.is_hit() {
                    c.observe(block);
                } else {
                    self.last_d_miss_class = Some(c.observe_miss(block));
                }
            }
            (result, was_dirty)
        };

        if let Some(ev) = result.evicted() {
            self.l2.on_l1_evict(core, ev.block, true, ev.dirty);
            if ev.dirty {
                // Write-back message to the home bank.
                let home = self.noc.bank_home(self.l2.bank_of(ev.block));
                let hops = self.noc.hops(core, home);
                self.noc_stats.record_unicast(hops);
            }
        }

        if result.is_hit() {
            // A store to a clean (potentially shared) line needs
            // exclusivity: an upgrade transaction at the directory.
            if is_store && !was_dirty {
                let now = self.site(i).timer.now();
                let (resp, round_trip) = self.l2_request(core, block, L2AccessKind::DataWrite, now);
                self.apply_coherence(core, block, &resp);
                self.apply_back_invalidations(core, &resp);
                self.site_mut(i).timer.data_miss(block, round_trip, true);
            }
            return true;
        }

        let now = self.site(i).timer.now();
        let l2_kind = if is_store { L2AccessKind::DataWrite } else { L2AccessKind::DataRead };
        let (resp, mut round_trip) = self.l2_request(core, block, l2_kind, now);
        // A dirty remote copy must be downgraded before the data returns.
        if let Some(owner) = resp.downgrade {
            let home = self.noc.bank_home(self.l2.bank_of(block));
            round_trip += self.noc.round_trip(home, owner);
            self.noc_stats.record_unicast(self.noc.hops(home, owner));
        }
        self.apply_coherence(core, block, &resp);
        self.apply_back_invalidations(core, &resp);
        self.site_mut(i).timer.data_miss(block, round_trip, is_store);
        false
    }

    /// The SLICC remote cache segment search: queries every other core's
    /// bloom signature for `block`. Counted as one broadcast (§5.8).
    pub fn remote_search(&mut self, core: CoreId, block: BlockAddr) -> CoreMask {
        self.noc_stats.record_broadcast();
        let mut mask = CoreMask::empty();
        for i in 0..self.sites.len() {
            let holds = if self.cfg.exact_search {
                // Exact search reads other cores' L1-Is directly, which
                // is why the engine forces point_threads = 1 for it.
                self.site(i).l1i.contains(block)
            } else {
                self.blooms[i].maybe_contains(block)
            };
            if i != core.index() && holds {
                mask.insert(CoreId::new(i as u16));
            }
        }
        mask
    }

    /// Measured bloom-signature accuracy so far (Figure 9), if enabled.
    pub fn bloom_accuracy(&self) -> Option<f64> {
        self.cfg.measure_bloom_accuracy.then(|| self.bloom_accuracy.accuracy())
    }

    /// Records the context-transfer messages of one migration.
    pub fn record_migration_traffic(&mut self, from: CoreId, to: CoreId) {
        let hops = self.noc.hops(from, to);
        // Save to the L2 bank near the target, restore locally.
        self.noc_stats.record_unicast(hops);
        self.noc_stats.record_unicast(0);
    }

    /// Issues an L2 request and computes its round-trip latency.
    fn l2_request(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        kind: L2AccessKind,
        now: Cycle,
    ) -> (L2Response, Cycle) {
        let bank = self.l2.bank_of(block);
        let home = self.noc.bank_home(bank);
        let noc_one_way = self.noc.latency(core, home);
        self.noc_stats.record_unicast(self.noc.hops(core, home));
        let resp = self.l2.access(core, block, kind);
        let mut round_trip = 2 * noc_one_way + self.l2.hit_latency();
        if !resp.hit {
            let issue = now + noc_one_way + self.l2.hit_latency();
            let done = self.dram.access(block, issue, false);
            round_trip += done - issue;
        }
        if resp.dirty_writeback {
            // The L2 victim's write-back occupies a DRAM bank but is off
            // the critical path of this request.
            // (The victim block address is in `resp.back_invalidate` when
            // L1 sharers existed; for timing we model bank pressure only
            // when we know the block.)
        }
        (resp, round_trip)
    }

    /// Applies store-invalidations and downgrades to the victim L1-Ds.
    /// NoC messages are charged at request time either way; in deferred
    /// mode the cache mutations queue to the victims' mailboxes.
    fn apply_coherence(&mut self, requester: CoreId, block: BlockAddr, resp: &L2Response) {
        for victim in resp.invalidate_data.iter() {
            debug_assert_ne!(victim, requester);
            if self.deferred {
                self.mailboxes[victim.index()].push(CrossEffect::InvalD(block));
            } else {
                self.site_mut(victim.index()).l1d.invalidate(block);
            }
            self.noc_stats.record_unicast(self.noc.hops(requester, victim));
        }
        if let Some(owner) = resp.downgrade {
            if self.deferred && owner != requester {
                self.mailboxes[owner.index()].push(CrossEffect::CleanD(block));
            } else {
                self.site_mut(owner.index()).l1d.clean(block);
            }
        }
    }

    /// Applies inclusive-L2 back-invalidations to all L1 copies. The
    /// requester's own copy (its site is in hand) applies immediately;
    /// other sharers defer to their mailboxes in deferred mode.
    fn apply_back_invalidations(&mut self, requester: CoreId, resp: &L2Response) {
        if let Some(bi) = resp.back_invalidate {
            for c in bi.i_sharers.iter() {
                if self.deferred && c != requester {
                    self.mailboxes[c.index()].push(CrossEffect::InvalI(bi.block));
                } else {
                    self.apply_inval_i(c, bi.block);
                }
            }
            for c in bi.d_sharers.iter() {
                if self.deferred && c != requester {
                    self.mailboxes[c.index()].push(CrossEffect::InvalD(bi.block));
                } else {
                    self.site_mut(c.index()).l1d.invalidate(bi.block);
                }
            }
        }
    }

    /// Invalidates an L1-I copy with bloom upkeep (needs the victim's
    /// site in hand: bloom removal reads the L1-I set contents).
    fn apply_inval_i(&mut self, core: CoreId, block: BlockAddr) {
        if self.site_mut(core.index()).l1i.invalidate(block).is_some() {
            self.remove_from_bloom(core, block);
        }
    }

    /// L1-I eviction bookkeeping: directory notification + bloom removal.
    fn handle_l1i_eviction(&mut self, core: CoreId, block: BlockAddr) {
        self.l2.on_l1_evict(core, block, false, false);
        self.remove_from_bloom(core, block);
    }

    fn remove_from_bloom(&mut self, core: CoreId, block: BlockAddr) {
        let site = self.sites[core.index()].as_deref().expect("core site is checked out");
        let set = site.l1i.geometry().set_index(block);
        self.blooms[core.index()].remove(block, site.l1i.blocks_in_set(set));
    }

    /// The completion time of the machine: the latest core clock.
    pub fn makespan(&self) -> Cycle {
        (0..self.sites.len()).map(|i| self.site(i).timer.now()).max().unwrap_or(0)
    }

    /// 3C class of the most recent L1-I miss, if 3C classification is on.
    pub fn last_i_miss_class(&self) -> Option<MissClass> {
        self.last_i_miss_class
    }

    /// 3C class of the most recent L1-D miss, if 3C classification is on.
    pub fn last_d_miss_class(&self) -> Option<MissClass> {
        self.last_d_miss_class
    }

    /// Snapshot of the cumulative counters the interval sampler tracks.
    /// `migrations` is owned by the engine and left zero here.
    pub fn obs_counters(&self) -> slicc_obs::ObsCounters {
        let mut cum = slicc_obs::ObsCounters::default();
        for i in 0..self.sites.len() {
            let site = self.site(i);
            cum.instructions += site.timer.stats().instructions;
            cum.i_misses += site.l1i.stats().misses;
            cum.d_misses += site.l1d.stats().misses;
        }
        cum
    }

    /// Gathers hardware-side metrics into `out`.
    pub fn collect_metrics(&self, out: &mut RunMetrics) {
        out.cycles = self.makespan();
        let mut core_stats = CoreStats::default();
        let mut i_bd = MissBreakdown::default();
        let mut d_bd = MissBreakdown::default();
        for i in 0..self.sites.len() {
            let site = self.site(i);
            out.i_tlb_misses += site.itlb.misses();
            out.d_tlb_misses += site.dtlb.misses();
            out.instructions += site.timer.stats().instructions;
            out.i_misses += site.l1i.stats().misses;
            out.d_misses += site.l1d.stats().misses;
            out.i_accesses += site.l1i.stats().accesses;
            out.d_accesses += site.l1d.stats().accesses;
            core_stats.merge(site.timer.stats());
            if let Some(c) = &site.i_classifier {
                i_bd.merge(&c.breakdown());
            }
            if let Some(c) = &site.d_classifier {
                d_bd.merge(&c.breakdown());
            }
        }
        out.core_stats = core_stats;
        out.noc = self.noc_stats;
        out.l2 = *self.l2.stats();
        out.dram = *self.dram.stats();
        if self.cfg.classify_3c {
            out.i_breakdown = Some(i_bd);
            out.d_breakdown = Some(d_bd);
        }
        out.bloom_accuracy = self.bloom_accuracy();
    }
}
