//! SLICC's three tuning thresholds.

/// The migration thresholds explored in §5.2 (Figures 7 and 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliccParams {
    /// `fill-up_t`: misses before the L1-I is considered full of useful
    /// blocks (§4.2.1). The paper finds ~half the cache's block count
    /// works well and that sensitivity is low.
    pub fill_up_t: u32,
    /// `matched_t`: recent missed tags that must all be present on a
    /// remote cache before migrating there (§4.2.3). Paper best: 4.
    pub matched_t: u32,
    /// `dilution_t`: minimum misses within the last `msv_window` accesses
    /// to enable migration (§4.2.2). Paper best: 10.
    pub dilution_t: u32,
    /// Window length of the miss shift vector (the paper uses 100 bits).
    pub msv_window: u32,
}

impl slicc_common::StableHash for SliccParams {
    fn stable_hash(&self, h: &mut slicc_common::StableHasher) {
        self.fill_up_t.stable_hash(h);
        self.matched_t.stable_hash(h);
        self.dilution_t.stable_hash(h);
        self.msv_window.stable_hash(h);
    }
}

impl SliccParams {
    /// The configuration the paper settles on in §5.2: `dilution_t = 10`,
    /// `fill-up_t = 256`, `matched_t = 4`.
    pub fn paper_default() -> Self {
        SliccParams { fill_up_t: 256, matched_t: 4, dilution_t: 10, msv_window: 100 }
    }

    /// The best configuration found by this reproduction's Figure-7/8
    /// sweeps: `fill-up_t = 128` (1/4 of the cache's blocks),
    /// `dilution_t = 4`, `matched_t = 4`.
    ///
    /// The shift from the paper's (256, 10) reflects the synthetic
    /// substrate's granularity: the MSV samples one access per fetched
    /// block, so dilution saturates lower, and aggressive migration pays
    /// off because the remote search is precise. The sensitivity *shape*
    /// matches the paper: mild sensitivity to fill-up_t, a broad optimum
    /// dilution band, and a cliff where migrations cease and SLICC-SW
    /// collapses (§5.2).
    pub fn calibrated() -> Self {
        SliccParams { fill_up_t: 128, matched_t: 4, dilution_t: 4, msv_window: 100 }
    }

    /// Returns a copy with a different `fill_up_t`.
    pub fn with_fill_up(mut self, fill_up_t: u32) -> Self {
        self.fill_up_t = fill_up_t;
        self
    }

    /// Returns a copy with a different `matched_t`.
    pub fn with_matched(mut self, matched_t: u32) -> Self {
        self.matched_t = matched_t;
        self
    }

    /// Returns a copy with a different `dilution_t`.
    pub fn with_dilution(mut self, dilution_t: u32) -> Self {
        self.dilution_t = dilution_t;
        self
    }

    /// Scales the thresholds for a cache `factor` times smaller than the
    /// baseline 512-block L1 (used by miniature test configurations).
    pub fn scaled_down(self, factor: u32) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        SliccParams {
            fill_up_t: (self.fill_up_t / factor).max(1),
            matched_t: self.matched_t,
            dilution_t: self.dilution_t,
            msv_window: self.msv_window,
        }
    }
}

impl Default for SliccParams {
    fn default() -> Self {
        SliccParams::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_2() {
        let p = SliccParams::paper_default();
        assert_eq!(p.fill_up_t, 256);
        assert_eq!(p.matched_t, 4);
        assert_eq!(p.dilution_t, 10);
        assert_eq!(p.msv_window, 100);
        assert_eq!(p, SliccParams::default());
    }

    #[test]
    fn builders_replace_one_field() {
        let p = SliccParams::paper_default().with_fill_up(128).with_matched(2).with_dilution(0);
        assert_eq!((p.fill_up_t, p.matched_t, p.dilution_t), (128, 2, 0));
    }

    #[test]
    fn scaling_preserves_non_size_thresholds() {
        let p = SliccParams::paper_default().scaled_down(16);
        assert_eq!(p.fill_up_t, 16);
        assert_eq!(p.matched_t, 4);
        assert_eq!(p.dilution_t, 10);
    }

    #[test]
    fn scaling_never_hits_zero() {
        assert_eq!(SliccParams::paper_default().scaled_down(10_000).fill_up_t, 1);
    }
}
