//! The missed-tag queue: where is the thread's next segment cached?
//!
//! §4.2.3: "SLICC records recently missed tags in the Missed Tag Queue
//! (MTQ), which is a matched_t entry FIFO of n-bit entries, where n is
//! the number of cores. A logic-1 on bit index C for MTQ entry i
//! indicates that the i-th recently missed cache block was cached at core
//! C. Thus, by ANDing all bits at index C we know whether core C holds
//! all the recently missed cache blocks."

use crate::mask::CoreMask;
use slicc_common::RingFifo;

/// A `matched_t`-deep FIFO of remote-sharing vectors.
///
/// # Example
///
/// ```
/// use slicc_core::{CoreMask, MissedTagQueue};
///
/// let mut mtq = MissedTagQueue::new(2);
/// mtq.push(CoreMask::from_bits(0b0110));
/// mtq.push(CoreMask::from_bits(0b0010));
/// // Core 1 held both recently-missed blocks.
/// assert_eq!(mtq.common_cores().bits(), 0b0010);
/// ```
#[derive(Clone, Debug)]
pub struct MissedTagQueue {
    entries: RingFifo<CoreMask>,
}

impl MissedTagQueue {
    /// Creates a queue of depth `matched_t`.
    ///
    /// # Panics
    ///
    /// Panics if `matched_t` is zero.
    pub fn new(matched_t: u32) -> Self {
        assert!(matched_t > 0, "matched_t must be positive");
        MissedTagQueue { entries: RingFifo::new(matched_t as usize) }
    }

    /// Records the sharing vector of the most recent miss, evicting the
    /// oldest when full.
    pub fn push(&mut self, sharers: CoreMask) {
        self.entries.push(sharers);
    }

    /// Whether `matched_t` misses have been observed since the last
    /// reset. Migration by segment match requires a full queue.
    pub fn is_full(&self) -> bool {
        self.entries.is_full()
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The queue depth (`matched_t`).
    pub fn matched_t(&self) -> u32 {
        self.entries.capacity() as u32
    }

    /// The AND across all entries: cores that held *every* recently
    /// missed block. Empty unless the queue is full (a partial preamble
    /// is not evidence of a segment).
    pub fn common_cores(&self) -> CoreMask {
        if !self.is_full() {
            return CoreMask::empty();
        }
        self.entries
            .iter()
            .copied()
            .fold(CoreMask::from_bits(u32::MAX), |acc, m| acc & m)
    }

    /// Clears the queue (on migration or team completion).
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicc_common::CoreId;

    #[test]
    fn partial_queue_reports_nothing() {
        let mut mtq = MissedTagQueue::new(3);
        mtq.push(CoreMask::from_bits(0b1));
        mtq.push(CoreMask::from_bits(0b1));
        assert!(!mtq.is_full());
        assert!(mtq.common_cores().is_empty());
    }

    #[test]
    fn full_queue_ands_entries() {
        let mut mtq = MissedTagQueue::new(3);
        mtq.push(CoreMask::from_bits(0b1110));
        mtq.push(CoreMask::from_bits(0b0110));
        mtq.push(CoreMask::from_bits(0b0011));
        assert_eq!(mtq.common_cores().bits(), 0b0010);
    }

    #[test]
    fn disagreeing_entries_yield_empty() {
        let mut mtq = MissedTagQueue::new(2);
        mtq.push(CoreMask::from_bits(0b01));
        mtq.push(CoreMask::from_bits(0b10));
        assert!(mtq.common_cores().is_empty());
    }

    #[test]
    fn fifo_eviction_tracks_recent_misses() {
        let mut mtq = MissedTagQueue::new(2);
        mtq.push(CoreMask::from_bits(0b01)); // old: only core 0
        mtq.push(CoreMask::from_bits(0b11));
        mtq.push(CoreMask::from_bits(0b10)); // evicts the core-0-only entry
        assert_eq!(mtq.common_cores().bits(), 0b10);
    }

    #[test]
    fn reset_empties() {
        let mut mtq = MissedTagQueue::new(1);
        mtq.push(CoreMask::from_bits(0b1));
        assert!(mtq.is_full());
        mtq.reset();
        assert!(mtq.is_empty());
        assert_eq!(mtq.len(), 0);
        assert!(mtq.common_cores().is_empty());
    }

    #[test]
    fn multiple_candidate_cores_survive_the_and() {
        let mut mtq = MissedTagQueue::new(2);
        let both: CoreMask = [CoreId::new(2), CoreId::new(7)].into_iter().collect();
        mtq.push(both);
        mtq.push(both);
        let common = mtq.common_cores();
        assert_eq!(common.len(), 2);
        assert!(common.contains(CoreId::new(2)) && common.contains(CoreId::new(7)));
    }

    #[test]
    fn matched_t_accessor() {
        assert_eq!(MissedTagQueue::new(4).matched_t(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_panics() {
        let _ = MissedTagQueue::new(0);
    }
}
