//! The cache-full detector: a resettable, saturating miss counter.
//!
//! §4.2.1: "A log2(L1I cache blocks) wide saturating miss counter (MC)
//! continuously counts the number of misses. When MC saturates at a value
//! of fill-up_t SLICC assumes that the cache has now captured a full
//! segment and may trigger migrations accordingly." The counter resets
//! when the core's thread queue becomes empty — giving new segments a
//! chance to be cached — but the cached blocks themselves are never
//! flushed.

/// A saturating miss counter with a fill-up threshold.
///
/// # Example
///
/// ```
/// use slicc_core::MissCounter;
///
/// let mut mc = MissCounter::new(3);
/// assert!(!mc.is_full());
/// mc.record_miss();
/// mc.record_miss();
/// mc.record_miss();
/// assert!(mc.is_full());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MissCounter {
    count: u32,
    fill_up_t: u32,
}

impl MissCounter {
    /// Creates a counter that saturates at `fill_up_t` misses.
    ///
    /// # Panics
    ///
    /// Panics if `fill_up_t` is zero (the cache would always be "full").
    pub fn new(fill_up_t: u32) -> Self {
        assert!(fill_up_t > 0, "fill-up threshold must be positive");
        MissCounter { count: 0, fill_up_t }
    }

    /// Records one L1-I miss; saturates at the threshold.
    pub fn record_miss(&mut self) {
        if self.count < self.fill_up_t {
            self.count += 1;
        }
    }

    /// Whether the cache is considered full of useful blocks (Q.1).
    pub fn is_full(&self) -> bool {
        self.count >= self.fill_up_t
    }

    /// Current count (saturated).
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The threshold.
    pub fn fill_up_t(&self) -> u32 {
        self.fill_up_t
    }

    /// Resets the counter (triggered when the core's thread queue
    /// empties, or when a team completes under SLICC-SW/Pp).
    pub fn reset(&mut self) {
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_at_threshold() {
        let mut mc = MissCounter::new(4);
        for i in 0..4 {
            assert!(!mc.is_full(), "full after only {i} misses");
            mc.record_miss();
        }
        assert!(mc.is_full());
    }

    #[test]
    fn saturates_without_overflow() {
        let mut mc = MissCounter::new(2);
        for _ in 0..1000 {
            mc.record_miss();
        }
        assert_eq!(mc.count(), 2);
        assert!(mc.is_full());
    }

    #[test]
    fn reset_empties_but_keeps_threshold() {
        let mut mc = MissCounter::new(2);
        mc.record_miss();
        mc.record_miss();
        mc.reset();
        assert!(!mc.is_full());
        assert_eq!(mc.count(), 0);
        assert_eq!(mc.fill_up_t(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_panics() {
        let _ = MissCounter::new(0);
    }
}
