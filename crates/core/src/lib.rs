//! SLICC: Self-Assembly of Instruction Cache Collectives.
//!
//! This crate implements the paper's contribution — the hardware
//! thread-migration algorithm of §4 — as a set of composable, pure
//! decision structures that the system simulator (`slicc-sim`) drives:
//!
//! - [`MissCounter`]: the saturating **cache-full detector** (§4.2.1,
//!   answers Q.1 "is the cache full with useful blocks?") — see [`mc`];
//! - [`MissShiftVector`]: the 100-bit hit/miss history measuring **miss
//!   dilution** (§4.2.2, Q.2 "are the contents still useful to this
//!   thread?") — see [`msv`];
//! - [`MissedTagQueue`]: the last `matched_t` remote-sharing vectors used
//!   for the **remote cache segment search** (§4.2.3, Q.3 "where to
//!   migrate to?") — see [`mtq`];
//! - [`SliccAgent`]: the per-core agent combining the three into the
//!   Figure-5 migration decision — see [`agent`];
//! - [`TeamFormer`]: §4.3.2's type-aware grouping of threads into large /
//!   medium / stray teams for SLICC-SW and SLICC-Pp — see [`team`];
//! - [`ScoutHasher`]: §4.3.1's hardware preprocessing that identifies a
//!   thread's transaction type from its first few instructions — see
//!   [`scout`];
//! - [`hw_cost`]: the Table 3 storage budget (966 bytes per core).
//!
//! # Example
//!
//! ```
//! use slicc_core::{CoreMask, MigrationAdvice, SliccAgent, SliccParams};
//! use slicc_common::CoreId;
//!
//! let mut agent = SliccAgent::new(CoreId::new(0), SliccParams::paper_default());
//! // While the cache is filling up, SLICC never migrates.
//! agent.on_fetch(false, Some(CoreMask::empty()));
//! assert_eq!(agent.advice(), MigrationAdvice::Stay);
//! ```

pub mod agent;
pub mod hw_cost;
pub mod mask;
pub mod mc;
pub mod msv;
pub mod mtq;
pub mod params;
// Gated like slicc-common's property tests: re-add the `proptest` dev-dep
// and enable the `proptest` feature to run (DESIGN.md §5).
#[cfg(all(test, feature = "proptest"))]
mod proptests;
pub mod scout;
pub mod team;

pub use agent::{MigrationAdvice, SliccAgent};
pub use hw_cost::{HwCostBreakdown, HwCostConfig, PIF_STORAGE_BYTES};
pub use mask::CoreMask;
pub use mc::MissCounter;
pub use msv::MissShiftVector;
pub use mtq::MissedTagQueue;
pub use params::SliccParams;
pub use scout::{ScoutHasher, TypeRegistry};
pub use team::{TeamFormer, TeamKind, TeamPlan};
