//! The per-core SLICC agent: the Figure-5 migration decision.
//!
//! "A SLICC agent at each core continuously monitors execution locally in
//! order to determine whether (Q.1) the local cache is filled-up with
//! useful instruction blocks, if so, (Q.2) whether these blocks are
//! useful to the current thread and for how long, and (Q.3) where to
//! migrate to if needed." (§4.1)
//!
//! The agent is a pure decision structure: the simulator feeds it fetch
//! outcomes (and, when requested, the remote-search sharing vector) and
//! reads back advice. All timing, bloom-filter queries, and broadcast
//! accounting stay in the simulator.

use crate::mask::CoreMask;
use crate::mc::MissCounter;
use crate::msv::MissShiftVector;
use crate::mtq::MissedTagQueue;
use crate::params::SliccParams;
use slicc_common::CoreId;

/// What the agent recommends for its running thread (§4.1 Q.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationAdvice {
    /// Keep executing here.
    Stay,
    /// Migrate to one of these cores — they hold all `matched_t` recently
    /// missed blocks (the simulator picks the nearest).
    Migrate(CoreMask),
    /// No remote cache holds the next segment; migrate to an idle core if
    /// one exists, else stay (§4.1: options (2) and (3)).
    SeekIdle,
}

/// One core's SLICC hardware: MC + MSV + MTQ and the decision logic.
///
/// # Example
///
/// ```
/// use slicc_core::{CoreMask, MigrationAdvice, SliccAgent, SliccParams};
/// use slicc_common::CoreId;
///
/// let params = SliccParams::paper_default().with_fill_up(1).with_dilution(0).with_matched(1);
/// let mut agent = SliccAgent::new(CoreId::new(0), params);
/// // One miss fills the (tiny) cache; the next miss is cached at core 3.
/// agent.on_fetch(false, None);
/// let mut sharers = CoreMask::empty();
/// sharers.insert(CoreId::new(3));
/// agent.on_fetch(false, Some(sharers));
/// assert_eq!(agent.advice(), MigrationAdvice::Migrate(sharers));
/// ```
#[derive(Clone, Debug)]
pub struct SliccAgent {
    core: CoreId,
    params: SliccParams,
    mc: MissCounter,
    msv: MissShiftVector,
    mtq: MissedTagQueue,
}

impl SliccAgent {
    /// Creates the agent for `core`.
    pub fn new(core: CoreId, params: SliccParams) -> Self {
        SliccAgent {
            core,
            params,
            mc: MissCounter::new(params.fill_up_t),
            msv: MissShiftVector::new(params.msv_window),
            mtq: MissedTagQueue::new(params.matched_t),
        }
    }

    /// The core this agent monitors.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The thresholds in use.
    pub fn params(&self) -> &SliccParams {
        &self.params
    }

    /// Whether the local cache is considered full (Q.1). While false the
    /// thread is warming the cache and never migrates.
    pub fn cache_full(&self) -> bool {
        self.mc.is_full()
    }

    /// Whether the simulator should perform (and pay for) a remote cache
    /// segment search for the miss it is about to report. Searches are
    /// issued by "a thread that wants to migrate" (§5.8): the cache must
    /// be (about to be) full and the miss stream diluted enough that the
    /// upcoming misses look like a new segment's preamble. This is what
    /// keeps BPKI low.
    pub fn wants_remote_search(&self) -> bool {
        // The miss about to be reported will itself saturate the MC at
        // count+1, so search one miss early to keep the MTQ warm. The
        // miss also shifts into the MSV, so dilution is tested one short.
        self.mc.count() + 1 >= self.params.fill_up_t
            && self.msv.miss_count() + 1 >= self.params.dilution_t
    }

    /// Feeds one L1-I access outcome of the running thread. For misses,
    /// `remote_sharers` is the sharing vector from the remote search, or
    /// `None` when no search was performed (the miss still trains the MC
    /// and MSV, but only *searched* misses enter the MTQ — an unsearched
    /// miss carries no location information and would poison the AND).
    pub fn on_fetch(&mut self, hit: bool, remote_sharers: Option<CoreMask>) {
        if !hit {
            self.mc.record_miss();
        }
        if self.mc.is_full() {
            self.msv.record(!hit);
            if !hit {
                if let Some(sharers) = remote_sharers {
                    self.mtq.push(sharers.without(self.core));
                }
            }
        }
    }

    /// The Figure-5 decision for the running thread, combining Q.1
    /// (cache full), Q.2 (miss dilution), and Q.3 (remote segment
    /// search).
    pub fn advice(&self) -> MigrationAdvice {
        if !self.mc.is_full() {
            return MigrationAdvice::Stay;
        }
        if !self.msv.is_diluted(self.params.dilution_t) {
            return MigrationAdvice::Stay;
        }
        if !self.mtq.is_full() {
            return MigrationAdvice::Stay;
        }
        let candidates = self.mtq.common_cores().without(self.core);
        if candidates.is_empty() {
            MigrationAdvice::SeekIdle
        } else {
            MigrationAdvice::Migrate(candidates)
        }
    }

    /// Whether the running thread appears to have crossed a working
    /// segment boundary: the cache is full and recent misses are diluted.
    /// This is the Q.1+Q.2 signal without Q.3's remote search — what a
    /// STEPS-style time-multiplexer switches threads on.
    pub fn chunk_boundary(&self) -> bool {
        self.mc.is_full() && self.msv.is_diluted(self.params.dilution_t)
    }

    /// The running thread left this core (migrated or completed): per
    /// §4.2.2 the MSV resets with every migration, and the MTQ tracks the
    /// *current* thread's misses so it resets too.
    pub fn on_thread_departed(&mut self) {
        self.msv.reset();
        self.mtq.reset();
    }

    /// The core's thread queue became empty: reset the MC so a future
    /// thread may load a new segment (§4.2.1). Cached blocks are not
    /// flushed.
    pub fn on_queue_empty(&mut self) {
        self.mc.reset();
    }

    /// Team completed (SLICC-SW/Pp): "SLICC resets all MCs, MTQs and
    /// MSVs" (§4.3.2).
    pub fn reset_all(&mut self) {
        self.mc.reset();
        self.msv.reset();
        self.mtq.reset();
    }

    /// Diagnostic access to the miss counter.
    pub fn miss_counter(&self) -> &MissCounter {
        &self.mc
    }

    /// Diagnostic access to the miss shift vector.
    pub fn miss_shift_vector(&self) -> &MissShiftVector {
        &self.msv
    }

    /// Diagnostic access to the missed tag queue.
    pub fn missed_tag_queue(&self) -> &MissedTagQueue {
        &self.mtq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(cores: &[u16]) -> CoreMask {
        cores.iter().map(|&c| CoreId::new(c)).collect()
    }

    fn quick_params() -> SliccParams {
        SliccParams::paper_default().with_fill_up(2).with_matched(2).with_dilution(1)
    }

    #[test]
    fn never_migrates_while_filling_up() {
        let mut a = SliccAgent::new(CoreId::new(0), SliccParams::paper_default());
        for _ in 0..255 {
            a.on_fetch(false, Some(mask(&[1])));
            assert_eq!(a.advice(), MigrationAdvice::Stay);
        }
        assert!(!a.cache_full());
    }

    #[test]
    fn migrates_to_core_holding_all_recent_misses() {
        let mut a = SliccAgent::new(CoreId::new(0), quick_params());
        a.on_fetch(false, Some(mask(&[])));
        a.on_fetch(false, Some(mask(&[]))); // MC full now
        assert!(a.cache_full());
        a.on_fetch(false, Some(mask(&[3, 5])));
        a.on_fetch(false, Some(mask(&[3])));
        assert_eq!(a.advice(), MigrationAdvice::Migrate(mask(&[3])));
    }

    #[test]
    fn seeks_idle_when_no_common_core() {
        let mut a = SliccAgent::new(CoreId::new(0), quick_params());
        a.on_fetch(false, Some(mask(&[])));
        a.on_fetch(false, Some(mask(&[])));
        a.on_fetch(false, Some(mask(&[3])));
        a.on_fetch(false, Some(mask(&[5])));
        assert_eq!(a.advice(), MigrationAdvice::SeekIdle);
    }

    #[test]
    fn own_core_never_counts_as_remote_match() {
        let mut a = SliccAgent::new(CoreId::new(2), quick_params());
        a.on_fetch(false, Some(mask(&[])));
        a.on_fetch(false, Some(mask(&[])));
        // Both misses "found" only on core 2 itself.
        a.on_fetch(false, Some(mask(&[2])));
        a.on_fetch(false, Some(mask(&[2])));
        assert_eq!(a.advice(), MigrationAdvice::SeekIdle);
    }

    #[test]
    fn dilution_gate_blocks_migration_on_low_miss_frequency() {
        let params = SliccParams::paper_default().with_fill_up(2).with_matched(2).with_dilution(10);
        let mut a = SliccAgent::new(CoreId::new(0), params);
        a.on_fetch(false, Some(mask(&[])));
        a.on_fetch(false, Some(mask(&[])));
        // Two misses among many hits: dilution (10) not reached.
        a.on_fetch(false, Some(mask(&[3])));
        a.on_fetch(false, Some(mask(&[3])));
        for _ in 0..50 {
            a.on_fetch(true, None);
        }
        assert_eq!(a.advice(), MigrationAdvice::Stay);
        // A burst of misses tips the dilution over the threshold.
        for _ in 0..10 {
            a.on_fetch(false, Some(mask(&[3])));
        }
        assert_eq!(a.advice(), MigrationAdvice::Migrate(mask(&[3])));
    }

    #[test]
    fn departure_resets_msv_and_mtq_but_not_mc() {
        let mut a = SliccAgent::new(CoreId::new(0), quick_params());
        for _ in 0..4 {
            a.on_fetch(false, Some(mask(&[3])));
        }
        assert_ne!(a.advice(), MigrationAdvice::Stay);
        a.on_thread_departed();
        assert!(a.cache_full(), "MC survives thread departure");
        assert_eq!(a.advice(), MigrationAdvice::Stay, "MSV/MTQ reset");
    }

    #[test]
    fn queue_empty_resets_only_mc() {
        let mut a = SliccAgent::new(CoreId::new(0), quick_params());
        for _ in 0..4 {
            a.on_fetch(false, Some(mask(&[3])));
        }
        a.on_queue_empty();
        assert!(!a.cache_full());
        // Not full => Stay regardless of MTQ contents.
        assert_eq!(a.advice(), MigrationAdvice::Stay);
    }

    #[test]
    fn reset_all_clears_everything() {
        let mut a = SliccAgent::new(CoreId::new(0), quick_params());
        for _ in 0..4 {
            a.on_fetch(false, Some(mask(&[3])));
        }
        a.reset_all();
        assert!(!a.cache_full());
        assert!(a.missed_tag_queue().is_empty());
        assert_eq!(a.miss_shift_vector().miss_count(), 0);
    }

    #[test]
    fn wants_remote_search_requires_fill_and_dilution() {
        let params = SliccParams::paper_default().with_fill_up(3).with_dilution(2);
        let mut a = SliccAgent::new(CoreId::new(0), params);
        assert!(!a.wants_remote_search());
        a.on_fetch(false, None);
        assert!(!a.wants_remote_search(), "cache not yet full");
        a.on_fetch(false, None);
        // MC will saturate on the next miss, but the MSV (enabled only
        // once full) has seen just that one saturating miss... none yet.
        a.on_fetch(false, None);
        // Now full; one miss in the MSV; dilution 2 tested one short.
        assert!(a.wants_remote_search(), "full and dilution within one miss");
        // A long run of hits clears the dilution: no more searching.
        for _ in 0..200 {
            a.on_fetch(true, None);
        }
        assert!(!a.wants_remote_search());
    }

    #[test]
    fn hits_do_not_fill_the_mc() {
        let mut a = SliccAgent::new(CoreId::new(0), quick_params());
        for _ in 0..100 {
            a.on_fetch(true, None);
        }
        assert!(!a.cache_full());
    }
}
