//! SLICC's hardware storage budget (Table 3).
//!
//! The paper itemizes SLICC's per-core storage: the cache monitor unit
//! (MTQ + MSV + bloom signature = 2208 bits), the thread scheduler
//! (30-entry thread queue = 1920 bits), and the team-formation table for
//! SLICC-SW/Pp (60 entries = 3600 bits) — a grand total of 7728 bits =
//! 966 bytes, i.e. **2.4% of PIF's ~40 KB** prefetcher storage.

/// Configuration determining the storage cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HwCostConfig {
    /// Number of cores (MTQ entries are `cores - 1` bits: one bit per
    /// possible remote holder).
    pub cores: u32,
    /// MTQ depth (`matched_t`).
    pub matched_t: u32,
    /// MSV window length in bits.
    pub msv_bits: u32,
    /// Bloom-filter signature size in bits.
    pub bloom_bits: u32,
    /// Thread-queue entries (Table 3: 30).
    pub thread_queue_entries: u32,
    /// Bits per thread-queue entry: 12-bit numerical id + 48-bit context
    /// pointer + 4-bit core id.
    pub thread_queue_entry_bits: u32,
    /// Team-management table entries (Table 3: 60).
    pub team_table_entries: u32,
    /// Bits per team-table entry: 12-bit id + 32-bit timestamp + 4-bit
    /// type id + 4-bit team id + 8-bit team index.
    pub team_table_entry_bits: u32,
}

impl HwCostConfig {
    /// Table 3's configuration: 16 cores, matched_t = 4, 100-bit MSV,
    /// 2K-bit bloom filter, 30-entry thread queue, 60-entry team table.
    pub fn paper_table3() -> Self {
        HwCostConfig {
            cores: 16,
            matched_t: 4,
            msv_bits: 100,
            bloom_bits: 2048,
            thread_queue_entries: 30,
            thread_queue_entry_bits: 12 + 48 + 4,
            team_table_entries: 60,
            team_table_entry_bits: 12 + 32 + 4 + 4 + 8,
        }
    }

    /// Computes the itemized budget.
    pub fn breakdown(&self) -> HwCostBreakdown {
        let mtq_bits = self.matched_t * (self.cores - 1);
        let monitor_bits = mtq_bits + self.msv_bits + self.bloom_bits;
        let thread_queue_bits = self.thread_queue_entries * self.thread_queue_entry_bits;
        let team_table_bits = self.team_table_entries * self.team_table_entry_bits;
        HwCostBreakdown {
            mtq_bits,
            msv_bits: self.msv_bits,
            bloom_bits: self.bloom_bits,
            monitor_bits,
            thread_queue_bits,
            team_table_bits,
            total_bits: monitor_bits + thread_queue_bits + team_table_bits,
        }
    }
}

impl Default for HwCostConfig {
    fn default() -> Self {
        HwCostConfig::paper_table3()
    }
}

/// Itemized storage bits (Table 3 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HwCostBreakdown {
    /// Missed tag queue bits.
    pub mtq_bits: u32,
    /// Miss shift vector bits.
    pub msv_bits: u32,
    /// Bloom-filter signature bits.
    pub bloom_bits: u32,
    /// Cache monitor unit subtotal.
    pub monitor_bits: u32,
    /// Thread scheduler (queue) subtotal.
    pub thread_queue_bits: u32,
    /// Team-formation table subtotal (SLICC-SW/Pp only).
    pub team_table_bits: u32,
    /// Grand total.
    pub total_bits: u32,
}

impl HwCostBreakdown {
    /// Grand total in bytes (rounded up).
    pub fn total_bytes(&self) -> u32 {
        self.total_bits.div_ceil(8)
    }

    /// Storage relative to a prefetcher budget of `other_bytes` per core
    /// (PIF: ~40 KB ⇒ SLICC is ~2.4%).
    pub fn relative_to(&self, other_bytes: u32) -> f64 {
        self.total_bytes() as f64 / other_bytes as f64
    }
}

/// PIF's per-core storage requirement (§5.6: "PIF's storage requirements
/// are ∼40 KB per core").
pub const PIF_STORAGE_BYTES: u32 = 40 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table_3_exactly() {
        let b = HwCostConfig::paper_table3().breakdown();
        assert_eq!(b.mtq_bits, 60);
        assert_eq!(b.msv_bits, 100);
        assert_eq!(b.bloom_bits, 2048);
        assert_eq!(b.monitor_bits, 2208);
        assert_eq!(b.thread_queue_bits, 1920);
        assert_eq!(b.team_table_bits, 3600);
        assert_eq!(b.total_bits, 7728);
        assert_eq!(b.total_bytes(), 966);
    }

    #[test]
    fn monitor_subtotal_matches_paper_bytes() {
        let b = HwCostConfig::paper_table3().breakdown();
        assert_eq!(b.monitor_bits.div_ceil(8), 276);
        assert_eq!(b.thread_queue_bits / 8, 240);
        assert_eq!(b.team_table_bits / 8, 450);
    }

    #[test]
    fn relative_to_pif_is_about_2_4_percent() {
        let b = HwCostConfig::paper_table3().breakdown();
        let rel = b.relative_to(PIF_STORAGE_BYTES);
        assert!((rel - 0.024).abs() < 0.001, "relative cost {rel}");
    }

    #[test]
    fn cost_scales_with_configuration() {
        let mut cfg = HwCostConfig::paper_table3();
        cfg.matched_t = 8;
        assert!(cfg.breakdown().mtq_bits > 60);
        cfg.bloom_bits = 8192;
        assert!(cfg.breakdown().total_bits > 7728);
    }
}
