//! SLICC-Pp's scout-core type detection.
//!
//! §4.3.1: "SLICC-Pp uses a hardware preprocessing phase to assign types
//! to threads as they launch. [...] A middle-ware layer assigns threads
//! in groups to a core devoted for this purpose (scout core). There, each
//! thread executes a few tens of instructions, while the instruction
//! addresses are hashed. The resulting values are used as thread type
//! identifiers. Experiments show that SLICC-Pp is 100% accurate when
//! executing a small number of instructions."

use slicc_common::{BlockAddr, TxnTypeId};
use std::collections::HashMap;

/// Hashes the first `budget` instruction fetches of a thread into a type
/// signature.
///
/// # Example
///
/// ```
/// use slicc_core::ScoutHasher;
/// use slicc_common::BlockAddr;
///
/// let mut h = ScoutHasher::new(2);
/// assert_eq!(h.observe(BlockAddr::new(10)), None);
/// let sig = h.observe(BlockAddr::new(11)).expect("budget reached");
/// assert!(h.is_done());
/// # let _ = sig;
/// ```
#[derive(Clone, Debug)]
pub struct ScoutHasher {
    budget: u32,
    seen: u32,
    state: u64,
}

impl ScoutHasher {
    /// Default preprocessing length: "a few tens of instructions".
    pub const DEFAULT_INSTRUCTIONS: u32 = 48;

    /// Creates a hasher over the first `budget` instruction fetches.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(budget: u32) -> Self {
        assert!(budget > 0, "scout budget must be positive");
        ScoutHasher { budget, seen: 0, state: 0xcbf2_9ce4_8422_2325 }
    }

    /// Feeds one fetched instruction block; returns the signature once the
    /// budget is reached (then keeps returning it).
    pub fn observe(&mut self, block: BlockAddr) -> Option<u64> {
        if self.seen < self.budget {
            // FNV-1a over the block address bytes.
            let mut x = block.raw();
            for _ in 0..8 {
                self.state ^= x & 0xff;
                self.state = self.state.wrapping_mul(0x1000_0000_01b3);
                x >>= 8;
            }
            self.seen += 1;
        }
        self.is_done().then_some(self.state)
    }

    /// Whether the budget has been consumed.
    pub fn is_done(&self) -> bool {
        self.seen >= self.budget
    }

    /// Instructions observed so far.
    pub fn observed(&self) -> u32 {
        self.seen
    }
}

/// Maps scout signatures to dense detected-type identifiers.
///
/// The hardware does not know the software's type names; it only needs
/// *equal signatures ⇒ same type id*. Ids are assigned in first-seen
/// order.
#[derive(Clone, Debug, Default)]
pub struct TypeRegistry {
    map: HashMap<u64, TxnTypeId>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TypeRegistry::default()
    }

    /// Returns the type id for `signature`, allocating the next dense id
    /// on first sight.
    pub fn type_for(&mut self, signature: u64) -> TxnTypeId {
        let next = TxnTypeId::new(self.map.len() as u16);
        *self.map.entry(signature).or_insert(next)
    }

    /// Distinct signatures seen.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no signatures have been registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_prefix_same_signature() {
        let blocks: Vec<_> = (100..148).map(BlockAddr::new).collect();
        let run = |blocks: &[BlockAddr]| {
            let mut h = ScoutHasher::new(48);
            let mut sig = None;
            for &b in blocks {
                sig = h.observe(b);
            }
            sig.expect("budget consumed")
        };
        assert_eq!(run(&blocks), run(&blocks));
    }

    #[test]
    fn different_prefixes_differ() {
        let a: Vec<_> = (100..148).map(BlockAddr::new).collect();
        let b: Vec<_> = (200..248).map(BlockAddr::new).collect();
        let mut ha = ScoutHasher::new(48);
        let mut hb = ScoutHasher::new(48);
        let (mut sa, mut sb) = (None, None);
        for i in 0..48 {
            sa = ha.observe(a[i]);
            sb = hb.observe(b[i]);
        }
        assert_ne!(sa.unwrap(), sb.unwrap());
    }

    #[test]
    fn extra_observations_do_not_change_signature() {
        let mut h = ScoutHasher::new(2);
        h.observe(BlockAddr::new(1));
        let sig = h.observe(BlockAddr::new(2)).unwrap();
        let same = h.observe(BlockAddr::new(999)).unwrap();
        assert_eq!(sig, same);
        assert_eq!(h.observed(), 2);
    }

    #[test]
    fn registry_assigns_dense_first_seen_ids() {
        let mut r = TypeRegistry::new();
        assert!(r.is_empty());
        let a = r.type_for(111);
        let b = r.type_for(222);
        let a2 = r.type_for(111);
        assert_eq!(a, TxnTypeId::new(0));
        assert_eq!(b, TxnTypeId::new(1));
        assert_eq!(a, a2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_panics() {
        let _ = ScoutHasher::new(0);
    }
}
