//! Team formation for the type-aware variants (SLICC-SW, SLICC-Pp).
//!
//! §4.3.2: "Using thread type information, SLICC groups similar threads
//! into teams. [...] Team sizes differ and for an N-core architecture we
//! categorize them into large (1.5× to 2× N threads), medium (0.5× to
//! 1.5× N threads), and small (less than 0.5× N threads) teams. [...]
//! When large teams are scheduled, they are allowed to execute on all
//! cores. Medium size teams are limited to half the resources (0.5× N
//! cores). Threads of a small team are treated as stray threads, and are
//! not grouped." The oldest team is scheduled first, without pre-emption
//! if possible.

use slicc_common::{ThreadId, TxnTypeId};

/// A team's size classification relative to the core count N.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TeamKind {
    /// ≥ 1.5 N threads: may run on all cores.
    Large,
    /// 0.5 N – 1.5 N threads: limited to half the cores.
    Medium,
    /// < 0.5 N threads: members are strays, scheduled individually.
    Stray,
}

/// A planned team: same-type threads in arrival order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TeamPlan {
    /// Member threads, oldest first.
    pub members: Vec<ThreadId>,
    /// The transaction type all members share.
    pub txn_type: TxnTypeId,
    /// Size classification.
    pub kind: TeamKind,
    /// Arrival position of the oldest member (the team's timestamp:
    /// "The timestamp of a team is that of its oldest thread").
    pub arrival: usize,
}

/// Groups an arrival-ordered thread list into teams.
#[derive(Clone, Copy, Debug)]
pub struct TeamFormer {
    n_cores: usize,
}

impl TeamFormer {
    /// Creates a former for an `n_cores` machine.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0, "need at least one core");
        TeamFormer { n_cores }
    }

    /// Classifies a member count.
    pub fn classify(&self, size: usize) -> TeamKind {
        let n2 = 2 * size; // compare against halves without floats
        if n2 >= 3 * self.n_cores {
            TeamKind::Large
        } else if n2 >= self.n_cores {
            TeamKind::Medium
        } else {
            TeamKind::Stray
        }
    }

    /// Maximum team size (2 N).
    pub fn max_team_size(&self) -> usize {
        2 * self.n_cores
    }

    /// Forms teams from `threads` (in arrival order), returned oldest
    /// first. Same-type threads chunk greedily into teams of at most 2 N;
    /// each chunk is classified by its size.
    pub fn form_teams(&self, threads: &[(ThreadId, TxnTypeId)]) -> Vec<TeamPlan> {
        let mut open: Vec<(TxnTypeId, Vec<ThreadId>, usize)> = Vec::new();
        let mut done: Vec<TeamPlan> = Vec::new();
        for (arrival, &(thread, ty)) in threads.iter().enumerate() {
            match open.iter_mut().find(|(t, _, _)| *t == ty) {
                Some((_, members, _)) => {
                    members.push(thread);
                    if members.len() == self.max_team_size() {
                        let (t, members, arr) = open.remove(
                            open.iter().position(|(t, _, _)| *t == ty).expect("entry exists"),
                        );
                        done.push(self.plan(t, members, arr));
                    }
                }
                None => open.push((ty, vec![thread], arrival)),
            }
        }
        for (t, members, arr) in open {
            done.push(self.plan(t, members, arr));
        }
        done.sort_by_key(|p| p.arrival);
        done
    }

    fn plan(&self, txn_type: TxnTypeId, members: Vec<ThreadId>, arrival: usize) -> TeamPlan {
        let kind = self.classify(members.len());
        TeamPlan { members, txn_type, kind, arrival }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threads(spec: &[(u32, u16)]) -> Vec<(ThreadId, TxnTypeId)> {
        spec.iter().map(|&(t, ty)| (ThreadId::new(t), TxnTypeId::new(ty))).collect()
    }

    #[test]
    fn classification_boundaries_for_16_cores() {
        let f = TeamFormer::new(16);
        assert_eq!(f.classify(32), TeamKind::Large);
        assert_eq!(f.classify(24), TeamKind::Large);
        assert_eq!(f.classify(23), TeamKind::Medium);
        assert_eq!(f.classify(8), TeamKind::Medium);
        assert_eq!(f.classify(7), TeamKind::Stray);
        assert_eq!(f.classify(1), TeamKind::Stray);
        assert_eq!(f.max_team_size(), 32);
    }

    #[test]
    fn same_type_threads_group_together() {
        let f = TeamFormer::new(4);
        let ts = threads(&[(0, 0), (1, 1), (2, 0), (3, 0), (4, 1)]);
        let teams = f.form_teams(&ts);
        assert_eq!(teams.len(), 2);
        assert_eq!(teams[0].txn_type, TxnTypeId::new(0));
        assert_eq!(teams[0].members, vec![ThreadId::new(0), ThreadId::new(2), ThreadId::new(3)]);
        assert_eq!(teams[1].members, vec![ThreadId::new(1), ThreadId::new(4)]);
    }

    #[test]
    fn teams_cap_at_two_n() {
        let f = TeamFormer::new(2); // max team size 4
        let ts: Vec<_> = (0..10).map(|i| (ThreadId::new(i), TxnTypeId::new(0))).collect();
        let teams = f.form_teams(&ts);
        assert_eq!(teams.len(), 3);
        assert_eq!(teams[0].members.len(), 4);
        assert_eq!(teams[1].members.len(), 4);
        assert_eq!(teams[2].members.len(), 2);
        assert_eq!(teams[0].kind, TeamKind::Large);
        assert_eq!(teams[2].kind, TeamKind::Medium);
    }

    #[test]
    fn teams_ordered_by_oldest_member() {
        let f = TeamFormer::new(16);
        // Type 1 arrives first but type 0 fills faster — order is by
        // arrival of the oldest member, not completion.
        let ts = threads(&[(10, 1), (11, 0), (12, 0), (13, 1)]);
        let teams = f.form_teams(&ts);
        assert_eq!(teams[0].txn_type, TxnTypeId::new(1));
        assert_eq!(teams[0].arrival, 0);
        assert_eq!(teams[1].arrival, 1);
    }

    #[test]
    fn rare_types_become_strays() {
        let f = TeamFormer::new(16);
        let mut ts = Vec::new();
        for i in 0..30 {
            ts.push((ThreadId::new(i), TxnTypeId::new(0)));
        }
        ts.push((ThreadId::new(30), TxnTypeId::new(9)));
        let teams = f.form_teams(&ts);
        assert_eq!(teams.len(), 2);
        assert_eq!(teams[0].kind, TeamKind::Large);
        let stray = &teams[1];
        assert_eq!(stray.kind, TeamKind::Stray);
        assert_eq!(stray.members.len(), 1);
    }

    #[test]
    fn empty_input_yields_no_teams() {
        assert!(TeamFormer::new(8).form_teams(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = TeamFormer::new(0);
    }
}
