//! Core bitmasks: which cores answered a remote-search positively.
//!
//! [`CoreMask`] moved to `slicc-common` so the memory system and engine
//! can share it; this module re-exports it for the agent-facing paths.

pub use slicc_common::CoreMask;
